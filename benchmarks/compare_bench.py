#!/usr/bin/env python
"""Compare a fresh benchmark run against the committed baseline.

The CI benchmark-regression gate runs ``run_bench.py`` on the pull request,
then calls this script to compare ``ops_per_second`` per benchmark against
the committed ``BENCH_throughput.json``.  A benchmark regressing by more
than the tolerance fails the gate::

    PYTHONPATH=src python benchmarks/run_bench.py --output current.json \\
        -k "golden_model or mabfuzz_iteration"
    python benchmarks/compare_bench.py \\
        --baseline BENCH_throughput.json --current current.json \\
        --tolerance 30 \\
        --benchmarks test_golden_model_run_throughput \\
                     test_mabfuzz_iteration_throughput

A Markdown comparison table is printed to stdout and, when
``$GITHUB_STEP_SUMMARY`` is set (or ``--summary PATH`` is given), appended
to the job summary.  Baselines travel with the repository, so they were
usually recorded on *different hardware* than the runner executing the
gate; the tolerance absorbs machine-to-machine variance, and a mismatched
``machine``/``cpu_count`` is called out in the table header.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def load_summary(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"benchmark summary not found: {path}")
    except json.JSONDecodeError as error:
        raise SystemExit(f"unparsable benchmark summary {path}: {error}")


def compare(baseline: dict, current: dict, names: list, tolerance_pct: float) -> tuple:
    """Return (markdown lines, {regressed name: human-readable reason})."""
    lines = [
        "| benchmark | baseline ops/s | current ops/s | change | verdict |",
        "|---|---:|---:|---:|---|",
    ]
    regressed = {}
    for name in names:
        base = baseline.get("benchmarks", {}).get(name)
        cur = current.get("benchmarks", {}).get(name)
        if base is None or cur is None:
            missing = "baseline" if base is None else "current run"
            lines.append(f"| {name} | - | - | - | MISSING from {missing} |")
            regressed[name] = f"missing from the {missing}"
            continue
        base_ops = float(base["ops_per_second"])
        cur_ops = float(cur["ops_per_second"])
        change_pct = 100.0 * (cur_ops - base_ops) / base_ops
        if change_pct < -tolerance_pct:
            verdict = f"REGRESSED (> {tolerance_pct:.0f}% slower)"
            regressed[name] = (
                f"{change_pct:+.1f}% ops/s ({base_ops:,.2f} -> {cur_ops:,.2f}, "
                f"tolerance {tolerance_pct:.0f}%)"
            )
        else:
            verdict = "ok"
        lines.append(
            f"| {name} | {base_ops:,.2f} | {cur_ops:,.2f} | {change_pct:+.1f}% | {verdict} |"
        )
    return lines, regressed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="committed BENCH_throughput.json",
    )
    parser.add_argument(
        "--current",
        type=Path,
        required=True,
        help="summary produced by run_bench.py on this PR",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=30.0,
        help="allowed ops/s regression in percent (default: 30)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        required=True,
        help="benchmark names the gate enforces",
    )
    parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        help="also append the Markdown table to this file "
        "(default: $GITHUB_STEP_SUMMARY when set)",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        raise SystemExit("--tolerance must be >= 0")

    baseline = load_summary(args.baseline)
    current = load_summary(args.current)

    header = [
        "## Benchmark regression gate",
        f"Tolerance: {args.tolerance:.0f}% ops/s regression.",
    ]
    for field in ("machine", "cpu_count", "python"):
        base_value, cur_value = baseline.get(field), current.get(field)
        if base_value != cur_value:
            header.append(
                f"> note: baseline {field} = `{base_value}`, runner {field} = "
                f"`{cur_value}` -- cross-machine comparison, tolerance absorbs "
                f"the variance."
            )
    table, regressed = compare(baseline, current, args.benchmarks, args.tolerance)
    report = "\n".join(header + [""] + table) + "\n"
    print(report)

    summary_path = args.summary
    if summary_path is None and os.environ.get("GITHUB_STEP_SUMMARY"):
        summary_path = Path(os.environ["GITHUB_STEP_SUMMARY"])
    if summary_path is not None:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(report + "\n")

    if regressed:
        # One GitHub error annotation per offender: the failing benchmark is
        # named on the PR itself, not buried in the job log.
        if os.environ.get("GITHUB_ACTIONS"):
            for name, reason in regressed.items():
                print(f"::error title=Benchmark regression::{name}: {reason}")
        for name, reason in regressed.items():
            print(f"FAIL: {name}: {reason}", file=sys.stderr)
        print(
            f"FAIL: {len(regressed)} benchmark(s) regressed or missing: "
            f"{', '.join(regressed)}",
            file=sys.stderr,
        )
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
