"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation) at a laptop-friendly scale.  Campaign sizes can be scaled with
environment variables:

``REPRO_BENCH_TESTS``      tests per campaign for Table I          (default 800)
``REPRO_BENCH_COV_TESTS``  tests per campaign for Fig. 3 / Fig. 4  (default 500)
``REPRO_BENCH_TRIALS``     trials per configuration                 (default 2)
``REPRO_BENCH_ABLATION_TESTS`` tests per ablation campaign          (default 250)

Rendered tables and figure data are printed to the terminal and written to
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.config import MABFuzzConfig
from repro.fuzzing.base import FuzzerConfig
from repro.harness.experiments import ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def bench_table1_config() -> ExperimentConfig:
    """Experiment scaling used for the Table I benchmark."""
    return ExperimentConfig(
        num_tests=_env_int("REPRO_BENCH_TESTS", 1200),
        trials=_env_int("REPRO_BENCH_TRIALS", 2),
        seed=2024,
        algorithms=("egreedy", "ucb", "exp3"),
        fuzzer_config=FuzzerConfig(num_seeds=10, mutants_per_test=4),
        mab_config=MABFuzzConfig(),
    )


@pytest.fixture(scope="session")
def bench_coverage_config() -> ExperimentConfig:
    """Experiment scaling used for the Fig. 3 / Fig. 4 benchmarks."""
    return ExperimentConfig(
        num_tests=_env_int("REPRO_BENCH_COV_TESTS", 500),
        trials=_env_int("REPRO_BENCH_TRIALS", 2),
        seed=7,
        algorithms=("egreedy", "ucb", "exp3"),
        processors=("cva6", "rocket", "boom"),
        fuzzer_config=FuzzerConfig(num_seeds=10, mutants_per_test=4),
        mab_config=MABFuzzConfig(),
    )


@pytest.fixture(scope="session")
def bench_ablation_config() -> ExperimentConfig:
    """Experiment scaling used for the ablation benchmarks."""
    return ExperimentConfig(
        num_tests=_env_int("REPRO_BENCH_ABLATION_TESTS", 250),
        trials=1,
        seed=11,
        algorithms=("ucb",),
        processors=("cva6",),
        fuzzer_config=FuzzerConfig(num_seeds=10, mutants_per_test=4),
        mab_config=MABFuzzConfig(),
    )


@pytest.fixture(scope="session")
def shared_results():
    """Session cache so Fig. 4 reuses the campaigns run for Fig. 3."""
    return {}


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered benchmark artefact under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = RESULTS_DIR / name
        path.write_text(text + "\n")
        return path

    return _save


@pytest.fixture
def announce(capsys):
    """Print a rendered table to the real terminal (bypassing capture)."""

    def _announce(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _announce
