#!/usr/bin/env python
"""Check ``docs/*.md`` for dead references; exit non-zero on any.

The documentation index (``docs/README.md``) and the per-subsystem pages
cross-link each other with relative markdown links and name code with
backticked ``repro.*`` dotted references.  Both rot silently when files
move, so CI runs::

    python benchmarks/check_docs.py

which fails on:

* relative markdown links whose target does not exist (external
  ``http(s)``/``mailto`` links and pure ``#anchor`` links are skipped);
* backticked dotted references (``repro.fuzzing.corpus``,
  ``repro.exec.CampaignEngine`` ...) that neither import as a module nor
  resolve to an attribute of one; and
* backticked repo-relative file paths (``src/...``, ``tests/...``,
  ``benchmarks/...``, ``docs/...`` or ``repro/...`` -- the latter tried
  against both the repo root and ``src/``) that point at nothing.

Fenced code blocks are ignored: shell transcripts legitimately mention
paths that only exist at runtime (spool queues, journals).
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path
from typing import Iterator, List

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
SRC_DIR = REPO_ROOT / "src"

if str(SRC_DIR) not in sys.path:
    sys.path.insert(0, str(SRC_DIR))

#: relative markdown link: ``[text](target)`` with an optional ``#anchor``.
LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+?)(?:#[^)\s]*)?\)")
#: backticked dotted code reference rooted at the ``repro`` package.
MODULE_RE = re.compile(r"`~?(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)`")
#: backticked repo-relative file path.
PATH_RE = re.compile(
    r"`((?:src|tests|benchmarks|docs|repro)/[\w./-]+\.(?:py|md|json|ini|yml|txt))`")
_FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def strip_fences(text: str) -> str:
    """Drop fenced code blocks (their contents are transcripts, not refs)."""
    return _FENCE_RE.sub("", text)


def module_resolves(ref: str) -> bool:
    """True iff ``ref`` imports as a module or is an attribute of one.

    Tries the longest importable module prefix, then walks the remaining
    parts as attributes (so ``repro.exec.CampaignEngine`` resolves even
    though it is a class, not a module).
    """
    parts = ref.split(".")
    for cut in range(len(parts), 0, -1):
        try:
            module = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        obj = module
        for attr in parts[cut:]:
            try:
                obj = getattr(obj, attr)
            except AttributeError:
                return False
        return True
    return False


def check_text(text: str, doc_dir: Path) -> Iterator[str]:
    """Yield one problem string per dead reference in a doc's text."""
    prose = strip_fences(text)
    for match in LINK_RE.finditer(prose):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")) or not target:
            continue
        if not (doc_dir / target).exists():
            yield f"dead link -> {target}"
    for match in MODULE_RE.finditer(prose):
        ref = match.group(1)
        if not module_resolves(ref):
            yield f"dead module reference -> {ref}"
    for match in PATH_RE.finditer(prose):
        path = match.group(1)
        if not ((REPO_ROOT / path).exists() or (SRC_DIR / path).exists()):
            yield f"dead path reference -> {path}"


def check_docs(docs_dir: Path = DOCS_DIR) -> List[str]:
    """Check every ``*.md`` under ``docs_dir``; return the problem list."""
    problems = []
    pages = sorted(docs_dir.glob("*.md"))
    if not pages:
        return [f"no markdown files found under {docs_dir}"]
    for doc in pages:
        for problem in check_text(doc.read_text(), doc.parent):
            problems.append(f"{doc.relative_to(docs_dir.parent)}: {problem}")
    return problems


def main() -> int:
    problems = check_docs()
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{len(problems)} dead documentation reference(s)",
              file=sys.stderr)
        return 1
    pages = len(list(DOCS_DIR.glob("*.md")))
    print(f"docs check: {pages} pages, no dead references")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
