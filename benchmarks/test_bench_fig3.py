"""Benchmark E2: regenerate Fig. 3 (branch coverage vs number of tests).

Runs TheHuzz and the three MABFuzz variants on CVA6, Rocket and BOOM and
emits the mean coverage-versus-tests series per processor per fuzzer (ASCII
chart + CSV).  Expected shape (as in the paper): the MABFuzz curves sit on
or above the TheHuzz curve on CVA6 and Rocket, while on BOOM -- whose
reachable space both fuzzers nearly saturate -- the curves converge.
"""

import pytest

# Paper-experiment regeneration: minutes per run, excluded from
# tier-1 by the `slow` marker (see pytest.ini).
pytestmark = pytest.mark.slow

from repro.harness.experiments import figure3_series, run_coverage_study
from repro.harness.figures import figure3_csv, render_figure3


def test_fig3_branch_coverage_curves(benchmark, bench_coverage_config,
                                     shared_results, save_result, announce):
    study = benchmark.pedantic(
        run_coverage_study, args=(bench_coverage_config,), rounds=1, iterations=1)
    shared_results["coverage_study"] = study

    series = figure3_series(study, num_samples=25)
    rendered = render_figure3(series)
    announce(rendered)
    save_result("fig3_coverage_curves.txt", rendered)
    save_result("fig3_coverage_curves.csv", figure3_csv(series))

    # Shape checks: curves are monotone, and on every core the best MABFuzz
    # variant finishes at least on par with TheHuzz (small tolerance).
    for processor, per_fuzzer in series.items():
        for fuzzer, samples in per_fuzzer.items():
            covered = [s.covered for s in samples]
            assert covered == sorted(covered), f"non-monotone curve {processor}/{fuzzer}"
        baseline_final = per_fuzzer["thehuzz"][-1].covered
        best_mab = max(samples[-1].covered
                       for name, samples in per_fuzzer.items() if name != "thehuzz")
        assert best_mab >= 0.95 * baseline_final, (
            f"on {processor} every MABFuzz variant fell >5% short of TheHuzz")
