"""Benchmark E1: regenerate Table I (vulnerability detection speedup).

Runs TheHuzz and MABFuzz (ε-greedy, UCB, EXP3) on the buggy CVA6 and Rocket
models and reports, per vulnerability, the number of tests TheHuzz needed
and each MAB algorithm's detection speedup -- the same rows as Table I of
the paper.  Absolute test counts are smaller than the paper's 50,000-test
VCS campaigns; the expected *shape* is that MABFuzz detects most
vulnerabilities faster (speedup > 1), with the trivially-detected V5 as the
paper-matching exception.
"""

import pytest

# Paper-experiment regeneration: minutes per run, excluded from
# tier-1 by the `slow` marker (see pytest.ini).
pytestmark = pytest.mark.slow

from repro.harness.experiments import run_table1
from repro.harness.tables import render_table1


def test_table1_vulnerability_detection_speedup(benchmark, bench_table1_config,
                                                save_result, announce):
    result = benchmark.pedantic(
        run_table1, args=(bench_table1_config,), rounds=1, iterations=1)

    rendered = render_table1(result)
    lines = [rendered, ""]
    lines.append("Campaign scale: "
                 f"{bench_table1_config.num_tests} tests x "
                 f"{bench_table1_config.trials} trials per fuzzer per core")
    best = {row.bug_id: result.best_speedup(row.bug_id) for row in result.rows}
    detected_best = {bug: value for bug, value in best.items() if value is not None}
    if detected_best:
        top_bug = max(detected_best, key=detected_best.get)
        lines.append(f"Best observed speedup: {detected_best[top_bug]:.2f}x on {top_bug} "
                     "(paper: up to 308.89x on V7)")
    text = "\n".join(lines)
    announce(text)
    save_result("table1_detection_speedup.txt", text)

    # Sanity of the reproduction shape: every vulnerability row exists and at
    # least one of the non-trivial bugs shows a >1x speedup for some algorithm.
    assert [row.bug_id for row in result.rows] == ["V1", "V2", "V3", "V4", "V5",
                                                   "V6", "V7"]
    nontrivial = [bug for bug, value in detected_best.items()
                  if bug != "V5" and value is not None]
    assert any(detected_best[bug] > 1.0 for bug in nontrivial)
