#!/usr/bin/env python
"""Run the substrate throughput benchmarks and record a perf trajectory.

Runs ``benchmarks/test_bench_throughput.py`` under pytest-benchmark and
writes a compact ``BENCH_throughput.json`` (median/mean ns per op and ops/s
for every benchmark) so successive PRs can compare hot-path performance on
the same machine::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --output my_bench.json
    PYTHONPATH=src python benchmarks/run_bench.py -k golden_model

The output file intentionally contains only machine-comparable medians --
see docs/performance.md for how to interpret it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = Path(__file__).resolve().parent / "test_bench_throughput.py"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_throughput.json"


def run_benchmarks(select: str | None = None) -> dict:
    """Run the throughput benchmarks; return pytest-benchmark's JSON payload."""
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        command = [
            sys.executable, "-m", "pytest", str(BENCH_FILE), "-q",
            f"--benchmark-json={raw_path}",
        ]
        if select:
            command.extend(["-k", select])
        completed = subprocess.run(command, cwd=REPO_ROOT)
        if completed.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {completed.returncode})")
        return json.loads(raw_path.read_text())


def summarize(raw: dict) -> dict:
    """Reduce pytest-benchmark output to per-benchmark medians in ns/op."""
    benchmarks = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        entry = {
            "median_ns": round(stats["median"] * 1e9),
            "mean_ns": round(stats["mean"] * 1e9),
            "stddev_ns": round(stats["stddev"] * 1e9),
            "ops_per_second": round(stats["ops"], 3),
            "rounds": stats["rounds"],
        }
        # Benchmarks may attach trajectory metrics beyond timing (e.g. the
        # corpus benchmark's coverage-point counts); carry them through.
        extra = bench.get("extra_info") or {}
        if extra:
            entry.update(sorted(extra.items()))
        benchmarks[bench["name"]] = entry
    return {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        # The campaign-grid serial/parallel pair is only meaningful
        # relative to this: on a 1-CPU host the parallel benchmark
        # measures pure multi-process overhead (see docs/parallel.md).
        "cpu_count": os.cpu_count(),
        "benchmarks": benchmarks,
    }


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write the summary (default: {DEFAULT_OUTPUT})")
    parser.add_argument("-k", dest="select", default=None,
                        help="pytest -k expression to select a benchmark subset")
    args = parser.parse_args(argv)

    summary = summarize(run_benchmarks(args.select))
    if not summary["benchmarks"]:
        raise SystemExit("no benchmarks ran (bad -k expression?)")
    args.output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(summary['benchmarks'])} benchmark medians -> {args.output}")
    for name, stats in sorted(summary["benchmarks"].items()):
        print(f"  {name}: median {stats['median_ns'] / 1e6:.3f} ms/op")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
