"""Benchmark E3: regenerate Fig. 4 (coverage speedup and increment vs TheHuzz).

Derives, from the same campaigns as the Fig. 3 benchmark, the end-of-campaign
coverage speedup (how many times fewer tests MABFuzz needs to reach TheHuzz's
final coverage) and the relative coverage increment, per processor and per
MAB algorithm.  Expected shape: speedups of roughly 1-5x with the largest
gains on the hardest-to-cover core (CVA6) and the smallest on the nearly
saturated BOOM, mirroring the paper.
"""

import pytest

# Paper-experiment regeneration: minutes per run, excluded from
# tier-1 by the `slow` marker (see pytest.ini).
pytestmark = pytest.mark.slow

from repro.harness.experiments import figure4_summary, run_coverage_study
from repro.harness.figures import figure4_csv
from repro.harness.tables import render_figure4_table


def test_fig4_coverage_speedup_and_increment(benchmark, bench_coverage_config,
                                             shared_results, save_result, announce):
    study = shared_results.get("coverage_study")
    if study is None:
        study = run_coverage_study(bench_coverage_config)
        shared_results["coverage_study"] = study

    summary = benchmark.pedantic(figure4_summary, args=(study,), rounds=1, iterations=1)

    rendered = render_figure4_table(summary)
    announce(rendered)
    save_result("fig4_coverage_speedup.txt", rendered)
    save_result("fig4_coverage_speedup.csv", figure4_csv(summary))

    # Shape checks: every speedup is positive, and at least one MABFuzz
    # algorithm achieves >= 1x coverage speedup on CVA6 and Rocket.
    for processor in ("cva6", "rocket"):
        speedups = [metrics["speedup"] for metrics in summary[processor].values()]
        assert all(s > 0 for s in speedups)
        assert max(speedups) >= 1.0, f"no MAB algorithm matched TheHuzz on {processor}"
