"""Micro-benchmarks of the substrate itself (simulation and fuzzing throughput).

These are conventional timing benchmarks (multiple rounds) rather than
one-shot experiment regenerations: they track how expensive one golden-model
run, one instrumented DUT run and one full fuzzing iteration are -- the
quantities that determine how far the scaled campaigns can go.
"""

import pytest

from repro.api import make_fuzzer, make_processor
from repro.core.config import MABFuzzConfig
from repro.exec import ProcessPoolBackend, SerialBackend, grid_summary, run_grid
from repro.fuzzing.base import FuzzerConfig
from repro.fuzzing.corpus import CorpusManager
from repro.fuzzing.mutation import MutationEngine
from repro.harness.campaign import CampaignSpec, trial_seed
from repro.isa.generator import SeedGenerator
from repro.isa.program import program_id_scope
from repro.sim.golden import GoldenModel


@pytest.fixture(scope="module")
def sample_programs():
    return SeedGenerator(rng=42).generate_many(20)


def test_golden_model_run_throughput(benchmark, sample_programs):
    golden = GoldenModel()

    def run_all():
        return [golden.run(p).instret for p in sample_programs]

    retired = benchmark(run_all)
    assert all(count >= 1 for count in retired)


@pytest.mark.parametrize("processor", ["cva6", "rocket", "boom"])
def test_dut_model_run_throughput(benchmark, sample_programs, processor):
    dut = make_processor(processor, bugs=[])

    def run_all():
        return [dut.run(p).coverage_count for p in sample_programs]

    counts = benchmark(run_all)
    assert all(count > 0 for count in counts)


def test_dut_model_run_throughput_superblocks_off(benchmark, sample_programs):
    """Unfused baseline: the per-step compiled loop with superblocks off.

    Pinned in CI alongside the fused runs so a regression in the fallback
    path (every misaligned/dirty/partial-block dispatch degrades to it)
    is caught even while the fused path dominates the default numbers.
    """
    from repro.isa.compiled import set_superblocks_enabled, superblocks_enabled

    dut = make_processor("rocket", bugs=[])

    def run_all():
        return [dut.run(p).coverage_count for p in sample_programs]

    was_enabled = superblocks_enabled()
    set_superblocks_enabled(False)
    try:
        counts = benchmark(run_all)
    finally:
        set_superblocks_enabled(was_enabled)
    assert all(count > 0 for count in counts)


def test_mutation_engine_throughput(benchmark, sample_programs):
    engine = MutationEngine(rng=1)

    def mutate_all():
        return [engine.mutate(p, count=4) for p in sample_programs]

    children = benchmark(mutate_all)
    assert all(len(batch) == 4 for batch in children)


def test_thehuzz_iteration_throughput(benchmark):
    fuzzer = make_fuzzer("thehuzz", make_processor("rocket", bugs=[]),
                         fuzzer_config=FuzzerConfig(num_seeds=5), rng=0)
    outcome = benchmark(fuzzer.fuzz_one)
    assert outcome.coverage


def test_mabfuzz_iteration_throughput(benchmark):
    fuzzer = make_fuzzer("mabfuzz:ucb", make_processor("rocket", bugs=[]),
                         fuzzer_config=FuzzerConfig(num_seeds=5),
                         mab_config=MABFuzzConfig(num_arms=5), rng=0)
    outcome = benchmark(fuzzer.fuzz_one)
    assert outcome.coverage


# --------------------------------------------------------------- campaign grids
# A multi-campaign grid (2 processors x 2 fuzzers x 2 trials) run through
# the execution subsystem on both backends.  Comparing the two medians in
# BENCH_throughput.json gives the parallel speedup on this machine.  Every
# round draws fresh base seeds so neither backend trivially serves its
# whole workload out of the DUT-run/golden caches warmed by earlier rounds.
#
# Grid rounds are seconds long, so pytest-benchmark only gets a few of
# them; with rounds=2 and no warmup the committed medians carried up to
# ~40% stddev and the CI regression gate's 30% tolerance could trip on
# noise.  One warmup round (pays the process-pool spin-up, decode/compile
# cache warming and allocator growth) plus three measured rounds keeps the
# medians comparable across runs without inflating wall-clock much.
_GRID_ROUNDS = dict(rounds=3, iterations=1, warmup_rounds=1)
_GRID_SEEDS = iter(range(1000, 2000))


def _grid_specs():
    seed = next(_GRID_SEEDS)
    return [
        CampaignSpec(processor=processor, fuzzer=fuzzer, num_tests=120,
                     trials=2, seed=seed, bugs=[],
                     fuzzer_config=FuzzerConfig(num_seeds=4, mutants_per_test=2))
        for processor in ("cva6", "rocket")
        for fuzzer in ("thehuzz", "mabfuzz:ucb")
    ]


def _check_grid(trialsets):
    summary = grid_summary(trialsets)
    assert summary["specs"] == 4
    assert summary["trials_completed"] == summary["trials_expected"] == 8
    assert summary["tests_executed"] == 8 * 120


def test_campaign_grid_serial_throughput(benchmark):
    trialsets = benchmark.pedantic(
        lambda: run_grid(_grid_specs(), backend=SerialBackend()),
        **_GRID_ROUNDS)
    _check_grid(trialsets)


def test_campaign_grid_parallel_throughput(benchmark):
    backend = ProcessPoolBackend(workers=4)
    trialsets = benchmark.pedantic(
        lambda: run_grid(_grid_specs(), backend=backend),
        **_GRID_ROUNDS)
    _check_grid(trialsets)


# A bug-sweep grid: the same (processor, fuzzer, seed) campaign under three
# injected-bug sets.  Trial seeds ignore the bug set, so the three variants
# generate identical seed corpora and the shared golden-trace fallback
# serves two out of three golden runs for every program the campaigns have
# in common -- the workload batched execution amortizes.  (Tracked as its
# own trajectory metric; it is not an A/B against the grid above.)
def _bug_sweep_specs():
    seed = next(_GRID_SEEDS)
    return [
        CampaignSpec(processor="cva6", fuzzer="thehuzz", num_tests=120,
                     trials=2, seed=seed, bugs=list(bugs),
                     fuzzer_config=FuzzerConfig(num_seeds=4, mutants_per_test=2))
        for bugs in ((), ("V5",), ("V2", "V6"))
    ]


def test_campaign_grid_batched_bug_sweep_throughput(benchmark):
    backend = SerialBackend(batch_size=None)
    trialsets = benchmark.pedantic(
        lambda: run_grid(_bug_sweep_specs(), backend=backend),
        **_GRID_ROUNDS)
    summary = grid_summary(trialsets)
    assert summary["specs"] == 3
    assert summary["trials_completed"] == 6
    assert summary["tests_executed"] == 6 * 120


# ----------------------------------------------------------- trap/CSR workload
# The trap-scenario campaign: mixed user/trap arms under the "csr" coverage
# model (docs/coverage.md).  Tracks what the richer coverage signal costs
# per campaign -- the CSR-transition tracker rides the observe-commit hot
# path -- and gives the CI regression gate a number for the new workload.
def _trap_specs():
    seed = next(_GRID_SEEDS)
    return [
        CampaignSpec(processor=processor, fuzzer="mabfuzz:ucb", num_tests=120,
                     trials=2, seed=seed, bugs=[],
                     fuzzer_config=FuzzerConfig(num_seeds=4, mutants_per_test=2,
                                                scenario="mixed"),
                     coverage_model="csr")
        for processor in ("cva6", "rocket")
    ]


def test_trap_scenario_campaign_throughput(benchmark):
    trialsets = benchmark.pedantic(
        lambda: run_grid(_trap_specs(), backend=SerialBackend()),
        **_GRID_ROUNDS)
    summary = grid_summary(trialsets)
    assert summary["specs"] == 2
    assert summary["trials_completed"] == 4
    assert summary["tests_executed"] == 4 * 120
    results = [r for ts in trialsets for r in ts.completed_results()]
    assert any(r.metadata["csr_transition_points"] > 0 for r in results)


# --------------------------------------------------------------- corpus mode
# Coverage per budget (docs/corpus.md, docs/performance.md): times a
# corpus-on MABFuzz grid through the execution subsystem, and records in
# extra_info a seeded corpus-on vs corpus-off A/B of union coverage at the
# same fixed trial budget.  The A/B numbers land in BENCH_throughput.json
# as ``corpus_off_points`` / ``corpus_on_points``; corpus-on must reach
# strictly more distinct points (the subsystem's acceptance property, also
# test-enforced in tests/exec/test_corpus_exec.py).  The budget sits past
# the measured break-even (~80 tests/trial) where cross-trial feedback
# pays for the lost seed diversity.
_CORPUS_BUDGET = dict(num_tests=80, trials=3)
_CORPUS_AB_SEED = 7


def _corpus_spec(corpus, seed):
    return CampaignSpec(processor="rocket", fuzzer="mabfuzz:ucb",
                        seed=seed, bugs=[],
                        fuzzer_config=FuzzerConfig(num_seeds=3,
                                                   mutants_per_test=2,
                                                   corpus=corpus),
                        **_CORPUS_BUDGET)


def _grid_union_points(corpus):
    """Distinct coverage points reached across the grid's trials (with
    corpus state threaded trial to trial exactly as the serial backend
    threads it)."""
    spec = _corpus_spec(corpus, _CORPUS_AB_SEED)
    state = CorpusManager()
    union = set()
    for trial in range(spec.trials):
        with program_id_scope():
            dut = make_processor(spec.processor, bugs=spec.bugs)
            fuzzer = make_fuzzer(spec.fuzzer, dut,
                                 fuzzer_config=spec.fuzzer_config,
                                 rng=trial_seed(spec, trial))
            if fuzzer.corpus is not None:
                fuzzer.corpus.merge_payload(state.to_payload())
                fuzzer.on_corpus_state()
            fuzzer.run(spec.num_tests)
            union |= set(fuzzer.session.coverage_db.covered)
            if fuzzer.corpus is not None:
                state.merge_payload(fuzzer.corpus.to_payload())
    return len(union)


def test_corpus_coverage_growth(benchmark):
    trialsets = benchmark.pedantic(
        lambda: run_grid([_corpus_spec(True, next(_GRID_SEEDS))],
                         backend=SerialBackend()),
        **_GRID_ROUNDS)
    summary = grid_summary(trialsets)
    assert summary["trials_completed"] == _CORPUS_BUDGET["trials"]
    off_points = _grid_union_points(corpus=False)
    on_points = _grid_union_points(corpus=True)
    benchmark.extra_info["corpus_off_points"] = off_points
    benchmark.extra_info["corpus_on_points"] = on_points
    assert on_points > off_points


# ---------------------------------------------------------------- telemetry
# Campaign telemetry (docs/service.md) rides the trial completion path, so
# its cost is pinned here: the benchmark times the telemetry-on grid (the
# number the regression gate tracks), and the <5% bound is asserted from a
# deterministic decomposition -- events-per-grid x per-event cost against
# an inline telemetry-off baseline -- rather than a direct A/B of two
# multi-second medians, which a noisy 1-CPU runner could not hold to 5%.
def test_telemetry_overhead(benchmark, tmp_path_factory):
    import itertools
    import time as time_module

    from repro.exec import CampaignEngine
    from repro.telemetry import FileSink, TelemetryRecorder

    out_dir = tmp_path_factory.mktemp("telemetry")
    round_ids = itertools.count()
    event_files = []

    def run_with_telemetry():
        path = out_dir / f"events-{next(round_ids)}.ndjson"
        event_files.append(path)
        engine = CampaignEngine(backend=SerialBackend(),
                                telemetry=FileSink(str(path)))
        return engine.run_grid(_grid_specs())

    trialsets = benchmark.pedantic(run_with_telemetry, **_GRID_ROUNDS)
    _check_grid(trialsets)
    events_per_grid = len(event_files[-1].read_bytes().splitlines())
    assert events_per_grid >= 8 + 2  # one per trial plus run_start/finish

    # Telemetry-off baseline for the same grid, timed inline.
    start = time_module.perf_counter()
    run_grid(_grid_specs(), backend=SerialBackend())
    baseline_seconds = time_module.perf_counter() - start

    # Per-event cost of the enabled recorder, with a representative
    # trial-event payload, against a real file sink.
    recorder = TelemetryRecorder(FileSink(str(out_dir / "micro.ndjson")))
    micro_events = 2000
    start = time_module.perf_counter()
    for index in range(micro_events):
        recorder.record("trial", spec_index=0, trial_index=index,
                        label="rocket/mabfuzz:ucb", coverage=41,
                        total_points=96, bugs=[],
                        cache={"dut_hits": 9, "dut_misses": 3})
    per_event = (time_module.perf_counter() - start) / micro_events
    recorder.close()
    assert recorder.stats()["errors"] == 0

    # A disabled recorder must cost nothing: no events, no file, and a
    # per-call price indistinguishable from an attribute check.
    disabled = TelemetryRecorder(None)
    start = time_module.perf_counter()
    for index in range(micro_events):
        disabled.record("trial", spec_index=0, trial_index=index)
    per_disabled = (time_module.perf_counter() - start) / micro_events
    assert disabled.stats() == {"events": 0, "errors": 0}

    overhead_pct = 100.0 * events_per_grid * per_event / baseline_seconds
    benchmark.extra_info["telemetry_events_per_grid"] = events_per_grid
    benchmark.extra_info["telemetry_event_cost_us"] = round(per_event * 1e6, 2)
    benchmark.extra_info["telemetry_overhead_pct"] = round(overhead_pct, 4)
    benchmark.extra_info["telemetry_disabled_cost_us"] = round(
        per_disabled * 1e6, 3)
    assert overhead_pct < 5.0
    assert per_disabled < per_event  # the disabled path skips the sink entirely
