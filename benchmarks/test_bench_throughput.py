"""Micro-benchmarks of the substrate itself (simulation and fuzzing throughput).

These are conventional timing benchmarks (multiple rounds) rather than
one-shot experiment regenerations: they track how expensive one golden-model
run, one instrumented DUT run and one full fuzzing iteration are -- the
quantities that determine how far the scaled campaigns can go.
"""

import pytest

from repro.api import make_fuzzer, make_processor
from repro.core.config import MABFuzzConfig
from repro.fuzzing.base import FuzzerConfig
from repro.fuzzing.mutation import MutationEngine
from repro.isa.generator import SeedGenerator
from repro.sim.golden import GoldenModel


@pytest.fixture(scope="module")
def sample_programs():
    return SeedGenerator(rng=42).generate_many(20)


def test_golden_model_run_throughput(benchmark, sample_programs):
    golden = GoldenModel()

    def run_all():
        return [golden.run(p).instret for p in sample_programs]

    retired = benchmark(run_all)
    assert all(count >= 1 for count in retired)


@pytest.mark.parametrize("processor", ["cva6", "rocket", "boom"])
def test_dut_model_run_throughput(benchmark, sample_programs, processor):
    dut = make_processor(processor, bugs=[])

    def run_all():
        return [dut.run(p).coverage_count for p in sample_programs]

    counts = benchmark(run_all)
    assert all(count > 0 for count in counts)


def test_mutation_engine_throughput(benchmark, sample_programs):
    engine = MutationEngine(rng=1)

    def mutate_all():
        return [engine.mutate(p, count=4) for p in sample_programs]

    children = benchmark(mutate_all)
    assert all(len(batch) == 4 for batch in children)


def test_thehuzz_iteration_throughput(benchmark):
    fuzzer = make_fuzzer("thehuzz", make_processor("rocket", bugs=[]),
                         fuzzer_config=FuzzerConfig(num_seeds=5), rng=0)
    outcome = benchmark(fuzzer.fuzz_one)
    assert outcome.coverage


def test_mabfuzz_iteration_throughput(benchmark):
    fuzzer = make_fuzzer("mabfuzz:ucb", make_processor("rocket", bugs=[]),
                         fuzzer_config=FuzzerConfig(num_seeds=5),
                         mab_config=MABFuzzConfig(num_arms=5), rng=0)
    outcome = benchmark(fuzzer.fuzz_one)
    assert outcome.coverage
