"""Benchmark E7: the Sec. V extension -- MAB over mutation operators.

Compares plain TheHuzz (static operator weights) against the
mutation-operator bandit on CVA6, reporting end-of-campaign coverage.  The
paper proposes this avenue as future work; the benchmark quantifies it on
the same substrate used for the headline results.
"""

import pytest

# Paper-experiment regeneration: minutes per run, excluded from
# tier-1 by the `slow` marker (see pytest.ini).
pytestmark = pytest.mark.slow

from repro.harness.experiments import run_mutation_bandit_comparison
from repro.harness.tables import render_ablation_table


def test_mutation_operator_bandit_vs_static_weights(benchmark, bench_ablation_config,
                                                    save_result, announce):
    comparison = benchmark.pedantic(
        run_mutation_bandit_comparison, args=(bench_ablation_config,),
        rounds=1, iterations=1)
    rendered = ("Extension E7: MAB over mutation operators (Sec. V avenue)\n"
                + render_ablation_table(comparison, parameter_name="fuzzer"))
    announce(rendered)
    save_result("extension_mutation_bandit.txt", rendered)
    assert set(comparison) == {"thehuzz", "mutation-bandit:exp3"}
    for trialset in comparison.values():
        assert trialset.mean_coverage_count() > 0
