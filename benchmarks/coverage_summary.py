#!/usr/bin/env python
"""Render a pytest-cov JSON report as a Markdown table and gate on a threshold.

CI runs the fast suite with ``--cov=repro --cov-report=json:coverage.json``
and then::

    python benchmarks/coverage_summary.py \
        --json coverage.json --fail-under 80 >> "$GITHUB_STEP_SUMMARY"

The table groups files by top-level package (``repro.isa``, ``repro.exec``
...), which is the granularity a reviewer actually scans; the exit code
enforces the repo-wide line-coverage floor so the job fails loudly instead
of letting coverage rot.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


def package_of(path: str) -> str:
    """``src/repro/exec/engine.py`` -> ``repro.exec`` (files at the root: ``repro``)."""
    parts = Path(path).parts
    if "repro" not in parts:
        return parts[0] if parts else path
    index = parts.index("repro")
    package = parts[index:index + 2]
    if len(package) == 2 and package[1].endswith(".py"):
        return "repro"
    return ".".join(package)


def summarize(report: dict) -> list:
    """Per-package (name, covered, statements, percent) rows, sorted by name."""
    grouped = defaultdict(lambda: [0, 0])
    for path, data in report.get("files", {}).items():
        summary = data["summary"]
        bucket = grouped[package_of(path)]
        bucket[0] += summary["covered_lines"]
        bucket[1] += summary["num_statements"]
    rows = []
    for name in sorted(grouped):
        covered, statements = grouped[name]
        percent = 100.0 * covered / statements if statements else 100.0
        rows.append((name, covered, statements, percent))
    return rows


def render_markdown(report: dict, fail_under: float) -> str:
    totals = report["totals"]
    total_percent = float(totals["percent_covered"])
    status = "✅" if total_percent >= fail_under else "❌"
    lines = [
        "## Line coverage",
        "",
        f"**Total: {total_percent:.1f}%** (threshold {fail_under:.0f}%) {status}",
        "",
        "| Package | Lines covered | Coverage |",
        "| --- | ---: | ---: |",
    ]
    for name, covered, statements, percent in summarize(report):
        lines.append(f"| `{name}` | {covered}/{statements} | {percent:.1f}% |")
    lines.append(f"| **total** | {totals['covered_lines']}/"
                 f"{totals['num_statements']} | {total_percent:.1f}% |")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, required=True,
                        help="coverage.json written by --cov-report=json")
    parser.add_argument("--fail-under", type=float, default=0.0,
                        help="exit non-zero when total line coverage is below "
                             "this percentage")
    args = parser.parse_args(argv)

    report = json.loads(args.json.read_text())
    print(render_markdown(report, args.fail_under))
    total = float(report["totals"]["percent_covered"])
    if total < args.fail_under:
        print(f"coverage {total:.2f}% is below the {args.fail_under:.2f}% floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
