"""Ablation benchmarks E4-E6: the design choices called out in DESIGN.md.

* E4 -- reward weighting α (the paper fixes α = 0.25, Sec. IV-A),
* E5 -- reset threshold γ (the paper fixes γ = 3; ``None`` disables the
  reset-arms feature entirely, isolating its contribution),
* E6 -- number of arms (the paper fixes 10).

Each sweep reports end-of-campaign coverage (and V5 detection where
relevant) per setting on CVA6 with the UCB scheduler.
"""

import pytest

# Paper-experiment regeneration: minutes per run, excluded from
# tier-1 by the `slow` marker (see pytest.ini).
pytestmark = pytest.mark.slow

from repro.harness.experiments import (
    run_alpha_ablation,
    run_arm_count_ablation,
    run_gamma_ablation,
)
from repro.harness.tables import render_ablation_table


def test_ablation_alpha_reward_weighting(benchmark, bench_ablation_config,
                                         save_result, announce):
    results = benchmark.pedantic(
        run_alpha_ablation, args=(bench_ablation_config,),
        kwargs={"alphas": (0.0, 0.25, 0.5, 0.75, 1.0)}, rounds=1, iterations=1)
    rendered = ("Ablation E4: reward weighting alpha (paper default 0.25)\n"
                + render_ablation_table(results, parameter_name="alpha"))
    announce(rendered)
    save_result("ablation_alpha.txt", rendered)
    assert set(results) == {0.0, 0.25, 0.5, 0.75, 1.0}
    assert all(ts.mean_coverage_count() > 0 for ts in results.values())


def test_ablation_gamma_reset_threshold(benchmark, bench_ablation_config,
                                        save_result, announce):
    results = benchmark.pedantic(
        run_gamma_ablation, args=(bench_ablation_config,),
        kwargs={"gammas": (1, 3, 5, 10, None)}, rounds=1, iterations=1)
    rendered = ("Ablation E5: reset threshold gamma (paper default 3; "
                "None = resets disabled)\n"
                + render_ablation_table(results, parameter_name="gamma"))
    announce(rendered)
    save_result("ablation_gamma.txt", rendered)
    with_resets = max(results[g].mean_coverage_count() for g in (1, 3, 5, 10))
    without_resets = results[None].mean_coverage_count()
    # The reset-arms feature is the paper's key modification: disabling it
    # should not outperform the best reset setting at this scale.
    assert with_resets >= 0.9 * without_resets


def test_ablation_number_of_arms(benchmark, bench_ablation_config,
                                 save_result, announce):
    results = benchmark.pedantic(
        run_arm_count_ablation, args=(bench_ablation_config,),
        kwargs={"arm_counts": (2, 5, 10, 20)}, rounds=1, iterations=1)
    rendered = ("Ablation E6: number of arms (paper default 10)\n"
                + render_ablation_table(results, parameter_name="num_arms"))
    announce(rendered)
    save_result("ablation_arms.txt", rendered)
    assert set(results) == {2, 5, 10, 20}
