"""ProcessorFuzz-style CSR-transition coverage.

Hit-set coverage (the ``decode.*``/``alu.*``/... families) says *where* a
test went; it says nothing about how the privileged state machine moved.
ProcessorFuzz's observation is that the sequence of *value-class
transitions* of the control CSRs (mcause, mepc, mtval, mstatus ...) is the
signal that separates trap-reaching stimuli from straight-line user code,
so this module adds exactly that as a coverage family:

* every tracked CSR has a small, total *classifier* mapping its 64-bit
  value onto a handful of semantic classes (trap-cause names for mcause,
  address regions for mepc/mtval, zero/non-zero for the mask registers),
* a coverage point is one observed class change, named
  ``csr.<reg>.<old-class>-><new-class>`` via the normal
  :func:`~repro.coverage.points.coverage_point` scheme, and
* the space is the full set of ordered class pairs per register, so the
  usual "emitted ⊆ enumerated" property tests apply unchanged.

Transitions are a pure function of the architectural commit trace: the
:class:`CsrTransitionTracker` consumes :class:`~repro.sim.trace.
CommitRecord` objects one by one (this is how the DUT harness emits them,
see :meth:`repro.rtl.harness.DutExecutor._observe_commit`), and
:func:`transitions_of_records` replays a finished golden trace through the
same tracker -- which is what lets tests assert that a defect-free DUT
emits exactly the transitions derivable from the golden commit records.

Like the other emission helpers, the tracker returns *shared memoised
tuples*, so observing a commit allocates nothing on the hot path.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from repro.coverage.bitset import mask_of
from repro.coverage.points import coverage_point
from repro.isa import csr as csrdefs
from repro.isa.exceptions import TrapCause
from repro.sim.memory import DEFAULT_LAYOUT, MemoryLayout
from repro.sim.trace import CommitRecord
from repro.utils.bits import MASK64

#: coverage-model names accepted by the DUT models / campaign specs.
COVERAGE_MODELS = ("base", "csr")

#: reset value of mstatus (MPP = M); mirrored from repro.sim.state to keep
#: the classifier self-contained (the two are pinned together by a test).
_MSTATUS_RESET = 0x0000_0000_0000_1800

#: mcause value -> class name for every architecturally producible cause.
_CAUSE_CLASSES: Dict[int, str] = {
    int(cause): cause.name.lower() for cause in TrapCause
}


def _classify_cause(value: int, layout: MemoryLayout) -> str:
    """mcause classes: one per trap cause, ``other`` for software-written junk.

    The reset value 0 shares INSTRUCTION_ADDRESS_MISALIGNED's class (both
    are the value 0; a classifier is a function of the value alone).
    """
    return _CAUSE_CLASSES.get(value, "other")


def _classify_address(value: int, layout: MemoryLayout) -> str:
    """Region classes for address-carrying CSRs (mepc, mtval)."""
    if value == 0:
        return "zero"
    if layout.dram_base <= value < layout.data_base:
        return "code"
    if layout.data_base <= value < layout.dram_end:
        return "data"
    return "outside"


def _classify_mstatus(value: int, layout: MemoryLayout) -> str:
    if value == _MSTATUS_RESET:
        return "reset"
    return "zero" if value == 0 else "other"


def _classify_zero(value: int, layout: MemoryLayout) -> str:
    return "zero" if value == 0 else "nonzero"


_Classifier = Callable[[int, MemoryLayout], str]

#: tracked CSR -> (class enumeration, classifier).  The enumeration and the
#: classifier range must agree -- the property tests assert emitted ⊆ space.
TRACKED_CSRS: Dict[int, Tuple[Tuple[str, ...], _Classifier]] = {
    csrdefs.MCAUSE: (tuple(sorted(set(_CAUSE_CLASSES.values()))) + ("other",),
                     _classify_cause),
    csrdefs.MEPC: (("zero", "code", "data", "outside"), _classify_address),
    csrdefs.MTVAL: (("zero", "code", "data", "outside"), _classify_address),
    csrdefs.MSTATUS: (("reset", "zero", "other"), _classify_mstatus),
    csrdefs.MTVEC: (("zero", "nonzero"), _classify_zero),
    csrdefs.MSCRATCH: (("zero", "nonzero"), _classify_zero),
    csrdefs.MIE: (("zero", "nonzero"), _classify_zero),
    csrdefs.MIP: (("zero", "nonzero"), _classify_zero),
}

#: marker that distinguishes transition points from the csr read/write
#: family sharing the ``csr.`` module prefix.
TRANSITION_MARKER = "->"


def transition_point(csr_address: int, old_class: str, new_class: str) -> str:
    """The canonical name of one CSR class transition."""
    return coverage_point("csr", csrdefs.csr_name(csr_address),
                          f"{old_class}{TRANSITION_MARKER}{new_class}")


def transition_space() -> Set[str]:
    """Every enumerable transition point: ordered class pairs per CSR."""
    points: Set[str] = set()
    for address, (classes, _) in TRACKED_CSRS.items():
        for old_class in classes:
            for new_class in classes:
                if old_class != new_class:
                    points.add(transition_point(address, old_class, new_class))
    return points


def is_transition_point(point: str) -> bool:
    """Whether ``point`` belongs to the CSR-transition family."""
    return point.startswith("csr.") and TRANSITION_MARKER in point


def count_transition_points(points: Iterable[str]) -> int:
    """Number of CSR-transition points in ``points``."""
    return sum(1 for point in points if is_transition_point(point))


#: (csr address, old class, new class) -> shared 1-tuple of the point name.
_POINT_MEMO: Dict[Tuple[int, str, str], Tuple[str, ...]] = {}

#: (csr address, old class, new class) -> bitset mask of that point.
_MASK_MEMO: Dict[Tuple[int, str, str], int] = {}

_NO_POINTS: Tuple[str, ...] = ()


class CsrTransitionTracker:
    """Tracks CSR value classes across one program run, emitting transitions.

    The tracker starts from the architectural reset classes and consumes
    commit records in order.  Two kinds of commits move tracked CSRs:

    * a trapping commit updates mcause/mepc/mtval (the executor's
      ``_commit_trap`` semantics, with the faulting ``tval`` carried on the
      record), and
    * an explicit CSR write commit (``csr_addr``/``csr_value``) updates
      whichever CSR the instruction addressed, including direct software
      writes to mcause/mepc/mtval themselves.

    A commit can therefore emit up to three transition points (a trap that
    moves all three trap CSRs across class boundaries), and usually emits
    none -- the common straight-line case is a few dict reads.
    """

    __slots__ = ("_layout", "_classes")

    def __init__(self, layout: MemoryLayout = DEFAULT_LAYOUT) -> None:
        self._layout = layout
        self._classes: Dict[int, str] = {}
        self.reset()

    def reset(self) -> None:
        """Return every tracked CSR to its architectural reset class."""
        layout = self._layout
        self._classes = {
            address: classifier(_MSTATUS_RESET if address == csrdefs.MSTATUS else 0,
                                layout)
            for address, (_, classifier) in TRACKED_CSRS.items()
        }

    def current_class(self, csr_address: int) -> Optional[str]:
        """The current class of ``csr_address`` (``None`` if untracked)."""
        return self._classes.get(csr_address)

    # ------------------------------------------------------------------ observe
    def _move(self, address: int, value: int) -> Optional[Tuple[int, str, str]]:
        """Reclassify one CSR; return the transition key if the class moved."""
        entry = TRACKED_CSRS.get(address)
        if entry is None:
            return None
        new_class = entry[1](value & MASK64, self._layout)
        old_class = self._classes[address]
        if new_class == old_class:
            return None
        self._classes[address] = new_class
        return (address, old_class, new_class)

    @staticmethod
    def _points_for(key: Tuple[int, str, str]) -> Tuple[str, ...]:
        points = _POINT_MEMO.get(key)
        if points is None:
            points = _POINT_MEMO[key] = (transition_point(*key),)
        return points

    @staticmethod
    def _mask_for(key: Tuple[int, str, str]) -> int:
        mask = _MASK_MEMO.get(key)
        if mask is None:
            mask = _MASK_MEMO[key] = mask_of(
                CsrTransitionTracker._points_for(key))
        return mask

    def observe(self, record: CommitRecord) -> Tuple[str, ...]:
        """Transition points produced by one commit (possibly empty)."""
        if record.trap is not None:
            emitted = []
            for address, value in ((csrdefs.MCAUSE, int(record.trap)),
                                   (csrdefs.MEPC, record.pc),
                                   (csrdefs.MTVAL, record.trap_tval or 0)):
                moved = self._move(address, value)
                if moved is not None:
                    emitted.extend(self._points_for(moved))
            return tuple(emitted) if emitted else _NO_POINTS
        if record.csr_addr is not None and record.csr_value is not None:
            moved = self._move(record.csr_addr, record.csr_value)
            if moved is not None:
                return self._points_for(moved)
        return _NO_POINTS

    def observe_mask(self, record: CommitRecord) -> int:
        """Transition points of one commit as a bitset mask (hot path).

        Identical state machine to :meth:`observe`; only the emission
        representation differs (memoised integer masks instead of memoised
        point tuples).
        """
        if record.trap is not None:
            mask = 0
            for address, value in ((csrdefs.MCAUSE, int(record.trap)),
                                   (csrdefs.MEPC, record.pc),
                                   (csrdefs.MTVAL, record.trap_tval or 0)):
                moved = self._move(address, value)
                if moved is not None:
                    mask |= self._mask_for(moved)
            return mask
        if record.csr_addr is not None and record.csr_value is not None:
            moved = self._move(record.csr_addr, record.csr_value)
            if moved is not None:
                return self._mask_for(moved)
        return 0


def transitions_of_records(records: Iterable[CommitRecord],
                           layout: MemoryLayout = DEFAULT_LAYOUT) -> Set[str]:
    """Replay a commit trace; return the set of transition points it produces.

    This is the golden-trace collection path: the commit records of a
    :class:`~repro.sim.trace.ExecutionResult` (golden *or* DUT) fully
    determine the CSR transitions, so coverage can be derived after the
    fact from any stored trace.
    """
    tracker = CsrTransitionTracker(layout)
    covered: Set[str] = set()
    for record in records:
        covered.update(tracker.observe(record))
    return covered
