"""Cumulative coverage database for a fuzzing campaign.

Tracks which points have been covered so far, which test first covered each
point, and the coverage-vs-tests curve -- the raw material for Fig. 3 and
for the reward computation (global-new points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set


@dataclass(frozen=True)
class CoverageSample:
    """One point of the coverage-versus-tests curve."""

    test_index: int
    covered: int

    def to_dict(self) -> Dict[str, int]:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {"test_index": self.test_index, "covered": self.covered}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "CoverageSample":
        """Rebuild a sample from :meth:`to_dict` output."""
        return cls(test_index=int(data["test_index"]), covered=int(data["covered"]))


class CoverageDatabase:
    """Campaign-level cumulative coverage bookkeeping."""

    def __init__(self, space: Optional[frozenset] = None) -> None:
        self.space = space
        self._covered: Set[str] = set()
        self._first_hit: Dict[str, int] = {}
        self._curve: List[CoverageSample] = []
        self._tests_recorded = 0

    # ------------------------------------------------------------------ updates
    def record(self, test_index: int, points: Iterable[str]) -> Set[str]:
        """Record the coverage of one executed test.

        Returns the set of *globally new* points contributed by this test.
        """
        new_points = set(points) - self._covered
        if self.space is not None:
            outside = new_points - self.space
            if outside:
                raise ValueError(
                    f"coverage points outside the DUT space: {sorted(outside)[:5]}")
        for point in new_points:
            self._first_hit[point] = test_index
        self._covered.update(new_points)
        self._tests_recorded = max(self._tests_recorded, test_index + 1)
        self._curve.append(CoverageSample(test_index, len(self._covered)))
        return new_points

    # ------------------------------------------------------------------ queries
    @property
    def covered(self) -> frozenset:
        return frozenset(self._covered)

    @property
    def covered_count(self) -> int:
        return len(self._covered)

    @property
    def tests_recorded(self) -> int:
        return self._tests_recorded

    def is_covered(self, point: str) -> bool:
        return point in self._covered

    def first_hit(self, point: str) -> Optional[int]:
        """Index of the test that first covered ``point`` (or ``None``)."""
        return self._first_hit.get(point)

    def percent(self) -> float:
        """Covered percentage of the space (requires a known space)."""
        if not self.space:
            raise ValueError("coverage space unknown; cannot compute percent")
        return 100.0 * len(self._covered) / len(self.space)

    def curve(self) -> List[CoverageSample]:
        """The full coverage-vs-tests curve (one sample per recorded test)."""
        return list(self._curve)

    def curve_at(self, test_indices: Iterable[int]) -> List[CoverageSample]:
        """Downsample the curve at the given test indices."""
        samples = []
        curve = self._curve
        for target in test_indices:
            covered = 0
            for sample in curve:
                if sample.test_index <= target:
                    covered = sample.covered
                else:
                    break
            samples.append(CoverageSample(target, covered))
        return samples

    def tests_to_reach(self, target_covered: int) -> Optional[int]:
        """Number of tests needed to reach ``target_covered`` points (or ``None``)."""
        for sample in self._curve:
            if sample.covered >= target_covered:
                return sample.test_index + 1
        return None
