"""Integer-bitset coverage: stable bit indices for coverage points.

String-named coverage points (:mod:`repro.coverage.points`) are ideal for
debugging, serialisation and set algebra at campaign granularity -- but on
the *per-commit* hot path of the DUT harness, building and set-inserting
tuples of strings is the dominant cost of an instrumented run.  This module
maps every point name onto a process-global **bit index** so a commit's
coverage observation collapses to ``cov |= mask`` on plain integers:

* a point receives its bit the first time it is registered (model
  construction registers whole coverage spaces up front, emission helpers
  register lazily on first observation), and keeps it for the life of the
  process -- masks memoised anywhere stay valid forever;
* a *mask* is an ``int`` with one bit per point of an emission situation,
  memoised by the same situation keys the string emission helpers already
  use; and
* ``points_of`` materialises an accumulated coverage integer back into the
  canonical ``frozenset`` of point names -- deferred to *result*
  construction (once per run), so nothing downstream of
  :class:`~repro.rtl.harness.DutRunResult` changes.

Bit assignment depends on registration order and therefore differs between
processes; that is deliberate and safe, because masks never cross a process
boundary -- only the materialised point-name sets do (they are what the
trial wire format serialises), which keeps serial/pool/distributed results
bit-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, List


class PointBitIndex:
    """Append-only point-name <-> bit-index registry."""

    __slots__ = ("_bits", "_points", "_materialised")

    #: bound on the coverage-int -> frozenset memo (see :meth:`points_of`).
    _MATERIALISED_MAX = 4096

    def __init__(self) -> None:
        self._bits: Dict[str, int] = {}
        self._points: List[str] = []
        self._materialised: Dict[int, frozenset] = {}

    def bit(self, point: str) -> int:
        """The stable bit index of ``point`` (assigned on first use)."""
        index = self._bits.get(point)
        if index is None:
            index = self._bits[point] = len(self._points)
            self._points.append(point)
        return index

    def mask(self, points: Iterable[str]) -> int:
        """One-bit-per-point mask for ``points`` (registering as needed)."""
        value = 0
        bits = self._bits
        for point in points:
            index = bits.get(point)
            if index is None:
                index = self.bit(point)
            value |= 1 << index
        return value

    def points_of(self, cov: int) -> frozenset:
        """Materialise an accumulated coverage integer back into point names.

        Memoised by the coverage integer itself: campaigns and benchmarks
        re-run identical programs constantly (bandit arms replay seeds,
        duplicate mutants are common), and identical runs accumulate the
        identical bitset, so the ~kilobit-to-frozenset expansion is paid
        once per distinct outcome instead of once per run.  Safe because
        bit assignments are append-only for the life of the process.  The
        memo is bounded; a wipe only costs re-materialisation.
        """
        cached = self._materialised.get(cov)
        if cached is not None:
            return cached
        names = self._points
        out = []
        bits = cov
        while bits:
            low = bits & -bits
            out.append(names[low.bit_length() - 1])
            bits ^= low
        result = frozenset(out)
        if len(self._materialised) >= self._MATERIALISED_MAX:
            self._materialised.clear()
        self._materialised[cov] = result
        return result

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, point: str) -> bool:
        return point in self._bits


#: the process-global registry every emission site shares.  A single index
#: keeps masks for the DUT-independent families (decode/operand/trap/...)
#: shareable between DUT models instead of per-space.
GLOBAL_BITS = PointBitIndex()

#: module-level fast paths bound once (one attribute load per call site).
point_bit = GLOBAL_BITS.bit
mask_of = GLOBAL_BITS.mask
points_of = GLOBAL_BITS.points_of


def point_mask(*parts: object) -> int:
    """Single-point mask for ``coverage_point(*parts)`` (table-builder helper)."""
    from repro.coverage.points import coverage_point

    return 1 << point_bit(coverage_point(*parts))
