"""Per-run and cumulative coverage sets."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Set


class CoverageMap:
    """A set of covered coverage points with convenience operations.

    The map optionally knows the total coverage *space* it lives in, which
    enables percentage queries and guards against emitting points outside
    the declared space (a modelling bug).
    """

    def __init__(self, points: Optional[Iterable[str]] = None,
                 space: Optional[frozenset] = None) -> None:
        self._points: Set[str] = set(points or ())
        self._space = space
        if space is not None:
            unknown = self._points - space
            if unknown:
                raise ValueError(f"points outside coverage space: {sorted(unknown)[:5]}")

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[str]:
        return iter(self._points)

    def __contains__(self, point: str) -> bool:
        return point in self._points

    @property
    def points(self) -> frozenset:
        return frozenset(self._points)

    @property
    def space(self) -> Optional[frozenset]:
        return self._space

    # ------------------------------------------------------------------ updates
    def add(self, point: str) -> bool:
        """Add one point; return True if it was new."""
        if self._space is not None and point not in self._space:
            raise ValueError(f"point outside coverage space: {point!r}")
        if point in self._points:
            return False
        self._points.add(point)
        return True

    def update(self, points: Iterable[str]) -> int:
        """Add many points; return how many were new."""
        new = 0
        for point in points:
            new += self.add(point)
        return new

    # ------------------------------------------------------------------ queries
    def new_points(self, points: Iterable[str]) -> Set[str]:
        """Return the subset of ``points`` not already covered."""
        return set(points) - self._points

    def merge(self, other: "CoverageMap") -> "CoverageMap":
        """Return a new map covering the union of both maps."""
        return CoverageMap(self._points | other._points, space=self._space)

    def fraction(self) -> float:
        """Covered fraction of the space (requires a known space)."""
        if not self._space:
            raise ValueError("coverage space unknown; cannot compute fraction")
        return len(self._points) / len(self._space)

    def percent(self) -> float:
        """Covered percentage of the space."""
        return 100.0 * self.fraction()
