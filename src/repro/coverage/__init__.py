"""Coverage substrate: points, per-run maps and the cumulative database.

The paper uses *branch coverage* reported by the RTL simulator as its
feedback and comparison metric (Sec. IV-A).  Here every modelled
microarchitectural decision in a DUT is a named *coverage point*; a test's
coverage is the set of points its execution hit.
"""

from repro.coverage.points import coverage_point, parse_point
from repro.coverage.map import CoverageMap
from repro.coverage.collector import CoverageCollector
from repro.coverage.csr_transitions import (
    COVERAGE_MODELS,
    CsrTransitionTracker,
    count_transition_points,
    is_transition_point,
    transition_point,
    transition_space,
    transitions_of_records,
)
from repro.coverage.database import CoverageDatabase, CoverageSample

__all__ = [
    "coverage_point",
    "parse_point",
    "CoverageMap",
    "CoverageCollector",
    "COVERAGE_MODELS",
    "CsrTransitionTracker",
    "count_transition_points",
    "is_transition_point",
    "transition_point",
    "transition_space",
    "transitions_of_records",
    "CoverageDatabase",
    "CoverageSample",
]
