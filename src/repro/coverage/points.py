"""Coverage-point naming.

A coverage point is identified by a dot-separated string
``<module>.<feature>[.<qualifier>...]``, e.g. ``decode.addi.rd_zero`` or
``dcache.set17.miss``.  Strings keep the substrate simple and debuggable;
the sets involved (tens of thousands of points) are well within what Python
set operations handle comfortably at the campaign sizes used here.
"""

from __future__ import annotations

from typing import Tuple


def coverage_point(*parts: object) -> str:
    """Build a canonical coverage-point name from its components."""
    if not parts:
        raise ValueError("a coverage point needs at least one component")
    return ".".join(str(p) for p in parts)


def parse_point(point: str) -> Tuple[str, ...]:
    """Split a coverage-point name back into its components."""
    if not point:
        raise ValueError("empty coverage point")
    return tuple(point.split("."))


def point_module(point: str) -> str:
    """Return the top-level module a point belongs to."""
    return parse_point(point)[0]
