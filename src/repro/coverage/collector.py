"""Per-run coverage collector used by the DUT executors."""

from __future__ import annotations

from typing import Iterable, Set


class CoverageCollector:
    """Accumulates the coverage points hit during a single program run."""

    def __init__(self) -> None:
        self._hits: Set[str] = set()

    def hit(self, point: str) -> None:
        """Record that ``point`` was exercised."""
        self._hits.add(point)

    def hit_many(self, points: Iterable[str]) -> None:
        """Record several points at once."""
        self._hits.update(points)

    def reset(self) -> None:
        """Clear all recorded hits (called at the start of each run)."""
        self._hits.clear()

    @property
    def hits(self) -> frozenset:
        """The set of points hit so far in this run."""
        return frozenset(self._hits)

    def __len__(self) -> int:
        return len(self._hits)
