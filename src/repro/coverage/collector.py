"""Per-run coverage collector used by the DUT executors."""

from __future__ import annotations

from typing import Set


class CoverageCollector:
    """Accumulates the coverage points hit during a single program run.

    The DUT executor records several points per committed instruction, so
    ``hit``/``hit_many`` are pre-bound to the underlying set's ``add``/
    ``update`` in ``__init__`` -- one attribute load instead of a method
    call per emission.  The emission helpers in :mod:`repro.rtl.harness`
    feed ``hit_many`` *shared, memoised tuples* (one per observable
    situation, built once per process), so recording coverage allocates
    nothing on the hot path: no fresh point strings, no fresh containers.
    ``hits`` memoises its frozen view and only re-freezes when points were
    added since the last read (sets only grow between resets, so a length
    check is an exact dirtiness test).
    """

    __slots__ = ("_hits", "hit", "hit_many", "_frozen", "_frozen_len")

    #: shared empty snapshot (avoids one allocation per reset/empty read).
    _EMPTY: frozenset = frozenset()

    def __init__(self) -> None:
        self._hits: Set[str] = set()
        #: bound fast paths: ``hit(point)`` records one point,
        #: ``hit_many(points)`` records several at once.
        self.hit = self._hits.add
        self.hit_many = self._hits.update
        self._frozen: frozenset = self._EMPTY
        self._frozen_len = 0

    def reset(self) -> None:
        """Clear all recorded hits (called at the start of each run)."""
        self._hits.clear()
        self._frozen = self._EMPTY
        self._frozen_len = 0

    @property
    def hits(self) -> frozenset:
        """The set of points hit so far in this run."""
        if len(self._hits) != self._frozen_len:
            self._frozen = frozenset(self._hits)
            self._frozen_len = len(self._frozen)
        return self._frozen

    def __len__(self) -> int:
        return len(self._hits)
