"""Bit-manipulation helpers used by the ISA encoder/decoder and the mutators.

All helpers operate on plain Python integers interpreted as fixed-width
two's-complement values.  RISC-V registers are 64-bit (XLEN = 64) and
instruction words are 32-bit.
"""

from __future__ import annotations

MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def get_bit(value: int, position: int) -> int:
    """Return bit ``position`` (0 = LSB) of ``value`` as 0 or 1."""
    return (value >> position) & 1


def get_bits(value: int, high: int, low: int) -> int:
    """Return bits ``high:low`` (inclusive, high >= low) of ``value``."""
    if high < low:
        raise ValueError(f"invalid bit range [{high}:{low}]")
    width = high - low + 1
    return (value >> low) & ((1 << width) - 1)


def set_bit(value: int, position: int, bit: int) -> int:
    """Return ``value`` with bit ``position`` set to ``bit`` (0 or 1)."""
    if bit:
        return value | (1 << position)
    return value & ~(1 << position)


def set_bits(value: int, high: int, low: int, field: int) -> int:
    """Return ``value`` with bits ``high:low`` replaced by ``field``."""
    if high < low:
        raise ValueError(f"invalid bit range [{high}:{low}]")
    width = high - low + 1
    mask = ((1 << width) - 1) << low
    return (value & ~mask) | ((field << low) & mask)


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the ``bits``-wide ``value`` to a Python integer."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def to_signed(value: int, bits: int = 64) -> int:
    """Interpret the low ``bits`` of ``value`` as a signed integer."""
    return sign_extend(value, bits)


def to_unsigned(value: int, bits: int = 64) -> int:
    """Interpret ``value`` as an unsigned ``bits``-wide integer."""
    return value & ((1 << bits) - 1)
