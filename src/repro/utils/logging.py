"""Library-wide logging configuration.

The library never configures the root logger; applications opt in via
:func:`enable_logging`.
"""

from __future__ import annotations

import logging

LOGGER_NAME = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """Return a child logger under the ``repro`` namespace."""
    if name:
        return logging.getLogger(f"{LOGGER_NAME}.{name}")
    return logging.getLogger(LOGGER_NAME)


def enable_logging(level: int = logging.INFO) -> None:
    """Attach a stream handler to the library logger (idempotent)."""
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
