"""Shared utilities: deterministic RNG management, bit manipulation, logging."""

from repro.utils.rng import derive_rng, make_rng, split_rng
from repro.utils.bits import (
    get_bit,
    get_bits,
    set_bit,
    set_bits,
    sign_extend,
    to_signed,
    to_unsigned,
    MASK32,
    MASK64,
)

__all__ = [
    "derive_rng",
    "make_rng",
    "split_rng",
    "get_bit",
    "get_bits",
    "set_bit",
    "set_bits",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "MASK32",
    "MASK64",
]
