"""Deterministic random-number-generator management.

Every stochastic component in the library receives an explicit
:class:`numpy.random.Generator`.  Campaigns built from the same master seed
are bit-reproducible, which both the test-suite and the benchmark harness
rely on.  The helpers below centralise how generators are created and how
child generators are derived from a parent so that adding a new consumer of
randomness does not silently change the stream seen by existing consumers.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, an existing generator (returned unchanged),
    or ``None`` for nondeterministic entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(parent: np.random.Generator, tag: str) -> np.random.Generator:
    """Derive a child generator from ``parent`` keyed by a string ``tag``.

    The tag is hashed (with a process-independent hash, so results do not
    depend on ``PYTHONHASHSEED``) into the child seed so that two different
    consumers of the same parent never share a stream, and the derivation is
    stable across runs (unlike ``parent.spawn`` whose result depends on
    spawn order).
    """
    tag_value = np.uint64(zlib.crc32(tag.encode("utf-8")) * 0x9E37_79B9)
    draw = parent.integers(0, 2**63, dtype=np.int64)
    return np.random.default_rng(int(np.uint64(draw) ^ tag_value))


def split_rng(parent: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``parent`` into ``count`` independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = parent.integers(0, 2**63, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
