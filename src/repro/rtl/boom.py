"""BOOM (Berkeley Out-of-Order Machine) model.

BOOM is a superscalar, out-of-order RV64 core (Sec. IV-A).  Its RTL is by
far the largest of the three evaluation targets, and -- as the paper notes
-- TheHuzz already reaches >95% of its branch points, leaving little room
for improvement.  The model reproduces that regime with a large coverage
space dominated by *easily reachable* out-of-order bookkeeping structure
(re-order buffer entries, rename map updates per destination register and
mnemonic, physical-register allocation, issue-queue slots, load/store-queue
entries and dual-issue class pairings).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Union

from repro.coverage.bitset import point_mask
from repro.coverage.points import coverage_point
from repro.isa.encoding import SPECS, InstrClass, spec_for
from repro.isa.instruction import Instruction
from repro.rtl.bugs import InjectedBug
from repro.rtl.harness import _INSTR_MEMO_MAX, DutConfig, DutExecutor, DutModel
from repro.sim.executor import ExecutorConfig
from repro.sim.trace import CommitRecord

_ISSUE_QUEUES = {
    InstrClass.ARITH: "int", InstrClass.LOGIC: "int", InstrClass.SHIFT: "int",
    InstrClass.COMPARE: "int", InstrClass.MUL: "int", InstrClass.DIV: "int",
    InstrClass.BRANCH: "int", InstrClass.JUMP: "int", InstrClass.CSR: "int",
    InstrClass.SYSTEM: "int", InstrClass.FENCE: "mem", InstrClass.LOAD: "mem",
    InstrClass.STORE: "mem", InstrClass.ATOMIC: "mem",
}


class BoomModel(DutModel):
    """Superscalar out-of-order BOOM model (no injected bugs by default)."""

    default_config = DutConfig(
        name="boom",
        icache_sets=8,
        dcache_sets=16,
        cache_ways=4,
        bpred_entries=32,
        hazard_window=4,
    )

    rob_entries = 32
    occupancy_buckets = 8
    issue_queue_slots = 16
    lsq_entries = 16
    physical_registers = 96
    coreswidth = 2

    def __init__(self, config: Optional[DutConfig] = None,
                 bugs: Union[Sequence[Union[str, InjectedBug]], None] = None,
                 executor_config: Optional[ExecutorConfig] = None,
                 coverage_model: str = "base") -> None:
        if bugs is None:
            bugs = ()
        super().__init__(config, bugs, executor_config,
                         coverage_model=coverage_model)

    # ------------------------------------------------------------------- space
    def structural_space(self) -> Set[str]:
        points: Set[str] = set()
        for entry in range(self.rob_entries):
            points.add(coverage_point("boom", "rob", f"entry{entry}", "alloc"))
            points.add(coverage_point("boom", "rob", f"entry{entry}", "commit"))
            points.add(coverage_point("boom", "rob", f"entry{entry}", "exception"))
        for bucket in range(self.occupancy_buckets):
            points.add(coverage_point("boom", "rob", "occupancy", f"b{bucket}"))
        for queue in ("int", "mem", "fp"):
            for slot in range(self.issue_queue_slots):
                points.add(coverage_point("boom", "iq", queue, f"slot{slot}"))
        for entry in range(self.lsq_entries):
            points.add(coverage_point("boom", "lsq", f"entry{entry}", "load"))
            points.add(coverage_point("boom", "lsq", f"entry{entry}", "store"))
        for preg in range(self.physical_registers):
            points.add(coverage_point("boom", "prf", f"p{preg}"))
        for cls in InstrClass:
            for reg in range(32):
                points.add(coverage_point("boom", "rename", cls.value, f"x{reg}"))
                points.add(coverage_point("boom", "busytable", cls.value, f"rs1_x{reg}"))
                points.add(coverage_point("boom", "busytable", cls.value, f"rs2_x{reg}"))
        for mnemonic, spec in SPECS.items():
            points.add(coverage_point("boom", "uop", mnemonic, _ISSUE_QUEUES[spec.cls]))
            if spec.writes_rd:
                points.add(coverage_point("boom", "wakeup", mnemonic))
        for cls_a in InstrClass:
            for cls_b in InstrClass:
                points.add(coverage_point("boom", "dualissue",
                                          f"{cls_a.value}_{cls_b.value}"))
        for lane in range(self.coreswidth):
            for cls in InstrClass:
                points.add(coverage_point("boom", "commit", f"lane{lane}", cls.value))
        points.add(coverage_point("boom", "flush", "branch_mispredict"))
        points.add(coverage_point("boom", "flush", "exception"))
        return points

    # -------------------------------------------------------------------- emit
    def structural_points(self, record: CommitRecord, instr: Instruction,
                          executor: DutExecutor) -> List[str]:
        points: List[str] = []
        step = record.step
        rob_entry = step % self.rob_entries
        points.append(coverage_point("boom", "rob", f"entry{rob_entry}", "alloc"))
        occupancy = min(step, self.occupancy_buckets - 1)
        points.append(coverage_point("boom", "rob", "occupancy", f"b{occupancy}"))
        if record.trap is not None:
            points.append(coverage_point("boom", "rob", f"entry{rob_entry}", "exception"))
            points.append(coverage_point("boom", "flush", "exception"))
        else:
            points.append(coverage_point("boom", "rob", f"entry{rob_entry}", "commit"))

        if instr.is_illegal:
            return points

        spec = spec_for(instr.mnemonic)
        cls = spec.cls
        queue = _ISSUE_QUEUES[cls]
        points.append(coverage_point("boom", "uop", instr.mnemonic, queue))
        points.append(coverage_point("boom", "iq", queue,
                                     f"slot{step % self.issue_queue_slots}"))
        if spec.writes_rd:
            points.append(coverage_point("boom", "rename", cls.value, f"x{instr.rd}"))
            points.append(coverage_point("boom", "wakeup", instr.mnemonic))
            preg = (step * 7 + instr.rd) % self.physical_registers
            points.append(coverage_point("boom", "prf", f"p{preg}"))
        if spec.reads_rs1:
            points.append(coverage_point("boom", "busytable", cls.value,
                                         f"rs1_x{instr.rs1}"))
        if spec.reads_rs2:
            points.append(coverage_point("boom", "busytable", cls.value,
                                         f"rs2_x{instr.rs2}"))
        if cls in (InstrClass.LOAD, InstrClass.ATOMIC):
            points.append(coverage_point("boom", "lsq",
                                         f"entry{step % self.lsq_entries}", "load"))
        if cls in (InstrClass.STORE, InstrClass.ATOMIC):
            points.append(coverage_point("boom", "lsq",
                                         f"entry{step % self.lsq_entries}", "store"))

        prev_cls = executor.dut_scratch.get("boom_prev_cls")
        if isinstance(prev_cls, InstrClass):
            points.append(coverage_point("boom", "dualissue",
                                         f"{prev_cls.value}_{cls.value}"))
        executor.dut_scratch["boom_prev_cls"] = cls

        lane = step % self.coreswidth
        points.append(coverage_point("boom", "commit", f"lane{lane}", cls.value))
        if cls is InstrClass.BRANCH and record.trap is None:
            if record.next_pc != record.pc + 4:
                points.append(coverage_point("boom", "flush", "branch_mispredict"))
        return points

    # ------------------------------------------------------------------- masks
    # Table-driven twin of structural_points (see RocketModel): per-point
    # masks precomputed once per model instance, emission is table lookups
    # and ``|=`` only.  Parity with the string path is test-enforced.
    def _structural_tables(self) -> dict:
        tables = self.__dict__.get("_boom_tables")
        if tables is None:
            tables = {
                "rob_alloc": [point_mask("boom", "rob", f"entry{e}", "alloc")
                              for e in range(self.rob_entries)],
                "rob_commit": [point_mask("boom", "rob", f"entry{e}", "commit")
                               for e in range(self.rob_entries)],
                "rob_exception": [point_mask("boom", "rob", f"entry{e}", "exception")
                                  for e in range(self.rob_entries)],
                "occupancy": [point_mask("boom", "rob", "occupancy", f"b{b}")
                              for b in range(self.occupancy_buckets)],
                "flush_exception": point_mask("boom", "flush", "exception"),
                "flush_mispredict": point_mask("boom", "flush", "branch_mispredict"),
                "uop": {mnemonic: point_mask("boom", "uop", mnemonic,
                                    _ISSUE_QUEUES[spec.cls])
                        for mnemonic, spec in SPECS.items()},
                "iq": {queue: [point_mask("boom", "iq", queue, f"slot{slot}")
                               for slot in range(self.issue_queue_slots)]
                       for queue in ("int", "mem", "fp")},
                "rename": {cls: [point_mask("boom", "rename", cls.value, f"x{reg}")
                                 for reg in range(32)]
                           for cls in InstrClass},
                "wakeup": {mnemonic: point_mask("boom", "wakeup", mnemonic)
                           for mnemonic, spec in SPECS.items()
                           if spec.writes_rd},
                "prf": [point_mask("boom", "prf", f"p{preg}")
                        for preg in range(self.physical_registers)],
                "busy_rs1": {cls: [point_mask("boom", "busytable", cls.value,
                                     f"rs1_x{reg}") for reg in range(32)]
                             for cls in InstrClass},
                "busy_rs2": {cls: [point_mask("boom", "busytable", cls.value,
                                     f"rs2_x{reg}") for reg in range(32)]
                             for cls in InstrClass},
                "lsq_load": [point_mask("boom", "lsq", f"entry{e}", "load")
                             for e in range(self.lsq_entries)],
                "lsq_store": [point_mask("boom", "lsq", f"entry{e}", "store")
                              for e in range(self.lsq_entries)],
                "dualissue": {(a, b): point_mask("boom", "dualissue",
                                        f"{a.value}_{b.value}")
                              for a in InstrClass for b in InstrClass},
                "commit_lane": [{cls: point_mask("boom", "commit", f"lane{lane}",
                                        cls.value) for cls in InstrClass}
                                for lane in range(self.coreswidth)],
                "plans": {},  # per-instruction static plans, filled lazily
            }
            # Dense-index twins of the enum-keyed tables: InstrClass.__hash__
            # is Python-level, so the fused block loop indexes flat lists by
            # a per-plan integer class index instead of hashing enums.
            cls_order = list(InstrClass)
            tables["cls_list"] = cls_order
            tables["cls_index"] = {cls: i for i, cls in enumerate(cls_order)}
            tables["dualissue_flat"] = [tables["dualissue"][a, b]
                                        for a in cls_order for b in cls_order]
            tables["commit_lane_flat"] = [[lane_table[cls] for cls in cls_order]
                                          for lane_table in tables["commit_lane"]]
            # Per-ROB-entry alloc|commit and alloc|exception|flush unions:
            # every commit emits alloc plus exactly one of the other two.
            tables["rob_ok"] = [a | c for a, c in zip(tables["rob_alloc"],
                                                      tables["rob_commit"])]
            tables["rob_trap"] = [a | e | tables["flush_exception"]
                                  for a, e in zip(tables["rob_alloc"],
                                                  tables["rob_exception"])]
            self.__dict__["_boom_tables"] = tables
        return tables

    @staticmethod
    def _instr_plan(instr: Instruction, tables: dict) -> tuple:
        """Per-instruction static plan: uop/wakeup/rename/busytable masks
        and the issue-queue slot table, resolved once per instruction."""
        plans = tables["plans"]
        plan = plans.get(instr)
        if plan is None:
            spec = spec_for(instr.mnemonic)
            cls = spec.cls
            static = tables["uop"][instr.mnemonic]
            if spec.writes_rd:
                static |= tables["rename"][cls][instr.rd]
                static |= tables["wakeup"][instr.mnemonic]
            if spec.reads_rs1:
                static |= tables["busy_rs1"][cls][instr.rs1]
            if spec.reads_rs2:
                static |= tables["busy_rs2"][cls][instr.rs2]
            if len(plans) >= _INSTR_MEMO_MAX:
                plans.clear()
            plan = plans[instr] = (
                static, cls, tables["cls_index"][cls],
                tables["iq"][_ISSUE_QUEUES[cls]],
                instr.rd if spec.writes_rd else None,
                cls is InstrClass.LOAD or cls is InstrClass.ATOMIC,
                cls is InstrClass.STORE or cls is InstrClass.ATOMIC,
            )
        return plan

    def structural_mask(self, record: CommitRecord, instr: Instruction,
                        executor: DutExecutor) -> int:
        tables = self._structural_tables()
        step = record.step
        rob_entry = step % self.rob_entries
        mask = tables["rob_alloc"][rob_entry]
        mask |= tables["occupancy"][min(step, self.occupancy_buckets - 1)]
        if record.trap is not None:
            mask |= tables["rob_exception"][rob_entry]
            mask |= tables["flush_exception"]
        else:
            mask |= tables["rob_commit"][rob_entry]

        if instr.is_illegal:
            return mask

        static, cls, _, iq_slots, rd, lsq_load, lsq_store = self._instr_plan(
            instr, tables)
        mask |= static
        mask |= iq_slots[step % self.issue_queue_slots]
        if rd is not None:
            mask |= tables["prf"][(step * 7 + rd) % self.physical_registers]
        if lsq_load:
            mask |= tables["lsq_load"][step % self.lsq_entries]
        if lsq_store:
            mask |= tables["lsq_store"][step % self.lsq_entries]

        prev_cls = executor.dut_scratch.get("boom_prev_cls")
        if isinstance(prev_cls, InstrClass):
            mask |= tables["dualissue"][prev_cls, cls]
        executor.dut_scratch["boom_prev_cls"] = cls

        mask |= tables["commit_lane"][step % self.coreswidth][cls]
        if (cls is InstrClass.BRANCH and record.trap is None
                and record.next_pc != record.pc + 4):
            mask |= tables["flush_mispredict"]
        return mask

    def structural_block_mask(self, records: list, start: int, plan: tuple,
                              executor: "DutExecutor", block=None) -> int:
        """One-call-per-superblock twin of :meth:`structural_mask`.

        Identical emission and ``boom_prev_cls`` evolution, with the table
        and memo lookups hoisted out of the per-commit loop.  Illegal
        words (``None`` in the per-block plan list) emit only the ROB /
        occupancy / exception masks and leave ``boom_prev_cls`` alone,
        like the per-commit illegal early-exit.  The per-entry static
        plans are resolved once per block and cached on
        ``block.model_plans`` (masks are stable for the life of the
        process), replacing an instruction-hash memo lookup per commit
        with a list index.
        """
        tables = self._structural_tables()
        iplans = None if block is None else block.model_plans.get(BoomModel)
        if iplans is None:
            instr_plan = self._instr_plan
            iplans = [None if entry[3] is None else instr_plan(entry[1], tables)
                      for entry in plan]
            if block is not None:
                block.model_plans[BoomModel] = iplans
        rob_ok = tables["rob_ok"]
        rob_trap = tables["rob_trap"]
        occupancy = tables["occupancy"]
        flush_mispredict = tables["flush_mispredict"]
        prf = tables["prf"]
        lsq_load_t = tables["lsq_load"]
        lsq_store_t = tables["lsq_store"]
        dualissue_flat = tables["dualissue_flat"]
        commit_lane_flat = tables["commit_lane_flat"]
        cls_list = tables["cls_list"]
        ncls = len(cls_list)
        rob_entries = self.rob_entries
        occ_top = self.occupancy_buckets - 1
        iq_mod = self.issue_queue_slots
        phys = self.physical_registers
        lsq_mod = self.lsq_entries
        lanes = self.coreswidth
        branch_cls = InstrClass.BRANCH
        scratch = executor.dut_scratch
        prev_cls = scratch.get("boom_prev_cls")
        prev_idx = (tables["cls_index"][prev_cls]
                    if isinstance(prev_cls, InstrClass) else -1)
        mask = 0
        for offset in range(len(records) - start):
            record = records[start + offset]
            step = record.step
            trap = record.trap
            m = (rob_trap if trap is not None else rob_ok)[step % rob_entries]
            m |= occupancy[step if step < occ_top else occ_top]
            iplan = iplans[offset]
            if iplan is None:
                mask |= m
                continue
            static, cls, cls_idx, iq_slots, rd, lsq_load, lsq_store = iplan
            m |= static
            m |= iq_slots[step % iq_mod]
            if rd is not None:
                m |= prf[(step * 7 + rd) % phys]
            if lsq_load:
                m |= lsq_load_t[step % lsq_mod]
            if lsq_store:
                m |= lsq_store_t[step % lsq_mod]
            if prev_idx >= 0:
                m |= dualissue_flat[prev_idx * ncls + cls_idx]
            prev_idx = cls_idx
            m |= commit_lane_flat[step % lanes][cls_idx]
            if (cls is branch_cls and trap is None
                    and record.next_pc != record.pc + 4):
                m |= flush_mispredict
            mask |= m
        scratch["boom_prev_cls"] = (cls_list[prev_idx] if prev_idx >= 0
                                    else prev_cls)
        return mask
