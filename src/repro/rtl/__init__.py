"""DUT microarchitectural models (the VCS/Chipyard substitute).

Each processor model executes real instructions with the same architectural
semantics as the golden model, but routes every instruction through modelled
microarchitectural structures (caches, branch predictor, hazard and issue
logic, functional-unit corner cases ...) and emits a *branch coverage point*
for every modelled decision, the way VCS branch coverage instruments RTL.

The three models follow the paper's evaluation targets:

* :class:`~repro.rtl.cva6.CVA6Model` -- application-class core with an FPU
  whose coverage space is largely unreachable by integer-only fuzzing
  (hence the lowest coverage percentage, as in the paper).
* :class:`~repro.rtl.rocket.RocketModel` -- in-order five-stage core.
* :class:`~repro.rtl.boom.BoomModel` -- superscalar out-of-order core with
  the largest, mostly easily-reachable coverage space (hence the near-
  saturated coverage, as in the paper).
"""

from repro.rtl.harness import DutModel, DutConfig, DutRunResult
from repro.rtl.bugs import (
    InjectedBug,
    BUGS_BY_ID,
    CVA6_BUG_IDS,
    ROCKET_BUG_IDS,
    make_bug,
    make_bugs,
)
from repro.rtl.cva6 import CVA6Model
from repro.rtl.rocket import RocketModel
from repro.rtl.boom import BoomModel
from repro.rtl.registry import available_duts, make_dut

__all__ = [
    "DutModel",
    "DutConfig",
    "DutRunResult",
    "InjectedBug",
    "BUGS_BY_ID",
    "CVA6_BUG_IDS",
    "ROCKET_BUG_IDS",
    "make_bug",
    "make_bugs",
    "CVA6Model",
    "RocketModel",
    "BoomModel",
    "available_duts",
    "make_dut",
]
