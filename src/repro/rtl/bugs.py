"""Injectable vulnerabilities V1-V7 (Table I of the paper).

Each bug mirrors one of the real CVA6/Rocket defects the paper's evaluation
detects, reproduced as a behavioural deviation of the DUT model from the
golden reference.  The *trigger condition* of each bug is chosen so that the
relative detection difficulty matches the paper:

========  =====================================================================
 Bug       Trigger (what a test must do for the DUT to misbehave)
========  =====================================================================
 V1        execute ``fence.i`` after at least one store committed in the run
 V2        execute an illegal word that looks like an R-type ALU op
           (opcode ``OP``, funct3 = 0, reserved funct7)
 V3        raise two exceptions within two instructions of each other with
           different causes (the second reports the first's cause)
 V4        perform an atomic access to a cache line made dirty by an earlier
           store holding a non-zero value (the atomic reads stale data)
 V5        access an invalid (out-of-window) memory address -- the exception
           is silently swallowed
 V6        read one of the unimplemented debug CSRs -- X-values are returned
           instead of an illegal-instruction exception
 V7        execute ``ebreak`` (instruction count not incremented) and later
           read ``minstret``/``instret`` so the discrepancy becomes visible
========  =====================================================================

A bug only calls :meth:`note_effect` when it actually *changed* architectural
behaviour in the current run; the differential tester uses this to attribute
mismatches to bug identifiers (Sec. IV-B bookkeeping).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.isa.encoding import OPCODE_OP
from repro.isa.exceptions import Trap, TrapCause
from repro.isa.instruction import Instruction
from repro.utils.bits import MASK64, get_bits


class InjectedBug:
    """Base class of an injectable DUT defect.

    Subclasses override the hook methods they need; every hook receives the
    :class:`~repro.rtl.harness.DutExecutor` so it can inspect run state
    (stores executed, cache dirtiness, recent traps ...).
    """

    bug_id: str = "V?"
    cwe: int = 0
    processor: str = ""
    description: str = ""

    def reset(self) -> None:
        """Clear per-run state (called before every program run)."""

    def note_effect(self, executor) -> None:
        """Record that this bug altered behaviour at the current step."""
        executor.note_bug_effect(self.bug_id)

    # ------------------------------------------------------------------- hooks
    def on_decode(self, executor, instr: Instruction,
                  word: int) -> Optional[Instruction]:
        """Return a replacement decode result, or ``None`` for no change."""
        return None

    def on_csr_read(self, executor, address: int,
                    instr: Instruction) -> Optional[int]:
        """Return a value to use for the CSR read, or ``None`` for no change."""
        return None

    def on_csr_write(self, executor, address: int, value: int,
                     instr: Instruction) -> bool:
        """Return True if this bug absorbs the CSR write (suppressing its trap)."""
        return False

    def on_mem_load(self, executor, address: int, size: int, value: int,
                    instr: Instruction) -> Optional[int]:
        """Return a replacement loaded value, or ``None`` for no change."""
        return None

    def on_trap(self, executor, trap: Trap, instr: Instruction,
                pc: int) -> Optional[Trap]:
        """Return the trap to report (possibly modified) or ``None`` to swallow it."""
        return trap

    def should_count_retirement(self, executor, instr: Instruction) -> bool:
        """Whether this instruction should increment the retired-instruction count."""
        return True


class FenceIDecodeBug(InjectedBug):
    """V1: FENCE.I instruction decoded incorrectly (CWE-440, CVA6)."""

    bug_id = "V1"
    cwe = 440
    processor = "cva6"
    description = "FENCE.I instruction decoded incorrectly"

    #: the store buffer must still be draining: a store within this many
    #: commits before the fence.i exercises the broken decode path.
    store_window = 2

    def on_decode(self, executor, instr: Instruction,
                  word: int) -> Optional[Instruction]:
        if instr.mnemonic != "fence.i":
            return None
        last_store = executor.last_store_step
        if last_store is None or executor.current_step - last_store > self.store_window:
            return None
        self.note_effect(executor)
        return Instruction.illegal(word)


class IllegalInstructionExecutedBug(InjectedBug):
    """V2: some illegal instructions can be executed (CWE-1242, CVA6)."""

    bug_id = "V2"
    cwe = 1242
    processor = "cva6"
    description = "Some illegal instructions can be executed"

    #: funct7 values legal for opcode OP with funct3 = 0 (ADD/SUB/MUL).
    _LEGAL_FUNCT7 = frozenset({0x00, 0x01, 0x20})

    @staticmethod
    def _is_broken_funct7(funct7: int) -> bool:
        """Reserved funct7 patterns the broken decoder mistakes for ADD.

        The defect affects the one-hot reserved patterns adjacent in encoding
        space to the legal 0x00/0x01/0x20 values -- the encodings a single
        corrupted wire can reach.  This keeps V2 the hardest-to-trigger CVA6
        defect, as in the paper's Table I.
        """
        if funct7 in IllegalInstructionExecutedBug._LEGAL_FUNCT7:
            return False
        return bin(funct7).count("1") == 1

    def on_decode(self, executor, instr: Instruction,
                  word: int) -> Optional[Instruction]:
        if not instr.is_illegal:
            return None
        if get_bits(word, 6, 0) != OPCODE_OP:
            return None
        if get_bits(word, 14, 12) != 0:
            return None
        if not self._is_broken_funct7(get_bits(word, 31, 25)):
            return None
        # The broken decoder ignores the reserved funct7 and issues an ADD.
        self.note_effect(executor)
        return Instruction(
            "add",
            rd=get_bits(word, 11, 7),
            rs1=get_bits(word, 19, 15),
            rs2=get_bits(word, 24, 20),
        )


class ExceptionPropagationBug(InjectedBug):
    """V3: exception type incorrectly propagated in the instruction queue (CWE-1202)."""

    bug_id = "V3"
    cwe = 1202
    processor = "cva6"
    description = "Exception type incorrectly propagated in instruction queue"

    #: maximum commit distance between the two exceptions for the defect to fire.
    window = 2
    #: causes the first (queued) exception must have for its stale type to
    #: linger in the instruction queue.
    _QUEUED_CAUSES = frozenset(
        {TrapCause.LOAD_ACCESS_FAULT, TrapCause.STORE_ACCESS_FAULT}
    )
    #: causes of the second exception that get overwritten by the stale type.
    _OVERWRITTEN_CAUSES = frozenset(
        {
            TrapCause.ILLEGAL_INSTRUCTION,
            TrapCause.LOAD_ADDRESS_MISALIGNED,
            TrapCause.STORE_ADDRESS_MISALIGNED,
            TrapCause.BREAKPOINT,
        }
    )

    def on_trap(self, executor, trap: Trap, instr: Instruction,
                pc: int) -> Optional[Trap]:
        last_step = executor.last_trap_step
        last_cause = executor.last_trap_cause
        if last_step is None or last_cause is None:
            return trap
        if executor.current_step - last_step > self.window:
            return trap
        if last_cause not in self._QUEUED_CAUSES:
            return trap
        if trap.cause not in self._OVERWRITTEN_CAUSES:
            return trap
        self.note_effect(executor)
        return Trap(last_cause, tval=trap.tval)


class CacheCoherencyBug(InjectedBug):
    """V4: undetected cache coherency violation (CWE-1202, CVA6)."""

    bug_id = "V4"
    cwe = 1202
    processor = "cva6"
    description = "Undetected cache coherency violation"

    def on_mem_load(self, executor, address: int, size: int, value: int,
                    instr: Instruction) -> Optional[int]:
        from repro.isa.encoding import InstrClass, spec_for

        if instr.is_illegal or spec_for(instr.mnemonic).cls is not InstrClass.ATOMIC:
            return None
        if value == 0:
            return None
        if not executor.dcache.line_is_dirty(address):
            return None
        # The atomic path bypasses the dirty line in the data cache and reads
        # the stale (unwritten) copy from memory-side -- modelled as zero.
        self.note_effect(executor)
        return 0


class MissingExceptionBug(InjectedBug):
    """V5: exception not thrown when invalid addresses are accessed (CWE-1252)."""

    bug_id = "V5"
    cwe = 1252
    processor = "cva6"
    description = "Exception not thrown when invalid addresses accessed"

    _SWALLOWED = frozenset(
        {TrapCause.LOAD_ACCESS_FAULT, TrapCause.STORE_ACCESS_FAULT}
    )
    #: accesses at or above this address fall into the unmapped high region
    #: whose fault signal the broken load/store unit drops.
    _UNMAPPED_BASE = 0x1_0000_0000

    def on_trap(self, executor, trap: Trap, instr: Instruction,
                pc: int) -> Optional[Trap]:
        if trap.cause not in self._SWALLOWED:
            return trap
        if trap.tval < self._UNMAPPED_BASE:
            # Faults inside the 32-bit physical window are still reported;
            # only the decode of the high (unmapped) address range is broken.
            return trap
        self.note_effect(executor)
        return None


class UnimplementedCsrBug(InjectedBug):
    """V6: accessing unimplemented CSRs returns X-values (CWE-1281, CVA6)."""

    bug_id = "V6"
    cwe = 1281
    processor = "cva6"
    description = "Accessing unimplemented CSRs returns X-values"

    #: The debug/trigger CSRs whose access path is broken.
    _BROKEN_CSRS = frozenset({0x7A0, 0x7B0, 0x7B1})

    def on_csr_read(self, executor, address: int,
                    instr: Instruction) -> Optional[int]:
        if address not in self._BROKEN_CSRS:
            return None
        self.note_effect(executor)
        # Deterministic "X" value derived from the address.
        return (0xDEAD_BEEF_0000_0000 ^ (address * 0x9E37_79B9_7F4A_7C15)) & MASK64

    def on_csr_write(self, executor, address: int, value: int,
                     instr: Instruction) -> bool:
        # The broken CSR file also swallows writes to these registers instead
        # of raising an illegal-instruction exception.
        if address not in self._BROKEN_CSRS:
            return False
        self.note_effect(executor)
        return True


class EbreakInstretBug(InjectedBug):
    """V7: EBREAK does not increase the instruction count (CWE-1201, Rocket)."""

    bug_id = "V7"
    cwe = 1201
    processor = "rocket"
    description = "EBREAK does not increase instruction count"

    def should_count_retirement(self, executor, instr: Instruction) -> bool:
        if instr.mnemonic != "ebreak":
            return True
        self.note_effect(executor)
        return False


#: All known bugs, keyed by identifier.
BUGS_BY_ID: Dict[str, type] = {
    "V1": FenceIDecodeBug,
    "V2": IllegalInstructionExecutedBug,
    "V3": ExceptionPropagationBug,
    "V4": CacheCoherencyBug,
    "V5": MissingExceptionBug,
    "V6": UnimplementedCsrBug,
    "V7": EbreakInstretBug,
}

#: Bugs the paper attributes to CVA6 / Rocket Core respectively.
CVA6_BUG_IDS: Tuple[str, ...] = ("V1", "V2", "V3", "V4", "V5", "V6")
ROCKET_BUG_IDS: Tuple[str, ...] = ("V7",)


def make_bug(bug: Union[str, InjectedBug]) -> InjectedBug:
    """Instantiate a bug from its identifier (``"V3"``) or pass through an instance."""
    if isinstance(bug, InjectedBug):
        return bug
    key = bug.upper()
    if key not in BUGS_BY_ID:
        raise KeyError(f"unknown bug id: {bug!r} (known: {sorted(BUGS_BY_ID)})")
    return BUGS_BY_ID[key]()


def make_bugs(bugs: Iterable[Union[str, InjectedBug]]) -> List[InjectedBug]:
    """Instantiate several bugs at once."""
    return [make_bug(b) for b in bugs]
