"""CVA6 (Ariane) model.

CVA6 is an application-class, Linux-capable RV64 core with a scoreboard-
based issue stage and a custom SIMD floating-point unit (Sec. IV-A of the
paper).  Two properties of the real core matter for the reproduction:

* it hosts vulnerabilities V1-V6, and
* it has the *lowest* branch-coverage percentage of the three evaluation
  targets, largely because sizable parts of the design (most prominently
  the FPU) are hard or impossible to exercise with integer-only fuzzing.

The model therefore includes a large FPU coverage family that integer test
programs cannot reach, alongside reachable scoreboard / issue / commit-port
structure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Union

from repro.coverage.bitset import point_mask
from repro.coverage.points import coverage_point
from repro.isa.encoding import InstrClass, spec_for
from repro.isa.instruction import Instruction
from repro.isa import csr as csrdefs
from repro.rtl.bugs import CVA6_BUG_IDS, InjectedBug
from repro.rtl.harness import DutConfig, DutExecutor, DutModel
from repro.sim.executor import ExecutorConfig
from repro.sim.trace import CommitRecord

#: Issue-port assignment per instruction class.
_ISSUE_PORTS = {
    InstrClass.ARITH: "alu",
    InstrClass.LOGIC: "alu",
    InstrClass.SHIFT: "alu",
    InstrClass.COMPARE: "alu",
    InstrClass.MUL: "mult",
    InstrClass.DIV: "mult",
    InstrClass.LOAD: "lsu",
    InstrClass.STORE: "lsu",
    InstrClass.ATOMIC: "lsu",
    InstrClass.BRANCH: "branch",
    InstrClass.JUMP: "branch",
    InstrClass.CSR: "csr",
    InstrClass.SYSTEM: "csr",
    InstrClass.FENCE: "csr",
}

_FPU_OPERATIONS = (
    "fadd", "fsub", "fmul", "fdiv", "fsqrt", "fmadd", "fmsub", "fnmadd",
    "fnmsub", "fsgnj", "fminmax", "fcmp", "fclass", "fcvt_i2f", "fcvt_f2i",
    "fcvt_f2f", "fmv", "dotp", "simd_add", "simd_mul",
)
_FPU_FORMATS = ("fp16", "fp32", "fp64", "vec16x4")
_FPU_LANES = 16


class CVA6Model(DutModel):
    """Application-class CVA6 core model (hosts V1-V6)."""

    default_config = DutConfig(
        name="cva6",
        icache_sets=32,
        dcache_sets=32,
        cache_ways=4,
        bpred_entries=64,
        hazard_window=3,
    )

    #: number of scoreboard entries in the issue stage.
    scoreboard_entries = 8
    #: number of commit ports.
    commit_ports = 2
    #: fetch-address interleaving buckets in the frontend.
    frontend_buckets = 16

    def __init__(self, config: Optional[DutConfig] = None,
                 bugs: Union[Sequence[Union[str, InjectedBug]], None] = None,
                 executor_config: Optional[ExecutorConfig] = None,
                 coverage_model: str = "base") -> None:
        if bugs is None:
            bugs = CVA6_BUG_IDS
        super().__init__(config, bugs, executor_config,
                         coverage_model=coverage_model)

    # ------------------------------------------------------------------- space
    def structural_space(self) -> Set[str]:
        points: Set[str] = set()
        for entry in range(self.scoreboard_entries):
            points.add(coverage_point("cva6", "scoreboard", f"entry{entry}", "issue"))
            points.add(coverage_point("cva6", "scoreboard", f"entry{entry}", "writeback"))
        for port in sorted(set(_ISSUE_PORTS.values())):
            points.add(coverage_point("cva6", "issue", port))
        for port in range(self.commit_ports):
            for cls in InstrClass:
                points.add(coverage_point("cva6", "commit", f"port{port}", cls.value))
        for bucket in range(self.frontend_buckets):
            points.add(coverage_point("cva6", "frontend", f"fetch_bucket{bucket}"))
        # The SIMD FPU: a large family that integer-only fuzzing cannot reach
        # (only the CSR-side dirty-state point is reachable).  This is what
        # keeps CVA6's coverage percentage the lowest of the three cores.
        for op in _FPU_OPERATIONS:
            for fmt in _FPU_FORMATS:
                for lane in range(_FPU_LANES):
                    points.add(coverage_point("cva6", "fpu", op, fmt, f"lane{lane}"))
        points.add(coverage_point("cva6", "fpu", "fs_dirty"))
        return points

    # -------------------------------------------------------------------- emit
    def structural_points(self, record: CommitRecord, instr: Instruction,
                          executor: DutExecutor) -> List[str]:
        points: List[str] = []
        step = record.step
        entry = step % self.scoreboard_entries
        points.append(coverage_point("cva6", "scoreboard", f"entry{entry}", "issue"))
        if record.rd is not None:
            points.append(coverage_point("cva6", "scoreboard", f"entry{entry}", "writeback"))
        bucket = (record.pc >> 2) % self.frontend_buckets
        points.append(coverage_point("cva6", "frontend", f"fetch_bucket{bucket}"))
        if not instr.is_illegal:
            cls = spec_for(instr.mnemonic).cls
            points.append(coverage_point("cva6", "issue", _ISSUE_PORTS[cls]))
            port = step % self.commit_ports
            points.append(coverage_point("cva6", "commit", f"port{port}", cls.value))
            if record.csr_addr == csrdefs.MSTATUS:
                points.append(coverage_point("cva6", "fpu", "fs_dirty"))
        return points

    # ------------------------------------------------------------------- masks
    # Table-driven twin of structural_points (see RocketModel): per-point
    # masks precomputed once per model instance, emission is table lookups
    # and ``|=`` only.  Parity with the string path is test-enforced.
    def _structural_tables(self) -> dict:
        tables = self.__dict__.get("_cva6_tables")
        if tables is None:
            tables = {
                "sb_issue": [point_mask("cva6", "scoreboard", f"entry{e}", "issue")
                             for e in range(self.scoreboard_entries)],
                "sb_writeback": [point_mask("cva6", "scoreboard", f"entry{e}", "writeback")
                                 for e in range(self.scoreboard_entries)],
                "frontend": [point_mask("cva6", "frontend", f"fetch_bucket{b}")
                             for b in range(self.frontend_buckets)],
                "issue_port": {cls: point_mask("cva6", "issue", port)
                               for cls, port in _ISSUE_PORTS.items()},
                "commit_port": [{cls: point_mask("cva6", "commit", f"port{port}",
                                        cls.value) for cls in InstrClass}
                                for port in range(self.commit_ports)],
                "fs_dirty": point_mask("cva6", "fpu", "fs_dirty"),
            }
            # Dense-index twins of the enum-keyed tables (InstrClass hashes
            # through Python-level __hash__): the fused block loop indexes
            # flat lists by a cached integer class index instead.
            cls_order = list(InstrClass)
            tables["cls_index"] = {cls: i for i, cls in enumerate(cls_order)}
            tables["issue_port_flat"] = [tables["issue_port"][cls]
                                         for cls in cls_order]
            tables["commit_port_flat"] = [[port_table[cls] for cls in cls_order]
                                          for port_table in tables["commit_port"]]
            self.__dict__["_cva6_tables"] = tables
        return tables

    def structural_mask(self, record: CommitRecord, instr: Instruction,
                        executor: DutExecutor) -> int:
        tables = self._structural_tables()
        step = record.step
        entry = step % self.scoreboard_entries
        mask = tables["sb_issue"][entry]
        if record.rd is not None:
            mask |= tables["sb_writeback"][entry]
        mask |= tables["frontend"][(record.pc >> 2) % self.frontend_buckets]
        if not instr.is_illegal:
            cls = spec_for(instr.mnemonic).cls
            mask |= tables["issue_port"][cls]
            mask |= tables["commit_port"][step % self.commit_ports][cls]
            if record.csr_addr == csrdefs.MSTATUS:
                mask |= tables["fs_dirty"]
        return mask

    def structural_block_mask(self, records: list, start: int, plan: tuple,
                              executor: DutExecutor, block=None) -> int:
        """One-call-per-superblock twin of :meth:`structural_mask`.

        Identical emission with the table lookups hoisted out of the
        per-commit loop.  The per-entry integer class indices (``None``
        for illegal words, which emit only the scoreboard/frontend masks)
        are resolved once per block and cached on ``block.model_plans``,
        so the loop indexes flat lists instead of hashing enums.
        """
        tables = self._structural_tables()
        indices = None if block is None else block.model_plans.get(CVA6Model)
        if indices is None:
            cls_index = tables["cls_index"]
            indices = [None if entry[4] is None else cls_index[entry[4]]
                       for entry in plan]
            if block is not None:
                block.model_plans[CVA6Model] = indices
        sb_issue = tables["sb_issue"]
        sb_writeback = tables["sb_writeback"]
        frontend = tables["frontend"]
        issue_port_flat = tables["issue_port_flat"]
        commit_port_flat = tables["commit_port_flat"]
        fs_dirty = tables["fs_dirty"]
        sb_mod = self.scoreboard_entries
        fe_mod = self.frontend_buckets
        port_mod = self.commit_ports
        mstatus = csrdefs.MSTATUS
        mask = 0
        for offset in range(len(records) - start):
            record = records[start + offset]
            cls_idx = indices[offset]
            step = record.step
            entry = step % sb_mod
            m = sb_issue[entry]
            if record.rd is not None:
                m |= sb_writeback[entry]
            m |= frontend[(record.pc >> 2) % fe_mod]
            if cls_idx is not None:
                m |= issue_port_flat[cls_idx]
                m |= commit_port_flat[step % port_mod][cls_idx]
                if record.csr_addr == mstatus:
                    m |= fs_dirty
            mask |= m
        return mask
