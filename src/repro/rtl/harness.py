"""The DUT harness: instrumented executor, run result and model base class.

A :class:`DutModel` runs test programs exactly like the golden model but
through a :class:`DutExecutor`, which

* routes instructions through the modelled microarchitecture (caches,
  predictor, hazard tracking, functional units),
* emits branch coverage points from every modelled decision, and
* gives the injected vulnerabilities (:mod:`repro.rtl.bugs`) their hook
  points into decode, memory, CSR, trap and retirement behaviour.

Because the DUT executor inherits the golden executor's functional
semantics, a DUT with no injected bugs produces a commit trace identical to
the golden model -- the invariant the differential tester relies on (and
which the test-suite checks property-style).

Coverage is recorded as an **integer bitset** on the hot path: every point
name owns a process-global bit (:mod:`repro.coverage.bitset`), each
emission family memoises *masks* keyed by the same bounded situation keys
the string helpers use, and a commit's observation collapses to a few dict
gets plus ``cov |= mask``.  The point-name tuples are only materialised
once per run, when :class:`DutRunResult` is built -- nothing downstream of
the run result changes.  The string-tuple helpers below remain the
reference implementation: :class:`LegacyCoverageExecutor` still drives a
full run through them, and the parity tests assert that both emissions
produce identical coverage sets on user and trap corpora.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.coverage.bitset import mask_of, point_bit, points_of
from repro.coverage.collector import CoverageCollector
from repro.coverage.csr_transitions import (
    COVERAGE_MODELS,
    CsrTransitionTracker,
    transition_space,
)
from repro.coverage.points import coverage_point
from repro.isa import csr as csrdefs
from repro.isa.encoding import InstrClass, InstrFormat, SPECS, spec_for
from repro.isa.exceptions import Trap, TrapCause
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.rtl.bugs import InjectedBug, make_bugs
from repro.rtl.microarch import (
    BranchPredictor,
    CacheModel,
    FunctionalUnitMonitor,
    HazardTracker,
)
from repro.sim.executor import _LOAD_SIZES, _STORE_SIZES, Executor, ExecutorConfig
from repro.sim.golden import ModelBase
from repro.sim.memory import Memory
from repro.sim.state import ArchState
from repro.sim.trace import CommitRecord, ExecutionResult
from repro.utils.bits import MASK64, get_bits, to_signed


# ======================================================================== config
@dataclass(frozen=True)
class DutConfig:
    """Microarchitectural parameters of a DUT model."""

    name: str = "dut"
    icache_sets: int = 32
    dcache_sets: int = 32
    cache_ways: int = 2
    bpred_entries: int = 32
    hazard_window: int = 2

    def __post_init__(self) -> None:
        for attribute in ("icache_sets", "dcache_sets", "cache_ways",
                          "bpred_entries", "hazard_window"):
            if getattr(self, attribute) <= 0:
                raise ValueError(f"{attribute} must be positive")


# ============================================================== coverage families
# Shared (ISA-level) coverage families.  Each family provides a space
# enumeration and a runtime emission helper; the two must stay consistent,
# which the property-based tests check by asserting emitted ⊆ enumerated.
#
# Emission is allocation-free on the hot path: every helper returns a
# *shared tuple* memoised by the (small, bounded) set of observable
# situations -- the point strings and their containers are built once per
# process, and the collector's ``set.update`` consumes them without
# copying.  The point spaces are finite, so the memo dictionaries are
# bounded by construction.

_ALU_CLASSES = (InstrClass.ARITH, InstrClass.LOGIC, InstrClass.SHIFT,
                InstrClass.COMPARE, InstrClass.MUL, InstrClass.DIV)
_IMM_FORMATS = (InstrFormat.I, InstrFormat.I_SHIFT, InstrFormat.S,
                InstrFormat.B, InstrFormat.U, InstrFormat.J)
_MEM_SIZES = (1, 2, 4, 8)

#: empty shared emission (illegal/non-applicable instructions).
_NO_POINTS: Tuple[str, ...] = ()


def decode_space() -> Set[str]:
    points = {coverage_point("decode", m) for m in SPECS}
    points.update(coverage_point("decode", "illegal", f"op{i}") for i in range(32))
    return points


_DECODE_MEMO: Dict[object, Tuple[str, ...]] = {}


def decode_points(instr: Instruction, word: int) -> Tuple[str, ...]:
    if instr.is_illegal:
        key: object = get_bits(word, 6, 2)
        points = _DECODE_MEMO.get(key)
        if points is None:
            points = _DECODE_MEMO[key] = (
                coverage_point("decode", "illegal", f"op{key}"),)
        return points
    points = _DECODE_MEMO.get(instr.mnemonic)
    if points is None:
        points = _DECODE_MEMO[instr.mnemonic] = (
            coverage_point("decode", instr.mnemonic),)
    return points


def operand_space() -> Set[str]:
    points: Set[str] = set()
    for mnemonic, spec in SPECS.items():
        if spec.writes_rd:
            points.add(coverage_point("operand", mnemonic, "rd_zero"))
            points.add(coverage_point("operand", mnemonic, "rd_nonzero"))
        if spec.reads_rs1 and spec.reads_rs2:
            points.add(coverage_point("operand", mnemonic, "rs_equal"))
        if spec.fmt in _IMM_FORMATS:
            points.add(coverage_point("operand", mnemonic, "imm_neg"))
            points.add(coverage_point("operand", mnemonic, "imm_zero"))
            points.add(coverage_point("operand", mnemonic, "imm_pos"))
    return points


_OPERAND_MEMO: Dict[Tuple, Tuple[str, ...]] = {}


def operand_points(instr: Instruction) -> Tuple[str, ...]:
    if instr.is_illegal:
        return _NO_POINTS
    spec = spec_for(instr.mnemonic)
    rd_zero = (instr.rd == 0) if spec.writes_rd else None
    rs_equal = spec.reads_rs1 and spec.reads_rs2 and instr.rs1 == instr.rs2
    if spec.fmt in _IMM_FORMATS:
        bucket = ("imm_neg" if instr.imm < 0
                  else "imm_zero" if instr.imm == 0 else "imm_pos")
    else:
        bucket = None
    key = (instr.mnemonic, rd_zero, rs_equal, bucket)
    points = _OPERAND_MEMO.get(key)
    if points is None:
        built = []
        if rd_zero is not None:
            built.append(coverage_point(
                "operand", instr.mnemonic, "rd_zero" if rd_zero else "rd_nonzero"))
        if rs_equal:
            built.append(coverage_point("operand", instr.mnemonic, "rs_equal"))
        if bucket is not None:
            built.append(coverage_point("operand", instr.mnemonic, bucket))
        points = _OPERAND_MEMO[key] = tuple(built)
    return points


def alu_space() -> Set[str]:
    points: Set[str] = set()
    for mnemonic, spec in SPECS.items():
        if spec.cls in _ALU_CLASSES:
            for bucket in ("zero", "neg", "pos"):
                points.add(coverage_point("alu", mnemonic, bucket))
    return points


_ALU_MEMO: Dict[Tuple[str, str], Tuple[str, ...]] = {}


def _alu_bucket(rd_value: int) -> str:
    signed = to_signed(rd_value)
    return "zero" if signed == 0 else ("neg" if signed < 0 else "pos")


def alu_points(instr: Instruction, record: CommitRecord) -> Tuple[str, ...]:
    if instr.is_illegal or record.trap is not None or record.rd_value is None:
        return _NO_POINTS
    spec = spec_for(instr.mnemonic)
    if spec.cls not in _ALU_CLASSES:
        return _NO_POINTS
    key = (instr.mnemonic, _alu_bucket(record.rd_value))
    points = _ALU_MEMO.get(key)
    if points is None:
        points = _ALU_MEMO[key] = (coverage_point("alu", *key),)
    return points


def branch_space() -> Set[str]:
    points: Set[str] = set()
    for mnemonic, spec in SPECS.items():
        if spec.cls is InstrClass.BRANCH:
            points.add(coverage_point("branch", mnemonic, "taken"))
            points.add(coverage_point("branch", mnemonic, "nottaken"))
    points.add(coverage_point("branch", "backward_taken"))
    points.add(coverage_point("branch", "forward_taken"))
    return points


_BRANCH_MEMO: Dict[Tuple, Tuple[str, ...]] = {}


def _branch_points_for(mnemonic: str, taken: bool,
                       direction: Optional[str]) -> Tuple[str, ...]:
    built = [coverage_point("branch", mnemonic,
                            "taken" if taken else "nottaken")]
    if direction is not None:
        built.append(coverage_point("branch", direction))
    return tuple(built)


def branch_points(instr: Instruction, record: CommitRecord) -> Tuple[str, ...]:
    if instr.is_illegal or record.trap is not None:
        return _NO_POINTS
    if spec_for(instr.mnemonic).cls is not InstrClass.BRANCH:
        return _NO_POINTS
    taken = record.next_pc != (record.pc + 4) & MASK64
    direction = (("backward_taken" if record.next_pc < record.pc
                  else "forward_taken") if taken else None)
    key = (instr.mnemonic, taken, direction)
    points = _BRANCH_MEMO.get(key)
    if points is None:
        points = _BRANCH_MEMO[key] = _branch_points_for(*key)
    return points


def mem_space() -> Set[str]:
    points: Set[str] = set()
    for kind in ("load", "store"):
        for size in _MEM_SIZES:
            points.add(coverage_point("mem", kind, f"size{size}", "aligned"))
            points.add(coverage_point("mem", kind, f"size{size}", "unaligned"))
    for region in ("code", "data", "invalid"):
        points.add(coverage_point("mem", "region", region))
    return points


_MEM_MEMO: Dict[Tuple[str, str, str], Tuple[str, ...]] = {}


def _mem_situation(instr: Instruction, spec,
                   executor: "DutExecutor") -> Tuple[str, int, str, str]:
    """Classify one load/store pre-execution: (kind, size, aligned, region)."""
    if spec.cls is InstrClass.LOAD:
        kind, size = "load", _LOAD_SIZES[instr.mnemonic][0]
    else:
        kind, size = "store", _STORE_SIZES[instr.mnemonic]
    address = (executor.state.read_reg(instr.rs1) + instr.imm) & MASK64
    aligned = "aligned" if address % size == 0 else "unaligned"
    layout = executor.memory.layout
    if not layout.contains(address, 1):
        region = "invalid"
    elif address < layout.data_base:
        region = "code"
    else:
        region = "data"
    return kind, size, aligned, region


def _mem_points_for(kind: str, size: int, aligned: str,
                    region: str) -> Tuple[str, ...]:
    return (coverage_point("mem", kind, f"size{size}", aligned),
            coverage_point("mem", "region", region))


def mem_points(instr: Instruction, executor: "DutExecutor") -> Tuple[str, ...]:
    if instr.is_illegal:
        return _NO_POINTS
    spec = spec_for(instr.mnemonic)
    if spec.cls not in (InstrClass.LOAD, InstrClass.STORE):
        return _NO_POINTS
    kind, size, aligned, region = _mem_situation(instr, spec, executor)
    key = (instr.mnemonic, aligned, region)
    points = _MEM_MEMO.get(key)
    if points is None:
        points = _MEM_MEMO[key] = _mem_points_for(kind, size, aligned, region)
    return points


def atomic_space() -> Set[str]:
    points: Set[str] = set()
    for mnemonic, spec in SPECS.items():
        if spec.cls is InstrClass.ATOMIC:
            points.add(coverage_point("atomic", mnemonic))
    points.add(coverage_point("atomic", "sc", "success"))
    points.add(coverage_point("atomic", "sc", "fail"))
    points.add(coverage_point("atomic", "ordered"))
    return points


_ATOMIC_MEMO: Dict[Tuple, Tuple[str, ...]] = {}


def _atomic_situation(instr: Instruction,
                      record: CommitRecord) -> Tuple[str, Optional[str], bool]:
    outcome = (("success" if record.rd_value == 0 else "fail")
               if instr.mnemonic.startswith("sc.") else None)
    return instr.mnemonic, outcome, bool(instr.aq or instr.rl)


def _atomic_points_for(mnemonic: str, outcome: Optional[str],
                       ordered: bool) -> Tuple[str, ...]:
    built = [coverage_point("atomic", mnemonic)]
    if outcome is not None:
        built.append(coverage_point("atomic", "sc", outcome))
    if ordered:
        built.append(coverage_point("atomic", "ordered"))
    return tuple(built)


def atomic_points(instr: Instruction, record: CommitRecord) -> Tuple[str, ...]:
    if instr.is_illegal or record.trap is not None:
        return _NO_POINTS
    if spec_for(instr.mnemonic).cls is not InstrClass.ATOMIC:
        return _NO_POINTS
    key = _atomic_situation(instr, record)
    points = _ATOMIC_MEMO.get(key)
    if points is None:
        points = _ATOMIC_MEMO[key] = _atomic_points_for(*key)
    return points


def trap_space() -> Set[str]:
    points = {coverage_point("trap", cause.name.lower()) for cause in TrapCause}
    for cause in TrapCause:
        for cls in InstrClass:
            points.add(coverage_point("trap", cause.name.lower(), cls.value))
        points.add(coverage_point("trap", cause.name.lower(), "illegal_word"))
    return points


_TRAP_MEMO: Dict[Tuple[str, str], Tuple[str, ...]] = {}


def _trap_situation(instr: Instruction, record: CommitRecord) -> Tuple[str, str]:
    cause = record.trap.name.lower()
    source = ("illegal_word" if instr.is_illegal
              else spec_for(instr.mnemonic).cls.value)
    return cause, source


def _trap_points_for(cause: str, source: str) -> Tuple[str, ...]:
    return (coverage_point("trap", cause), coverage_point("trap", cause, source))


def trap_points(instr: Instruction, record: CommitRecord) -> Tuple[str, ...]:
    if record.trap is None:
        return _NO_POINTS
    key = _trap_situation(instr, record)
    points = _TRAP_MEMO.get(key)
    if points is None:
        points = _TRAP_MEMO[key] = _trap_points_for(*key)
    return points


def csr_space() -> Set[str]:
    points: Set[str] = set()
    for address in csrdefs.IMPLEMENTED_CSRS:
        name = csrdefs.csr_name(address)
        points.add(coverage_point("csr", name, "read"))
        points.add(coverage_point("csr", name, "write"))
    for address in csrdefs.UNIMPLEMENTED_CSRS:
        points.add(coverage_point("csr", "unimplemented", f"0x{address:03x}"))
    points.add(coverage_point("csr", "readonly_write"))
    return points


def system_space() -> Set[str]:
    points = {coverage_point("sys", m) for m in ("ecall", "ebreak", "mret", "wfi")}
    points.add(coverage_point("fencepath", "fence"))
    points.add(coverage_point("fencepath", "fence.i"))
    return points


_SYSTEM_MEMO: Dict[str, Tuple[str, ...]] = {}


def system_points(instr: Instruction) -> Tuple[str, ...]:
    if instr.is_illegal:
        return _NO_POINTS
    points = _SYSTEM_MEMO.get(instr.mnemonic)
    if points is None:
        if instr.mnemonic in ("ecall", "ebreak", "mret", "wfi"):
            points = (coverage_point("sys", instr.mnemonic),)
        elif instr.mnemonic in ("fence", "fence.i"):
            points = (coverage_point("fencepath", instr.mnemonic),)
        else:
            points = _NO_POINTS
        _SYSTEM_MEMO[instr.mnemonic] = points
    return points


def common_space() -> Set[str]:
    """The ISA-level coverage space shared by every DUT."""
    space: Set[str] = set()
    space |= decode_space()
    space |= operand_space()
    space |= alu_space()
    space |= branch_space()
    space |= mem_space()
    space |= atomic_space()
    space |= trap_space()
    space |= csr_space()
    space |= system_space()
    return space


# ================================================================= mask faces
# Bitset (integer-mask) counterparts of the emission helpers above, used by
# the DUT executor's hot path.  Each memo is keyed by the same bounded
# situation key as its string twin; a miss builds the identical point names
# once and converts them through the global bit registry.  The string
# helpers stay authoritative -- the parity tests run both paths over seeded
# corpora and assert equal coverage sets.

#: bound on the Instruction-keyed memos below.  Their key space is every
#: distinct decoded instruction a worker ever sees (bit-level mutation keeps
#: minting new encodings), so -- like the decoder's word cache -- they are
#: cleared on overflow rather than grown forever; recomputing an entry is a
#: few dict gets, so the occasional cold restart is cheaper than LRU
#: bookkeeping at this size.
_INSTR_MEMO_MAX = 1 << 16

_STATIC_MASKS: Dict[object, int] = {}


def static_instr_mask(instr: Instruction, word: int) -> int:
    """decode + operand + system coverage of one instruction, as one mask.

    These three families are static per decoded instruction, so the
    per-commit cost is a single dict get.  Illegal words are keyed by the
    opcode bits their decode point depends on; legal instructions key by
    value (bug-substituted instructions hash equal to their cached twins).
    """
    key: object = (word >> 2) & 0x1F if instr.raw is not None else instr
    mask = _STATIC_MASKS.get(key)
    if mask is None:
        mask = (mask_of(decode_points(instr, word))
                | mask_of(operand_points(instr))
                | mask_of(system_points(instr)))
        if len(_STATIC_MASKS) >= _INSTR_MEMO_MAX:
            _STATIC_MASKS.clear()
        _STATIC_MASKS[key] = mask
    return mask


#: per-instruction decode plan: everything the fetch/decode observation
#: needs that is static per decoded instruction, resolved once --
#: ``(static_mask, spec|None, rd_written|None, rs1_read|None, rs2_read|None,
#: is_mem)``.  Illegal words share one plan per opcode-bit pattern.
_DECODE_PLANS: Dict[object, Tuple] = {}


def _decode_plan(instr: Instruction, word: int) -> Tuple:
    key: object = (word >> 2) & 0x1F if instr.raw is not None else instr
    plan = _DECODE_PLANS.get(key)
    if plan is None:
        static = static_instr_mask(instr, word)
        if instr.raw is not None:
            plan = (static, None, None, None, None, False)
        else:
            spec = spec_for(instr.mnemonic)
            cls = spec.cls
            plan = (static, spec,
                    instr.rd if spec.writes_rd else None,
                    instr.rs1 if spec.reads_rs1 else None,
                    instr.rs2 if spec.reads_rs2 else None,
                    cls is InstrClass.LOAD or cls is InstrClass.STORE)
        if len(_DECODE_PLANS) >= _INSTR_MEMO_MAX:
            _DECODE_PLANS.clear()
        _DECODE_PLANS[key] = plan
    return plan


_MEM_MASKS: Dict[Tuple, int] = {}


def mem_mask(instr: Instruction, spec, executor: "DutExecutor") -> int:
    """mem-family coverage of one load/store, as a mask (pre-execution)."""
    if spec.cls is not InstrClass.LOAD and spec.cls is not InstrClass.STORE:
        return 0
    kind, size, aligned, region = _mem_situation(instr, spec, executor)
    key = (instr.mnemonic, aligned, region)
    mask = _MEM_MASKS.get(key)
    if mask is None:
        mask = _MEM_MASKS[key] = mask_of(
            _mem_points_for(kind, size, aligned, region))
    return mask


_ALU_MASKS: Dict[Tuple[str, str], int] = {}


def alu_mask(mnemonic: str, rd_value: int) -> int:
    """ALU result-bucket coverage (caller guarantees an untrapped ALU commit)."""
    key = (mnemonic, _alu_bucket(rd_value))
    mask = _ALU_MASKS.get(key)
    if mask is None:
        mask = _ALU_MASKS[key] = mask_of((coverage_point("alu", *key),))
    return mask


_BRANCH_MASKS: Dict[Tuple, int] = {}


def branch_mask(mnemonic: str, taken: bool, backward: bool) -> int:
    """Branch outcome coverage (caller guarantees an untrapped branch commit)."""
    key = (mnemonic, taken, backward)
    mask = _BRANCH_MASKS.get(key)
    if mask is None:
        direction = (("backward_taken" if backward else "forward_taken")
                     if taken else None)
        mask = _BRANCH_MASKS[key] = mask_of(
            _branch_points_for(mnemonic, taken, direction))
    return mask


_ATOMIC_MASKS: Dict[Tuple, int] = {}


def atomic_mask(instr: Instruction, record: CommitRecord) -> int:
    """Atomic coverage (caller guarantees an untrapped atomic commit)."""
    key = _atomic_situation(instr, record)
    mask = _ATOMIC_MASKS.get(key)
    if mask is None:
        mask = _ATOMIC_MASKS[key] = mask_of(_atomic_points_for(*key))
    return mask


_TRAP_MASKS: Dict[Tuple[str, str], int] = {}


def trap_mask(instr: Instruction, record: CommitRecord) -> int:
    """Trap coverage of one trapping commit, as a mask."""
    key = _trap_situation(instr, record)
    mask = _TRAP_MASKS.get(key)
    if mask is None:
        mask = _TRAP_MASKS[key] = mask_of(_trap_points_for(*key))
    return mask


def _csr_point(kind: str, address: int) -> str:
    """The csr-family point name for one access situation (shared source)."""
    if kind == "unimplemented":
        return coverage_point("csr", "unimplemented", f"0x{address:03x}")
    if kind == "readonly_write":
        return coverage_point("csr", "readonly_write")
    return coverage_point("csr", csrdefs.csr_name(address), kind)


_CSR_MASKS: Dict[Tuple[str, int], int] = {}


def csr_mask(kind: str, address: int) -> int:
    """csr-family coverage of one access situation, as a mask."""
    key = (kind, address)
    mask = _CSR_MASKS.get(key)
    if mask is None:
        mask = _CSR_MASKS[key] = 1 << point_bit(_csr_point(kind, address))
    return mask


# =================================================================== run result
@dataclass(frozen=True)
class DutRunResult:
    """Outcome of running one test on a DUT: trace + coverage + bug effects."""

    execution: ExecutionResult
    coverage: FrozenSet[str]
    fired_bugs: FrozenSet[str]
    bug_effect_steps: Dict[str, int] = field(default_factory=dict)

    @property
    def coverage_count(self) -> int:
        return len(self.coverage)


# ==================================================================== executor
class DutExecutor(Executor):
    """Golden-semantics executor instrumented with microarchitecture, coverage and bugs."""

    def __init__(self, state: ArchState, memory: Memory, config: ExecutorConfig,
                 dut: "DutModel") -> None:
        super().__init__(state, memory, config)
        self.dut = dut
        dut_config = dut.config
        self.icache = CacheModel("icache", dut_config.icache_sets, dut_config.cache_ways)
        self.dcache = CacheModel("dcache", dut_config.dcache_sets, dut_config.cache_ways)
        self.bpred = BranchPredictor("bpred", dut_config.bpred_entries)
        self.hazards = HazardTracker("hazard", dut_config.hazard_window)
        self.fu = FunctionalUnitMonitor("fu")
        self.bugs: List[InjectedBug] = dut.bugs
        #: CSR-transition tracker (``None`` under the base coverage model).
        #: Executors are built fresh per run, so the tracker starts every
        #: program from the architectural reset classes.
        self.csr_tracker: Optional[CsrTransitionTracker] = (
            CsrTransitionTracker(memory.layout)
            if dut.coverage_model == "csr" else None)
        # Bug / run bookkeeping the bug hooks rely on.
        self.stores_executed = 0
        self.last_store_step: Optional[int] = None
        self.last_trap_step: Optional[int] = None
        self.last_trap_cause: Optional[TrapCause] = None
        self.bug_effects: Dict[str, List[int]] = {}
        self._operand_values: Tuple[int, int] = (0, 0)
        #: free-form per-run scratch space for DUT-specific structural coverage.
        self.dut_scratch: Dict[str, object] = {}
        #: accumulated coverage bitset (see :mod:`repro.coverage.bitset`).
        self._cov = 0

    # ------------------------------------------------------------ bug plumbing
    @property
    def current_step(self) -> int:
        return self._step_index

    def note_bug_effect(self, bug_id: str) -> None:
        self.bug_effects.setdefault(bug_id, []).append(self._step_index)

    # ------------------------------------------------------------------ decode
    def _observe_decode(self, instr: Instruction, word: int, pc: int) -> Instruction:
        """Bug decode hooks + fetch/decode coverage (both step paths)."""
        for bug in self.bugs:
            replacement = bug.on_decode(self, instr, word)
            if replacement is not None:
                instr = replacement
        self._record_fetch_decode(instr, word, pc)
        return instr

    def _record_fetch_decode(self, instr: Instruction, word: int, pc: int) -> None:
        """Coverage of one fetch+decode (bitset fast path)."""
        static_mask, spec, rd, rs1, rs2, is_mem = _decode_plan(instr, word)
        cov = self._cov | self.icache.access_mask(pc, False) | static_mask
        if spec is not None:
            regs = self.state.regs
            self._operand_values = (regs[rs1] if rs1 is not None else 0,
                                    regs[rs2] if rs2 is not None else 0)
            if is_mem:
                cov |= mem_mask(instr, spec, self)
            cov |= self.hazards.observe_mask(rd, rs1, rs2)
        self._cov = cov

    # ------------------------------------------------------------------ memory
    def _mem_load(self, address: int, size: int, signed: bool,
                  instr: Instruction) -> int:
        value = self.memory.load(address, size, signed)
        self._record_dcache(address, False)
        for bug in self.bugs:
            override = bug.on_mem_load(self, address, size, value, instr)
            if override is not None:
                value = override
        return value

    def _mem_store(self, address: int, value: int, size: int,
                   instr: Instruction) -> None:
        self.memory.store(address, value, size)
        self._record_dcache(address, True)
        self.stores_executed += 1
        self.last_store_step = self._step_index

    def _record_dcache(self, address: int, is_store: bool) -> None:
        """Coverage of one data-cache access (bitset fast path)."""
        self._cov |= self.dcache.access_mask(address, is_store)

    # --------------------------------------------------------------------- CSR
    def _record_csr(self, kind: str, address: int) -> None:
        """Coverage of one CSR access situation (bitset fast path)."""
        self._cov |= csr_mask(kind, address)

    def _csr_read(self, address: int, instr: Instruction) -> int:
        for bug in self.bugs:
            override = bug.on_csr_read(self, address, instr)
            if override is not None:
                self._record_csr("unimplemented", address)
                return override
        try:
            value = self.state.read_csr(address)
        except Trap:
            if address in csrdefs.UNIMPLEMENTED_CSRS:
                self._record_csr("unimplemented", address)
            raise
        self._record_csr("read", address)
        return value

    def _csr_write(self, address: int, value: int, instr: Instruction) -> None:
        for bug in self.bugs:
            if bug.on_csr_write(self, address, value, instr):
                self._record_csr("unimplemented", address)
                return
        try:
            self.state.write_csr(address, value)
        except Trap:
            if csrdefs.is_read_only_csr(address):
                self._record_csr("readonly_write", address)
            elif address in csrdefs.UNIMPLEMENTED_CSRS:
                self._record_csr("unimplemented", address)
            raise
        self._record_csr("write", address)

    # -------------------------------------------------------------------- traps
    def _trap_cause(self, trap: Trap, instr: Instruction, pc: int) -> Optional[Trap]:
        current: Optional[Trap] = trap
        for bug in self.bugs:
            if current is None:
                break
            current = bug.on_trap(self, current, instr, pc)
        return current

    # --------------------------------------------------------------- retirement
    def _count_retirement(self, instr: Instruction, trapped: bool) -> None:
        for bug in self.bugs:
            if not bug.should_count_retirement(self, instr):
                self.state.csrs[csrdefs.MCYCLE] = (
                    self.state.csrs[csrdefs.MCYCLE] + 1) & MASK64
                return
        super()._count_retirement(instr, trapped)

    # ------------------------------------------------------------------ observe
    def _observe_commit(self, record: CommitRecord, instr: Instruction) -> CommitRecord:
        cov = self._cov
        trap = record.trap
        if trap is not None:
            cov |= trap_mask(instr, record)
        if not instr.is_illegal:
            cls = spec_for(instr.mnemonic).cls
            rd_value = record.rd_value
            if trap is None:
                if rd_value is not None and cls in _ALU_CLASSES:
                    cov |= alu_mask(instr.mnemonic, rd_value)
                elif cls is InstrClass.BRANCH:
                    taken = record.next_pc != (record.pc + 4) & MASK64
                    cov |= branch_mask(instr.mnemonic, taken,
                                       record.next_pc < record.pc)
                    cov |= self.bpred.update_mask(record.pc, taken)
                elif cls is InstrClass.ATOMIC:
                    cov |= atomic_mask(instr, record)
            if rd_value is not None and (cls is InstrClass.MUL
                                         or cls is InstrClass.DIV):
                operands = self._operand_values
                cov |= self.fu.observe_mask(cls, operands[0], operands[1],
                                            rd_value)
        cov |= self.dut.structural_mask(record, instr, self)
        if self.csr_tracker is not None:
            cov |= self.csr_tracker.observe_mask(record)
        self._cov = cov
        if trap is not None:
            self.last_trap_step = self._step_index
            self.last_trap_cause = trap
        return record

    # ----------------------------------------------------------------- results
    def coverage_hits(self) -> FrozenSet[str]:
        """Materialise the accumulated bitset into the canonical point set."""
        return points_of(self._cov)


class LegacyCoverageExecutor(DutExecutor):
    """Reference executor recording coverage as string tuples in a collector.

    Overrides only the coverage-*recording* hooks -- bug injection, memory,
    CSR and trap semantics are inherited untouched -- so a run through this
    executor is the pre-bitset implementation: every emission goes through
    the legacy string helpers and microarch list methods into a
    :class:`~repro.coverage.collector.CoverageCollector`.  The parity tests
    compare its coverage set against the bitset fast path's; it is not used
    on any production path.
    """

    def __init__(self, state: ArchState, memory: Memory, config: ExecutorConfig,
                 dut: "DutModel") -> None:
        super().__init__(state, memory, config, dut=dut)
        self.collector = CoverageCollector()

    def _record_fetch_decode(self, instr: Instruction, word: int, pc: int) -> None:
        self.collector.hit_many(self.icache.access(pc, is_store=False))
        self.collector.hit_many(decode_points(instr, word))
        self.collector.hit_many(operand_points(instr))
        if not instr.is_illegal:
            spec = spec_for(instr.mnemonic)
            rs1 = self.state.read_reg(instr.rs1) if spec.reads_rs1 else 0
            rs2 = self.state.read_reg(instr.rs2) if spec.reads_rs2 else 0
            self._operand_values = (rs1, rs2)
            self.collector.hit_many(mem_points(instr, self))
            self.collector.hit_many(
                self.hazards.observe(
                    instr.rd if spec.writes_rd else None,
                    instr.rs1 if spec.reads_rs1 else None,
                    instr.rs2 if spec.reads_rs2 else None,
                ))

    def _record_dcache(self, address: int, is_store: bool) -> None:
        self.collector.hit_many(self.dcache.access(address, is_store=is_store))

    def _record_csr(self, kind: str, address: int) -> None:
        self.collector.hit(_csr_point(kind, address))

    def _observe_commit(self, record: CommitRecord, instr: Instruction) -> CommitRecord:
        collector = self.collector
        collector.hit_many(alu_points(instr, record))
        collector.hit_many(branch_points(instr, record))
        collector.hit_many(atomic_points(instr, record))
        collector.hit_many(trap_points(instr, record))
        collector.hit_many(system_points(instr))
        if (not instr.is_illegal and record.trap is None
                and spec_for(instr.mnemonic).cls is InstrClass.BRANCH):
            taken = record.next_pc != (record.pc + 4) & MASK64
            collector.hit_many(self.bpred.update(record.pc, taken))
        if not instr.is_illegal and record.rd_value is not None:
            spec = spec_for(instr.mnemonic)
            collector.hit_many(self.fu.observe(
                spec.cls, self._operand_values[0], self._operand_values[1],
                record.rd_value))
        collector.hit_many(self.dut.structural_points(record, instr, self))
        if self.csr_tracker is not None:
            collector.hit_many(self.csr_tracker.observe(record))
        if record.trap is not None:
            self.last_trap_step = self._step_index
            self.last_trap_cause = record.trap
        return record

    def coverage_hits(self) -> FrozenSet[str]:
        return self.collector.hits


# ======================================================================= model
class DutModel(ModelBase):
    """Base class of the three processor models."""

    #: subclasses override with their default configuration.
    default_config = DutConfig()

    #: coverage emission backend: the integer-bitset fast path by default.
    #: The parity tests flip this to ``False`` to run the same model through
    #: the legacy string-tuple collector reference implementation.
    bitset_coverage = True

    def __init__(self, config: Optional[DutConfig] = None,
                 bugs: Sequence[Union[str, InjectedBug]] = (),
                 executor_config: Optional[ExecutorConfig] = None,
                 coverage_model: str = "base") -> None:
        super().__init__(executor_config)
        if coverage_model not in COVERAGE_MODELS:
            raise ValueError(f"unknown coverage model {coverage_model!r}; "
                             f"available: {COVERAGE_MODELS}")
        self.config = config or self.default_config
        self.bugs = make_bugs(bugs)
        #: ``"base"`` = hit-set coverage only; ``"csr"`` additionally tracks
        #: ProcessorFuzz-style CSR value-class transitions (docs/coverage.md).
        self.coverage_model = coverage_model
        self._space: Optional[FrozenSet[str]] = None
        self._last_executor: Optional[DutExecutor] = None

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.config.name

    # -------------------------------------------------------------- coverage space
    def structural_space(self) -> Set[str]:
        """DUT-specific structural coverage points (overridden by subclasses)."""
        return set()

    def structural_points(self, record: CommitRecord, instr: Instruction,
                          executor: DutExecutor) -> Sequence[str]:
        """DUT-specific structural coverage emission (overridden by subclasses)."""
        return _NO_POINTS

    def structural_mask(self, record: CommitRecord, instr: Instruction,
                        executor: DutExecutor) -> int:
        """Structural coverage of one commit as a bitset mask (hot path).

        The three processor models override this with table-driven emitters
        (precomputed per-point masks, no string building per commit).  The
        default derives the mask from :meth:`structural_points`, so any
        subclass that only implements the string form stays correct --
        merely slower.
        """
        points = self.structural_points(record, instr, executor)
        return mask_of(points) if points else 0

    def coverage_space(self) -> FrozenSet[str]:
        """The DUT's full branch coverage space (cached)."""
        if self._space is None:
            space: Set[str] = set(common_space())
            config = self.config
            space |= CacheModel("icache", config.icache_sets, config.cache_ways).space()
            space |= CacheModel("dcache", config.dcache_sets, config.cache_ways).space()
            space |= BranchPredictor("bpred", config.bpred_entries).space()
            space |= HazardTracker("hazard", config.hazard_window).space()
            space |= FunctionalUnitMonitor("fu").space()
            space |= self.structural_space()
            if self.coverage_model == "csr":
                space |= transition_space()
            self._space = frozenset(space)
        return self._space

    @property
    def total_coverage_points(self) -> int:
        return len(self.coverage_space())

    # ------------------------------------------------------------------ run hooks
    def _make_executor(self, state: ArchState, memory: Memory) -> Executor:
        executor_cls = (DutExecutor if self.bitset_coverage
                        else LegacyCoverageExecutor)
        executor = executor_cls(state, memory, self.executor_config, dut=self)
        self._last_executor = executor
        return executor

    def _prepare_run(self, executor: Executor, program: TestProgram) -> None:
        for bug in self.bugs:
            bug.reset()

    # ------------------------------------------------------------------------ run
    def run(self, program: TestProgram,
            max_steps: Optional[int] = None) -> DutRunResult:  # type: ignore[override]
        execution = super().run(program, max_steps)
        executor = self._last_executor
        assert executor is not None
        first_steps = {bug_id: steps[0] for bug_id, steps in executor.bug_effects.items()}
        return DutRunResult(
            execution=execution,
            coverage=executor.coverage_hits(),
            fired_bugs=frozenset(executor.bug_effects),
            bug_effect_steps=first_steps,
        )
