"""The DUT harness: instrumented executor, run result and model base class.

A :class:`DutModel` runs test programs exactly like the golden model but
through a :class:`DutExecutor`, which

* routes instructions through the modelled microarchitecture (caches,
  predictor, hazard tracking, functional units),
* emits branch coverage points from every modelled decision, and
* gives the injected vulnerabilities (:mod:`repro.rtl.bugs`) their hook
  points into decode, memory, CSR, trap and retirement behaviour.

Because the DUT executor inherits the golden executor's functional
semantics, a DUT with no injected bugs produces a commit trace identical to
the golden model -- the invariant the differential tester relies on (and
which the test-suite checks property-style).

Coverage is recorded as an **integer bitset** on the hot path: every point
name owns a process-global bit (:mod:`repro.coverage.bitset`), each
emission family memoises *masks* keyed by the same bounded situation keys
the string helpers use, and a commit's observation collapses to a few dict
gets plus ``cov |= mask``.  The point-name tuples are only materialised
once per run, when :class:`DutRunResult` is built -- nothing downstream of
the run result changes.  The string-tuple helpers below remain the
reference implementation: :class:`LegacyCoverageExecutor` still drives a
full run through them, and the parity tests assert that both emissions
produce identical coverage sets on user and trap corpora.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.coverage.bitset import mask_of, point_bit, points_of
from repro.coverage.collector import CoverageCollector
from repro.coverage.csr_transitions import (
    COVERAGE_MODELS,
    CsrTransitionTracker,
    transition_space,
)
from repro.coverage.points import coverage_point
from repro.isa import csr as csrdefs
from repro.isa.compiled import Superblock, dirty_word_span
from repro.isa.encoding import InstrClass, InstrFormat, SPECS, spec_for
from repro.isa.exceptions import Trap, TrapCause
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.rtl.bugs import InjectedBug, make_bugs
from repro.rtl.microarch import (
    BranchPredictor,
    CacheModel,
    FunctionalUnitMonitor,
    HazardTracker,
)
from repro.sim.executor import _LOAD_SIZES, _STORE_SIZES, Executor, ExecutorConfig
from repro.sim.golden import ModelBase
from repro.sim.memory import Memory
from repro.sim.state import ArchState
from repro.sim.trace import CommitRecord, ExecutionResult
from repro.utils.bits import MASK64, get_bits, to_signed


# ======================================================================== config
@dataclass(frozen=True)
class DutConfig:
    """Microarchitectural parameters of a DUT model."""

    name: str = "dut"
    icache_sets: int = 32
    dcache_sets: int = 32
    cache_ways: int = 2
    bpred_entries: int = 32
    hazard_window: int = 2

    def __post_init__(self) -> None:
        for attribute in ("icache_sets", "dcache_sets", "cache_ways",
                          "bpred_entries", "hazard_window"):
            if getattr(self, attribute) <= 0:
                raise ValueError(f"{attribute} must be positive")


# ============================================================== coverage families
# Shared (ISA-level) coverage families.  Each family provides a space
# enumeration and a runtime emission helper; the two must stay consistent,
# which the property-based tests check by asserting emitted ⊆ enumerated.
#
# Emission is allocation-free on the hot path: every helper returns a
# *shared tuple* memoised by the (small, bounded) set of observable
# situations -- the point strings and their containers are built once per
# process, and the collector's ``set.update`` consumes them without
# copying.  The point spaces are finite, so the memo dictionaries are
# bounded by construction.

_ALU_CLASSES = (InstrClass.ARITH, InstrClass.LOGIC, InstrClass.SHIFT,
                InstrClass.COMPARE, InstrClass.MUL, InstrClass.DIV)
_IMM_FORMATS = (InstrFormat.I, InstrFormat.I_SHIFT, InstrFormat.S,
                InstrFormat.B, InstrFormat.U, InstrFormat.J)
_MEM_SIZES = (1, 2, 4, 8)

#: empty shared emission (illegal/non-applicable instructions).
_NO_POINTS: Tuple[str, ...] = ()


def decode_space() -> Set[str]:
    points = {coverage_point("decode", m) for m in SPECS}
    points.update(coverage_point("decode", "illegal", f"op{i}") for i in range(32))
    return points


_DECODE_MEMO: Dict[object, Tuple[str, ...]] = {}


def decode_points(instr: Instruction, word: int) -> Tuple[str, ...]:
    if instr.is_illegal:
        key: object = get_bits(word, 6, 2)
        points = _DECODE_MEMO.get(key)
        if points is None:
            points = _DECODE_MEMO[key] = (
                coverage_point("decode", "illegal", f"op{key}"),)
        return points
    points = _DECODE_MEMO.get(instr.mnemonic)
    if points is None:
        points = _DECODE_MEMO[instr.mnemonic] = (
            coverage_point("decode", instr.mnemonic),)
    return points


def operand_space() -> Set[str]:
    points: Set[str] = set()
    for mnemonic, spec in SPECS.items():
        if spec.writes_rd:
            points.add(coverage_point("operand", mnemonic, "rd_zero"))
            points.add(coverage_point("operand", mnemonic, "rd_nonzero"))
        if spec.reads_rs1 and spec.reads_rs2:
            points.add(coverage_point("operand", mnemonic, "rs_equal"))
        if spec.fmt in _IMM_FORMATS:
            points.add(coverage_point("operand", mnemonic, "imm_neg"))
            points.add(coverage_point("operand", mnemonic, "imm_zero"))
            points.add(coverage_point("operand", mnemonic, "imm_pos"))
    return points


_OPERAND_MEMO: Dict[Tuple, Tuple[str, ...]] = {}


def operand_points(instr: Instruction) -> Tuple[str, ...]:
    if instr.is_illegal:
        return _NO_POINTS
    spec = spec_for(instr.mnemonic)
    rd_zero = (instr.rd == 0) if spec.writes_rd else None
    rs_equal = spec.reads_rs1 and spec.reads_rs2 and instr.rs1 == instr.rs2
    if spec.fmt in _IMM_FORMATS:
        bucket = ("imm_neg" if instr.imm < 0
                  else "imm_zero" if instr.imm == 0 else "imm_pos")
    else:
        bucket = None
    key = (instr.mnemonic, rd_zero, rs_equal, bucket)
    points = _OPERAND_MEMO.get(key)
    if points is None:
        built = []
        if rd_zero is not None:
            built.append(coverage_point(
                "operand", instr.mnemonic, "rd_zero" if rd_zero else "rd_nonzero"))
        if rs_equal:
            built.append(coverage_point("operand", instr.mnemonic, "rs_equal"))
        if bucket is not None:
            built.append(coverage_point("operand", instr.mnemonic, bucket))
        points = _OPERAND_MEMO[key] = tuple(built)
    return points


def alu_space() -> Set[str]:
    points: Set[str] = set()
    for mnemonic, spec in SPECS.items():
        if spec.cls in _ALU_CLASSES:
            for bucket in ("zero", "neg", "pos"):
                points.add(coverage_point("alu", mnemonic, bucket))
    return points


_ALU_MEMO: Dict[Tuple[str, str], Tuple[str, ...]] = {}


def _alu_bucket(rd_value: int) -> str:
    signed = to_signed(rd_value)
    return "zero" if signed == 0 else ("neg" if signed < 0 else "pos")


def alu_points(instr: Instruction, record: CommitRecord) -> Tuple[str, ...]:
    if instr.is_illegal or record.trap is not None or record.rd_value is None:
        return _NO_POINTS
    spec = spec_for(instr.mnemonic)
    if spec.cls not in _ALU_CLASSES:
        return _NO_POINTS
    key = (instr.mnemonic, _alu_bucket(record.rd_value))
    points = _ALU_MEMO.get(key)
    if points is None:
        points = _ALU_MEMO[key] = (coverage_point("alu", *key),)
    return points


def branch_space() -> Set[str]:
    points: Set[str] = set()
    for mnemonic, spec in SPECS.items():
        if spec.cls is InstrClass.BRANCH:
            points.add(coverage_point("branch", mnemonic, "taken"))
            points.add(coverage_point("branch", mnemonic, "nottaken"))
    points.add(coverage_point("branch", "backward_taken"))
    points.add(coverage_point("branch", "forward_taken"))
    return points


_BRANCH_MEMO: Dict[Tuple, Tuple[str, ...]] = {}


def _branch_points_for(mnemonic: str, taken: bool,
                       direction: Optional[str]) -> Tuple[str, ...]:
    built = [coverage_point("branch", mnemonic,
                            "taken" if taken else "nottaken")]
    if direction is not None:
        built.append(coverage_point("branch", direction))
    return tuple(built)


def branch_points(instr: Instruction, record: CommitRecord) -> Tuple[str, ...]:
    if instr.is_illegal or record.trap is not None:
        return _NO_POINTS
    if spec_for(instr.mnemonic).cls is not InstrClass.BRANCH:
        return _NO_POINTS
    taken = record.next_pc != (record.pc + 4) & MASK64
    direction = (("backward_taken" if record.next_pc < record.pc
                  else "forward_taken") if taken else None)
    key = (instr.mnemonic, taken, direction)
    points = _BRANCH_MEMO.get(key)
    if points is None:
        points = _BRANCH_MEMO[key] = _branch_points_for(*key)
    return points


def mem_space() -> Set[str]:
    points: Set[str] = set()
    for kind in ("load", "store"):
        for size in _MEM_SIZES:
            points.add(coverage_point("mem", kind, f"size{size}", "aligned"))
            points.add(coverage_point("mem", kind, f"size{size}", "unaligned"))
    for region in ("code", "data", "invalid"):
        points.add(coverage_point("mem", "region", region))
    return points


_MEM_MEMO: Dict[Tuple[str, str, str], Tuple[str, ...]] = {}


def _mem_situation(instr: Instruction, spec,
                   executor: "DutExecutor") -> Tuple[str, int, str, str]:
    """Classify one load/store pre-execution: (kind, size, aligned, region)."""
    if spec.cls is InstrClass.LOAD:
        kind, size = "load", _LOAD_SIZES[instr.mnemonic][0]
    else:
        kind, size = "store", _STORE_SIZES[instr.mnemonic]
    address = (executor.state.read_reg(instr.rs1) + instr.imm) & MASK64
    aligned = "aligned" if address % size == 0 else "unaligned"
    layout = executor.memory.layout
    if not layout.contains(address, 1):
        region = "invalid"
    elif address < layout.data_base:
        region = "code"
    else:
        region = "data"
    return kind, size, aligned, region


def _mem_points_for(kind: str, size: int, aligned: str,
                    region: str) -> Tuple[str, ...]:
    return (coverage_point("mem", kind, f"size{size}", aligned),
            coverage_point("mem", "region", region))


def mem_points(instr: Instruction, executor: "DutExecutor") -> Tuple[str, ...]:
    if instr.is_illegal:
        return _NO_POINTS
    spec = spec_for(instr.mnemonic)
    if spec.cls not in (InstrClass.LOAD, InstrClass.STORE):
        return _NO_POINTS
    kind, size, aligned, region = _mem_situation(instr, spec, executor)
    key = (instr.mnemonic, aligned, region)
    points = _MEM_MEMO.get(key)
    if points is None:
        points = _MEM_MEMO[key] = _mem_points_for(kind, size, aligned, region)
    return points


def atomic_space() -> Set[str]:
    points: Set[str] = set()
    for mnemonic, spec in SPECS.items():
        if spec.cls is InstrClass.ATOMIC:
            points.add(coverage_point("atomic", mnemonic))
    points.add(coverage_point("atomic", "sc", "success"))
    points.add(coverage_point("atomic", "sc", "fail"))
    points.add(coverage_point("atomic", "ordered"))
    return points


_ATOMIC_MEMO: Dict[Tuple, Tuple[str, ...]] = {}


def _atomic_situation(instr: Instruction,
                      record: CommitRecord) -> Tuple[str, Optional[str], bool]:
    outcome = (("success" if record.rd_value == 0 else "fail")
               if instr.mnemonic.startswith("sc.") else None)
    return instr.mnemonic, outcome, bool(instr.aq or instr.rl)


def _atomic_points_for(mnemonic: str, outcome: Optional[str],
                       ordered: bool) -> Tuple[str, ...]:
    built = [coverage_point("atomic", mnemonic)]
    if outcome is not None:
        built.append(coverage_point("atomic", "sc", outcome))
    if ordered:
        built.append(coverage_point("atomic", "ordered"))
    return tuple(built)


def atomic_points(instr: Instruction, record: CommitRecord) -> Tuple[str, ...]:
    if instr.is_illegal or record.trap is not None:
        return _NO_POINTS
    if spec_for(instr.mnemonic).cls is not InstrClass.ATOMIC:
        return _NO_POINTS
    key = _atomic_situation(instr, record)
    points = _ATOMIC_MEMO.get(key)
    if points is None:
        points = _ATOMIC_MEMO[key] = _atomic_points_for(*key)
    return points


def trap_space() -> Set[str]:
    points = {coverage_point("trap", cause.name.lower()) for cause in TrapCause}
    for cause in TrapCause:
        for cls in InstrClass:
            points.add(coverage_point("trap", cause.name.lower(), cls.value))
        points.add(coverage_point("trap", cause.name.lower(), "illegal_word"))
    return points


_TRAP_MEMO: Dict[Tuple[str, str], Tuple[str, ...]] = {}


def _trap_situation(instr: Instruction, record: CommitRecord) -> Tuple[str, str]:
    cause = record.trap.name.lower()
    source = ("illegal_word" if instr.is_illegal
              else spec_for(instr.mnemonic).cls.value)
    return cause, source


def _trap_points_for(cause: str, source: str) -> Tuple[str, ...]:
    return (coverage_point("trap", cause), coverage_point("trap", cause, source))


def trap_points(instr: Instruction, record: CommitRecord) -> Tuple[str, ...]:
    if record.trap is None:
        return _NO_POINTS
    key = _trap_situation(instr, record)
    points = _TRAP_MEMO.get(key)
    if points is None:
        points = _TRAP_MEMO[key] = _trap_points_for(*key)
    return points


def csr_space() -> Set[str]:
    points: Set[str] = set()
    for address in csrdefs.IMPLEMENTED_CSRS:
        name = csrdefs.csr_name(address)
        points.add(coverage_point("csr", name, "read"))
        points.add(coverage_point("csr", name, "write"))
    for address in csrdefs.UNIMPLEMENTED_CSRS:
        points.add(coverage_point("csr", "unimplemented", f"0x{address:03x}"))
    points.add(coverage_point("csr", "readonly_write"))
    return points


def system_space() -> Set[str]:
    points = {coverage_point("sys", m) for m in ("ecall", "ebreak", "mret", "wfi")}
    points.add(coverage_point("fencepath", "fence"))
    points.add(coverage_point("fencepath", "fence.i"))
    return points


_SYSTEM_MEMO: Dict[str, Tuple[str, ...]] = {}


def system_points(instr: Instruction) -> Tuple[str, ...]:
    if instr.is_illegal:
        return _NO_POINTS
    points = _SYSTEM_MEMO.get(instr.mnemonic)
    if points is None:
        if instr.mnemonic in ("ecall", "ebreak", "mret", "wfi"):
            points = (coverage_point("sys", instr.mnemonic),)
        elif instr.mnemonic in ("fence", "fence.i"):
            points = (coverage_point("fencepath", instr.mnemonic),)
        else:
            points = _NO_POINTS
        _SYSTEM_MEMO[instr.mnemonic] = points
    return points


def common_space() -> Set[str]:
    """The ISA-level coverage space shared by every DUT."""
    space: Set[str] = set()
    space |= decode_space()
    space |= operand_space()
    space |= alu_space()
    space |= branch_space()
    space |= mem_space()
    space |= atomic_space()
    space |= trap_space()
    space |= csr_space()
    space |= system_space()
    return space


# ================================================================= mask faces
# Bitset (integer-mask) counterparts of the emission helpers above, used by
# the DUT executor's hot path.  Each memo is keyed by the same bounded
# situation key as its string twin; a miss builds the identical point names
# once and converts them through the global bit registry.  The string
# helpers stay authoritative -- the parity tests run both paths over seeded
# corpora and assert equal coverage sets.

#: bound on the Instruction-keyed memos below.  Their key space is every
#: distinct decoded instruction a worker ever sees (bit-level mutation keeps
#: minting new encodings), so -- like the decoder's word cache -- they are
#: cleared on overflow rather than grown forever; recomputing an entry is a
#: few dict gets, so the occasional cold restart is cheaper than LRU
#: bookkeeping at this size.
_INSTR_MEMO_MAX = 1 << 16

_STATIC_MASKS: Dict[object, int] = {}


def static_instr_mask(instr: Instruction, word: int) -> int:
    """decode + operand + system coverage of one instruction, as one mask.

    These three families are static per decoded instruction, so the
    per-commit cost is a single dict get.  Illegal words are keyed by the
    opcode bits their decode point depends on; legal instructions key by
    value (bug-substituted instructions hash equal to their cached twins).
    """
    key: object = (word >> 2) & 0x1F if instr.raw is not None else instr
    mask = _STATIC_MASKS.get(key)
    if mask is None:
        mask = (mask_of(decode_points(instr, word))
                | mask_of(operand_points(instr))
                | mask_of(system_points(instr)))
        if len(_STATIC_MASKS) >= _INSTR_MEMO_MAX:
            _STATIC_MASKS.clear()
        _STATIC_MASKS[key] = mask
    return mask


#: per-instruction decode plan: everything the fetch/decode observation
#: needs that is static per decoded instruction, resolved once --
#: ``(static_mask, spec|None, rd_written|None, rs1_read|None, rs2_read|None,
#: is_mem)``.  Illegal words share one plan per opcode-bit pattern.
_DECODE_PLANS: Dict[object, Tuple] = {}


def _decode_plan(instr: Instruction, word: int) -> Tuple:
    key: object = (word >> 2) & 0x1F if instr.raw is not None else instr
    plan = _DECODE_PLANS.get(key)
    if plan is None:
        static = static_instr_mask(instr, word)
        if instr.raw is not None:
            plan = (static, None, None, None, None, False)
        else:
            spec = spec_for(instr.mnemonic)
            cls = spec.cls
            plan = (static, spec,
                    instr.rd if spec.writes_rd else None,
                    instr.rs1 if spec.reads_rs1 else None,
                    instr.rs2 if spec.reads_rs2 else None,
                    cls is InstrClass.LOAD or cls is InstrClass.STORE)
        if len(_DECODE_PLANS) >= _INSTR_MEMO_MAX:
            _DECODE_PLANS.clear()
        _DECODE_PLANS[key] = plan
    return plan


_MEM_MASKS: Dict[Tuple, int] = {}


def mem_mask(instr: Instruction, spec, executor: "DutExecutor") -> int:
    """mem-family coverage of one load/store, as a mask (pre-execution)."""
    if spec.cls is not InstrClass.LOAD and spec.cls is not InstrClass.STORE:
        return 0
    kind, size, aligned, region = _mem_situation(instr, spec, executor)
    key = (instr.mnemonic, aligned, region)
    mask = _MEM_MASKS.get(key)
    if mask is None:
        mask = _MEM_MASKS[key] = mask_of(
            _mem_points_for(kind, size, aligned, region))
    return mask


_ALU_MASKS: Dict[Tuple[str, str], int] = {}


def alu_mask(mnemonic: str, rd_value: int) -> int:
    """ALU result-bucket coverage (caller guarantees an untrapped ALU commit)."""
    key = (mnemonic, _alu_bucket(rd_value))
    mask = _ALU_MASKS.get(key)
    if mask is None:
        mask = _ALU_MASKS[key] = mask_of((coverage_point("alu", *key),))
    return mask


_BRANCH_MASKS: Dict[Tuple, int] = {}


def branch_mask(mnemonic: str, taken: bool, backward: bool) -> int:
    """Branch outcome coverage (caller guarantees an untrapped branch commit)."""
    key = (mnemonic, taken, backward)
    mask = _BRANCH_MASKS.get(key)
    if mask is None:
        direction = (("backward_taken" if backward else "forward_taken")
                     if taken else None)
        mask = _BRANCH_MASKS[key] = mask_of(
            _branch_points_for(mnemonic, taken, direction))
    return mask


_ATOMIC_MASKS: Dict[Tuple, int] = {}


def atomic_mask(instr: Instruction, record: CommitRecord) -> int:
    """Atomic coverage (caller guarantees an untrapped atomic commit)."""
    key = _atomic_situation(instr, record)
    mask = _ATOMIC_MASKS.get(key)
    if mask is None:
        mask = _ATOMIC_MASKS[key] = mask_of(_atomic_points_for(*key))
    return mask


_TRAP_MASKS: Dict[Tuple[str, str], int] = {}


def trap_mask(instr: Instruction, record: CommitRecord) -> int:
    """Trap coverage of one trapping commit, as a mask."""
    key = _trap_situation(instr, record)
    mask = _TRAP_MASKS.get(key)
    if mask is None:
        mask = _TRAP_MASKS[key] = mask_of(_trap_points_for(*key))
    return mask


def _csr_point(kind: str, address: int) -> str:
    """The csr-family point name for one access situation (shared source)."""
    if kind == "unimplemented":
        return coverage_point("csr", "unimplemented", f"0x{address:03x}")
    if kind == "readonly_write":
        return coverage_point("csr", "readonly_write")
    return coverage_point("csr", csrdefs.csr_name(address), kind)


_CSR_MASKS: Dict[Tuple[str, int], int] = {}


def csr_mask(kind: str, address: int) -> int:
    """csr-family coverage of one access situation, as a mask."""
    key = (kind, address)
    mask = _CSR_MASKS.get(key)
    if mask is None:
        mask = _CSR_MASKS[key] = 1 << point_bit(_csr_point(kind, address))
    return mask


def _block_dut_plan(block: Superblock) -> Tuple[Tuple, ...]:
    """Attach (and return) the per-entry DUT execution plan of one superblock.

    Everything static per instruction -- spec, class predicates, register
    fields, the decode/operand/system mask -- is resolved once per block
    and cached on it, so the fused DUT loop touches no memo dictionaries.
    Illegal words fuse too (their handler raises the deterministic
    illegal-instruction trap); their plan entries carry a ``None`` spec
    and only the static fetch/decode mask.  The plan is DUT-independent;
    one block serves every DUT model in the process.
    """
    plan = []
    for word, instr, handler in block.entries:
        if instr.raw is not None:
            # Illegal word: no spec, no operand/hazard bookkeeping -- the
            # handler raises the illegal-instruction trap and the loop's
            # trap arm commits it.  The trap coverage is static too
            # (always ``illegal_instruction`` from an illegal word), so it
            # folds into the fetch/decode mask; the loop's trap arm skips
            # ``trap_mask`` for spec-less entries.
            static = static_instr_mask(instr, word) | mask_of(
                _trap_points_for("illegal_instruction", "illegal_word"))
            plan.append((word, instr, handler, None, None, None, None, None,
                         False, False, False, None, False, False, static))
            continue
        spec = spec_for(instr.mnemonic)
        cls = spec.cls
        is_mem = cls is InstrClass.LOAD or cls is InstrClass.STORE
        plan.append((
            word, instr, handler, spec, cls,
            instr.rd if spec.writes_rd else None,
            instr.rs1 if spec.reads_rs1 else None,
            instr.rs2 if spec.reads_rs2 else None,
            is_mem,
            is_mem or cls is InstrClass.ATOMIC,
            cls is InstrClass.MUL or cls is InstrClass.DIV,
            # ALU result-bucket masks (zero/neg/pos), pre-resolved so the
            # fused loop picks one with integer tests instead of calling
            # alu_mask (bucket string + tuple key + memo get) per commit.
            (alu_mask(instr.mnemonic, 0), alu_mask(instr.mnemonic, 1 << 63),
             alu_mask(instr.mnemonic, 1)) if cls in _ALU_CLASSES else None,
            cls is InstrClass.ATOMIC,
            cls is InstrClass.BRANCH,
            static_instr_mask(instr, word),
        ))
    block.dut_plan = tuple(plan)
    return block.dut_plan


# =================================================================== run result
@dataclass(frozen=True)
class DutRunResult:
    """Outcome of running one test on a DUT: trace + coverage + bug effects."""

    execution: ExecutionResult
    coverage: FrozenSet[str]
    fired_bugs: FrozenSet[str]
    bug_effect_steps: Dict[str, int] = field(default_factory=dict)

    @property
    def coverage_count(self) -> int:
        return len(self.coverage)


# ==================================================================== executor
class DutExecutor(Executor):
    """Golden-semantics executor instrumented with microarchitecture, coverage and bugs."""

    def __init__(self, state: ArchState, memory: Memory, config: ExecutorConfig,
                 dut: "DutModel") -> None:
        super().__init__(state, memory, config)
        self.dut = dut
        dut_config = dut.config
        self.icache = CacheModel("icache", dut_config.icache_sets, dut_config.cache_ways)
        self.dcache = CacheModel("dcache", dut_config.dcache_sets, dut_config.cache_ways)
        self.bpred = BranchPredictor("bpred", dut_config.bpred_entries)
        self.hazards = HazardTracker("hazard", dut_config.hazard_window)
        self.fu = FunctionalUnitMonitor("fu")
        self.bugs: List[InjectedBug] = dut.bugs
        #: CSR-transition tracker (``None`` under the base coverage model).
        #: Executors are built fresh per run, so the tracker starts every
        #: program from the architectural reset classes.
        self.csr_tracker: Optional[CsrTransitionTracker] = (
            CsrTransitionTracker(memory.layout)
            if dut.coverage_model == "csr" else None)
        # Bug / run bookkeeping the bug hooks rely on.
        self.stores_executed = 0
        self.last_store_step: Optional[int] = None
        self.last_trap_step: Optional[int] = None
        self.last_trap_cause: Optional[TrapCause] = None
        self.bug_effects: Dict[str, List[int]] = {}
        self._operand_values: Tuple[int, int] = (0, 0)
        #: free-form per-run scratch space for DUT-specific structural coverage.
        self.dut_scratch: Dict[str, object] = {}
        #: accumulated coverage bitset (see :mod:`repro.coverage.bitset`).
        self._cov = 0
        #: icache line of the most recent fetch plus its guaranteed re-hit
        #: mask -- the icache is only ever touched by fetches, so a fetch
        #: to the same line as the previous one is a hit that leaves the
        #: LRU state untouched and the fused loop can skip the cache model
        #: entirely (see :meth:`CacheModel.repeat_hit_mask`).
        self._fetch_line = -1
        self._fetch_rehit = 0

    # ------------------------------------------------------------ bug plumbing
    @property
    def current_step(self) -> int:
        return self._step_index

    def note_bug_effect(self, bug_id: str) -> None:
        self.bug_effects.setdefault(bug_id, []).append(self._step_index)

    # ------------------------------------------------------------------ decode
    def _observe_decode(self, instr: Instruction, word: int, pc: int) -> Instruction:
        """Bug decode hooks + fetch/decode coverage (both step paths)."""
        for bug in self.bugs:
            replacement = bug.on_decode(self, instr, word)
            if replacement is not None:
                instr = replacement
        self._record_fetch_decode(instr, word, pc)
        return instr

    def _record_fetch_decode(self, instr: Instruction, word: int, pc: int) -> None:
        """Coverage of one fetch+decode (bitset fast path)."""
        static_mask, spec, rd, rs1, rs2, is_mem = _decode_plan(instr, word)
        icache = self.icache
        cov = self._cov | icache.access_mask(pc, False) | static_mask
        line = pc // icache.line_bytes
        if line != self._fetch_line:
            self._fetch_line = line
            self._fetch_rehit = icache.repeat_hit_mask(pc)
        if spec is not None:
            regs = self.state.regs
            self._operand_values = (regs[rs1] if rs1 is not None else 0,
                                    regs[rs2] if rs2 is not None else 0)
            if is_mem:
                cov |= mem_mask(instr, spec, self)
            cov |= self.hazards.observe_mask(rd, rs1, rs2)
        self._cov = cov

    # ------------------------------------------------------------------ memory
    def _mem_load(self, address: int, size: int, signed: bool,
                  instr: Instruction) -> int:
        value = self.memory.load(address, size, signed)
        self._record_dcache(address, False)
        for bug in self.bugs:
            override = bug.on_mem_load(self, address, size, value, instr)
            if override is not None:
                value = override
        return value

    def _mem_store(self, address: int, value: int, size: int,
                   instr: Instruction) -> None:
        self.memory.store(address, value, size)
        self._record_dcache(address, True)
        self.stores_executed += 1
        self.last_store_step = self._step_index

    def _record_dcache(self, address: int, is_store: bool) -> None:
        """Coverage of one data-cache access (bitset fast path)."""
        self._cov |= self.dcache.access_mask(address, is_store)

    # --------------------------------------------------------------------- CSR
    def _record_csr(self, kind: str, address: int) -> None:
        """Coverage of one CSR access situation (bitset fast path)."""
        self._cov |= csr_mask(kind, address)

    def _csr_read(self, address: int, instr: Instruction) -> int:
        for bug in self.bugs:
            override = bug.on_csr_read(self, address, instr)
            if override is not None:
                self._record_csr("unimplemented", address)
                return override
        try:
            value = self.state.read_csr(address)
        except Trap:
            if address in csrdefs.UNIMPLEMENTED_CSRS:
                self._record_csr("unimplemented", address)
            raise
        self._record_csr("read", address)
        return value

    def _csr_write(self, address: int, value: int, instr: Instruction) -> None:
        for bug in self.bugs:
            if bug.on_csr_write(self, address, value, instr):
                self._record_csr("unimplemented", address)
                return
        try:
            self.state.write_csr(address, value)
        except Trap:
            if csrdefs.is_read_only_csr(address):
                self._record_csr("readonly_write", address)
            elif address in csrdefs.UNIMPLEMENTED_CSRS:
                self._record_csr("unimplemented", address)
            raise
        self._record_csr("write", address)

    # -------------------------------------------------------------------- traps
    def _trap_cause(self, trap: Trap, instr: Instruction, pc: int) -> Optional[Trap]:
        current: Optional[Trap] = trap
        for bug in self.bugs:
            if current is None:
                break
            current = bug.on_trap(self, current, instr, pc)
        return current

    # --------------------------------------------------------------- retirement
    def _count_retirement(self, instr: Instruction, trapped: bool) -> None:
        for bug in self.bugs:
            if not bug.should_count_retirement(self, instr):
                self.state.csrs[csrdefs.MCYCLE] = (
                    self.state.csrs[csrdefs.MCYCLE] + 1) & MASK64
                return
        super()._count_retirement(instr, trapped)

    # ------------------------------------------------------------------ observe
    def _observe_commit(self, record: CommitRecord, instr: Instruction) -> CommitRecord:
        cov = self._cov
        trap = record.trap
        if trap is not None:
            cov |= trap_mask(instr, record)
        if not instr.is_illegal:
            cls = spec_for(instr.mnemonic).cls
            rd_value = record.rd_value
            if trap is None:
                if rd_value is not None and cls in _ALU_CLASSES:
                    cov |= alu_mask(instr.mnemonic, rd_value)
                elif cls is InstrClass.BRANCH:
                    taken = record.next_pc != (record.pc + 4) & MASK64
                    cov |= branch_mask(instr.mnemonic, taken,
                                       record.next_pc < record.pc)
                    cov |= self.bpred.update_mask(record.pc, taken)
                elif cls is InstrClass.ATOMIC:
                    cov |= atomic_mask(instr, record)
            if rd_value is not None and (cls is InstrClass.MUL
                                         or cls is InstrClass.DIV):
                operands = self._operand_values
                cov |= self.fu.observe_mask(cls, operands[0], operands[1],
                                            rd_value)
        cov |= self.dut.structural_mask(record, instr, self)
        if self.csr_tracker is not None:
            cov |= self.csr_tracker.observe_mask(record)
        self._cov = cov
        if trap is not None:
            self.last_trap_step = self._step_index
            self.last_trap_cause = trap
        return record

    # ------------------------------------------------------------- superblocks
    def run_block(self, block: Superblock, records: list) -> Optional[tuple]:
        """Fused superblock execution with inline coverage emission.

        Mirrors one iteration of the per-step path -- fetch/decode coverage,
        operand capture, execution, retirement counters, commit observation
        -- per plan entry, with the bounded-memo lookups pre-resolved into
        the block's plan and the coverage bitset held in a local.  Stateful
        microarchitectural components (icache LRU, hazard window, dcache via
        the memory hooks, the DUT's ``structural_mask`` emitter) are still
        consulted per instruction, in the same order as the per-step path,
        so the accumulated coverage set is bit-identical.

        Injected bugs and the CSR-transition tracker hook into the per-step
        machinery at many points; runs configured with either route through
        the hook-preserving :meth:`~repro.sim.executor.Executor.run_block_generic`
        instead.
        """
        if self.bugs or self.csr_tracker is not None:
            return self.run_block_generic(block, records)
        plan = block.dut_plan
        if plan is None:
            plan = _block_dut_plan(block)
        state = self.state
        regs = state.regs
        csrs = state.csrs
        icache = self.icache
        icache_access = icache.access_mask
        icache_repeat = icache.repeat_hit_mask
        line_bytes = icache.line_bytes
        append = records.append
        block_start = len(records)
        count_trapped = self.config.count_trapped_instructions
        base_address = block.base_address
        end_address = block.end_address
        pc = state.pc
        cov = self._cov
        dirtied = None
        # Cross-block fetch-line state: a fetch to the line the previous
        # fetch touched is a guaranteed re-hit (the icache is only ever
        # accessed by fetches), so it reduces to ``cov |= rehit`` with no
        # cache-model call and no LRU mutation.
        fetch_line = self._fetch_line
        fetch_rehit = self._fetch_rehit
        # Hazard-window locals (the tracker's observe_mask inlined below:
        # one attribute hop and call frame per entry is ~30% of its cost).
        hazards = self.hazards
        hz_recent = hazards._recent
        hz_table = hazards._mask_table()
        hz_window = hazards.window
        hz_no_hazard = hz_table["no_hazard"]
        # Retirement counters are batched like the base run_block: nothing
        # before a block's tail reads MINSTRET/MCYCLE, so two dict writes
        # at exit replace 2-per-entry.  A CSR tail can read or write them,
        # so the batch is flushed (and restarted) right before the tail
        # entry executes; ``commits`` equals the entry index, so the flush
        # triggers exactly there.
        flush_at = block.length - 1 if block.csr_tail else -1
        commits = 0
        uncounted = 0  # trapped commits excluded from minstret
        for (word, instr, handler, spec, cls, rd, rs1, rs2, is_mem,
             is_memlike, is_muldiv, alu3, is_atomic, is_branch,
             static_mask) in plan:
            line = pc // line_bytes
            if line == fetch_line:
                cov |= fetch_rehit | static_mask
            else:
                cov |= icache_access(pc, False) | static_mask
                fetch_line = line
                fetch_rehit = icache_repeat(pc)
            if spec is not None:
                # Illegal words (spec None) get no operand capture and no
                # hazard-window update, exactly like the per-step path.
                if is_muldiv:
                    self._operand_values = (regs[rs1] if rs1 is not None else 0,
                                            regs[rs2] if rs2 is not None else 0)
                if is_mem:
                    cov |= mem_mask(instr, spec, self)
                # --- hazards.observe_mask, inlined ---------------------------
                hmask = 0
                distance = 0
                for position in range(len(hz_recent) - 1, -1, -1):
                    distance += 1
                    prior_rd = hz_recent[position]
                    if not prior_rd:
                        continue
                    if rs1 == prior_rd:
                        hmask |= hz_table["rs1", distance] | hz_table["fwd", prior_rd]
                    if rs2 == prior_rd:
                        hmask |= hz_table["rs2", distance] | hz_table["fwd", prior_rd]
                    if rd == prior_rd:
                        hmask |= hz_table["waw", distance]
                cov |= hmask if hmask else hz_no_hazard
                hz_recent.append(rd)
                if len(hz_recent) > hz_window:
                    del hz_recent[0]
            trap = None
            if commits == flush_at:
                # CSR tail: flush the batched counters so its CSR reads
                # and writes are architecturally exact, then restart the
                # batch (see Executor.run_block).  Its handler emits CSR
                # coverage through ``self._cov``, so sync like memlike.
                csrs[csrdefs.MINSTRET] = (
                    csrs[csrdefs.MINSTRET] + commits - uncounted) & MASK64
                csrs[csrdefs.MCYCLE] = (csrs[csrdefs.MCYCLE] + commits) & MASK64
                commits = 0
                uncounted = 0
                flush_at = -1
                sync_cov = True
            else:
                sync_cov = is_memlike
            if sync_cov:
                # dcache / CSR coverage is recorded inside the handler via
                # ``self._cov``; keep it coherent across the handler call.
                self._cov = cov
                try:
                    record = handler(self, instr, pc, word)
                except Trap as raised:
                    trap = raised
                cov = self._cov
            else:
                try:
                    record = handler(self, instr, pc, word)
                except Trap as raised:
                    trap = raised
            if trap is None:
                rd_value = record.rd_value
                if rd_value is not None:
                    if alu3 is not None:
                        # bucket: zero / neg (bit 63 set) / pos -- same
                        # partition _alu_bucket derives via to_signed.
                        cov |= (alu3[0] if rd_value == 0 else
                                alu3[1] if rd_value >> 63 else alu3[2])
                    if is_muldiv:
                        operands = self._operand_values
                        cov |= self.fu.observe_mask(cls, operands[0],
                                                    operands[1], rd_value)
                if is_branch:
                    taken = record.next_pc != (pc + 4) & MASK64
                    cov |= branch_mask(instr.mnemonic, taken,
                                       record.next_pc < pc)
                    cov |= self.bpred.update_mask(pc, taken)
                elif is_atomic:
                    cov |= atomic_mask(instr, record)
            else:
                csrs[csrdefs.MEPC] = pc
                csrs[csrdefs.MCAUSE] = int(trap.cause)
                csrs[csrdefs.MTVAL] = trap.tval & MASK64
                record = CommitRecord(
                    step=self._step_index, pc=pc, word=word,
                    mnemonic=instr.mnemonic, trap=trap.cause,
                    next_pc=(pc + 4) & MASK64, trap_tval=trap.tval & MASK64)
                if not count_trapped:
                    uncounted += 1
                if spec is not None:
                    # (illegal entries carry their trap mask in static_mask)
                    cov |= trap_mask(instr, record)
                self.last_trap_step = self._step_index
                self.last_trap_cause = trap.cause
            commits += 1
            append(record)
            self._step_index += 1
            pc += 4
            mem_addr = record.mem_addr
            if mem_addr is not None:
                dirtied = dirty_word_span(mem_addr, record.mem_size or 1,
                                          base_address, end_address)
                if dirtied is not None:
                    break  # store hit the code window: stop fused execution
        # Structural coverage is a pure function of the commit records (plus
        # the model's own scratch state, which it advances in record order),
        # so it batches into one call per block instead of one per commit.
        cov |= self.dut.structural_block_mask(records, block_start, plan, self,
                                              block)
        csrs[csrdefs.MINSTRET] = (csrs[csrdefs.MINSTRET] + commits - uncounted) & MASK64
        csrs[csrdefs.MCYCLE] = (csrs[csrdefs.MCYCLE] + commits) & MASK64
        self._cov = cov
        self._fetch_line = fetch_line
        self._fetch_rehit = fetch_rehit
        if block.tail_redirect and dirtied is None:
            # The tail branch/jump ran; its record carries the exit pc.
            state.pc = record.next_pc
        else:
            state.pc = pc & MASK64
        return dirtied

    # ----------------------------------------------------------------- results
    def coverage_hits(self) -> FrozenSet[str]:
        """Materialise the accumulated bitset into the canonical point set."""
        return points_of(self._cov)


class LegacyCoverageExecutor(DutExecutor):
    """Reference executor recording coverage as string tuples in a collector.

    Overrides only the coverage-*recording* hooks -- bug injection, memory,
    CSR and trap semantics are inherited untouched -- so a run through this
    executor is the pre-bitset implementation: every emission goes through
    the legacy string helpers and microarch list methods into a
    :class:`~repro.coverage.collector.CoverageCollector`.  The parity tests
    compare its coverage set against the bitset fast path's; it is not used
    on any production path.
    """

    def __init__(self, state: ArchState, memory: Memory, config: ExecutorConfig,
                 dut: "DutModel") -> None:
        super().__init__(state, memory, config, dut=dut)
        self.collector = CoverageCollector()

    def _record_fetch_decode(self, instr: Instruction, word: int, pc: int) -> None:
        self.collector.hit_many(self.icache.access(pc, is_store=False))
        self.collector.hit_many(decode_points(instr, word))
        self.collector.hit_many(operand_points(instr))
        if not instr.is_illegal:
            spec = spec_for(instr.mnemonic)
            rs1 = self.state.read_reg(instr.rs1) if spec.reads_rs1 else 0
            rs2 = self.state.read_reg(instr.rs2) if spec.reads_rs2 else 0
            self._operand_values = (rs1, rs2)
            self.collector.hit_many(mem_points(instr, self))
            self.collector.hit_many(
                self.hazards.observe(
                    instr.rd if spec.writes_rd else None,
                    instr.rs1 if spec.reads_rs1 else None,
                    instr.rs2 if spec.reads_rs2 else None,
                ))

    def _record_dcache(self, address: int, is_store: bool) -> None:
        self.collector.hit_many(self.dcache.access(address, is_store=is_store))

    def _record_csr(self, kind: str, address: int) -> None:
        self.collector.hit(_csr_point(kind, address))

    def run_block(self, block: Superblock, records: list) -> Optional[tuple]:
        # The reference implementation must route every entry through its
        # overridden recording hooks -- no fused fast path, by design.
        return self.run_block_generic(block, records)

    def _observe_commit(self, record: CommitRecord, instr: Instruction) -> CommitRecord:
        collector = self.collector
        collector.hit_many(alu_points(instr, record))
        collector.hit_many(branch_points(instr, record))
        collector.hit_many(atomic_points(instr, record))
        collector.hit_many(trap_points(instr, record))
        collector.hit_many(system_points(instr))
        if (not instr.is_illegal and record.trap is None
                and spec_for(instr.mnemonic).cls is InstrClass.BRANCH):
            taken = record.next_pc != (record.pc + 4) & MASK64
            collector.hit_many(self.bpred.update(record.pc, taken))
        if not instr.is_illegal and record.rd_value is not None:
            spec = spec_for(instr.mnemonic)
            collector.hit_many(self.fu.observe(
                spec.cls, self._operand_values[0], self._operand_values[1],
                record.rd_value))
        collector.hit_many(self.dut.structural_points(record, instr, self))
        if self.csr_tracker is not None:
            collector.hit_many(self.csr_tracker.observe(record))
        if record.trap is not None:
            self.last_trap_step = self._step_index
            self.last_trap_cause = record.trap
        return record

    def coverage_hits(self) -> FrozenSet[str]:
        return self.collector.hits


# ======================================================================= model
class DutModel(ModelBase):
    """Base class of the three processor models."""

    #: subclasses override with their default configuration.
    default_config = DutConfig()

    #: coverage emission backend: the integer-bitset fast path by default.
    #: The parity tests flip this to ``False`` to run the same model through
    #: the legacy string-tuple collector reference implementation.
    bitset_coverage = True

    def __init__(self, config: Optional[DutConfig] = None,
                 bugs: Sequence[Union[str, InjectedBug]] = (),
                 executor_config: Optional[ExecutorConfig] = None,
                 coverage_model: str = "base") -> None:
        super().__init__(executor_config)
        if coverage_model not in COVERAGE_MODELS:
            raise ValueError(f"unknown coverage model {coverage_model!r}; "
                             f"available: {COVERAGE_MODELS}")
        self.config = config or self.default_config
        self.bugs = make_bugs(bugs)
        #: ``"base"`` = hit-set coverage only; ``"csr"`` additionally tracks
        #: ProcessorFuzz-style CSR value-class transitions (docs/coverage.md).
        self.coverage_model = coverage_model
        self._space: Optional[FrozenSet[str]] = None
        self._last_executor: Optional[DutExecutor] = None

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.config.name

    # -------------------------------------------------------------- coverage space
    def structural_space(self) -> Set[str]:
        """DUT-specific structural coverage points (overridden by subclasses)."""
        return set()

    def structural_points(self, record: CommitRecord, instr: Instruction,
                          executor: DutExecutor) -> Sequence[str]:
        """DUT-specific structural coverage emission (overridden by subclasses)."""
        return _NO_POINTS

    def structural_mask(self, record: CommitRecord, instr: Instruction,
                        executor: DutExecutor) -> int:
        """Structural coverage of one commit as a bitset mask (hot path).

        The three processor models override this with table-driven emitters
        (precomputed per-point masks, no string building per commit).  The
        default derives the mask from :meth:`structural_points`, so any
        subclass that only implements the string form stays correct --
        merely slower.
        """
        points = self.structural_points(record, instr, executor)
        return mask_of(points) if points else 0

    def structural_block_mask(self, records: list, start: int, plan: Tuple,
                              executor: DutExecutor, block=None) -> int:
        """Structural coverage of one fused superblock's commits, batched.

        Called once per superblock by the fused DUT loop with the commit
        records the block appended (``records[start:]`` -- possibly fewer
        than ``len(plan)`` entries after a dirty-store abort) and the
        block's execution plan, whose entries carry the decoded
        instructions.  Equivalent to OR-ing :meth:`structural_mask` over
        the commits in order -- which is exactly what this default does --
        but the three processor models override it with a single loop that
        hoists the table and memo lookups out of the per-commit path (and
        caches the per-entry plans on ``block.model_plans`` when the
        superblock is provided).
        """
        mask = 0
        structural = self.structural_mask
        for offset in range(len(records) - start):
            mask |= structural(records[start + offset], plan[offset][1],
                               executor)
        return mask

    def coverage_space(self) -> FrozenSet[str]:
        """The DUT's full branch coverage space (cached)."""
        if self._space is None:
            space: Set[str] = set(common_space())
            config = self.config
            space |= CacheModel("icache", config.icache_sets, config.cache_ways).space()
            space |= CacheModel("dcache", config.dcache_sets, config.cache_ways).space()
            space |= BranchPredictor("bpred", config.bpred_entries).space()
            space |= HazardTracker("hazard", config.hazard_window).space()
            space |= FunctionalUnitMonitor("fu").space()
            space |= self.structural_space()
            if self.coverage_model == "csr":
                space |= transition_space()
            self._space = frozenset(space)
        return self._space

    @property
    def total_coverage_points(self) -> int:
        return len(self.coverage_space())

    # ------------------------------------------------------------------ run hooks
    def _make_executor(self, state: ArchState, memory: Memory) -> Executor:
        executor_cls = (DutExecutor if self.bitset_coverage
                        else LegacyCoverageExecutor)
        executor = executor_cls(state, memory, self.executor_config, dut=self)
        self._last_executor = executor
        return executor

    def _prepare_run(self, executor: Executor, program: TestProgram) -> None:
        for bug in self.bugs:
            bug.reset()

    # ------------------------------------------------------------------------ run
    def run(self, program: TestProgram,
            max_steps: Optional[int] = None) -> DutRunResult:  # type: ignore[override]
        execution = super().run(program, max_steps)
        executor = self._last_executor
        assert executor is not None
        first_steps = {bug_id: steps[0] for bug_id, steps in executor.bug_effects.items()}
        return DutRunResult(
            execution=execution,
            coverage=executor.coverage_hits(),
            fired_bugs=frozenset(executor.bug_effects),
            bug_effect_steps=first_steps,
        )
