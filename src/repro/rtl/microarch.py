"""Reusable microarchitectural components for the DUT models.

Each component exposes two faces that must stay consistent:

* ``space()`` -- the full set of coverage points the component can ever emit
  (used to enumerate the DUT's coverage space), and
* runtime access methods returning the list of points hit by one event.

Components model state at the granularity needed for realistic coverage
structure (set-indexed caches with dirty evictions, a bimodal branch
predictor, register-hazard tracking, functional-unit corner cases), not at
cycle accuracy: the fuzzers only consume coverage and architectural state.

Every runtime access method has two faces sharing one state update:

* the legacy list-of-strings form (``access``/``update``/``observe``) --
  the reference implementation the unit and parity tests exercise, and
* a ``*_mask`` form returning an integer bitset
  (:mod:`repro.coverage.bitset`) -- the DUT executor's hot path, memoised
  per observable situation so recording coverage is a dict get plus an
  ``|=``.

The mask memos are *class*-level (keyed by component name, so an icache and
a dcache never collide) because component instances are built fresh for
every program run -- a per-instance memo would re-pay the string-building
cost each run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.coverage.bitset import mask_of, point_bit
from repro.coverage.points import coverage_point
from repro.isa.encoding import InstrClass
from repro.utils.bits import to_signed


class CacheModel:
    """A set-associative write-back cache emitting per-set hit/miss/evict points."""

    def __init__(self, name: str, num_sets: int = 64, ways: int = 2,
                 line_bytes: int = 64) -> None:
        if num_sets <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache parameters must be positive")
        self.name = name
        self.num_sets = num_sets
        self.ways = ways
        self.line_bytes = line_bytes
        # Per set: list of (tag, dirty) in LRU order (front = most recent).
        self._sets: Dict[int, List[Tuple[int, bool]]] = {}

    def reset(self) -> None:
        self._sets.clear()

    def space(self) -> Set[str]:
        points = set()
        for index in range(self.num_sets):
            points.add(coverage_point(self.name, f"set{index}", "hit"))
            points.add(coverage_point(self.name, f"set{index}", "miss"))
            points.add(coverage_point(self.name, f"set{index}", "evict"))
        points.add(coverage_point(self.name, "writeback", "dirty"))
        points.add(coverage_point(self.name, "writeback", "clean"))
        points.add(coverage_point(self.name, "access", "load"))
        points.add(coverage_point(self.name, "access", "store"))
        return points

    def _touch(self, address: int,
               is_store: bool) -> Tuple[int, bool, Optional[bool]]:
        """Update cache state for one access.

        Returns ``(set index, hit, victim_dirty)``; ``victim_dirty`` is
        ``None`` unless the miss evicted a line.
        """
        line = address // self.line_bytes
        index = line % self.num_sets
        tag = line // self.num_sets
        entries = self._sets.setdefault(index, [])
        for position, (entry_tag, dirty) in enumerate(entries):
            if entry_tag == tag:
                entries.pop(position)
                entries.insert(0, (tag, dirty or is_store))
                return index, True, None
        victim_dirty = None
        if len(entries) >= self.ways:
            _victim_tag, victim_dirty = entries.pop()
        entries.insert(0, (tag, is_store))
        return index, False, victim_dirty

    def _points_for(self, is_store: bool, index: int, hit: bool,
                    victim_dirty: Optional[bool]) -> List[str]:
        points = [coverage_point(self.name, "access", "store" if is_store else "load")]
        if hit:
            points.append(coverage_point(self.name, f"set{index}", "hit"))
            return points
        points.append(coverage_point(self.name, f"set{index}", "miss"))
        if victim_dirty is not None:
            points.append(coverage_point(self.name, f"set{index}", "evict"))
            points.append(coverage_point(
                self.name, "writeback", "dirty" if victim_dirty else "clean"))
        return points

    def access(self, address: int, is_store: bool = False) -> List[str]:
        """Access ``address``; return the coverage points exercised."""
        index, hit, victim_dirty = self._touch(address, is_store)
        return self._points_for(is_store, index, hit, victim_dirty)

    #: (name, is_store, index, hit, victim_dirty) -> mask, shared by all
    #: instances (components are rebuilt per run; situations are bounded).
    _MASK_MEMO: Dict[Tuple, int] = {}

    def access_mask(self, address: int, is_store: bool = False) -> int:
        """Access ``address``; return the exercised points as a bitset mask."""
        index, hit, victim_dirty = self._touch(address, is_store)
        key = (self.name, is_store, index, hit, victim_dirty)
        mask = self._MASK_MEMO.get(key)
        if mask is None:
            mask = self._MASK_MEMO[key] = mask_of(
                self._points_for(is_store, index, hit, victim_dirty))
        return mask

    def repeat_hit_mask(self, address: int) -> int:
        """Mask of a guaranteed *load re-hit* on the line just accessed.

        A load to a line that is already at the front of its set's LRU list
        hits, moves nothing and dirties nothing -- ``access_mask`` would
        return exactly this mask and leave the cache state untouched.  The
        fused superblock loop exploits that: sequential fetches share a
        64-byte line, so only the first fetch of each line needs the real
        LRU update; the remaining ~15 can ``|=`` this precomputed constant.
        Only valid when ``address``'s line is known to be most-recent in
        its set (i.e. the previous access touched the same line).
        """
        index = (address // self.line_bytes) % self.num_sets
        key = (self.name, False, index, True, None)
        mask = self._MASK_MEMO.get(key)
        if mask is None:
            mask = self._MASK_MEMO[key] = mask_of(
                self._points_for(False, index, True, None))
        return mask

    def line_is_dirty(self, address: int) -> bool:
        """Whether the line containing ``address`` is currently dirty."""
        line = address // self.line_bytes
        index = line % self.num_sets
        tag = line // self.num_sets
        for entry_tag, dirty in self._sets.get(index, ()):
            if entry_tag == tag:
                return dirty
        return False


class BranchPredictor:
    """Bimodal 2-bit predictor with per-entry outcome coverage."""

    def __init__(self, name: str = "bpred", entries: int = 64) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.name = name
        self.entries = entries
        self._counters: Dict[int, int] = {}

    def reset(self) -> None:
        self._counters.clear()

    def space(self) -> Set[str]:
        points = set()
        for index in range(self.entries):
            points.add(coverage_point(self.name, f"entry{index}", "taken"))
            points.add(coverage_point(self.name, f"entry{index}", "nottaken"))
        points.add(coverage_point(self.name, "predict", "correct"))
        points.add(coverage_point(self.name, "predict", "mispredict"))
        return points

    def _observe(self, pc: int, taken: bool) -> Tuple[int, bool]:
        """Update the predictor for one branch; return ``(index, correct)``."""
        index = (pc >> 2) % self.entries
        counter = self._counters.get(index, 1)
        predicted_taken = counter >= 2
        if taken:
            counter = min(counter + 1, 3)
        else:
            counter = max(counter - 1, 0)
        self._counters[index] = counter
        return index, predicted_taken == taken

    def _points_for(self, index: int, taken: bool, correct: bool) -> List[str]:
        return [
            coverage_point(self.name, f"entry{index}",
                           "taken" if taken else "nottaken"),
            coverage_point(self.name, "predict",
                           "correct" if correct else "mispredict"),
        ]

    def update(self, pc: int, taken: bool) -> List[str]:
        """Record the outcome of one branch at ``pc``; return coverage points."""
        index, correct = self._observe(pc, taken)
        return self._points_for(index, taken, correct)

    _MASK_MEMO: Dict[Tuple, int] = {}

    def update_mask(self, pc: int, taken: bool) -> int:
        """Record one branch outcome; return the coverage points as a mask."""
        index, correct = self._observe(pc, taken)
        key = (self.name, index, taken, correct)
        mask = self._MASK_MEMO.get(key)
        if mask is None:
            mask = self._MASK_MEMO[key] = mask_of(
                self._points_for(index, taken, correct))
        return mask


class HazardTracker:
    """Tracks recent destination registers to expose forwarding/stall paths."""

    def __init__(self, name: str = "hazard", window: int = 3) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self.window = window
        self._recent: List[Optional[int]] = []

    def reset(self) -> None:
        self._recent.clear()

    def space(self) -> Set[str]:
        points = set()
        for distance in range(1, self.window + 1):
            points.add(coverage_point(self.name, f"raw_dist{distance}", "rs1"))
            points.add(coverage_point(self.name, f"raw_dist{distance}", "rs2"))
            points.add(coverage_point(self.name, f"waw_dist{distance}"))
        for reg in range(32):
            points.add(coverage_point(self.name, "forward_reg", f"x{reg}"))
        points.add(coverage_point(self.name, "no_hazard"))
        return points

    def observe(self, rd: Optional[int], rs1: Optional[int],
                rs2: Optional[int]) -> List[str]:
        """Record one instruction's register usage; return coverage points."""
        points = []
        hazard = False
        for distance, prior_rd in enumerate(reversed(self._recent), start=1):
            if prior_rd is None or prior_rd == 0:
                continue
            if rs1 is not None and rs1 == prior_rd:
                points.append(coverage_point(self.name, f"raw_dist{distance}", "rs1"))
                points.append(coverage_point(self.name, "forward_reg", f"x{prior_rd}"))
                hazard = True
            if rs2 is not None and rs2 == prior_rd:
                points.append(coverage_point(self.name, f"raw_dist{distance}", "rs2"))
                points.append(coverage_point(self.name, "forward_reg", f"x{prior_rd}"))
                hazard = True
            if rd is not None and rd != 0 and rd == prior_rd:
                points.append(coverage_point(self.name, f"waw_dist{distance}"))
                hazard = True
        if not hazard:
            points.append(coverage_point(self.name, "no_hazard"))
        self._recent.append(rd)
        if len(self._recent) > self.window:
            self._recent.pop(0)
        return points

    #: (name, window) -> precomputed single-point mask tables.
    _MASK_TABLES: Dict[Tuple[str, int], Dict] = {}

    def _mask_table(self) -> Dict:
        table = self._MASK_TABLES.get((self.name, self.window))
        if table is None:
            table = {}
            for distance in range(1, self.window + 1):
                table["rs1", distance] = 1 << point_bit(
                    coverage_point(self.name, f"raw_dist{distance}", "rs1"))
                table["rs2", distance] = 1 << point_bit(
                    coverage_point(self.name, f"raw_dist{distance}", "rs2"))
                table["waw", distance] = 1 << point_bit(
                    coverage_point(self.name, f"waw_dist{distance}"))
            for reg in range(32):
                table["fwd", reg] = 1 << point_bit(
                    coverage_point(self.name, "forward_reg", f"x{reg}"))
            table["no_hazard"] = 1 << point_bit(
                coverage_point(self.name, "no_hazard"))
            self._MASK_TABLES[(self.name, self.window)] = table
        return table

    def observe_mask(self, rd: Optional[int], rs1: Optional[int],
                     rs2: Optional[int]) -> int:
        """Record one instruction's register usage; return points as a mask."""
        table = self._mask_table()
        mask = 0
        hazard = False
        for distance, prior_rd in enumerate(reversed(self._recent), start=1):
            if prior_rd is None or prior_rd == 0:
                continue
            if rs1 is not None and rs1 == prior_rd:
                mask |= table["rs1", distance] | table["fwd", prior_rd]
                hazard = True
            if rs2 is not None and rs2 == prior_rd:
                mask |= table["rs2", distance] | table["fwd", prior_rd]
                hazard = True
            if rd is not None and rd != 0 and rd == prior_rd:
                mask |= table["waw", distance]
                hazard = True
        if not hazard:
            mask = table["no_hazard"]
        self._recent.append(rd)
        if len(self._recent) > self.window:
            self._recent.pop(0)
        return mask


#: Operand magnitude buckets used by the functional-unit monitor.
_OPERAND_BUCKETS = ("zero", "one", "neg", "small", "large")


def _operand_bucket(value: int) -> str:
    signed = to_signed(value)
    if signed == 0:
        return "zero"
    if signed == 1:
        return "one"
    if signed < 0:
        return "neg"
    if signed < 4096:
        return "small"
    return "large"


class FunctionalUnitMonitor:
    """Coverage of multiplier/divider corner cases."""

    def __init__(self, name: str = "fu") -> None:
        self.name = name

    def reset(self) -> None:  # stateless, present for interface symmetry
        return None

    def space(self) -> Set[str]:
        points = set()
        for a in _OPERAND_BUCKETS:
            for b in _OPERAND_BUCKETS:
                points.add(coverage_point(self.name, "mul", f"{a}_{b}"))
                points.add(coverage_point(self.name, "div", f"{a}_{b}"))
        points.add(coverage_point(self.name, "div", "by_zero"))
        points.add(coverage_point(self.name, "div", "overflow"))
        points.add(coverage_point(self.name, "mul", "upper_nonzero"))
        return points

    def _situation(self, cls: InstrClass, rs1_value: int, rs2_value: int,
                   result: int) -> Optional[Tuple]:
        """The bounded situation key of one mul/div observation (or ``None``)."""
        if cls not in (InstrClass.MUL, InstrClass.DIV):
            return None
        bucket = f"{_operand_bucket(rs1_value)}_{_operand_bucket(rs2_value)}"
        if cls is InstrClass.DIV:
            overflow = (to_signed(rs1_value) == -(2**63)
                        and to_signed(rs2_value) == -1)
            return ("div", bucket, rs2_value == 0, overflow)
        return ("mul", bucket, False, bool(result >> 63))

    def _points_for(self, unit: str, bucket: str, by_zero: bool,
                    corner: bool) -> List[str]:
        points = [coverage_point(self.name, unit, bucket)]
        if unit == "div":
            if by_zero:
                points.append(coverage_point(self.name, "div", "by_zero"))
            if corner:
                points.append(coverage_point(self.name, "div", "overflow"))
        elif corner:
            points.append(coverage_point(self.name, "mul", "upper_nonzero"))
        return points

    def observe(self, cls: InstrClass, rs1_value: int, rs2_value: int,
                result: int) -> List[str]:
        """Record one mul/div operation; return coverage points."""
        situation = self._situation(cls, rs1_value, rs2_value, result)
        if situation is None:
            return []
        return self._points_for(*situation)

    _MASK_MEMO: Dict[Tuple, int] = {}

    def observe_mask(self, cls: InstrClass, rs1_value: int, rs2_value: int,
                     result: int) -> int:
        """Record one mul/div operation; return its coverage points as a mask."""
        situation = self._situation(cls, rs1_value, rs2_value, result)
        if situation is None:
            return 0
        key = (self.name, situation)
        mask = self._MASK_MEMO.get(key)
        if mask is None:
            mask = self._MASK_MEMO[key] = mask_of(self._points_for(*situation))
        return mask
