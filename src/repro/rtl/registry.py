"""Name-based construction of DUT models."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Type, Union

from repro.rtl.bugs import InjectedBug
from repro.rtl.boom import BoomModel
from repro.rtl.cva6 import CVA6Model
from repro.rtl.harness import DutConfig, DutModel
from repro.rtl.rocket import RocketModel
from repro.sim.executor import ExecutorConfig

_DUT_CLASSES: Dict[str, Type[DutModel]] = {
    "cva6": CVA6Model,
    "rocket": RocketModel,
    "boom": BoomModel,
}


def available_duts() -> Tuple[str, ...]:
    """Names of the processor models shipped with the library."""
    return tuple(sorted(_DUT_CLASSES))


def make_dut(name: str,
             config: Optional[DutConfig] = None,
             bugs: Union[Sequence[Union[str, InjectedBug]], None] = None,
             executor_config: Optional[ExecutorConfig] = None,
             coverage_model: str = "base") -> DutModel:
    """Instantiate a processor model by name (``"cva6"``, ``"rocket"``, ``"boom"``).

    ``bugs=None`` selects the paper's default bug set for that processor;
    pass an explicit (possibly empty) sequence to override.
    ``coverage_model="csr"`` additionally tracks CSR value-class
    transitions (see :mod:`repro.coverage.csr_transitions`).
    """
    key = name.lower()
    if key not in _DUT_CLASSES:
        raise KeyError(f"unknown DUT {name!r}; available: {available_duts()}")
    return _DUT_CLASSES[key](config=config, bugs=bugs,
                             executor_config=executor_config,
                             coverage_model=coverage_model)
