"""Rocket Core model.

Rocket is an in-order, five-stage RV64 core (Sec. IV-A).  It hosts
vulnerability V7 (EBREAK does not increase the instruction count).  The
structural coverage families model the classic five-stage pipeline:
per-stage activity for every instruction, register-file read/write ports,
bypass paths and the stall/redirect conditions of the control logic.
Most of this structure is reachable by ordinary integer programs, which is
why Rocket sits between CVA6 and BOOM in covered points and percentage.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Union

from repro.coverage.bitset import point_mask
from repro.coverage.points import coverage_point
from repro.isa.encoding import SPECS, InstrClass, spec_for
from repro.isa.instruction import Instruction
from repro.rtl.bugs import ROCKET_BUG_IDS, InjectedBug
from repro.rtl.harness import _INSTR_MEMO_MAX, DutConfig, DutExecutor, DutModel
from repro.sim.executor import ExecutorConfig
from repro.sim.trace import CommitRecord

_PIPELINE_STAGES = ("if", "id", "ex", "mem", "wb")
_STALL_KINDS = ("loaduse", "div", "mul", "csr", "fence", "amo")
_REDIRECT_KINDS = ("branch", "jump", "trap")


class RocketModel(DutModel):
    """In-order five-stage Rocket Core model (hosts V7)."""

    default_config = DutConfig(
        name="rocket",
        icache_sets=8,
        dcache_sets=16,
        cache_ways=2,
        bpred_entries=64,
        hazard_window=2,
    )

    def __init__(self, config: Optional[DutConfig] = None,
                 bugs: Union[Sequence[Union[str, InjectedBug]], None] = None,
                 executor_config: Optional[ExecutorConfig] = None,
                 coverage_model: str = "base") -> None:
        if bugs is None:
            bugs = ROCKET_BUG_IDS
        super().__init__(config, bugs, executor_config,
                         coverage_model=coverage_model)

    # ------------------------------------------------------------------- space
    def structural_space(self) -> Set[str]:
        points: Set[str] = set()
        for stage in _PIPELINE_STAGES:
            for mnemonic in SPECS:
                points.add(coverage_point("rocket", "pipe", stage, mnemonic))
            points.add(coverage_point("rocket", "pipe", stage, "bubble"))
        for reg in range(32):
            points.add(coverage_point("rocket", "regfile", "write", f"x{reg}"))
            points.add(coverage_point("rocket", "regfile", "read", f"x{reg}"))
            points.add(coverage_point("rocket", "bypass", "ex_to_id", f"x{reg}"))
            points.add(coverage_point("rocket", "bypass", "mem_to_id", f"x{reg}"))
        for kind in _STALL_KINDS:
            points.add(coverage_point("rocket", "stall", kind))
        for kind in _REDIRECT_KINDS:
            points.add(coverage_point("rocket", "pcgen", "redirect", kind))
        points.add(coverage_point("rocket", "pcgen", "sequential"))
        return points

    # -------------------------------------------------------------------- emit
    def structural_points(self, record: CommitRecord, instr: Instruction,
                          executor: DutExecutor) -> List[str]:
        points: List[str] = []
        if instr.is_illegal:
            for stage in ("if", "id"):
                points.append(coverage_point("rocket", "pipe", stage, "bubble"))
            return points

        spec = spec_for(instr.mnemonic)
        for stage in _PIPELINE_STAGES:
            points.append(coverage_point("rocket", "pipe", stage, instr.mnemonic))

        if spec.writes_rd and record.rd is not None:
            points.append(coverage_point("rocket", "regfile", "write", f"x{record.rd}"))
        if spec.reads_rs1:
            points.append(coverage_point("rocket", "regfile", "read", f"x{instr.rs1}"))
        if spec.reads_rs2:
            points.append(coverage_point("rocket", "regfile", "read", f"x{instr.rs2}"))

        # Bypass / load-use-stall modelling based on the previous instruction.
        prev = executor.dut_scratch.get("rocket_prev")
        if isinstance(prev, dict) and prev.get("rd"):
            prev_rd = prev["rd"]
            if spec.reads_rs1 and instr.rs1 == prev_rd:
                points.append(coverage_point("rocket", "bypass", "ex_to_id", f"x{prev_rd}"))
                if prev.get("is_load"):
                    points.append(coverage_point("rocket", "stall", "loaduse"))
            if spec.reads_rs2 and instr.rs2 == prev_rd:
                points.append(coverage_point("rocket", "bypass", "mem_to_id", f"x{prev_rd}"))

        cls = spec.cls
        if cls is InstrClass.DIV:
            points.append(coverage_point("rocket", "stall", "div"))
        elif cls is InstrClass.MUL:
            points.append(coverage_point("rocket", "stall", "mul"))
        elif cls is InstrClass.CSR:
            points.append(coverage_point("rocket", "stall", "csr"))
        elif cls is InstrClass.FENCE:
            points.append(coverage_point("rocket", "stall", "fence"))
        elif cls is InstrClass.ATOMIC:
            points.append(coverage_point("rocket", "stall", "amo"))

        if record.trap is not None:
            points.append(coverage_point("rocket", "pcgen", "redirect", "trap"))
        elif cls is InstrClass.JUMP:
            points.append(coverage_point("rocket", "pcgen", "redirect", "jump"))
        elif cls is InstrClass.BRANCH and record.next_pc != record.pc + 4:
            points.append(coverage_point("rocket", "pcgen", "redirect", "branch"))
        else:
            points.append(coverage_point("rocket", "pcgen", "sequential"))

        executor.dut_scratch["rocket_prev"] = {
            "rd": record.rd,
            "is_load": cls is InstrClass.LOAD,
        }
        return points

    # ------------------------------------------------------------------- masks
    # Table-driven twin of structural_points: every point mask is
    # precomputed once per model instance, so emitting a commit's structural
    # coverage is a handful of table lookups and ``|=`` -- no string
    # building on the hot path.  The parity tests assert this path matches
    # the string emission above on user and trap corpora.
    def _structural_tables(self) -> dict:
        tables = self.__dict__.get("_rocket_tables")
        if tables is None:
            tables = {
                "illegal": point_mask("rocket", "pipe", "if", "bubble")
                | point_mask("rocket", "pipe", "id", "bubble"),
                "pipe": {
                    mnemonic: sum(point_mask("rocket", "pipe", stage, mnemonic)
                                  for stage in _PIPELINE_STAGES)
                    for mnemonic in SPECS
                },
                "rf_write": [point_mask("rocket", "regfile", "write", f"x{reg}")
                             for reg in range(32)],
                "rf_read": [point_mask("rocket", "regfile", "read", f"x{reg}")
                            for reg in range(32)],
                "bypass_ex": [point_mask("rocket", "bypass", "ex_to_id", f"x{reg}")
                              for reg in range(32)],
                "bypass_mem": [point_mask("rocket", "bypass", "mem_to_id", f"x{reg}")
                               for reg in range(32)],
                "stall": {
                    InstrClass.DIV: point_mask("rocket", "stall", "div"),
                    InstrClass.MUL: point_mask("rocket", "stall", "mul"),
                    InstrClass.CSR: point_mask("rocket", "stall", "csr"),
                    InstrClass.FENCE: point_mask("rocket", "stall", "fence"),
                    InstrClass.ATOMIC: point_mask("rocket", "stall", "amo"),
                },
                "stall_loaduse": point_mask("rocket", "stall", "loaduse"),
                "redirect_trap": point_mask("rocket", "pcgen", "redirect", "trap"),
                "redirect_jump": point_mask("rocket", "pcgen", "redirect", "jump"),
                "redirect_branch": point_mask("rocket", "pcgen", "redirect", "branch"),
                "sequential": point_mask("rocket", "pcgen", "sequential"),
                "plans": {},  # per-instruction static plans, filled lazily
            }
            self.__dict__["_rocket_tables"] = tables
        return tables

    @staticmethod
    def _instr_plan(instr: Instruction, tables: dict) -> tuple:
        """Per-instruction static plan: pipeline/regfile-read/stall masks
        and the spec flags, resolved once per decoded instruction."""
        plans = tables["plans"]
        plan = plans.get(instr)
        if plan is None:
            spec = spec_for(instr.mnemonic)
            base = tables["pipe"][instr.mnemonic]
            if spec.reads_rs1:
                base |= tables["rf_read"][instr.rs1]
            if spec.reads_rs2:
                base |= tables["rf_read"][instr.rs2]
            stall = tables["stall"].get(spec.cls)
            if stall is not None:
                base |= stall
            if len(plans) >= _INSTR_MEMO_MAX:
                plans.clear()
            plan = plans[instr] = (
                base, spec.writes_rd,
                instr.rs1 if spec.reads_rs1 else None,
                instr.rs2 if spec.reads_rs2 else None,
                spec.cls,
            )
        return plan

    def structural_mask(self, record: CommitRecord, instr: Instruction,
                        executor: DutExecutor) -> int:
        tables = self._structural_tables()
        if instr.is_illegal:
            return tables["illegal"]

        mask, writes_rd, rs1, rs2, cls = self._instr_plan(instr, tables)

        rd = record.rd
        if writes_rd and rd is not None:
            mask |= tables["rf_write"][rd]

        # The mask path keeps its previous-commit state as a plain
        # ``(rd, is_load)`` tuple -- the legacy string path above uses a
        # dict; the two faces never interleave within one run, and a tuple
        # avoids allocating a dict per committed instruction.
        prev = executor.dut_scratch.get("rocket_prev_mask")
        if prev is not None and prev[0]:
            prev_rd = prev[0]
            if rs1 == prev_rd:
                mask |= tables["bypass_ex"][prev_rd]
                if prev[1]:
                    mask |= tables["stall_loaduse"]
            if rs2 == prev_rd:
                mask |= tables["bypass_mem"][prev_rd]

        if record.trap is not None:
            mask |= tables["redirect_trap"]
        elif cls is InstrClass.JUMP:
            mask |= tables["redirect_jump"]
        elif cls is InstrClass.BRANCH and record.next_pc != record.pc + 4:
            mask |= tables["redirect_branch"]
        else:
            mask |= tables["sequential"]

        executor.dut_scratch["rocket_prev_mask"] = (rd, cls is InstrClass.LOAD)
        return mask

    def structural_block_mask(self, records: list, start: int, plan: tuple,
                              executor: DutExecutor, block=None) -> int:
        """One-call-per-superblock twin of :meth:`structural_mask`.

        Identical emission and scratch-state evolution, with the table and
        previous-commit lookups hoisted out of the per-commit loop.
        Illegal words (``None`` in the per-block plan list) emit only the
        fetch/decode bubbles and leave the previous-commit state alone,
        like the per-commit illegal fast-exit.  The per-entry static plans
        are resolved once per block and cached on ``block.model_plans``
        (masks are stable for the life of the process), replacing an
        instruction-hash memo lookup per commit with a list index.
        """
        tables = self._structural_tables()
        plans = None if block is None else block.model_plans.get(RocketModel)
        if plans is None:
            instr_plan = self._instr_plan
            plans = [None if entry[3] is None else instr_plan(entry[1], tables)
                     for entry in plan]
            if block is not None:
                block.model_plans[RocketModel] = plans
        illegal = tables["illegal"]
        rf_write = tables["rf_write"]
        bypass_ex = tables["bypass_ex"]
        bypass_mem = tables["bypass_mem"]
        stall_loaduse = tables["stall_loaduse"]
        redirect_trap = tables["redirect_trap"]
        redirect_jump = tables["redirect_jump"]
        redirect_branch = tables["redirect_branch"]
        sequential = tables["sequential"]
        scratch = executor.dut_scratch
        prev = scratch.get("rocket_prev_mask")
        jump_cls = InstrClass.JUMP
        branch_cls = InstrClass.BRANCH
        load_cls = InstrClass.LOAD
        mask = 0
        for offset in range(len(records) - start):
            record = records[start + offset]
            iplan = plans[offset]
            if iplan is None:
                mask |= illegal
                continue
            base, writes_rd, rs1, rs2, cls = iplan
            m = base
            rd = record.rd
            if writes_rd and rd is not None:
                m |= rf_write[rd]
            if prev is not None and prev[0]:
                prev_rd = prev[0]
                if rs1 == prev_rd:
                    m |= bypass_ex[prev_rd]
                    if prev[1]:
                        m |= stall_loaduse
                if rs2 == prev_rd:
                    m |= bypass_mem[prev_rd]
            if record.trap is not None:
                m |= redirect_trap
            elif cls is jump_cls:
                m |= redirect_jump
            elif cls is branch_cls and record.next_pc != record.pc + 4:
                m |= redirect_branch
            else:
                m |= sequential
            prev = (rd, cls is load_cls)
            mask |= m
        scratch["rocket_prev_mask"] = prev
        return mask
