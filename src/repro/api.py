"""High-level convenience API.

The functions here are what the examples, benchmarks and README snippets
use: build a processor model by name, build a fuzzer by name (``"thehuzz"``,
``"mabfuzz:ucb"`` ...), and run a quick campaign.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.config import MABFuzzConfig
from repro.core.mabfuzz import MABFuzz
from repro.core.mutation_bandit import MutationBanditFuzzer
from repro.fuzzing.base import Fuzzer, FuzzerConfig
from repro.fuzzing.random_fuzzer import RandomFuzzer
from repro.fuzzing.results import FuzzCampaignResult
from repro.fuzzing.thehuzz import TheHuzzFuzzer
from repro.rtl.harness import DutModel
from repro.rtl.registry import available_duts, make_dut

#: Canonical fuzzer names accepted by :func:`make_fuzzer`.
_FUZZER_NAMES = (
    "thehuzz",
    "random",
    "mabfuzz:egreedy",
    "mabfuzz:ucb",
    "mabfuzz:exp3",
    "mabfuzz:uniform",
    "mabfuzz:roundrobin",
    "mabfuzz:greedy",
    "mutation-bandit:exp3",
    "mutation-bandit:ucb",
    "mutation-bandit:egreedy",
)


def available_processors() -> Tuple[str, ...]:
    """Names of the processor models that can be fuzzed."""
    return available_duts()


def available_fuzzers() -> Tuple[str, ...]:
    """Names accepted by :func:`make_fuzzer`."""
    return _FUZZER_NAMES


def make_processor(name: str, bugs=None, config=None,
                   coverage_model: str = "base") -> DutModel:
    """Build a processor model by name (``"cva6"``, ``"rocket"``, ``"boom"``).

    ``bugs=None`` injects the paper's default vulnerabilities for that core.
    ``coverage_model="csr"`` additionally tracks CSR value-class transitions
    (see docs/coverage.md).
    """
    return make_dut(name, config=config, bugs=bugs,
                    coverage_model=coverage_model)


def make_fuzzer(name: str,
                dut: DutModel,
                fuzzer_config: Optional[FuzzerConfig] = None,
                mab_config: Optional[MABFuzzConfig] = None,
                rng=None) -> Fuzzer:
    """Build a fuzzer by name for ``dut``.

    Accepted names: ``"thehuzz"``, ``"random"``, ``"mabfuzz:<algorithm>"``
    (ε-greedy/ucb/exp3 plus the baseline policies) and
    ``"mutation-bandit:<algorithm>"``.
    """
    key = name.lower()
    if key == "thehuzz":
        return TheHuzzFuzzer(dut, config=fuzzer_config, rng=rng)
    if key == "random":
        return RandomFuzzer(dut, config=fuzzer_config, rng=rng)
    if key.startswith("mabfuzz:"):
        algorithm = key.split(":", 1)[1]
        return MABFuzz(dut, algorithm=algorithm, mab_config=mab_config,
                       config=fuzzer_config, rng=rng)
    if key.startswith("mutation-bandit:"):
        algorithm = key.split(":", 1)[1]
        return MutationBanditFuzzer(dut, algorithm=algorithm, mab_config=mab_config,
                                    config=fuzzer_config, rng=rng)
    raise KeyError(f"unknown fuzzer {name!r}; available: {available_fuzzers()}")


def quick_campaign(processor: str = "cva6",
                   fuzzer: str = "mabfuzz:ucb",
                   num_tests: int = 200,
                   seed: Optional[int] = 0,
                   bugs=None,
                   fuzzer_config: Optional[FuzzerConfig] = None,
                   mab_config: Optional[MABFuzzConfig] = None,
                   coverage_model: str = "base") -> FuzzCampaignResult:
    """Run a small end-to-end fuzzing campaign and return its result."""
    dut = make_processor(processor, bugs=bugs, coverage_model=coverage_model)
    fuzz = make_fuzzer(fuzzer, dut, fuzzer_config=fuzzer_config,
                       mab_config=mab_config, rng=seed)
    return fuzz.run(num_tests)
