"""Worker transports and the supervisor that owns worker lifecycles.

The dispatcher half of campaign-as-a-service (``docs/service.md``).  A
:class:`Transport` knows how to launch a ``repro.cli worker`` process on
a host and how to health-check it: :class:`LocalTransport` forks on the
dispatcher's machine, :class:`SshTransport` wraps the same command in an
``ssh`` invocation whose local process mirrors the remote worker's
lifetime.  :class:`WorkerSupervisor` drives a fleet of them end to end:

* **spawn** every configured host's worker via its transport,
* **watch** liveness each dispatcher poll -- process exit status plus a
  transport-level probe (the claim-heartbeat protocol in
  :mod:`~repro.exec.queue` independently covers the work itself),
* **restart** crashed workers under a crash-loop budget -- more than
  ``crash_loop_budget`` restarts inside ``crash_window`` seconds marks
  the host *degraded* and stops respawning there; the spool queue then
  redistributes its share to the surviving hosts by construction
  (batches are pulled, not pushed),
* **drain** on shutdown: the dispatcher writes the STOP sentinel, the
  supervisor waits for workers to exit and terminates stragglers.

Because trials are deterministic and the queue requeues expired claims,
a supervised restart re-executes lost batches bit-identically -- a grid
that loses a host mid-flight still finishes equal to serial
(``tests/exec/test_transport_chaos.py``).

Fault sites ``transport.spawn`` (launch fails) and ``transport.probe``
(health check reports a live worker dead) make both failure paths
deterministically reproducible through the standard
:class:`~repro.exec.faults.FaultPlan` machinery.
"""

from __future__ import annotations

import os
import shlex
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec import faults

#: default crash-loop budget: restarts allowed inside one crash window
#: before a host is marked degraded.
DEFAULT_CRASH_LOOP_BUDGET = 3

#: default crash window in seconds (sliding, per host).
DEFAULT_CRASH_WINDOW = 60.0


class WorkerHandle:
    """One launched worker process, as seen through its transport."""

    def __init__(self, process: subprocess.Popen, host: str,
                 worker_id: str) -> None:
        self.process = process
        self.host = host
        self.worker_id = worker_id

    def alive(self) -> bool:
        return self.process.poll() is None

    @property
    def returncode(self) -> Optional[int]:
        return self.process.poll()

    def terminate(self, grace: float = 2.0) -> None:
        """SIGTERM, a bounded wait, then SIGKILL -- never hangs shutdown."""
        if not self.alive():
            return
        self.process.terminate()
        try:
            self.process.wait(timeout=grace)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()


class Transport:
    """Launches and health-checks worker processes on one class of host."""

    def spawn(self, command: Sequence[str], extra_env: Dict[str, str],
              host: str, worker_id: str,
              log_path: Optional[str] = None) -> WorkerHandle:
        """Launch ``command`` for ``host``; raises ``OSError`` on failure.

        ``extra_env`` carries only the variables the supervisor wants the
        worker to see beyond a clean inherited environment (PYTHONPATH,
        an optional fault plan); the dispatcher's own ``REPRO_FAULT_PLAN``
        never leaks through.
        """
        for rule in faults.fire(faults.SITE_TRANSPORT_SPAWN, host=host,
                                worker_id=worker_id):
            faults.perform(rule)
        return self._spawn(command, extra_env, host, worker_id, log_path)

    def _spawn(self, command, extra_env, host, worker_id, log_path):
        raise NotImplementedError

    def probe(self, handle: WorkerHandle) -> bool:
        """Is the worker behind ``handle`` still alive?

        The ``down`` fault action overrides a healthy answer -- the
        deterministic stand-in for a hung host or a partitioned network,
        where the process table still says "running" but the host is
        effectively gone.
        """
        for rule in faults.fire(faults.SITE_TRANSPORT_PROBE,
                                host=handle.host, worker_id=handle.worker_id):
            if rule.action == faults.ACTION_DOWN:
                return False
            faults.perform(rule)
        return handle.alive()

    def describe(self) -> str:
        return type(self).__name__

    @staticmethod
    def _open_log(log_path: Optional[str]):
        if log_path is None:
            return subprocess.DEVNULL
        parent = os.path.dirname(log_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        return open(log_path, "ab")


class LocalTransport(Transport):
    """Fork workers on the dispatcher's own machine."""

    def _spawn(self, command, extra_env, host, worker_id, log_path):
        env = dict(os.environ)
        env.pop(faults.FAULT_PLAN_ENV, None)  # dispatcher plan stays local
        env.update(extra_env)
        log = self._open_log(log_path)
        try:
            process = subprocess.Popen(list(command), env=env,
                                       stdout=log, stderr=subprocess.STDOUT)
        finally:
            if log is not subprocess.DEVNULL:
                log.close()  # the child holds its own descriptor
        return WorkerHandle(process, host=host, worker_id=worker_id)

    def describe(self) -> str:
        return "local"


class SshTransport(Transport):
    """Launch workers on remote hosts through ``ssh``.

    The local ``ssh`` process mirrors the remote command's lifetime --
    it exits with the remote exit status -- so liveness probing and
    supervision work identically to :class:`LocalTransport`.  The
    binary and its options are configurable (``BatchMode`` and a connect
    timeout by default, a stub script in tests), and the remote side
    must be able to resolve ``repro`` (``remote_python`` plus an
    optional ``remote_pythonpath``); see the transport matrix in
    ``docs/service.md``.
    """

    def __init__(self, ssh_binary: str = "ssh",
                 ssh_options: Sequence[str] = ("-o", "BatchMode=yes",
                                               "-o", "ConnectTimeout=5"),
                 remote_python: str = "python3",
                 remote_pythonpath: Optional[str] = None) -> None:
        self.ssh_binary = ssh_binary
        self.ssh_options = tuple(ssh_options)
        self.remote_python = remote_python
        self.remote_pythonpath = remote_pythonpath

    def _spawn(self, command, extra_env, host, worker_id, log_path):
        env_pairs = dict(extra_env)
        if self.remote_pythonpath is not None:
            env_pairs["PYTHONPATH"] = self.remote_pythonpath
        remote = " ".join(shlex.quote(part) for part in command)
        if env_pairs:
            prefix = " ".join(f"{key}={shlex.quote(value)}"
                              for key, value in sorted(env_pairs.items()))
            remote = f"env {prefix} {remote}"
        argv = [self.ssh_binary, *self.ssh_options, host, remote]
        log = self._open_log(log_path)
        try:
            process = subprocess.Popen(argv, stdout=log,
                                       stderr=subprocess.STDOUT)
        finally:
            if log is not subprocess.DEVNULL:
                log.close()
        return WorkerHandle(process, host=host, worker_id=worker_id)

    def describe(self) -> str:
        return f"ssh({self.ssh_binary})"


@dataclass
class WorkerSpec:
    """One supervised worker slot: a host, its transport, and its knobs.

    ``fault_plan`` (a plan-file path) is exported as ``REPRO_FAULT_PLAN``
    to the **first spawn only** by default: a plan that kills the worker
    must not re-fire on the supervised restart, or the restart loop it
    exists to test would never converge.  ``fault_plan_all_generations``
    opts back in -- that is how the crash-loop-budget tests make every
    generation die.
    """

    host: str
    transport: Transport
    fault_plan: Optional[str] = None
    fault_plan_all_generations: bool = False
    extra_args: Tuple[str, ...] = ()


class _HostState:
    """Supervisor-internal bookkeeping for one worker slot."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.handle: Optional[WorkerHandle] = None
        self.generation = 0
        self.restart_times: List[float] = []
        self.degraded = False
        self.clean_exit = False


class WorkerSupervisor:
    """Owns a fleet of supervised workers for one campaign queue.

    Wired into :class:`~repro.exec.distributed.DistributedBackend` via
    its ``supervisor`` argument: the dispatcher calls :meth:`start`
    before enqueueing, :meth:`poll` once per result-scan pass, and
    :meth:`drain` after writing the STOP sentinel.  ``telemetry`` (set
    by the backend, duck-typed to
    :class:`~repro.telemetry.sink.TelemetryRecorder`) receives one event
    per lifecycle transition.

    Attributes:
        queue_dir: spool directory the workers serve.
        crash_loop_budget: restarts allowed per host inside
            ``crash_window`` seconds; the next crash degrades the host.
        worker_args: extra ``repro.cli worker`` arguments shared by all
            hosts (per-host extras live on the :class:`WorkerSpec`).
        env: extra environment variables exported to every worker.
        log_dir: per-worker log files (``{worker_id}.log``) land here;
            ``None`` discards worker output.
    """

    def __init__(
        self,
        specs: Sequence[WorkerSpec],
        queue_dir: str,
        python: Optional[str] = None,
        crash_loop_budget: int = DEFAULT_CRASH_LOOP_BUDGET,
        crash_window: float = DEFAULT_CRASH_WINDOW,
        worker_args: Sequence[str] = (),
        env: Optional[Dict[str, str]] = None,
        log_dir: Optional[str] = None,
        log=None,
        clock=time.monotonic,
    ) -> None:
        if not specs:
            raise ValueError("supervisor needs at least one WorkerSpec")
        if crash_loop_budget < 1:
            raise ValueError("crash_loop_budget must be >= 1")
        if crash_window <= 0:
            raise ValueError("crash_window must be > 0")
        self.queue_dir = str(queue_dir)
        self.python = python or sys.executable
        self.crash_loop_budget = crash_loop_budget
        self.crash_window = crash_window
        self.worker_args = tuple(worker_args)
        self.env = dict(env or {})
        self.log_dir = log_dir
        self._log = log or (lambda line: None)
        self._clock = clock
        self._states = [_HostState(spec) for spec in specs]
        self.telemetry = None  # duck-typed TelemetryRecorder, set by backend
        self._counters = {"spawned": 0, "restarts": 0, "spawn_failures": 0,
                          "probe_failures": 0, "clean_exits": 0}

    # ---------------------------------------------------------------- events
    def _record(self, kind: str, **fields: object) -> None:
        if self.telemetry is not None:
            self.telemetry.record(kind, **fields)

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Spawn every configured worker (failures consume the crash budget)."""
        for state in self._states:
            self._spawn(state)

    def _worker_id(self, state: _HostState) -> str:
        return f"{state.spec.host}-g{state.generation}"

    def _command(self, state: _HostState, worker_id: str) -> List[str]:
        return [self.python, "-m", "repro.cli", "worker",
                "--queue", self.queue_dir, "--worker-id", worker_id,
                *self.worker_args, *state.spec.extra_args]

    def _spawn(self, state: _HostState) -> bool:
        """Launch ``state``'s next worker generation; degrade on a crash loop."""
        while not state.degraded:
            spec = state.spec
            worker_id = self._worker_id(state)
            extra_env = dict(self.env)
            if spec.fault_plan and (state.generation == 0
                                    or spec.fault_plan_all_generations):
                extra_env[faults.FAULT_PLAN_ENV] = spec.fault_plan
            log_path = (os.path.join(self.log_dir, f"{worker_id}.log")
                        if self.log_dir else None)
            try:
                state.handle = spec.transport.spawn(
                    self._command(state, worker_id), extra_env,
                    host=spec.host, worker_id=worker_id, log_path=log_path)
            except OSError as error:
                self._counters["spawn_failures"] += 1
                self._log(f"supervisor: spawn of {worker_id} on {spec.host} "
                          f"failed: {error}")
                if not self._charge_crash(state):
                    return False
                state.generation += 1
                continue  # retry immediately under the remaining budget
            self._counters["spawned"] += 1
            self._log(f"supervisor: spawned {worker_id} on {spec.host} "
                      f"({spec.transport.describe()})")
            self._record("worker_spawn", host=spec.host, worker_id=worker_id,
                         generation=state.generation)
            return True
        return False

    def _charge_crash(self, state: _HostState) -> bool:
        """One crash observed; ``False`` once the budget degrades the host."""
        now = self._clock()
        state.restart_times = [when for when in state.restart_times
                               if now - when < self.crash_window]
        if len(state.restart_times) >= self.crash_loop_budget:
            state.degraded = True
            state.handle = None
            self._log(f"supervisor: host {state.spec.host} degraded after "
                      f"{len(state.restart_times)} restarts in "
                      f"{self.crash_window:.0f}s; redistributing its share")
            self._record("host_degraded", host=state.spec.host,
                         restarts=len(state.restart_times),
                         window=self.crash_window)
            return False
        state.restart_times.append(now)
        return True

    def poll(self) -> None:
        """One liveness pass: reap exits, probe survivors, restart crashes."""
        for state in self._states:
            if state.degraded or state.clean_exit or state.handle is None:
                continue
            handle = state.handle
            returncode = handle.returncode
            if returncode is None:
                if state.spec.transport.probe(handle):
                    continue
                # The probe says dead while the process table says alive
                # (hung host, partitioned network): reclaim the slot
                # ourselves, then treat it exactly like a crash.
                self._counters["probe_failures"] += 1
                handle.terminate()
                returncode = handle.returncode
                self._log(f"supervisor: probe lost {handle.worker_id} on "
                          f"{state.spec.host}")
            self._record("worker_exit", host=state.spec.host,
                         worker_id=handle.worker_id, returncode=returncode)
            if returncode == 0:
                # A drained worker (STOP sentinel, --max-tasks recycling
                # budget spent) is a success, not a crash.
                state.clean_exit = True
                state.handle = None
                self._counters["clean_exits"] += 1
                self._log(f"supervisor: {handle.worker_id} exited cleanly")
                continue
            self._log(f"supervisor: {handle.worker_id} on {state.spec.host} "
                      f"died (exit {returncode})")
            state.handle = None
            if self._charge_crash(state):
                state.generation += 1
                if self._spawn(state):
                    self._counters["restarts"] += 1
                    self._record("worker_restart", host=state.spec.host,
                                 worker_id=self._worker_id(state),
                                 generation=state.generation)

    def drain(self, timeout: float = 30.0) -> None:
        """Wait for workers to exit (STOP already posted); reap stragglers."""
        deadline = time.monotonic() + timeout
        live = [state for state in self._states if state.handle is not None]
        while live and time.monotonic() < deadline:
            live = [state for state in live
                    if state.handle is not None and state.handle.alive()]
            if live:
                time.sleep(0.05)
        for state in self._states:
            handle = state.handle
            if handle is None:
                continue
            if handle.alive():
                self._log(f"supervisor: terminating straggler {handle.worker_id}")
                handle.terminate()
            self._record("worker_exit", host=state.spec.host,
                         worker_id=handle.worker_id,
                         returncode=handle.returncode)
            state.handle = None

    # ------------------------------------------------------------- inspection
    @property
    def all_degraded(self) -> bool:
        """Every supervised host is out of budget: no capacity remains."""
        return all(state.degraded for state in self._states)

    def live_workers(self) -> int:
        return sum(1 for state in self._states
                   if state.handle is not None and state.handle.alive())

    def degraded_hosts(self) -> List[str]:
        return sorted(state.spec.host for state in self._states
                      if state.degraded)

    def stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = dict(self._counters)
        stats["hosts"] = len(self._states)
        stats["degraded_hosts"] = self.degraded_hosts()
        return stats


__all__ = [
    "DEFAULT_CRASH_LOOP_BUDGET",
    "DEFAULT_CRASH_WINDOW",
    "LocalTransport",
    "SshTransport",
    "Transport",
    "WorkerHandle",
    "WorkerSpec",
    "WorkerSupervisor",
]
