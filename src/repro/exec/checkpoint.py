"""JSONL checkpoint journal for campaign grids.

One journal file records the completed trials of one (or several) grid
runs, one JSON object per line, append-only:

* ``{"kind": "grid", "specs": [...], ...}`` -- informational header
  written at the start of every grid run (spec fingerprints + labels).
* ``{"kind": "trial", "spec": <fingerprint>, "trial": <index>,
  "result": <FuzzCampaignResult.to_dict()>, "check": <crc32>}`` -- one
  completed trial.
* ``{"kind": "corpus", "delta": {"points": [...], "entries": [...]},
  "check": <crc32>}`` -- one corpus-mode batch's coverage/seed delta
  (:meth:`~repro.fuzzing.corpus.CorpusManager.delta_payload`), appended
  as batches finish so ``--resume`` restores the feedback loop, not just
  the completed trials.  Replay folds deltas in file order through the
  idempotent corpus merge, so duplicated records (dispatcher retries) and
  salvaged-around gaps both degrade gracefully.

Trials are keyed by *spec fingerprint*, not by grid position, so a resumed
run matches completed work even if the grid is re-assembled in a different
order (or a superset grid is launched later).

Corruption safety: every record carries a CRC-32 checksum of its own
content, and :meth:`CheckpointJournal.load` runs a **salvage pass** -- a
half-written final line (the normal aftermath of killing a run
mid-append), an undecodable interior line, or a line that parses but fails
its checksum (bit rot, overlapping writes on a broken filesystem) is
skipped and *counted*, never trusted and never fatal.  The tally of
salvaged-vs-dropped records is exposed as
:attr:`CheckpointJournal.last_load_stats` so the engine can report how
much of a damaged journal survived.  Records without a checksum (journals
written before checksums existed) still load.

Concurrent writers are supported: each record is appended with a single
``write(2)`` on an ``O_APPEND`` descriptor, so records from two processes
sharing one journal (as distributed dispatchers may) interleave only at
line granularity, never inside a line.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, Optional, Sequence, Tuple

from repro.exec import faults
from repro.fuzzing.results import FuzzCampaignResult
from repro.harness.campaign import CampaignSpec

JOURNAL_VERSION = 1

#: key of one completed trial: (spec fingerprint, trial index).
TrialKey = Tuple[str, int]

#: record field holding the CRC-32 of the rest of the record.
CHECK_KEY = "check"


def record_checksum(record: dict) -> int:
    """CRC-32 over the canonical JSON of ``record`` minus its checksum."""
    body = {key: value for key, value in record.items() if key != CHECK_KEY}
    return zlib.crc32(json.dumps(body, sort_keys=True).encode("utf-8"))


class CheckpointJournal:
    """Append-only JSONL journal of completed grid trials."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fd: Optional[int] = None
        #: salvage tally of the most recent :meth:`load`: records loaded,
        #: records dropped (and why).
        self.last_load_stats: Dict[str, int] = {}
        #: corpus deltas of the most recent :meth:`load`, in journal
        #: order; the engine folds them into its corpus state on resume.
        self.last_corpus_deltas: list = []

    # ------------------------------------------------------------------ loading
    def load(self) -> Dict[TrialKey, FuzzCampaignResult]:
        """Read every completed trial recorded in the journal.

        Returns a mapping from :data:`TrialKey` to the deserialized
        result.  Unknown line kinds are ignored (forward compatibility).
        Damaged lines are *salvaged around*: an undecodable line (torn
        tail or interior), a record failing its checksum, or a malformed
        trial record is dropped and tallied in
        :attr:`last_load_stats` -- ``{"loaded": .., "dropped": ..,
        "dropped_undecodable": .., "dropped_checksum": ..,
        "dropped_malformed": ..}``.  A missing file is simply an empty
        journal.
        """
        completed: Dict[TrialKey, FuzzCampaignResult] = {}
        stats = {"loaded": 0, "dropped": 0, "dropped_undecodable": 0,
                 "dropped_checksum": 0, "dropped_malformed": 0}
        self.last_load_stats = stats
        self.last_corpus_deltas = []

        def drop(reason: str) -> None:
            stats["dropped"] += 1
            stats[f"dropped_{reason}"] += 1

        if not os.path.exists(self.path):
            return completed
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A truncated append (kill/crash mid-write) or an
                    # interior record damaged beyond parsing.
                    drop("undecodable")
                    continue
                if not isinstance(record, dict):
                    drop("malformed")
                    continue
                if CHECK_KEY in record:
                    try:
                        check = int(record[CHECK_KEY])
                    except (TypeError, ValueError):
                        check = -1
                    if check != record_checksum(record):
                        # Parses, but the content is not what was written
                        # -- the case only a checksum can catch.
                        drop("checksum")
                        continue
                if record.get("kind") == "grid":
                    version = record.get("version", JOURNAL_VERSION)
                    if version != JOURNAL_VERSION:
                        raise ValueError(
                            f"checkpoint journal {self.path} has format "
                            f"version {version}; this build reads version "
                            f"{JOURNAL_VERSION} -- refusing a partial restore")
                    continue
                if record.get("kind") == "corpus":
                    delta = record.get("delta")
                    if isinstance(delta, dict):
                        self.last_corpus_deltas.append(delta)
                    else:
                        drop("malformed")
                    continue
                if record.get("kind") != "trial":
                    continue
                try:
                    key = (str(record["spec"]), int(record["trial"]))
                    completed[key] = FuzzCampaignResult.from_dict(record["result"])
                except (KeyError, TypeError, ValueError):
                    drop("malformed")
                    continue
                stats["loaded"] += 1
        return completed

    # ------------------------------------------------------------------ writing
    def _append(self, record: dict) -> None:
        if self._fd is None:
            self._fd = os.open(self.path,
                               os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        record = dict(record)
        record[CHECK_KEY] = record_checksum(record)
        # One write(2) per record: O_APPEND makes concurrent appends from
        # several processes land whole, in some order, never interleaved.
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        for rule in faults.fire(faults.SITE_JOURNAL_APPEND,
                                kind=record.get("kind")):
            # A torn record glues onto the next append exactly as a real
            # mid-write crash would; the salvage pass owns recovery.
            data = faults.corrupt_bytes(data, rule)
        written = os.write(self._fd, data)
        if written != len(data):
            # A short write (ENOSPC edge, RLIMIT_FSIZE) would silently
            # corrupt this record and swallow the next one on load.
            raise OSError(f"short write to checkpoint journal {self.path}: "
                          f"{written}/{len(data)} bytes")
        os.fsync(self._fd)

    def record_grid(self, specs: Sequence[CampaignSpec]) -> None:
        """Append an informational header describing the grid being run."""
        self._append({
            "kind": "grid",
            "version": JOURNAL_VERSION,
            "specs": [{"fingerprint": spec.fingerprint(),
                       "label": spec.describe(),
                       "trials": spec.trials} for spec in specs],
        })

    def record_trial(self, spec: CampaignSpec, trial_index: int,
                     result) -> None:
        """Append one completed trial (flushed + fsynced before returning).

        ``result`` is a :class:`FuzzCampaignResult` or, when the caller
        already holds the backend's serialized form, its ``to_dict()``
        payload -- the engine passes payloads straight through so results
        are encoded exactly once per trial.
        """
        self._append({
            "kind": "trial",
            "spec": spec.fingerprint(),
            "trial": trial_index,
            "result": result if isinstance(result, dict) else result.to_dict(),
        })

    def record_corpus(self, delta: Dict[str, object]) -> None:
        """Append one corpus-mode batch delta (checksummed like any record).

        Empty deltas (a batch that discovered nothing new) are skipped --
        they would replay as no-ops anyway and only grow the journal.
        """
        if not delta.get("points") and not delta.get("entries"):
            return
        self._append({"kind": "corpus", "delta": delta})

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
