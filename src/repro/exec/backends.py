"""Pluggable trial-execution backends.

A backend consumes :class:`TrialTask` work units -- one (spec, trial)
cell of a campaign grid -- and yields ``(task, result_dict)`` pairs as
trials finish.  Results cross the backend boundary as
``FuzzCampaignResult.to_dict()`` payloads on *every* backend, so the
serial path exercises exactly the serialization the multi-process path
depends on, and the engine can journal a result without re-encoding it.

Two backends ship today:

* :class:`SerialBackend` -- in-process, in-order; the determinism oracle
  and the debugging path (breakpoints work, tracebacks are local).
* :class:`ProcessPoolBackend` -- ``concurrent.futures`` pool with optional
  worker recycling (``max_tasks_per_child``), completion-order streaming.

The interface is deliberately narrow (spec in, dict out, no shared state)
so a future distributed backend only needs a transport for the same
payloads.
"""

from __future__ import annotations

import abc
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.harness.campaign import CampaignSpec, run_campaign


@dataclass(frozen=True)
class TrialTask:
    """One unit of backend work: trial ``trial_index`` of ``spec``.

    ``spec_index`` is the spec's position in the submitted grid; backends
    carry it through untouched so the engine can reassemble results
    without re-deriving fingerprints.
    """

    spec_index: int
    trial_index: int
    spec: CampaignSpec


def execute_trial(task: TrialTask) -> Tuple[int, int, Dict[str, object]]:
    """Run one trial and return ``(spec_index, trial_index, result_dict)``.

    This is the function worker processes execute, so it must stay
    module-level (picklable) and self-contained: it builds the DUT and
    fuzzer from the spec alone and routes DUT runs through the calling
    process's :func:`~repro.exec.cache.process_dut_cache`.
    """
    from repro.exec.cache import process_dut_cache  # local import: cycle

    result = run_campaign(task.spec, task.trial_index,
                          dut_cache=process_dut_cache())
    return task.spec_index, task.trial_index, result.to_dict()


class ExecutionBackend(abc.ABC):
    """Runs a batch of trial tasks, yielding serialized results as they finish."""

    @abc.abstractmethod
    def run(self, tasks: Sequence[TrialTask]
            ) -> Iterator[Tuple[TrialTask, Dict[str, object]]]:
        """Execute ``tasks``; yield ``(task, result_dict)`` per completed trial.

        Completion order is backend-defined; callers must not assume it
        matches submission order.
        """

    def describe(self) -> str:
        """Human-readable backend label (shown by progress monitors)."""
        return type(self).__name__


class SerialBackend(ExecutionBackend):
    """In-process, submission-order execution.

    Shares the process-local DUT-run cache with any other serial grids run
    in this process, exactly as one pool worker would.
    """

    def run(self, tasks: Sequence[TrialTask]
            ) -> Iterator[Tuple[TrialTask, Dict[str, object]]]:
        for task in tasks:
            _, _, payload = execute_trial(task)
            yield task, payload

    def describe(self) -> str:
        return "serial"


class ProcessPoolBackend(ExecutionBackend):
    """Shards trials across a ``concurrent.futures`` process pool.

    Attributes:
        workers: pool size.
        max_tasks_per_child: recycle each worker after this many trials
            (bounds memory growth of per-process caches on huge grids);
            ``None`` keeps workers for the pool's lifetime.
        start_method: explicit multiprocessing start method.  By default
            ``"fork"`` is used where available (cheap startup), except that
            worker recycling requires ``"forkserver"``/``"spawn"`` --
            CPython forbids ``max_tasks_per_child`` with ``"fork"``.
    """

    def __init__(self, workers: int,
                 max_tasks_per_child: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_tasks_per_child is not None and max_tasks_per_child < 1:
            raise ValueError("max_tasks_per_child must be >= 1 or None")
        if max_tasks_per_child is not None and start_method == "fork":
            # CPython rejects this pairing when the pool is built; fail at
            # construction instead of mid-grid after side effects.
            raise ValueError("max_tasks_per_child is incompatible with the "
                             "'fork' start method")
        self.workers = workers
        self.max_tasks_per_child = max_tasks_per_child
        self.start_method = start_method or self._default_start_method()

    def _default_start_method(self) -> str:
        import multiprocessing

        available = multiprocessing.get_all_start_methods()
        if self.max_tasks_per_child is None and "fork" in available:
            return "fork"
        if "forkserver" in available:
            return "forkserver"
        return "spawn"

    def run(self, tasks: Sequence[TrialTask]
            ) -> Iterator[Tuple[TrialTask, Dict[str, object]]]:
        import multiprocessing

        context = multiprocessing.get_context(self.start_method)
        pool_kwargs = {"max_workers": self.workers, "mp_context": context}
        if self.max_tasks_per_child is not None:
            pool_kwargs["max_tasks_per_child"] = self.max_tasks_per_child
        pool = ProcessPoolExecutor(**pool_kwargs)
        try:
            pending = {pool.submit(execute_trial, task): task for task in tasks}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    task = pending.pop(future)
                    _, _, payload = future.result()
                    yield task, payload
        except BaseException:
            # Abort (consumer raised/abandoned the generator, or a trial
            # failed): drop everything still queued instead of letting
            # shutdown block until the whole grid has run to completion.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)

    def describe(self) -> str:
        recycle = (f", recycle every {self.max_tasks_per_child}"
                   if self.max_tasks_per_child else "")
        return f"process-pool({self.workers} workers, {self.start_method}{recycle})"
