"""Pluggable trial-execution backends.

A backend consumes :class:`TrialTask` work units -- one (spec, trial)
cell of a campaign grid -- and yields ``(task, result_dict)`` pairs as
trials finish.  Results cross the backend boundary as
``FuzzCampaignResult.to_dict()`` payloads on *every* backend, so the
serial path exercises exactly the serialization the multi-process path
depends on, and the engine can journal a result without re-encoding it.

Task ordering, batching and result collection are hoisted into
:class:`ExecutionBackend` itself: :meth:`ExecutionBackend.run` plans
:class:`~repro.exec.batching.TrialBatch` groups (tasks sharing a DUT
configuration, so one cache warm-up serves the whole batch), hands them to
the subclass's :meth:`ExecutionBackend._run_batches`, accumulates the
per-batch cache-traffic deltas, and unpacks batch payloads back into
per-task results.  A concrete backend therefore only supplies a transport
for batches:

* :class:`SerialBackend` -- in-process, in-order; the determinism oracle
  and the debugging path (breakpoints work, tracebacks are local).
* :class:`ProcessPoolBackend` -- ``concurrent.futures`` pool with optional
  worker recycling (``max_tasks_per_child``), completion-order streaming.
* :class:`~repro.exec.distributed.DistributedBackend` -- spool-directory
  queue served by independently launched ``repro.cli worker`` processes
  (see ``docs/distributed.md``).
"""

from __future__ import annotations

import abc
import dataclasses
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import TYPE_CHECKING, Callable, Dict, Iterator, Optional, Sequence, Tuple

from repro.exec.batching import (
    DEFAULT_BATCH_SIZE,
    TrialBatch,
    TrialTask,
    batch_uses_corpus,
    execute_batch,
    plan_batches,
)
from repro.harness.campaign import run_campaign

if TYPE_CHECKING:
    from repro.fuzzing.corpus import CorpusManager


def execute_trial(task: TrialTask) -> Tuple[int, int, Dict[str, object]]:
    """Run one trial and return ``(spec_index, trial_index, result_dict)``.

    The single-task ancestor of :func:`~repro.exec.batching.execute_batch`,
    kept for direct callers and tests; it routes DUT runs through the
    calling process's :func:`~repro.exec.cache.process_dut_cache` exactly
    as the batch executor does.
    """
    from repro.exec.cache import process_dut_cache  # local import: cycle

    result = run_campaign(task.spec, task.trial_index,
                          dut_cache=process_dut_cache())
    return task.spec_index, task.trial_index, result.to_dict()


class ExecutionBackend(abc.ABC):
    """Runs a batch of trial tasks, yielding serialized results as they finish.

    Attributes:
        batch_size: max tasks per :class:`TrialBatch` (``None`` = one batch
            per cache-locality group, however large).
        cache_entries: process-cache capacity applied inside workers before
            each batch (``None`` keeps the worker default); set by the
            engine's ``cache_entries`` knob.
        cache_stats: cache-traffic deltas summed over the batches of the
            most recent :meth:`run`, live while the run streams (the
            engine feeds these to the progress monitor).
        robustness_stats: self-healing counters of the most recent
            :meth:`run` (requeues, retries, dead-lettered batches) --
            populated by backends with failure recovery (currently the
            distributed one); empty for in-process backends.
        quarantined: descriptions of batches the most recent :meth:`run`
            gave up on (dead-lettered after their retry budget), each with
            the ``(spec_index, trial_index)`` cells it carried so the
            engine can report which trials are missing.
        corpus: the dispatcher-side :class:`~repro.fuzzing.corpus.
            CorpusManager`, or ``None`` for corpus-off grids.  The engine
            installs it (possibly pre-seeded from a checkpoint journal);
            the :meth:`run` template folds every batch's ``"corpus"``
            delta into it -- the **same merge path** for serial, pool and
            distributed execution -- and :meth:`_prepare_batch` injects
            its current state into corpus-enabled batches right before
            they ship.
        on_corpus_delta: optional callback invoked with each batch's raw
            corpus delta after it is merged (the engine hooks checkpoint
            journaling here).
        telemetry: optional :class:`~repro.telemetry.sink.TelemetryRecorder`
            installed by the engine (mirroring ``corpus``); backends with
            their own lifecycle events (the distributed one hands it to
            its :class:`~repro.exec.transport.WorkerSupervisor`) emit
            through it.  ``None`` -- the default -- costs nothing.
    """

    def __init__(self, batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
                 cache_entries: Optional[int] = None) -> None:
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1 or None")
        if cache_entries is not None and cache_entries < 1:
            raise ValueError("cache_entries must be >= 1 or None")
        self.batch_size = batch_size
        self.cache_entries = cache_entries
        self.cache_stats: Dict[str, int] = {}
        self.robustness_stats: Dict[str, int] = {}
        self.quarantined: list = []
        self.corpus: Optional["CorpusManager"] = None
        self.on_corpus_delta: Optional[Callable[[Dict[str, object]], None]] = None
        self.telemetry = None

    def run(self, tasks: Sequence[TrialTask]
            ) -> Iterator[Tuple[TrialTask, Dict[str, object]]]:
        """Execute ``tasks``; yield ``(task, result_dict)`` per completed trial.

        Completion order is backend-defined; callers must not assume it
        matches submission order.  This template owns the shared
        plan/collect logic; subclasses implement :meth:`_run_batches`.
        """
        self.cache_stats = {}
        self.robustness_stats = {}
        self.quarantined = []
        # An empty grid still flows through _run_batches: backends with
        # shutdown side effects (the distributed STOP sentinel) must see
        # every run, including fully journal-restored ones.
        batches = plan_batches(tasks, batch_size=self.batch_size,
                               cache_entries=self.cache_entries)
        for batch, payload in self._run_batches(batches):
            for name, value in payload.get("cache_stats", {}).items():
                self.cache_stats[name] = self.cache_stats.get(name, 0) + value
            delta = payload.get("corpus")
            if delta is not None:
                self._merge_corpus_delta(delta)
            by_cell = {(task.spec_index, task.trial_index): task
                       for task in batch.tasks}
            for item in payload["results"]:
                task = by_cell[(item["spec_index"], item["trial_index"])]
                yield task, item["result"]

    @abc.abstractmethod
    def _run_batches(self, batches: Sequence[TrialBatch]
                     ) -> Iterator[Tuple[TrialBatch, Dict[str, object]]]:
        """Execute ``batches``; yield ``(batch, execute_batch payload)`` pairs."""

    # ------------------------------------------------------------- corpus state
    def _merge_corpus_delta(self, delta: Dict[str, object]) -> None:
        """Fold one batch's corpus delta into the dispatcher-side map.

        Creating the manager lazily keeps direct ``backend.run`` callers
        (no engine involved) working without setup; merging is idempotent,
        so a delta that also travelled over the distributed coverage
        channel folds in harmlessly a second time.
        """
        if self.corpus is None:
            from repro.fuzzing.corpus import CorpusManager

            self.corpus = CorpusManager()
        self.corpus.merge_payload(delta)
        if self.on_corpus_delta is not None:
            self.on_corpus_delta(delta)

    def _prepare_batch(self, batch: TrialBatch) -> TrialBatch:
        """Inject the freshest corpus state into a corpus-enabled batch.

        Called by subclasses at the last moment before a batch ships (pool
        submission, queue enqueue, serial execution), so work scheduled
        later starts from everything earlier batches discovered.  A no-op
        for corpus-off batches -- their ``TrialBatch`` is reused as-is and
        results stay bit-identical with pre-corpus builds.
        """
        if self.corpus is None or not batch_uses_corpus(batch):
            return batch
        return dataclasses.replace(batch, corpus=self.corpus.to_payload())

    def describe(self) -> str:
        """Human-readable backend label (shown by progress monitors)."""
        return type(self).__name__


class SerialBackend(ExecutionBackend):
    """In-process, submission-order execution.

    Shares the process-local DUT-run and golden-trace caches with any
    other serial grids run in this process, exactly as one pool worker
    would.
    """

    def _run_batches(self, batches: Sequence[TrialBatch]
                     ) -> Iterator[Tuple[TrialBatch, Dict[str, object]]]:
        for batch in batches:
            # Generator semantics give the natural feedback cadence: the
            # run() template folds the previous batch's corpus delta
            # before this next() resumes, so _prepare_batch always sees
            # the complete map accumulated so far.
            yield batch, execute_batch(self._prepare_batch(batch))

    def describe(self) -> str:
        return "serial"


class ProcessPoolBackend(ExecutionBackend):
    """Shards trial batches across a ``concurrent.futures`` process pool.

    Attributes:
        workers: pool size.
        max_tasks_per_child: recycle each worker after this many *batches*
            (bounds memory growth of per-process caches on huge grids);
            ``None`` keeps workers for the pool's lifetime.
        start_method: explicit multiprocessing start method.  By default
            ``"fork"`` is used where available (cheap startup), except that
            worker recycling requires ``"forkserver"``/``"spawn"`` --
            CPython forbids ``max_tasks_per_child`` with ``"fork"``.
    """

    def __init__(self, workers: int,
                 max_tasks_per_child: Optional[int] = None,
                 start_method: Optional[str] = None,
                 batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
                 cache_entries: Optional[int] = None) -> None:
        super().__init__(batch_size=batch_size, cache_entries=cache_entries)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_tasks_per_child is not None and max_tasks_per_child < 1:
            raise ValueError("max_tasks_per_child must be >= 1 or None")
        if max_tasks_per_child is not None and start_method == "fork":
            # CPython rejects this pairing when the pool is built; fail at
            # construction instead of mid-grid after side effects.
            raise ValueError("max_tasks_per_child is incompatible with the "
                             "'fork' start method")
        self.workers = workers
        self.max_tasks_per_child = max_tasks_per_child
        self.start_method = start_method or self._default_start_method()

    def _default_start_method(self) -> str:
        import multiprocessing

        available = multiprocessing.get_all_start_methods()
        if self.max_tasks_per_child is None and "fork" in available:
            return "fork"
        if "forkserver" in available:
            return "forkserver"
        return "spawn"

    def _run_batches(self, batches: Sequence[TrialBatch]
                     ) -> Iterator[Tuple[TrialBatch, Dict[str, object]]]:
        import multiprocessing

        if not batches:
            return  # don't spin up a pool for a fully restored grid
        context = multiprocessing.get_context(self.start_method)
        pool_kwargs = {"max_workers": self.workers, "mp_context": context}
        if self.max_tasks_per_child is not None:
            pool_kwargs["max_tasks_per_child"] = self.max_tasks_per_child
        pool = ProcessPoolExecutor(**pool_kwargs)
        try:
            # Windowed submission instead of submitting the whole grid up
            # front: corpus-enabled batches are stamped with the freshest
            # dispatcher map at submit time, so a batch submitted after
            # another completed starts from its discoveries.  The window
            # keeps every worker busy; for corpus-off grids the only
            # difference from bulk submission is submission timing, which
            # results are independent of by construction.
            queue = iter(batches)
            window = max(2 * self.workers, 2)
            pending: Dict[object, TrialBatch] = {}

            def top_up() -> None:
                while len(pending) < window:
                    try:
                        batch = next(queue)
                    except StopIteration:
                        return
                    pending[pool.submit(execute_batch,
                                        self._prepare_batch(batch))] = batch

            top_up()
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    batch = pending.pop(future)
                    yield batch, future.result()
                top_up()
        except BaseException:
            # Abort (consumer raised/abandoned the generator, or a trial
            # failed): drop everything still queued instead of letting
            # shutdown block until the whole grid has run to completion.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)

    def describe(self) -> str:
        recycle = (f", recycle every {self.max_tasks_per_child}"
                   if self.max_tasks_per_child else "")
        return f"process-pool({self.workers} workers, {self.start_method}{recycle})"
