"""Distributed campaign execution over a spool-directory queue.

:class:`DistributedBackend` is the dispatcher half: it serializes trial
batches through the :mod:`~repro.exec.batching` wire format into a
:class:`~repro.exec.queue.SpoolQueue` and streams results back as workers
publish them.  :func:`run_worker` is the worker half, attached to the same
queue directory by ``repro.cli worker`` -- launched independently of the
dispatcher as separate invocations, containers or machines sharing a
filesystem.

Failure semantics (see ``docs/distributed.md``):

* A worker that dies mid-batch leaves a claim file behind; once its lease
  expires the dispatcher (or an idle worker) requeues it and another
  worker re-executes the batch.  Trials are deterministic, so re-execution
  reproduces the lost results bit for bit.
* A worker that *fails* a batch (broken spec, bug in the fuzzer) publishes
  an error payload; the dispatcher raises it, exactly as a process-pool
  worker exception would propagate.
* A dispatcher that dies is covered one level up by the engine's
  checkpoint journal: re-running the grid restores journaled trials and
  enqueues only the missing ones.
"""

from __future__ import annotations

import os
import socket
import time
import traceback
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.exec.backends import ExecutionBackend
from repro.exec.batching import (
    DEFAULT_BATCH_SIZE,
    TrialBatch,
    batch_from_wire,
    batch_to_wire,
    execute_batch,
)
from repro.exec.queue import DEFAULT_LEASE_TIMEOUT, SpoolQueue

#: orphan results older than this are swept at dispatcher startup; any
#: dispatcher still alive polls its results orders of magnitude faster.
STALE_RESULT_SECONDS = 86400.0


class DistributedBackend(ExecutionBackend):
    """Dispatches trial batches to external workers through a spool queue.

    Attributes:
        queue_dir: spool directory shared with the workers.
        poll_interval: seconds between result-directory scans.
        lease_timeout: seconds before an in-flight batch claimed by a
            silent worker is requeued for another worker.
        stop_workers_on_exit: write the ``STOP`` sentinel when the grid
            finishes (or aborts), telling workers to drain and exit.
        max_wait_seconds: abort with ``TimeoutError`` if the grid has not
            finished within this budget (``None`` waits forever) -- a
            guard against waiting on a queue no worker is serving.
    """

    def __init__(
        self,
        queue_dir: str,
        poll_interval: float = 0.1,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        stop_workers_on_exit: bool = False,
        max_wait_seconds: Optional[float] = None,
        batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
        cache_entries: Optional[int] = None,
    ) -> None:
        super().__init__(batch_size=batch_size, cache_entries=cache_entries)
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        self.queue_dir = str(queue_dir)
        self.poll_interval = poll_interval
        self.lease_timeout = lease_timeout
        self.stop_workers_on_exit = stop_workers_on_exit
        self.max_wait_seconds = max_wait_seconds

    def _run_batches(
        self,
        batches: Sequence[TrialBatch],
    ) -> Iterator[Tuple[TrialBatch, Dict[str, object]]]:
        queue = SpoolQueue(self.queue_dir).ensure()
        # A leftover sentinel from a previous --stop-workers run would make
        # freshly attached workers exit on their first poll; this grid
        # wants the queue live again.
        queue.clear_stop()
        queue.sweep_stale_results(STALE_RESULT_SECONDS)
        run_id = os.urandom(4).hex()  # results namespace: one queue, many grids
        pending: Dict[str, TrialBatch] = {}
        try:
            for batch in batches:
                task_id = f"{run_id}-{batch.index:06d}"
                queue.enqueue(task_id, batch_to_wire(batch))
                pending[task_id] = batch
            deadline = None
            if self.max_wait_seconds is not None:
                deadline = time.monotonic() + self.max_wait_seconds
            while pending:
                # One directory scan per pass, not one open() per batch.
                finished = sorted(set(queue.result_ids()) & set(pending))
                for task_id in finished:
                    payload = queue.collect(task_id)
                    if payload is None:
                        continue  # vanished between scan and read
                    queue.discard_result(task_id)
                    if "error" in payload:
                        worker = payload.get("worker", "?")
                        raise RuntimeError(
                            f"worker {worker} failed batch {task_id}:\n{payload['error']}"
                        )
                    yield pending.pop(task_id), payload
                if pending and not finished:
                    queue.requeue_stale(self.lease_timeout)
                    if deadline is not None and time.monotonic() > deadline:
                        raise TimeoutError(
                            f"distributed grid stalled: {len(pending)} batches "
                            f"outstanding after {self.max_wait_seconds:.0f}s "
                            f"(is a worker attached to {self.queue_dir}?)"
                        )
                    time.sleep(self.poll_interval)
        finally:
            # Withdraw anything not yet claimed (abort path), sweep results
            # of this run that will never be read (aborted batches, late
            # duplicates from lease-expired workers), then optionally tell
            # the workers to drain and exit.
            for task_id in pending:
                # A False return means the batch was already claimed; the
                # worker's eventual result goes unread and is swept by a
                # later dispatcher's stale-results pass.
                queue.discard_task(task_id)
            for task_id in queue.result_ids():
                if task_id.startswith(run_id):
                    queue.discard_result(task_id)
            if self.stop_workers_on_exit:
                queue.request_stop()

    def describe(self) -> str:
        return f"distributed(queue={self.queue_dir})"


def run_worker(
    queue_dir: str,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.2,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    max_tasks: Optional[int] = None,
    log=None,
) -> int:
    """Serve ``queue_dir`` until the stop sentinel appears; return batches done.

    The worker claims one batch at a time, executes it with the shared
    process caches warm across batches, publishes the result and moves on.
    While idle it also rescues batches whose claim lease has expired
    (another worker died mid-batch).  A batch that raises publishes an
    error payload for the dispatcher and the worker keeps serving -- one
    poisoned spec must not take the whole fleet down.

    ``max_tasks`` bounds how many batches this worker executes (worker
    recycling for long-lived fleets); ``log`` receives one progress line
    per event when given.
    """
    if max_tasks is not None and max_tasks < 1:
        raise ValueError("max_tasks must be >= 1 or None")
    if poll_interval <= 0:
        raise ValueError("poll_interval must be > 0")
    if lease_timeout <= 0:
        # A zero lease would make this worker's idle polls yank every
        # other worker's in-flight claim straight back into tasks/.
        raise ValueError("lease_timeout must be > 0")
    queue = SpoolQueue(queue_dir).ensure()
    name = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    emit = log or (lambda line: None)
    emit(f"worker {name}: serving {queue_dir}")
    executed = 0
    while max_tasks is None or executed < max_tasks:
        claim = queue.claim(name)
        if claim is None:
            if queue.stop_requested():
                break
            queue.requeue_stale(lease_timeout)
            time.sleep(poll_interval)
            continue
        try:
            batch = batch_from_wire(claim.payload)
            outcome = execute_batch(batch)
        except Exception:
            error = {"error": traceback.format_exc(), "worker": name}
            queue.complete(claim, error)
            emit(f"worker {name}: batch {claim.task_id} failed")
        else:
            outcome["worker"] = name
            queue.complete(claim, outcome)
            emit(f"worker {name}: batch {claim.task_id} done ({len(batch.tasks)} trials)")
        executed += 1
    emit(f"worker {name}: exiting after {executed} batches")
    return executed
