"""Distributed campaign execution over a spool-directory queue.

:class:`DistributedBackend` is the dispatcher half: it serializes trial
batches through the :mod:`~repro.exec.batching` wire format into a
:class:`~repro.exec.queue.SpoolQueue` and streams results back as workers
publish them.  :func:`run_worker` is the worker half, attached to the same
queue directory by ``repro.cli worker`` -- launched independently of the
dispatcher as separate invocations, containers or machines sharing a
filesystem.

Failure semantics (see ``docs/distributed.md`` and ``docs/robustness.md``):

* A worker that dies mid-batch leaves a claim file behind; once its lease
  expires the dispatcher (or an idle worker) requeues it and another
  worker re-executes the batch.  Trials are deterministic, so re-execution
  reproduces the lost results bit for bit.  Workers heartbeat their claim
  between trials, so a batch that legitimately outlives its lease is never
  falsely requeued (and never duplicated).  A worker whose heartbeat finds
  the claim gone -- the lease expired and the batch was requeued anyway --
  aborts the remainder of the batch and drops its result
  (:class:`~repro.exec.queue.LeaseLostError`) rather than duplicating the
  new owner's execution and racing its publish.
* Every failure consumes one unit of the task's retry budget
  (``max_attempts``); a batch that keeps failing -- crashing workers,
  corrupted results, poisoned specs -- is quarantined in ``deadletter/``
  and the grid completes without it, reporting the quarantined trials
  instead of hanging or raising mid-stream.
* A dispatcher that dies is covered one level up by the engine's
  checkpoint journal: re-running the grid restores journaled trials and
  enqueues only the missing ones.

Corpus mode adds a side band (see ``docs/corpus.md``): corpus-enabled
batches are stamped with the dispatcher's current global corpus state at
enqueue time, workers publish their per-batch corpus deltas on the
queue's ``coverage/`` channel as soon as a batch finishes, and the
dispatcher merges and re-broadcasts the global map each poll so *later*
batches -- on any worker -- start from everything the fleet has learned.
The channel is advisory: deltas also ride inside result payloads and
merging is idempotent, so a lost or duplicated channel file costs only
freshness, never correctness.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import time
import traceback
from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from repro.exec import faults
from repro.exec.backends import ExecutionBackend
from repro.exec.batching import (
    DEFAULT_BATCH_SIZE,
    TrialBatch,
    batch_from_wire,
    batch_to_wire,
    execute_batch,
)
from repro.exec.queue import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_MAX_ATTEMPTS,
    ATTEMPTS_KEY,
    LeaseLostError,
    SpoolQueue,
)

#: orphan results older than this are swept at dispatcher startup; any
#: dispatcher still alive polls its results orders of magnitude faster.
STALE_RESULT_SECONDS = 86400.0

#: consecutive reconcile passes a task must be missing from every queue
#: directory before the dispatcher re-enqueues it -- one pass can race a
#: requeue's scratch-rename window, two cannot.
LOST_TASK_STRIKES = 2


class DistributedBackend(ExecutionBackend):
    """Dispatches trial batches to external workers through a spool queue.

    Attributes:
        queue_dir: spool directory shared with the workers.
        poll_interval: seconds between result-directory scans.
        lease_timeout: seconds before an in-flight batch claimed by a
            silent (non-heartbeating) worker is requeued for another
            worker.
        max_attempts: execution budget per batch; a batch failing this
            many times (worker deaths, corrupted results, raised errors)
            is quarantined in ``deadletter/`` and its trials are reported
            as lost instead of requeued forever.
        stop_workers_on_exit: write the ``STOP`` sentinel when the grid
            finishes (or aborts), telling workers to drain and exit.
        max_wait_seconds: abort with ``TimeoutError`` if the grid has not
            finished within this budget (``None`` waits forever) -- a
            guard against waiting on a queue no worker is serving.
        supervisor: optional :class:`~repro.exec.transport.
            WorkerSupervisor` owning the worker fleet for this queue.
            The dispatcher starts it before enqueueing, polls it every
            result-scan pass (crashed workers restart under its
            crash-loop budget), and drains it after the STOP sentinel --
            which is always written when a supervisor is present, since
            nobody else will stop the workers it spawned.  Its final
            counters land in ``transport_stats`` for the engine's
            ``last_run_report["transport"]`` section.
        transport_stats: supervision counters of the most recent run
            (``None`` for unsupervised runs).
    """

    def __init__(
        self,
        queue_dir: str,
        poll_interval: float = 0.1,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        stop_workers_on_exit: bool = False,
        max_wait_seconds: Optional[float] = None,
        batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
        cache_entries: Optional[int] = None,
        supervisor=None,
    ) -> None:
        super().__init__(batch_size=batch_size, cache_entries=cache_entries)
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.queue_dir = str(queue_dir)
        self.poll_interval = poll_interval
        self.lease_timeout = lease_timeout
        self.max_attempts = max_attempts
        self.stop_workers_on_exit = stop_workers_on_exit
        self.max_wait_seconds = max_wait_seconds
        self.supervisor = supervisor
        self.transport_stats = None

    def _run_batches(
        self,
        batches: Sequence[TrialBatch],
    ) -> Iterator[Tuple[TrialBatch, Dict[str, object]]]:
        queue = SpoolQueue(self.queue_dir).ensure()
        # A leftover sentinel from a previous --stop-workers run would make
        # freshly attached workers exit on their first poll; this grid
        # wants the queue live again.
        queue.clear_stop()
        queue.sweep_stale_results(STALE_RESULT_SECONDS)
        run_id = os.urandom(4).hex()  # results namespace: one queue, many grids
        pending: Dict[str, TrialBatch] = {}
        attempts: Dict[str, int] = {}
        missing_strikes: Dict[str, int] = {}
        stats = self.robustness_stats
        for name in ("requeued", "retried", "deadlettered"):
            stats.setdefault(name, 0)
        last_broadcast = -1
        supervisor = self.supervisor
        self.transport_stats = None
        if supervisor is not None:
            supervisor.telemetry = self.telemetry
            supervisor.start()
        try:
            for batch in batches:
                task_id = f"{run_id}-{batch.index:06d}"
                queue.enqueue(
                    task_id,
                    batch_to_wire(self._prepare_batch(batch)),
                    attempts=0,
                    max_attempts=self.max_attempts,
                )
                pending[task_id] = batch
            deadline = None
            if self.max_wait_seconds is not None:
                deadline = time.monotonic() + self.max_wait_seconds
            while pending:
                last_broadcast = self._sync_coverage(queue, last_broadcast)
                if supervisor is not None:
                    supervisor.poll()
                # One directory scan per pass, not one open() per batch.
                finished = sorted(set(queue.result_ids()) & set(pending))
                for task_id in finished:
                    payload = queue.collect(task_id)
                    if payload is None:
                        continue  # vanished between scan and read
                    queue.discard_result(task_id)
                    if "error" in payload:
                        self._handle_failure(queue, task_id, payload, pending, attempts, stats)
                        continue
                    yield pending.pop(task_id), payload
                # Batches quarantined on the worker side (budget exhausted
                # by lease-expiry requeues) complete the grid as losses.
                for task_id in queue.deadletter_ids():
                    if task_id in pending:
                        self._note_quarantine(
                            task_id, pending.pop(task_id), queue.read_deadletter(task_id), stats
                        )
                if pending and not finished:
                    requeued = queue.requeue_stale(self.lease_timeout)
                    stats["requeued"] += sum(1 for task_id in requeued if task_id in pending)
                    self._reconcile_lost(queue, pending, attempts, missing_strikes, stats)
                    if supervisor is not None and supervisor.all_degraded:
                        # Every supervised host is out of crash budget:
                        # nobody will ever claim the remaining batches.
                        # Quarantine whatever is unclaimed so the grid
                        # completes (degraded) instead of hanging; claimed
                        # batches cycle back through requeue_stale above
                        # once their dead owner's lease expires.
                        self._quarantine_unserviceable(queue, pending, attempts, stats)
                    if deadline is not None and time.monotonic() > deadline:
                        raise TimeoutError(
                            f"distributed grid stalled: {len(pending)} batches "
                            f"outstanding after {self.max_wait_seconds:.0f}s "
                            f"(is a worker attached to {self.queue_dir}?)"
                        )
                    time.sleep(self.poll_interval)
        finally:
            # Withdraw anything not yet claimed (abort path), sweep results
            # of this run that will never be read (aborted batches, late
            # duplicates from lease-expired workers), then optionally tell
            # the workers to drain and exit.
            for task_id in pending:
                # A False return means the batch was already claimed; the
                # worker's eventual result goes unread and is swept by a
                # later dispatcher's stale-results pass.
                queue.discard_task(task_id)
            for task_id in queue.result_ids():
                if task_id.startswith(run_id):
                    queue.discard_result(task_id)
            # Publish the final merged map *before* the STOP sentinel, so
            # draining workers snapshot a map identical to the
            # dispatcher's (the convergence invariant of docs/corpus.md).
            self._sync_coverage(queue, -1)
            if self.stop_workers_on_exit or supervisor is not None:
                queue.request_stop()
            if supervisor is not None:
                supervisor.drain()
                self.transport_stats = supervisor.stats()

    def _sync_coverage(self, queue: SpoolQueue, last_broadcast: int) -> int:
        """Drain worker corpus deltas; re-broadcast the map when it changed.

        Channel deltas are merged straight into the dispatcher manager
        without the journaling callback: the same delta arrives again
        inside the batch's result payload (the journaled, durable path),
        and merging is idempotent.  Returns the version of the newest
        broadcast so unchanged maps are not republished every poll.
        """
        if self.corpus is None:
            return last_broadcast
        for delta in queue.take_coverage_deltas():
            self.corpus.merge_payload(delta)
        if self.corpus.version != last_broadcast:
            last_broadcast = self.corpus.version
            queue.publish_coverage_global({
                "version": last_broadcast,
                "state": self.corpus.to_payload(),
            })
        return last_broadcast

    # ------------------------------------------------------------- self-heal
    def _handle_failure(
        self,
        queue: SpoolQueue,
        task_id: str,
        payload: Dict[str, object],
        pending: Dict[str, TrialBatch],
        attempts: Dict[str, int],
        stats: Dict[str, int],
    ) -> None:
        """One failed execution observed: retry the batch or quarantine it.

        The attempt count merges the dispatcher's own ledger with the
        count echoed through the worker's payload (requeues on the worker
        side bump the task file, which the dispatcher never reads), so
        neither side can under-count a crash loop.
        """
        echoed = 0
        try:
            echoed = int(payload.get(ATTEMPTS_KEY, 0))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            pass
        count = max(attempts.get(task_id, 0), echoed) + 1
        attempts[task_id] = count
        batch = pending[task_id]
        error = str(payload.get("error", "unknown failure"))
        if count >= self.max_attempts:
            record = queue.quarantine(
                task_id,
                payload=batch_to_wire(batch),
                attempts=count,
                error=error,
            )
            self._note_quarantine(task_id, pending.pop(task_id), record, stats)
        else:
            stats["retried"] += 1
            queue.enqueue(
                task_id,
                batch_to_wire(batch),
                attempts=count,
                max_attempts=self.max_attempts,
            )

    def _quarantine_unserviceable(
        self,
        queue: SpoolQueue,
        pending: Dict[str, TrialBatch],
        attempts: Dict[str, int],
        stats: Dict[str, int],
    ) -> None:
        """All supervised hosts degraded: give up on unclaimed batches.

        Withdrawing a batch can race an unsupervised walk-up worker's
        claim; ``discard_task`` only succeeds on batches still sitting in
        ``tasks/``, so anything actually being executed is left alone and
        collected (or requeued) by the normal paths.
        """
        for task_id in sorted(pending):
            if not queue.discard_task(task_id):
                continue
            record = queue.quarantine(
                task_id,
                payload=batch_to_wire(pending[task_id]),
                attempts=attempts.get(task_id, 0),
                error="no live workers: all supervised hosts degraded",
            )
            self._note_quarantine(task_id, pending.pop(task_id), record, stats)

    def _note_quarantine(
        self,
        task_id: str,
        batch: TrialBatch,
        record: Optional[Dict[str, object]],
        stats: Dict[str, int],
    ) -> None:
        stats["deadlettered"] += 1
        self.quarantined.append(
            {
                "task_id": task_id,
                "error": (record or {}).get("error", "unknown failure"),
                "attempts": (record or {}).get("attempts"),
                "tasks": [(task.spec_index, task.trial_index) for task in batch.tasks],
            }
        )

    def _reconcile_lost(
        self,
        queue: SpoolQueue,
        pending: Dict[str, TrialBatch],
        attempts: Dict[str, int],
        missing_strikes: Dict[str, int],
        stats: Dict[str, int],
    ) -> None:
        """Re-enqueue tasks that vanished from every queue directory.

        A requeue that crashed between taking ownership of a claim and
        republishing it leaves the task nowhere; without this pass the
        dispatcher would wait on it forever.  A task must be missing for
        :data:`LOST_TASK_STRIKES` consecutive passes before it is
        resubmitted -- one pass can catch a healthy requeue inside its
        scratch-rename window.  A spurious resubmission is harmless
        anyway: task files are keyed by id, so duplicates collapse.
        """
        present: Set[str] = set(queue.task_ids())
        present.update(queue.claimed_ids())
        present.update(queue.result_ids())
        present.update(queue.deadletter_ids())
        for task_id in list(pending):
            if task_id in present:
                missing_strikes.pop(task_id, None)
                continue
            strikes = missing_strikes.get(task_id, 0) + 1
            if strikes < LOST_TASK_STRIKES:
                missing_strikes[task_id] = strikes
                continue
            missing_strikes.pop(task_id, None)
            count = attempts.get(task_id, 0) + 1
            attempts[task_id] = count
            batch = pending[task_id]
            if count >= self.max_attempts:
                record = queue.quarantine(
                    task_id,
                    payload=batch_to_wire(batch),
                    attempts=count,
                    error="task repeatedly lost in flight (crashed requeue?)",
                )
                self._note_quarantine(task_id, pending.pop(task_id), record, stats)
            else:
                stats["requeued"] += 1
                queue.enqueue(
                    task_id,
                    batch_to_wire(batch),
                    attempts=count,
                    max_attempts=self.max_attempts,
                )

    def describe(self) -> str:
        return f"distributed(queue={self.queue_dir})"


def run_worker(
    queue_dir: str,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.2,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    max_tasks: Optional[int] = None,
    max_attempts: Optional[int] = None,
    max_poll_interval: Optional[float] = None,
    log=None,
) -> int:
    """Serve ``queue_dir`` until the stop sentinel appears; return batches done.

    The worker claims one batch at a time, executes it with the shared
    process caches warm across batches, publishes the result and moves on.
    Between the trials of a batch it heartbeats its claim, so a batch that
    takes longer than the lease is never falsely requeued while the worker
    is alive and making progress.  While idle it also rescues batches
    whose claim lease has expired (another worker died mid-batch),
    dead-lettering any batch whose retry budget is spent, and backs off
    its polling exponentially (jittered, up to ``max_poll_interval``,
    default ``16 * poll_interval``) so an idle fleet does not hammer the
    shared filesystem in lockstep.

    A batch that raises publishes an error payload for the dispatcher and
    the worker keeps serving -- one poisoned spec must not take the whole
    fleet down.  Only a failure of the queue itself (publishing
    impossible even after retries) stops the worker, by letting the
    ``OSError`` propagate; ``repro.cli worker`` turns that into a nonzero
    exit status so supervisors notice.

    ``max_tasks`` bounds how many batches this worker executes (worker
    recycling for long-lived fleets); ``max_attempts`` is the retry-budget
    fallback applied when rescuing tasks enqueued without one; ``log``
    receives one progress line per event when given.
    """
    if max_tasks is not None and max_tasks < 1:
        raise ValueError("max_tasks must be >= 1 or None")
    if poll_interval <= 0:
        raise ValueError("poll_interval must be > 0")
    if lease_timeout <= 0:
        # A zero lease would make this worker's idle polls yank every
        # other worker's in-flight claim straight back into tasks/.
        raise ValueError("lease_timeout must be > 0")
    if max_attempts is not None and max_attempts < 1:
        raise ValueError("max_attempts must be >= 1 or None")
    queue = SpoolQueue(queue_dir).ensure()
    name = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    emit = log or (lambda line: None)
    emit(f"worker {name}: serving {queue_dir}")
    idle = faults.Backoff(
        base=poll_interval,
        cap=max_poll_interval,
        seed=faults.stable_seed(name),
    )
    executed = 0
    # Corpus mode: the worker's own running view of the global map, fed by
    # dispatcher broadcasts and its own batches.  Created lazily on the
    # first corpus-enabled batch; stays None (zero overhead, zero channel
    # traffic) for corpus-off grids.
    worker_corpus = None
    corpus_seq = 0
    last_global_version = -1

    def merge_global_broadcast():
        nonlocal last_global_version
        broadcast = queue.read_coverage_global()
        if not broadcast:
            return
        try:
            version = int(broadcast.get("version", 0))
        except (TypeError, ValueError):
            return
        if version > last_global_version:
            last_global_version = version
            worker_corpus.merge_payload(broadcast.get("state"))

    while max_tasks is None or executed < max_tasks:
        claim = queue.claim(name)
        if claim is None:
            if queue.stop_requested():
                break
            requeued = queue.requeue_stale(lease_timeout, max_attempts=max_attempts)
            if requeued:
                idle.reset()  # work just became claimable; poll eagerly
            time.sleep(idle.next())
            continue
        idle.reset()
        for rule in faults.fire(faults.SITE_WORKER_BATCH, task_id=claim.task_id, ordinal=executed):
            faults.perform(rule)

        def on_trial(task, claim=claim):
            for rule in faults.fire(faults.SITE_WORKER_TRIAL, task_id=claim.task_id):
                faults.perform(rule)
            if not claim.heartbeat():
                # The claim file is gone: the batch was requeued to (or
                # finished by) another worker.  Abort the rest of the
                # batch -- the new owner re-executes it from scratch.
                raise LeaseLostError(
                    f"lease on batch {claim.task_id} lost mid-batch")

        try:
            batch = batch_from_wire(claim.payload)
            if batch.corpus is not None:
                # Corpus-enabled batch: start it from everything this
                # worker knows -- the dispatcher state stamped into the
                # batch, the latest broadcast, and its own past batches.
                if worker_corpus is None:
                    from repro.fuzzing.corpus import CorpusManager

                    worker_corpus = CorpusManager()
                merge_global_broadcast()
                worker_corpus.merge_payload(batch.corpus)
                batch = dataclasses.replace(
                    batch, corpus=worker_corpus.to_payload())
            outcome = execute_batch(batch, on_trial=on_trial)
        except LeaseLostError:
            # Ownership moved mid-batch; publishing a result (or an error
            # payload) here would race the new owner and double-feed the
            # corpus side band.  Drop everything this execution produced.
            emit(f"worker {name}: batch {claim.task_id} lease lost; "
                 "dropping result")
        except Exception:
            error = {
                "error": traceback.format_exc(),
                "worker": name,
                ATTEMPTS_KEY: claim.attempts,
            }
            queue.complete(claim, error)
            emit(f"worker {name}: batch {claim.task_id} failed")
        else:
            delta = outcome.get("corpus")
            if delta is not None and worker_corpus is not None:
                worker_corpus.merge_payload(delta)
                # Publish on the side band *before* releasing the result:
                # the dispatcher can fold the delta into batches it
                # enqueues next without waiting for the result scan.
                try:
                    queue.publish_coverage_delta(name, corpus_seq, delta)
                    corpus_seq += 1
                except OSError:
                    pass  # advisory channel; the delta rides the result
            outcome["worker"] = name
            outcome[ATTEMPTS_KEY] = claim.attempts
            queue.complete(claim, outcome)
            emit(f"worker {name}: batch {claim.task_id} done ({len(batch.tasks)} trials)")
        executed += 1
    if worker_corpus is not None:
        # Parting snapshot: fold the dispatcher's final broadcast, then
        # publish this worker's view of the global map.  After a clean
        # drain it is bit-identical with the dispatcher's (test-enforced).
        merge_global_broadcast()
        try:
            queue.publish_coverage_snapshot(name, worker_corpus.to_payload())
        except OSError:
            pass
    emit(f"worker {name}: exiting after {executed} batches")
    return executed


# Names re-exported for callers configuring the self-healing knobs.
__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "DistributedBackend",
    "LOST_TASK_STRIKES",
    "STALE_RESULT_SECONDS",
    "run_worker",
]
