"""Parallel campaign execution subsystem.

Shards grids of independent campaign trials across pluggable backends
(serial or multi-process), journals completed trials to a JSONL checkpoint
for kill-safe resume, and serves DUT runs from a per-process cache.  See
``docs/parallel.md`` for the architecture and determinism contract.
"""

from repro.exec.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    TrialTask,
    execute_trial,
)
from repro.exec.cache import DutRunCache, process_dut_cache
from repro.exec.checkpoint import CheckpointJournal
from repro.exec.engine import CampaignEngine, grid_summary, run_grid

__all__ = [
    "CampaignEngine",
    "CheckpointJournal",
    "DutRunCache",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "TrialTask",
    "execute_trial",
    "grid_summary",
    "process_dut_cache",
    "run_grid",
]
