"""Parallel and distributed campaign execution subsystem.

Shards grids of independent campaign trials across pluggable backends
(serial, multi-process pool, or a spool-directory queue served by external
workers), batches cache-compatible trials so one warm-up serves many,
journals completed trials to a JSONL checkpoint for kill-safe resume, and
serves repeated golden/DUT runs from bounded per-process LRU caches.  The
:mod:`repro.exec.faults` module provides deterministic fault injection for
exercising the stack's self-healing paths (heartbeat leases, retry budgets
with dead-letter quarantine, checksummed journal salvage), and
:mod:`repro.exec.transport` supervises worker fleets across host
boundaries (local or ssh) with crash-loop budgets and degraded-host
redistribution.  See ``docs/parallel.md``, ``docs/distributed.md``,
``docs/robustness.md`` and ``docs/service.md`` for the architecture,
determinism contract and failure semantics.
"""

from repro.exec.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    execute_trial,
)
from repro.exec.batching import (
    DEFAULT_BATCH_SIZE,
    TrialBatch,
    TrialTask,
    execute_batch,
    plan_batches,
)
from repro.exec.cache import (
    DutRunCache,
    configure_process_caches,
    process_dut_cache,
    process_golden_cache,
)
from repro.exec.checkpoint import CheckpointJournal
from repro.exec.distributed import DistributedBackend, run_worker
from repro.exec.engine import CampaignEngine, grid_summary, run_grid
from repro.exec.faults import Backoff, FaultInjector, FaultPlan, FaultRule
from repro.exec.queue import DEFAULT_MAX_ATTEMPTS, LeaseLostError, SpoolQueue
from repro.exec.transport import (
    LocalTransport,
    SshTransport,
    WorkerSpec,
    WorkerSupervisor,
)

__all__ = [
    "Backoff",
    "CampaignEngine",
    "CheckpointJournal",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MAX_ATTEMPTS",
    "DistributedBackend",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "DutRunCache",
    "ExecutionBackend",
    "LeaseLostError",
    "LocalTransport",
    "ProcessPoolBackend",
    "SerialBackend",
    "SpoolQueue",
    "SshTransport",
    "TrialBatch",
    "TrialTask",
    "WorkerSpec",
    "WorkerSupervisor",
    "configure_process_caches",
    "execute_batch",
    "execute_trial",
    "grid_summary",
    "plan_batches",
    "process_dut_cache",
    "process_golden_cache",
    "run_grid",
    "run_worker",
]
