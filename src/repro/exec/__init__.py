"""Parallel and distributed campaign execution subsystem.

Shards grids of independent campaign trials across pluggable backends
(serial, multi-process pool, or a spool-directory queue served by external
workers), batches cache-compatible trials so one warm-up serves many,
journals completed trials to a JSONL checkpoint for kill-safe resume, and
serves repeated golden/DUT runs from bounded per-process LRU caches.  See
``docs/parallel.md`` and ``docs/distributed.md`` for the architecture and
determinism contract.
"""

from repro.exec.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    execute_trial,
)
from repro.exec.batching import (
    DEFAULT_BATCH_SIZE,
    TrialBatch,
    TrialTask,
    execute_batch,
    plan_batches,
)
from repro.exec.cache import (
    DutRunCache,
    configure_process_caches,
    process_dut_cache,
    process_golden_cache,
)
from repro.exec.checkpoint import CheckpointJournal
from repro.exec.distributed import DistributedBackend, run_worker
from repro.exec.engine import CampaignEngine, grid_summary, run_grid
from repro.exec.queue import SpoolQueue

__all__ = [
    "CampaignEngine",
    "CheckpointJournal",
    "DEFAULT_BATCH_SIZE",
    "DistributedBackend",
    "DutRunCache",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "SpoolQueue",
    "TrialBatch",
    "TrialTask",
    "configure_process_caches",
    "execute_batch",
    "execute_trial",
    "grid_summary",
    "plan_batches",
    "process_dut_cache",
    "process_golden_cache",
    "run_grid",
    "run_worker",
]
