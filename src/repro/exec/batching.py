"""Batched trial execution shared by every backend.

A :class:`TrialBatch` groups :class:`TrialTask` work
units that share a cache-locality prefix -- the same DUT configuration
(processor + injected bug set) -- so one worker executes them back to back:
the first trial warms the process-level DUT-run cache and the shared
golden-trace cache, and every later trial of the batch replays repeated
programs out of them.  Batches are also the unit of *distribution*: one
pool submission, one spool-queue file.

Batching is pure scheduling.  Trial results are derived from the spec
content alone, so grouping (or not grouping) tasks can never change a
``FuzzCampaignResult`` -- only wall-clock and cache traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.cache import (
    configure_process_caches,
    process_cache_stats,
    process_dut_cache,
    process_golden_cache,
)
from repro.harness.campaign import CampaignSpec, run_campaign

#: default cap on tasks per batch: large enough to amortize warm-up, small
#: enough that a grid still spreads across a handful of workers.
DEFAULT_BATCH_SIZE = 4


@dataclass(frozen=True)
class TrialTask:
    """One unit of backend work: trial ``trial_index`` of ``spec``.

    ``spec_index`` is the spec's position in the submitted grid; backends
    carry it through untouched so the engine can reassemble results
    without re-deriving fingerprints.
    """

    spec_index: int
    trial_index: int
    spec: CampaignSpec


@dataclass(frozen=True)
class TrialBatch:
    """A group of tasks one worker executes back to back.

    Attributes:
        index: position of this batch in the planned sequence (also its
            identity on the spool queue).
        tasks: the grouped tasks, in grid submission order.
        cache_entries: process-cache capacity to apply before executing
            (``None`` = the default bound,
            :data:`~repro.exec.cache.DEFAULT_CACHE_ENTRIES` -- a previous
            grid's bound never leaks into this batch).
        corpus: accumulated corpus state (a
            :meth:`~repro.fuzzing.corpus.CorpusManager.to_payload` dict)
            injected by the backend right before execution, or ``None``
            for corpus-off batches.  Purely additive feedback: it is not
            part of batch identity and never set at planning time.
    """

    index: int
    tasks: Tuple[TrialTask, ...]
    cache_entries: Optional[int] = None
    corpus: Optional[Dict[str, object]] = None


def task_uses_corpus(task: TrialTask) -> bool:
    """Whether ``task``'s spec runs with the coverage-directed corpus."""
    config = task.spec.fuzzer_config
    return config is not None and config.corpus


def batch_uses_corpus(batch: TrialBatch) -> bool:
    """Whether any task of ``batch`` runs with the corpus enabled."""
    return any(task_uses_corpus(task) for task in batch.tasks)


def batch_key(task: TrialTask) -> Tuple:
    """Cache-locality key: tasks sharing it warm each other's caches.

    The DUT-run cache is keyed on the full DUT identity, so only tasks
    with the same (processor, bug set, coverage model) can serve each
    other's DUT runs; the shared golden cache is keyed on the executor
    config, which those tasks share too.
    """
    spec = task.spec
    bugs = tuple(sorted(spec.bugs)) if spec.bugs is not None else None
    return (spec.processor, bugs, spec.coverage_model)


def plan_batches(tasks: Sequence[TrialTask],
                 batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
                 cache_entries: Optional[int] = None) -> List[TrialBatch]:
    """Group ``tasks`` into batches by :func:`batch_key`, preserving order.

    Groups are emitted in order of first appearance and chunked to at most
    ``batch_size`` tasks (``None`` = unbounded), so the plan is a pure
    function of the task list -- every backend produces the same batches
    for the same grid.
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be >= 1 or None")
    groups: Dict[Tuple, List[TrialTask]] = {}
    for task in tasks:
        groups.setdefault(batch_key(task), []).append(task)
    batches: List[TrialBatch] = []
    for group in groups.values():
        size = batch_size or len(group)
        for start in range(0, len(group), size):
            batches.append(TrialBatch(index=len(batches),
                                      tasks=tuple(group[start:start + size]),
                                      cache_entries=cache_entries))
    return batches


def execute_batch(batch: TrialBatch,
                  on_trial: Optional[Callable[[TrialTask], None]] = None
                  ) -> Dict[str, object]:
    """Run every task of ``batch`` in this process; return the wire payload.

    ``on_trial`` is called before each task runs; the distributed worker
    hooks it to heartbeat its claim lease between trials (and to give the
    fault injector its between-trials site), so a long batch stays leased
    for as long as it is making progress.

    The payload is JSON-safe (it crosses pickle *and* the spool queue)::

        {"results": [{"spec_index": 0, "trial_index": 1, "result": {...}},
                     ...],
         "cache_stats": {"dut_cache_hits": 3, ...},  # deltas for this batch
         "corpus": {"points": [...], "entries": [...]}}  # only corpus-on

    For corpus-enabled tasks, one :class:`~repro.fuzzing.corpus.
    CorpusManager` is threaded through the batch: it starts from the state
    the backend injected into ``batch.corpus``, each trial merges it in
    before running and folds its discoveries back after, and the payload's
    ``"corpus"`` key carries only the *delta* accumulated by this batch
    (new points + newly admitted entries) so dispatchers can merge batches
    from many workers without double counting.

    Cache-stat *deltas* (not cumulative process counters) are reported so
    a dispatcher can sum them across batches and workers without double
    counting.  The snapshot is taken *before* the caches are re-bounded:
    re-bounding can spill LRU entries, and those evictions belong to the
    batch that requested the new bound (snapshotting after silently
    dropped them from every delta whenever ``--cache-entries`` shrank a
    worker's caches mid-grid).

    Trials of one batch share a DUT configuration, so beyond the run
    caches they also reuse **compiled traces**: identical programs
    regenerated across trials (seed replays, bug-sweep variants, duplicate
    mutants) compile once per worker and replay through the shared
    golden/DUT fast loop; ``compiled_trace_*`` deltas account for it.
    """
    before = process_cache_stats()
    configure_process_caches(batch.cache_entries)
    dut_cache = process_dut_cache()
    golden_fallback = process_golden_cache()
    batch_corpus = None
    if batch_uses_corpus(batch):
        from repro.fuzzing.corpus import CorpusManager

        batch_corpus = CorpusManager.from_payload(batch.corpus)
        batch_corpus.mark_base()
    results = []
    for task in batch.tasks:
        if on_trial is not None:
            on_trial(task)
        corpus_kwargs = {}
        if batch_corpus is not None and task_uses_corpus(task):
            corpus_kwargs = {"corpus_state": batch_corpus.to_payload(),
                             "corpus_sink": batch_corpus.merge_payload}
        result = run_campaign(task.spec, task.trial_index,
                              dut_cache=dut_cache,
                              golden_fallback=golden_fallback,
                              **corpus_kwargs)
        results.append({"spec_index": task.spec_index,
                        "trial_index": task.trial_index,
                        "result": result.to_dict()})
    after = process_cache_stats()
    payload = {"results": results,
               "cache_stats": {name: after[name] - before[name]
                               for name in after}}
    if batch_corpus is not None:
        payload["corpus"] = batch_corpus.delta_payload()
    return payload


# ----------------------------------------------------------------- wire format
def batch_to_wire(batch: TrialBatch) -> Dict[str, object]:
    """Serialize a batch for the spool queue (inverse of :func:`batch_from_wire`)."""
    wire = {
        "kind": "batch",
        "batch": batch.index,
        "cache_entries": batch.cache_entries,
        "tasks": [{"spec_index": task.spec_index,
                   "trial_index": task.trial_index,
                   "spec": task.spec.to_dict()} for task in batch.tasks],
    }
    if batch.corpus is not None:
        # Corpus payloads are already JSON-safe (point names + words, no
        # masks); omitted entirely for corpus-off batches so their wire
        # form is unchanged from pre-corpus builds.
        wire["corpus"] = batch.corpus
    return wire


def batch_from_wire(data: Dict[str, object]) -> TrialBatch:
    """Rebuild a batch a worker pulled off the spool queue."""
    if data.get("kind") != "batch":
        raise ValueError(f"not a batch payload: kind={data.get('kind')!r}")
    cache_entries = data.get("cache_entries")
    tasks = tuple(
        TrialTask(spec_index=int(task["spec_index"]),
                  trial_index=int(task["trial_index"]),
                  spec=CampaignSpec.from_dict(task["spec"]))
        for task in data["tasks"])
    return TrialBatch(index=int(data["batch"]), tasks=tasks,
                      cache_entries=(int(cache_entries)
                                     if cache_entries is not None else None),
                      corpus=data.get("corpus"))
