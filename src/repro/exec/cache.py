"""Per-process DUT-run cache.

The DUT models are deterministic: a :class:`~repro.rtl.harness.DutRunResult`
depends only on the program words, the load address, the step limit and the
DUT's full configuration (microarchitecture parameters + injected bug set).
Campaigns replay programs constantly -- MABFuzz arms re-run their seeds,
mutants duplicate each other -- so caching DUT runs removes the second half
of the per-iteration simulation cost the same way PR 1's
:class:`~repro.sim.golden.GoldenTraceCache` removed the golden half.

The cache is *process-local by design*: worker processes each build their
own (:func:`process_dut_cache`), so no locking or shared memory is needed
and a cached entry can never leak between incompatible DUT configurations
running in other workers.  Cached :class:`DutRunResult` objects are frozen
and must be treated as read-only, which every consumer (differential
tester, coverage database) already does.

Cache hits never change campaign results -- only wall-clock -- so the
hit/miss counters are deliberately *not* copied into
:class:`~repro.fuzzing.results.FuzzCampaignResult` metadata: a worker's
counters depend on which trials it happened to execute before, and result
payloads must stay bit-identical between serial and parallel backends.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.program import TestProgram
from repro.rtl.harness import DutModel, DutRunResult
from repro.sim.golden import KeyedRunCache


class DutRunCache(KeyedRunCache):
    """Program-and-configuration-keyed cache of instrumented DUT runs.

    Shares its mechanics (counters, eviction, stats) with
    :class:`~repro.sim.golden.GoldenTraceCache` via
    :class:`~repro.sim.golden.KeyedRunCache`; only the key differs.
    """

    @staticmethod
    def key(dut: DutModel, program: TestProgram, step_limit: int) -> Tuple:
        """Cache key: program fingerprint + step limit + full DUT identity.

        The bug set is part of the key (sorted ids), so one worker can
        interleave trials against differently-bugged instances of the same
        core without cross-talk.
        """
        return (program.fingerprint(), step_limit, dut.name, dut.config,
                tuple(sorted(bug.bug_id for bug in dut.bugs)),
                dut.executor_config, dut.layout)

    def get_or_run(self, dut: DutModel, program: TestProgram,
                   max_steps: Optional[int] = None) -> DutRunResult:
        """Return the cached run for ``program`` on ``dut``, running on a miss."""
        return super().get_or_run(dut, program, max_steps)


_PROCESS_CACHE: Optional[DutRunCache] = None


def process_dut_cache() -> DutRunCache:
    """The calling process's shared :class:`DutRunCache` (created lazily).

    Trial workers route every DUT run through this instance so that trials
    of the same spec executed back-to-back in one worker reuse each other's
    seed-program runs.  Worker recycling (``max_tasks_per_child``) resets
    it together with the rest of the interpreter state.
    """
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = DutRunCache()
    return _PROCESS_CACHE
