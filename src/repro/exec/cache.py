"""Per-process DUT-run cache.

The DUT models are deterministic: a :class:`~repro.rtl.harness.DutRunResult`
depends only on the program words, the load address, the step limit and the
DUT's full configuration (microarchitecture parameters + injected bug set).
Campaigns replay programs constantly -- MABFuzz arms re-run their seeds,
mutants duplicate each other -- so caching DUT runs removes the second half
of the per-iteration simulation cost the same way PR 1's
:class:`~repro.sim.golden.GoldenTraceCache` removed the golden half.

The cache is *process-local by design*: worker processes each build their
own (:func:`process_dut_cache`), so no locking or shared memory is needed
and a cached entry can never leak between incompatible DUT configurations
running in other workers.  Cached :class:`DutRunResult` objects are frozen
and must be treated as read-only, which every consumer (differential
tester, coverage database) already does.

Cache hits never change campaign results -- only wall-clock -- so the
hit/miss counters are deliberately *not* copied into
:class:`~repro.fuzzing.results.FuzzCampaignResult` metadata: a worker's
counters depend on which trials it happened to execute before, and result
payloads must stay bit-identical between serial and parallel backends.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.isa.compiled import (compiled_cache_stats, configure_compiled_cache,
                                configure_superblock_cache,
                                superblock_cache_stats)
from repro.isa.program import TestProgram
from repro.rtl.harness import DutModel, DutRunResult
from repro.sim.golden import GoldenTraceCache, KeyedRunCache

#: default capacity of the process-level caches; the engine-level
#: ``cache_entries`` knob overrides it per grid run.
DEFAULT_CACHE_ENTRIES = 4096


class DutRunCache(KeyedRunCache):
    """Program-and-configuration-keyed cache of instrumented DUT runs.

    Shares its mechanics (counters, eviction, stats) with
    :class:`~repro.sim.golden.GoldenTraceCache` via
    :class:`~repro.sim.golden.KeyedRunCache`; only the key differs.
    """

    @staticmethod
    def key(dut: DutModel, program: TestProgram, step_limit: int) -> Tuple:
        """Cache key: program fingerprint + step limit + full DUT identity.

        The bug set is part of the key (sorted ids), so one worker can
        interleave trials against differently-bugged instances of the same
        core without cross-talk.  The coverage model is part of the DUT
        identity too: a ``"csr"`` run's coverage set is a strict superset
        of the ``"base"`` run's, so the two must never serve each other.
        """
        return (program.fingerprint(), step_limit, dut.name, dut.config,
                tuple(sorted(bug.bug_id for bug in dut.bugs)),
                dut.executor_config, dut.layout, dut.coverage_model)

    def get_or_run(self, dut: DutModel, program: TestProgram,
                   max_steps: Optional[int] = None) -> DutRunResult:
        """Return the cached run for ``program`` on ``dut``, running on a miss."""
        return super().get_or_run(dut, program, max_steps)


_PROCESS_CACHE: Optional[DutRunCache] = None
_PROCESS_GOLDEN_CACHE: Optional[GoldenTraceCache] = None


def process_dut_cache() -> DutRunCache:
    """The calling process's shared :class:`DutRunCache` (created lazily).

    Trial workers route every DUT run through this instance so that trials
    of the same spec executed back-to-back in one worker reuse each other's
    seed-program runs.  Worker recycling (``max_tasks_per_child``) resets
    it together with the rest of the interpreter state.
    """
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = DutRunCache(DEFAULT_CACHE_ENTRIES)
    return _PROCESS_CACHE


def process_golden_cache() -> GoldenTraceCache:
    """The calling process's shared golden-trace cache (created lazily).

    Installed as the *fallback* of every trial's session-level
    :class:`~repro.sim.golden.GoldenTraceCache` by the batch executor, so
    one golden run of a repeated program serves every trial a worker
    executes -- without touching the per-trial session counters that go
    into result metadata (see :class:`~repro.sim.golden.KeyedRunCache`).
    """
    global _PROCESS_GOLDEN_CACHE
    if _PROCESS_GOLDEN_CACHE is None:
        _PROCESS_GOLDEN_CACHE = GoldenTraceCache(DEFAULT_CACHE_ENTRIES)
    return _PROCESS_GOLDEN_CACHE


def configure_process_caches(cache_entries: Optional[int]) -> None:
    """Re-bound the process caches (``None`` = :data:`DEFAULT_CACHE_ENTRIES`).

    Called by the batch executor before every batch with the engine's
    ``cache_entries`` knob, so a worker always runs a batch under exactly
    the capacity that batch was planned with -- a previous grid's bound
    never leaks into the next.  Shrinking spills LRU entries immediately
    (the spill's evictions still count: callers snapshot counters *before*
    configuring, see :func:`repro.exec.batching.execute_batch`).  The
    compiled-trace and superblock caches (:mod:`repro.isa.compiled`) are
    bounded alongside the run caches so one knob governs all per-worker
    memory.
    """
    bound = DEFAULT_CACHE_ENTRIES if cache_entries is None else cache_entries
    process_dut_cache().configure(bound)
    process_golden_cache().configure(bound)
    configure_compiled_cache(bound)
    configure_superblock_cache(bound)


def process_cache_stats() -> Dict[str, int]:
    """Cumulative hit/miss/eviction counters of this process's caches."""
    dut = process_dut_cache().stats()
    golden = process_golden_cache().stats()
    compiled = compiled_cache_stats()
    superblock = superblock_cache_stats()
    return {
        "dut_cache_hits": dut["hits"],
        "dut_cache_misses": dut["misses"],
        "dut_cache_evictions": dut["evictions"],
        "shared_golden_hits": golden["hits"],
        "shared_golden_misses": golden["misses"],
        "shared_golden_evictions": golden["evictions"],
        "compiled_trace_hits": compiled["hits"],
        "compiled_trace_misses": compiled["misses"],
        "compiled_trace_evictions": compiled["evictions"],
        "superblock_hits": superblock["hits"],
        "superblock_misses": superblock["misses"],
        "superblock_evictions": superblock["evictions"],
    }
