"""File-based (spool-directory) work queue for distributed campaign grids.

The queue is a directory on a filesystem shared by one dispatcher and any
number of workers -- separate invocations, containers or machines::

    <root>/
        tasks/      pending batch files     <batch>.json
        claimed/    in-flight batch files   <batch>.json.<worker>
        results/    finished batch payloads <batch>.json
        STOP        sentinel: workers drain remaining tasks, then exit

Every operation is built from two primitives that are atomic on POSIX
filesystems: ``rename`` within a filesystem (claiming, requeueing and
publishing results) and write-to-temp-then-rename (so a reader never sees
a half-written JSON file).  Claiming is race-free by construction: two
workers renaming the same task file can only have one winner; the loser
gets ``FileNotFoundError`` and moves on.

Crash recovery: a claimed file whose mtime is older than the lease timeout
belongs to a dead (or wedged) worker; :meth:`SpoolQueue.requeue_stale`
renames it back into ``tasks/`` so a live worker picks it up again.  If
the original worker was merely slow and completes anyway, both executions
produced the same deterministic payload and the duplicate result overwrite
is harmless.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

#: default seconds after which a claimed task is considered abandoned.
DEFAULT_LEASE_TIMEOUT = 300.0

_TASK_SUFFIX = ".json"


@dataclass(frozen=True)
class ClaimedTask:
    """A task this worker has exclusive (lease-based) ownership of."""

    task_id: str
    path: str
    payload: Dict[str, object]


class SpoolQueue:
    """One campaign work queue rooted at a spool directory."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.tasks_dir = os.path.join(self.root, "tasks")
        self.claimed_dir = os.path.join(self.root, "claimed")
        self.results_dir = os.path.join(self.root, "results")
        self.stop_path = os.path.join(self.root, "STOP")

    def ensure(self) -> "SpoolQueue":
        """Create the queue layout (dispatcher and workers both call it)."""
        for directory in (self.tasks_dir, self.claimed_dir, self.results_dir):
            os.makedirs(directory, exist_ok=True)
        return self

    # ------------------------------------------------------------- dispatcher
    def enqueue(self, task_id: str, payload: Dict[str, object]) -> None:
        """Publish one pending task file (atomically, via temp + rename)."""
        path = os.path.join(self.tasks_dir, task_id + _TASK_SUFFIX)
        self._write_atomic(path, payload)

    def collect(self, task_id: str) -> Optional[Dict[str, object]]:
        """Read the result of ``task_id`` if a worker has published it."""
        path = os.path.join(self.results_dir, task_id + _TASK_SUFFIX)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None

    def requeue_stale(self, lease_timeout: float = DEFAULT_LEASE_TIMEOUT) -> List[str]:
        """Return abandoned claims (older than ``lease_timeout``) to ``tasks/``."""
        requeued = []
        now = time.time()
        for name in self._listdir(self.claimed_dir):
            claimed_path = os.path.join(self.claimed_dir, name)
            try:
                age = now - os.path.getmtime(claimed_path)
            except OSError:
                continue  # completed or re-claimed under us
            if age < lease_timeout:
                continue
            task_id = name.split(_TASK_SUFFIX)[0]
            target = os.path.join(self.tasks_dir, task_id + _TASK_SUFFIX)
            try:
                os.rename(claimed_path, target)
            except OSError:
                continue
            requeued.append(task_id)
        return requeued

    def discard_task(self, task_id: str) -> bool:
        """Withdraw a pending task (abort path); False if already claimed."""
        try:
            os.unlink(os.path.join(self.tasks_dir, task_id + _TASK_SUFFIX))
        except OSError:
            return False
        return True

    def discard_result(self, task_id: str) -> bool:
        """Remove a collected (or never-to-be-read) result file."""
        try:
            os.unlink(os.path.join(self.results_dir, task_id + _TASK_SUFFIX))
        except OSError:
            return False
        return True

    def sweep_stale_results(self, older_than: float) -> List[str]:
        """Remove orphan results older than ``older_than`` seconds.

        Results are namespaced per dispatcher run and normally deleted the
        moment they are collected (plus a same-run sweep on exit), so the
        only files this can touch are leftovers of dispatchers that died
        long ago -- any live dispatcher polls its results far faster than
        the horizon used here.
        """
        removed = []
        now = time.time()
        for name in self._listdir(self.results_dir):
            path = os.path.join(self.results_dir, name)
            try:
                if now - os.path.getmtime(path) < older_than:
                    continue
                os.unlink(path)
            except OSError:
                continue
            removed.append(name.split(_TASK_SUFFIX)[0])
        return removed

    def request_stop(self) -> None:
        """Write the sentinel: workers finish the remaining tasks and exit."""
        self._write_atomic(self.stop_path, {"stop": True})

    def clear_stop(self) -> None:
        """Remove the sentinel so re-attached workers keep serving the queue."""
        try:
            os.unlink(self.stop_path)
        except FileNotFoundError:
            pass

    # ----------------------------------------------------------------- worker
    def claim(self, worker_id: str) -> Optional[ClaimedTask]:
        """Atomically claim the oldest pending task (or ``None`` if empty).

        The claim moves the task file to ``claimed/<task>.json.<worker>``;
        losing a rename race to another worker just moves on to the next
        pending file.
        """
        for name in sorted(self._listdir(self.tasks_dir)):
            source = os.path.join(self.tasks_dir, name)
            target = os.path.join(self.claimed_dir, f"{name}.{worker_id}")
            try:
                os.rename(source, target)
            except OSError:
                continue  # another worker won this file
            try:
                # rename preserves mtime; the lease clock starts at *claim*
                # time, not at enqueue time, or a batch that waited in
                # tasks/ longer than the lease would be "stale" on arrival.
                os.utime(target, None)
            except OSError:
                pass
            try:
                with open(target, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue  # requeued/compromised under us; try the next file
            task_id = name.split(_TASK_SUFFIX)[0]
            return ClaimedTask(task_id=task_id, path=target, payload=payload)
        return None

    def complete(self, claim: ClaimedTask, result: Dict[str, object]) -> None:
        """Publish ``result`` for a claimed task and release the claim."""
        path = os.path.join(self.results_dir, claim.task_id + _TASK_SUFFIX)
        self._write_atomic(path, result)
        try:
            os.unlink(claim.path)
        except FileNotFoundError:
            pass  # lease expired and the claim was requeued; result stands

    def stop_requested(self) -> bool:
        return os.path.exists(self.stop_path)

    # ---------------------------------------------------------------- queries
    def result_ids(self) -> List[str]:
        """Task ids with a published result (one directory scan)."""
        names = self._listdir(self.results_dir)
        return [name.split(_TASK_SUFFIX)[0] for name in names]

    def pending_count(self) -> int:
        return len(self._listdir(self.tasks_dir))

    def claimed_count(self) -> int:
        return len(self._listdir(self.claimed_dir))

    def stats(self) -> Dict[str, int]:
        return {
            "pending": self.pending_count(),
            "claimed": self.claimed_count(),
            "results": len(self._listdir(self.results_dir)),
        }

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _listdir(directory: str) -> List[str]:
        try:
            names = os.listdir(directory)
        except FileNotFoundError:
            return []
        return [name for name in names if not name.startswith(".")]

    @staticmethod
    def _write_atomic(path: str, payload: Dict[str, object]) -> None:
        # The random suffix matters: pids collide across hosts/containers
        # sharing the filesystem, and two workers finishing a requeued
        # batch concurrently must not interleave into one temp file.
        unique = f"{os.getpid()}.{os.urandom(4).hex()}"
        tmp_name = f".{os.path.basename(path)}.tmp.{unique}"
        tmp_path = os.path.join(os.path.dirname(path), tmp_name)
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.rename(tmp_path, path)
