"""File-based (spool-directory) work queue for distributed campaign grids.

The queue is a directory on a filesystem shared by one dispatcher and any
number of workers -- separate invocations, containers or machines::

    <root>/
        tasks/      pending batch files     <batch>.json
        claimed/    in-flight batch files   <batch>.json.<worker>
        results/    finished batch payloads <batch>.json
        deadletter/ quarantined batches     <batch>.json
        coverage/   corpus/coverage exchange (see below)
        STOP        sentinel: workers drain remaining tasks, then exit

The ``coverage/`` channel is the corpus-mode side band (``docs/corpus.md``):
workers publish per-batch corpus deltas as ``delta.<worker>.<seq>.json``,
the dispatcher drains them, merges, and re-broadcasts the merged global
map as a versioned ``GLOBAL.json``; each worker's parting snapshot of the
map lands in ``final.<worker>.json``.  Like every other part of the queue,
the channel is built on atomic renames and tolerates deltas arriving
twice, late, or not at all -- corpus merging is idempotent and results
never depend on it.

Every operation is built from two primitives that are atomic on POSIX
filesystems: ``rename`` within a filesystem (claiming, requeueing and
publishing results) and write-to-temp-then-rename (so a reader never sees
a half-written JSON file).  Claiming is race-free by construction: two
workers renaming the same task file can only have one winner; the loser
gets ``FileNotFoundError`` and moves on.

Crash recovery: a claimed file whose mtime is older than the lease timeout
belongs to a dead (or wedged) worker; :meth:`SpoolQueue.requeue_stale`
returns it to ``tasks/`` so a live worker picks it up again.  Two
refinements keep that loop honest for long-lived services:

* **Heartbeats** -- a worker calls :meth:`ClaimedTask.heartbeat` between
  trials, touching the claim file's mtime, so a batch that legitimately
  outlives its lease is never falsely requeued (and hence never
  duplicated).  A failing heartbeat means the lease was lost anyway --
  the claim was already requeued to another worker -- and the holder
  aborts the remainder of the batch and drops its result
  (:class:`LeaseLostError`) instead of racing the new owner with a
  duplicate execution.
* **Retry budgets** -- every task payload carries an ``attempts`` counter
  (bumped on each requeue) and an optional ``max_attempts`` budget; a
  batch that keeps crashing its workers is moved to ``deadletter/`` with
  its failure context instead of being requeued forever.

Transient filesystem errors on publish are retried under jittered
exponential backoff (:class:`~repro.exec.faults.Backoff`); all directory
scans tolerate files disappearing mid-scan, because with many workers and
a dispatcher racing over one directory, they do.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exec import faults

#: default seconds after which a claimed task is considered abandoned.
DEFAULT_LEASE_TIMEOUT = 300.0

#: default execution budget per task: a batch whose worker dies (or whose
#: result never survives publishing) this many times is quarantined.
DEFAULT_MAX_ATTEMPTS = 3

#: attempts to publish a file through transient ``OSError``s before the
#: error is allowed to propagate to the caller.
PUBLISH_RETRIES = 4

_TASK_SUFFIX = ".json"

#: queue-envelope keys the dispatcher folds into task payloads; workers
#: echo ``attempts`` back so failure payloads carry their retry history.
ATTEMPTS_KEY = "attempts"
MAX_ATTEMPTS_KEY = "max_attempts"


class LeaseLostError(RuntimeError):
    """A worker's claim lease vanished mid-batch.

    Raised (by the worker's between-trials hook) when
    :meth:`ClaimedTask.heartbeat` returns ``False``: the claim file is
    gone, so the lease expired and the task was requeued to -- or already
    completed by -- another worker.  The holder must abort the rest of
    the batch and drop its result; the new owner republishes the same
    deterministic payload, so finishing here would only duplicate work
    and race the owner's publish.
    """


@dataclass(frozen=True)
class ClaimedTask:
    """A task this worker has exclusive (lease-based) ownership of."""

    task_id: str
    path: str
    payload: Dict[str, object]

    @property
    def attempts(self) -> int:
        """How many times this task has been handed to a worker before."""
        try:
            return int(self.payload.get(ATTEMPTS_KEY, 0))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return 0

    def heartbeat(self) -> bool:
        """Renew the lease by touching the claim file's mtime.

        Returns ``False`` when the claim file is gone -- the lease expired
        and the task was requeued (or completed) under us.  The holder
        must then abort the remainder of the batch and discard its partial
        work (see :class:`LeaseLostError`): ownership has moved, and the
        new owner will re-execute and publish the same deterministic
        payload.
        """
        try:
            os.utime(self.path, None)
        except OSError:
            return False
        return True


class SpoolQueue:
    """One campaign work queue rooted at a spool directory."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.tasks_dir = os.path.join(self.root, "tasks")
        self.claimed_dir = os.path.join(self.root, "claimed")
        self.results_dir = os.path.join(self.root, "results")
        self.deadletter_dir = os.path.join(self.root, "deadletter")
        self.coverage_dir = os.path.join(self.root, "coverage")
        self.stop_path = os.path.join(self.root, "STOP")
        # One long-lived backoff per queue instance, owned by the publish
        # site alone: consecutive failing publishes during one filesystem
        # outage keep escalating across calls, and the first success
        # resets the schedule so the *next* outage starts from ``base``
        # again instead of an inflated leftover delay (regression-tested
        # in tests/exec/test_queue.py).
        self._publish_backoff = faults.Backoff(
            base=0.05, cap=1.0, seed=faults.stable_seed(self.root))

    def ensure(self) -> "SpoolQueue":
        """Create the queue layout (dispatcher and workers both call it)."""
        for directory in (self.tasks_dir, self.claimed_dir, self.results_dir,
                          self.deadletter_dir, self.coverage_dir):
            os.makedirs(directory, exist_ok=True)
        return self

    # ------------------------------------------------------------- dispatcher
    def enqueue(
        self,
        task_id: str,
        payload: Dict[str, object],
        attempts: int = 0,
        max_attempts: Optional[int] = None,
    ) -> None:
        """Publish one pending task file (atomically, via temp + rename).

        ``attempts``/``max_attempts`` form the task's retry envelope: the
        dispatcher sets the budget once at submission, requeues bump the
        counter, and :meth:`requeue_stale` quarantines the task when the
        counter reaches the budget.
        """
        envelope = dict(payload)
        envelope[ATTEMPTS_KEY] = int(attempts)
        if max_attempts is not None:
            envelope[MAX_ATTEMPTS_KEY] = int(max_attempts)
        path = os.path.join(self.tasks_dir, task_id + _TASK_SUFFIX)
        self._publish(path, envelope)

    def collect(self, task_id: str) -> Optional[Dict[str, object]]:
        """Read the result of ``task_id`` if a worker has published it.

        A result file that exists but does not parse (torn or corrupted on
        a non-atomic filesystem) comes back as an error payload rather
        than an exception, so the dispatcher's failure path -- retry or
        quarantine -- handles it like any other failed execution.
        """
        path = os.path.join(self.results_dir, task_id + _TASK_SUFFIX)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            return {"error": f"corrupt result payload for {task_id}: {exc}", "corrupt": True}
        if not isinstance(payload, dict):
            return {"error": f"malformed result payload for {task_id}", "corrupt": True}
        return payload

    def requeue_stale(
        self, lease_timeout: float = DEFAULT_LEASE_TIMEOUT, max_attempts: Optional[int] = None
    ) -> List[str]:
        """Return abandoned claims (older than ``lease_timeout``) to ``tasks/``.

        Each requeue bumps the task's ``attempts`` counter; a task whose
        counter reaches its budget (the payload's ``max_attempts``, or the
        ``max_attempts`` argument for payloads without one) is moved to
        ``deadletter/`` instead -- a batch that reliably kills its worker
        must not circulate forever.  Ownership of one requeue is taken
        with a single atomic rename to a hidden scratch name, so
        concurrent sweepers (dispatcher plus idle workers) never process
        the same claim twice.  Files disappearing mid-scan are someone
        else's progress, not an error.
        """
        requeued = []
        now = time.time()
        for name in self._listdir(self.claimed_dir):
            claimed_path = os.path.join(self.claimed_dir, name)
            try:
                age = now - os.path.getmtime(claimed_path)
            except OSError:
                continue  # completed or re-claimed under us
            if age < lease_timeout:
                continue
            task_id = name.split(_TASK_SUFFIX)[0]
            scratch = os.path.join(self.claimed_dir, f".requeue.{name}.{self._unique()}")
            try:
                os.rename(claimed_path, scratch)
            except OSError:
                continue  # another sweeper owns this requeue
            try:
                with open(scratch, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if not isinstance(payload, dict):
                    raise ValueError("task payload is not an object")
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                # An unreadable task file would crash every worker that
                # claims it; quarantine immediately, keeping the raw claim
                # name for forensics.
                self.quarantine(
                    task_id,
                    payload={"claim": name},
                    attempts=None,
                    error=f"unreadable claim payload: {exc}",
                )
                self._unlink_quiet(scratch)
                continue
            attempts = 0
            try:
                attempts = int(payload.get(ATTEMPTS_KEY, 0))
            except (TypeError, ValueError):
                pass
            attempts += 1
            budget = payload.get(MAX_ATTEMPTS_KEY, max_attempts)
            if budget is not None and attempts >= int(budget):
                message = (
                    f"lease expired on attempt {attempts} of {budget} "
                    "(worker died or wedged repeatedly)"
                )
                self.quarantine(task_id, payload=payload, attempts=attempts, error=message)
                self._unlink_quiet(scratch)
                continue
            payload[ATTEMPTS_KEY] = attempts
            target = os.path.join(self.tasks_dir, task_id + _TASK_SUFFIX)
            self._publish(target, payload)
            self._unlink_quiet(scratch)
            requeued.append(task_id)
        return requeued

    def discard_task(self, task_id: str) -> bool:
        """Withdraw a pending task (abort path); False if already claimed."""
        try:
            os.unlink(os.path.join(self.tasks_dir, task_id + _TASK_SUFFIX))
        except OSError:
            return False
        return True

    def discard_result(self, task_id: str) -> bool:
        """Remove a collected (or never-to-be-read) result file."""
        try:
            os.unlink(os.path.join(self.results_dir, task_id + _TASK_SUFFIX))
        except OSError:
            return False
        return True

    def sweep_stale_results(self, older_than: float) -> List[str]:
        """Remove orphan results older than ``older_than`` seconds.

        Results are namespaced per dispatcher run and normally deleted the
        moment they are collected (plus a same-run sweep on exit), so the
        only files this can touch are leftovers of dispatchers that died
        long ago -- any live dispatcher polls its results far faster than
        the horizon used here.  Hidden scratch files of requeues that died
        mid-flight are swept on the same horizon.
        """
        removed = []
        now = time.time()
        for name in self._listdir(self.results_dir):
            path = os.path.join(self.results_dir, name)
            try:
                if now - os.path.getmtime(path) < older_than:
                    continue
                os.unlink(path)
            except OSError:
                continue
            removed.append(name.split(_TASK_SUFFIX)[0])
        for directory in (self.claimed_dir, self.tasks_dir, self.results_dir):
            try:
                hidden = os.listdir(directory)
            except OSError:
                continue
            for name in hidden:
                if not name.startswith("."):
                    continue
                path = os.path.join(directory, name)
                try:
                    if now - os.path.getmtime(path) >= older_than:
                        os.unlink(path)
                except OSError:
                    continue
        return removed

    def request_stop(self) -> None:
        """Write the sentinel: workers finish the remaining tasks and exit."""
        self._publish(self.stop_path, {"stop": True})

    def clear_stop(self) -> None:
        """Remove the sentinel so re-attached workers keep serving the queue."""
        try:
            os.unlink(self.stop_path)
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------- deadletter
    def quarantine(
        self, task_id: str, payload: Dict[str, object], attempts: Optional[int], error: str
    ) -> Dict[str, object]:
        """Move a task out of circulation into ``deadletter/``.

        The record keeps everything needed to diagnose (and manually
        re-enqueue) the batch: the task payload, how many executions were
        attempted, and the last error observed.  Atomic write keyed by
        task id, so concurrent quarantine attempts collapse to one file.
        """
        record: Dict[str, object] = {
            "task_id": task_id,
            "attempts": attempts,
            "error": error,
            "payload": payload,
            "quarantined_at": time.time(),
        }
        path = os.path.join(self.deadletter_dir, task_id + _TASK_SUFFIX)
        self._publish(path, record)
        return record

    def deadletter_ids(self) -> List[str]:
        """Task ids currently quarantined (one directory scan)."""
        return [name.split(_TASK_SUFFIX)[0] for name in self._listdir(self.deadletter_dir)]

    def read_deadletter(self, task_id: str) -> Optional[Dict[str, object]]:
        """The quarantine record of ``task_id`` (or ``None``)."""
        path = os.path.join(self.deadletter_dir, task_id + _TASK_SUFFIX)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def discard_deadletter(self, task_id: str) -> bool:
        """Drop a quarantine record (after the dispatcher reported it)."""
        try:
            os.unlink(os.path.join(self.deadletter_dir, task_id + _TASK_SUFFIX))
        except OSError:
            return False
        return True

    # ------------------------------------------------------- coverage channel
    def publish_coverage_delta(self, worker_id: str, seq: int,
                               payload: Dict[str, object]) -> None:
        """Publish one worker's corpus delta (atomic, per-worker sequenced).

        ``payload`` is a :meth:`~repro.fuzzing.corpus.CorpusManager.
        delta_payload` dict -- new coverage points plus newly admitted
        entries.  The ``(worker_id, seq)`` key keeps concurrent publishes
        from distinct workers apart; the dispatcher consumes files in name
        order, but merge idempotency means ordering is a nicety, not a
        correctness requirement.
        """
        name = f"delta.{worker_id}.{int(seq):08d}{_TASK_SUFFIX}"
        self._publish(os.path.join(self.coverage_dir, name), payload)

    def take_coverage_deltas(self) -> List[Dict[str, object]]:
        """Drain pending worker deltas (dispatcher side), oldest first.

        Each delta file is read then removed; files disappearing mid-scan
        or torn beyond parsing are skipped -- a lost delta costs only
        freshness (the same state rides in the batch's result payload, so
        the dispatcher map converges regardless).
        """
        deltas: List[Dict[str, object]] = []
        for name in sorted(self._listdir(self.coverage_dir)):
            if not name.startswith("delta."):
                continue
            path = os.path.join(self.coverage_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                self._unlink_quiet(path)
                continue
            self._unlink_quiet(path)
            if isinstance(payload, dict):
                deltas.append(payload)
        return deltas

    def publish_coverage_global(self, payload: Dict[str, object]) -> None:
        """Broadcast the merged global corpus state (``coverage/GLOBAL.json``).

        The dispatcher wraps the state as ``{"version": n, "state":
        <to_payload dict>}``; the version lets workers (and re-broadcast
        checks) skip merges of a map they have already seen.  Atomic
        replace: readers always see a complete broadcast.
        """
        self._publish(os.path.join(self.coverage_dir, "GLOBAL" + _TASK_SUFFIX),
                      payload)

    def read_coverage_global(self) -> Optional[Dict[str, object]]:
        """The latest global-map broadcast, or ``None`` before the first."""
        path = os.path.join(self.coverage_dir, "GLOBAL" + _TASK_SUFFIX)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def publish_coverage_snapshot(self, worker_id: str,
                                  payload: Dict[str, object]) -> None:
        """Publish a worker's parting view of the global map (drain/exit path).

        The equivalence invariant lives here: after a clean corpus-mode
        shutdown every ``final.<worker>.json`` carries exactly the point
        set of the dispatcher's map (test-enforced).
        """
        name = f"final.{worker_id}{_TASK_SUFFIX}"
        self._publish(os.path.join(self.coverage_dir, name), payload)

    def coverage_snapshots(self) -> Dict[str, Dict[str, object]]:
        """All worker parting snapshots, keyed by worker id."""
        snapshots: Dict[str, Dict[str, object]] = {}
        for name in self._listdir(self.coverage_dir):
            if not name.startswith("final."):
                continue
            worker_id = name[len("final."):].rsplit(_TASK_SUFFIX, 1)[0]
            try:
                with open(os.path.join(self.coverage_dir, name),
                          "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(payload, dict):
                snapshots[worker_id] = payload
        return snapshots

    # ----------------------------------------------------------------- worker
    def claim(self, worker_id: str) -> Optional[ClaimedTask]:
        """Atomically claim the oldest pending task (or ``None`` if empty).

        The claim moves the task file to ``claimed/<task>.json.<worker>``;
        losing a rename race to another worker just moves on to the next
        pending file.
        """
        for name in sorted(self._listdir(self.tasks_dir)):
            source = os.path.join(self.tasks_dir, name)
            target = os.path.join(self.claimed_dir, f"{name}.{worker_id}")
            try:
                os.rename(source, target)
            except OSError:
                continue  # another worker won this file
            try:
                # rename preserves mtime; the lease clock starts at *claim*
                # time, not at enqueue time, or a batch that waited in
                # tasks/ longer than the lease would be "stale" on arrival.
                os.utime(target, None)
            except OSError:
                pass
            try:
                with open(target, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue  # requeued/compromised under us; try the next file
            task_id = name.split(_TASK_SUFFIX)[0]
            for rule in faults.fire(faults.SITE_QUEUE_CLAIM, task_id=task_id, worker=worker_id):
                if rule.action == faults.ACTION_BACKDATE:
                    # Claim-steal simulation: the fresh claim looks ancient,
                    # so the next stale sweep hands it to another worker
                    # while this one is still executing.
                    try:
                        os.utime(target, (1, 1))
                    except OSError:
                        pass
                else:
                    faults.perform(rule)
            return ClaimedTask(task_id=task_id, path=target, payload=payload)
        return None

    def complete(self, claim: ClaimedTask, result: Dict[str, object]) -> None:
        """Publish ``result`` for a claimed task and release the claim.

        Publishing retries transient ``OSError``s under jittered backoff
        (:data:`PUBLISH_RETRIES` attempts) before letting the error
        propagate -- shared filesystems hiccup, and one blip must not turn
        a finished batch into a full re-execution.
        """
        path = os.path.join(self.results_dir, claim.task_id + _TASK_SUFFIX)
        torn = None
        transient_failures = 0
        for rule in faults.fire(faults.SITE_QUEUE_PUBLISH, task_id=claim.task_id):
            if rule.action == faults.ACTION_TORN:
                torn = rule
            elif rule.action == faults.ACTION_OSERROR:
                # Fed into _publish's retry loop (one failed attempt per
                # fired rule): a transient blip must cost a backoff, not
                # the worker.
                transient_failures += 1
            else:
                faults.perform(rule)
        if torn is not None:
            # A corrupted publish: the worker believes it succeeded and
            # releases the claim, but the dispatcher reads garbage.
            data = json.dumps(result, sort_keys=True).encode("utf-8")
            with open(path, "wb") as handle:
                handle.write(faults.corrupt_bytes(data, torn))
        else:
            self._publish(path, result, fail_first=transient_failures)
        try:
            os.unlink(claim.path)
        except FileNotFoundError:
            pass  # lease expired and the claim was requeued; result stands

    def stop_requested(self) -> bool:
        return os.path.exists(self.stop_path)

    # ---------------------------------------------------------------- queries
    def result_ids(self) -> List[str]:
        """Task ids with a published result (one directory scan)."""
        names = self._listdir(self.results_dir)
        return [name.split(_TASK_SUFFIX)[0] for name in names]

    def task_ids(self) -> List[str]:
        """Pending task ids (one directory scan)."""
        return [name.split(_TASK_SUFFIX)[0] for name in self._listdir(self.tasks_dir)]

    def claimed_ids(self) -> List[str]:
        """Task ids currently claimed by some worker (one directory scan)."""
        return [name.split(_TASK_SUFFIX)[0] for name in self._listdir(self.claimed_dir)]

    def pending_count(self) -> int:
        return len(self._listdir(self.tasks_dir))

    def claimed_count(self) -> int:
        return len(self._listdir(self.claimed_dir))

    def stats(self) -> Dict[str, int]:
        return {
            "pending": self.pending_count(),
            "claimed": self.claimed_count(),
            "results": len(self._listdir(self.results_dir)),
            "deadletter": len(self._listdir(self.deadletter_dir)),
        }

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _listdir(directory: str) -> List[str]:
        try:
            names = os.listdir(directory)
        except FileNotFoundError:
            return []
        return [name for name in names if not name.startswith(".")]

    @staticmethod
    def _unique() -> str:
        # The random suffix matters: pids collide across hosts/containers
        # sharing the filesystem, and two workers finishing a requeued
        # batch concurrently must not interleave into one temp file.
        return f"{os.getpid()}.{os.urandom(4).hex()}"

    @staticmethod
    def _unlink_quiet(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def _publish(self, path: str, payload: Dict[str, object], fail_first: int = 0) -> None:
        """Atomic write with bounded retries on transient ``OSError``.

        ``fail_first`` makes the first N attempts fail with an injected
        error (fault-injection hook for the ``oserror`` action).
        """
        backoff = self._publish_backoff
        for attempt in range(PUBLISH_RETRIES):
            try:
                if attempt < fail_first:
                    raise faults.InjectedError(f"injected transient fault publishing {path}")
                self._write_atomic(path, payload)
                backoff.reset()  # outage over: decay back to the base delay
                return
            except OSError:
                if attempt == PUBLISH_RETRIES - 1:
                    raise
                backoff.sleep()

    @staticmethod
    def _write_atomic(path: str, payload: Dict[str, object]) -> None:
        tmp_name = f".{os.path.basename(path)}.tmp.{SpoolQueue._unique()}"
        tmp_path = os.path.join(os.path.dirname(path), tmp_name)
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.rename(tmp_path, path)
