"""The campaign execution engine: grids in, trial sets out.

:class:`CampaignEngine` owns everything between "here is a grid of
:class:`~repro.harness.campaign.CampaignSpec`" and "here are its
:class:`~repro.harness.campaign.TrialSet` results":

* expands the grid into (spec, trial) tasks,
* drops tasks already completed in the checkpoint journal (resume) or in
  an earlier grid run through the same engine (in-memory reuse),
* shards the remainder across the configured backend (which batches
  cache-compatible tasks and applies the engine's ``cache_entries`` bound
  inside every worker),
* journals each result the moment it arrives (kill-safe), and
* feeds a :class:`~repro.core.monitor.ProgressMonitor` throughout,
  including the workers' cache-traffic deltas.

Determinism contract: trial ``i`` of a spec seeds itself from the spec
content alone (:func:`~repro.harness.campaign.trial_seed`), so the engine
guarantees bit-identical ``FuzzCampaignResult`` payloads (modulo
``elapsed_seconds``) whichever backend executes it and in whatever order
trials complete -- the property ``tests/exec/test_backends.py`` enforces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.monitor import ProgressMonitor
from repro.exec.backends import ExecutionBackend, SerialBackend, TrialTask
from repro.exec.checkpoint import CheckpointJournal, TrialKey
from repro.fuzzing.results import FuzzCampaignResult
from repro.harness.campaign import CampaignSpec, TrialSet

if TYPE_CHECKING:
    from repro.telemetry.sink import TelemetrySink


class CampaignEngine:
    """Executes campaign grids on a pluggable backend with checkpoint/resume.

    Attributes:
        backend: trial executor (defaults to :class:`SerialBackend`).
        checkpoint_path: JSONL journal path; ``None`` disables journaling.
        monitor: progress monitor; a silent one is created when omitted.
        cache_entries: capacity bound applied to the per-process golden
            and DUT run caches inside every worker (``None`` keeps the
            backend's default, currently 4096).  Capacity never changes
            results -- the per-trial counters that enter result metadata
            come from the session-level cache, which this knob does not
            touch (see ``docs/parallel.md``).
        reuse_results: serve (spec, trial) cells already completed by an
            earlier ``run_grid`` call on this engine from memory instead
            of re-running them -- trials are deterministic, so the replay
            would be bit-identical anyway.  ``mabfuzz report`` runs the
            Table I grid and the coverage grid through one engine and
            overlaps on every shared cell.
        telemetry: optional :class:`~repro.telemetry.sink.TelemetrySink`
            receiving the campaign's NDJSON event stream (per-trial
            coverage/bug/cache data, recovery deltas, worker lifecycle;
            schema in ``docs/service.md``).  Purely observational: the
            engine wraps it in a never-raising
            :class:`~repro.telemetry.sink.TelemetryRecorder`, so a dead
            sink can degrade the stream but never the campaign.
    """

    def __init__(self, backend: Optional[ExecutionBackend] = None,
                 checkpoint_path: Optional[str] = None,
                 monitor: Optional[ProgressMonitor] = None,
                 cache_entries: Optional[int] = None,
                 reuse_results: bool = True,
                 telemetry: Optional["TelemetrySink"] = None) -> None:
        # Local import: repro.telemetry imports repro.exec.faults, so a
        # module-level import here would cycle when telemetry loads first.
        from repro.telemetry.sink import TelemetryRecorder

        self.backend = backend or SerialBackend()
        self.checkpoint_path = checkpoint_path
        self.monitor = monitor or ProgressMonitor()
        if cache_entries is not None and cache_entries < 1:
            raise ValueError("cache_entries must be >= 1 or None")
        self.cache_entries = cache_entries
        self.reuse_results = reuse_results
        self.telemetry = TelemetryRecorder(telemetry)
        self._completed: Dict[TrialKey, Dict[str, object]] = {}
        #: dispatcher-side corpus state (:class:`~repro.fuzzing.corpus.
        #: CorpusManager`) shared across ``run_grid`` calls on this
        #: engine, or ``None`` until a corpus-enabled grid runs.  Seeded
        #: from the checkpoint journal's corpus deltas on resume.
        self.corpus_state = None
        #: robustness report of the most recent :meth:`run_grid`: journal
        #: salvage tally, backend self-healing counters, and the trials
        #: quarantined in ``deadletter/`` (graceful degradation leaves
        #: them as holes in the returned :class:`TrialSet`s).
        self.last_run_report: Dict[str, object] = {}

    def run_grid(self, specs: Sequence[CampaignSpec]) -> List[TrialSet]:
        """Run every trial of every spec; return one TrialSet per spec, in order.

        With a checkpoint journal configured, trials recorded there are
        restored instead of re-run, and every newly finished trial is
        appended before the next one is awaited -- killing the process at
        any point loses at most the trials currently in flight.
        """
        if not specs:
            return []
        fingerprints = [spec.fingerprint() for spec in specs]
        grids: List[List[Optional[FuzzCampaignResult]]] = [
            [None] * spec.trials for spec in specs]

        # Announce the grid before touching the journal: restore/salvage
        # of a large checkpoint can take a while, and its wall-clock must
        # not leak into the monitor's observed throughput (the monitor
        # rebases its clock in ``restore_completed`` below).
        total = sum(spec.trials for spec in specs)
        self.monitor.start(total_trials=total,
                           backend=self.backend.describe())
        self.telemetry.record("run_start", specs=len(specs), trials=total,
                              backend=self.backend.describe())

        journal = (CheckpointJournal(self.checkpoint_path)
                   if self.checkpoint_path else None)
        restored = 0
        journaled = journal.load() if journal is not None else {}
        salvage = dict(journal.last_load_stats) if journal is not None else {}
        for spec_index, spec in enumerate(specs):
            for trial in range(spec.trials):
                key = (fingerprints[spec_index], trial)
                result = journaled.get(key)
                if result is None and self.reuse_results:
                    payload = self._completed.get(key)
                    if payload is not None:
                        result = FuzzCampaignResult.from_dict(payload)
                        if journal is not None:
                            journal.record_trial(spec, trial, payload)
                if result is not None:
                    grids[spec_index][trial] = result
                    restored += 1

        corpus_deltas = journal.last_corpus_deltas if journal is not None else []
        corpus_active = any(spec.fuzzer_config is not None
                            and spec.fuzzer_config.corpus for spec in specs)
        if corpus_active or corpus_deltas:
            if self.corpus_state is None:
                from repro.fuzzing.corpus import CorpusManager

                self.corpus_state = CorpusManager()
            for delta in corpus_deltas:
                # Resume path: replay the journaled feedback loop (merges
                # are idempotent, so re-running a resumed grid is safe).
                self.corpus_state.merge_payload(delta)

        tasks = [TrialTask(spec_index, trial, spec)
                 for spec_index, spec in enumerate(specs)
                 for trial in range(spec.trials)
                 if grids[spec_index][trial] is None]
        self.monitor.restore_completed(restored)
        if salvage.get("dropped"):
            # Corrupt journal records were salvaged around; their trials
            # simply re-run below.  Surface the damage rather than hiding
            # a partially trusted checkpoint.
            self.monitor.update_robustness_stats(
                {"journal_dropped": salvage["dropped"]})

        # The knob is scoped to this run: a backend shared between engines
        # must not inherit another engine's bound.
        previous_cache_entries = self.backend.cache_entries
        if self.cache_entries is not None:
            self.backend.cache_entries = self.cache_entries
        # Hand the backend the engine's corpus state (it injects it into
        # corpus-enabled batches and folds every batch delta back in) and
        # journal each delta as it lands -- the feedback loop survives a
        # kill exactly like completed trials do.
        self.backend.corpus = self.corpus_state
        self.backend.on_corpus_delta = (journal.record_corpus
                                        if journal is not None else None)
        # Hand the recorder to the backend too (same injection pattern as
        # the corpus): the distributed backend forwards it to its worker
        # supervisor for lifecycle events.
        previous_telemetry = self.backend.telemetry
        if self.telemetry.enabled:
            self.backend.telemetry = self.telemetry
        recovery_seen: Dict[str, int] = {}
        try:
            if journal is not None and tasks:
                journal.record_grid(specs)
            for task, payload in self.backend.run(tasks):
                result = FuzzCampaignResult.from_dict(payload)
                grids[task.spec_index][task.trial_index] = result
                key = (fingerprints[task.spec_index], task.trial_index)
                if self.reuse_results:
                    self._completed[key] = payload
                if journal is not None:
                    journal.record_trial(task.spec, task.trial_index, payload)
                self.monitor.update_cache_stats(self.backend.cache_stats)
                self.monitor.update_robustness_stats(self.backend.robustness_stats)
                if self.corpus_state is not None:
                    self.monitor.update_corpus_stats(self.corpus_state.stats())
                self.monitor.trial_completed(
                    label=f"{task.spec.describe()} trial {task.trial_index}",
                    metadata=result.metadata)
                if self.telemetry.enabled:
                    self._record_trial_events(task, result, recovery_seen)
        finally:
            self.backend.cache_entries = previous_cache_entries
            self.backend.on_corpus_delta = None
            self.backend.telemetry = previous_telemetry
            if journal is not None:
                journal.close()

        quarantined = []
        for entry in getattr(self.backend, "quarantined", []):
            trials = [{"spec": fingerprints[spec_index],
                       "label": specs[spec_index].describe(),
                       "trial": trial_index}
                      for spec_index, trial_index in entry.get("tasks", [])
                      if 0 <= spec_index < len(specs)]
            quarantined.append({"task_id": entry.get("task_id"),
                                "error": entry.get("error"),
                                "attempts": entry.get("attempts"),
                                "trials": trials})
        self.last_run_report = {
            "backend": self.backend.describe(),
            "robustness": dict(self.backend.robustness_stats),
            "journal_salvage": salvage,
            "quarantined": quarantined,
            "quarantined_trials": sum(len(q["trials"]) for q in quarantined),
        }
        if self.corpus_state is not None:
            self.last_run_report["corpus"] = self.corpus_state.stats()
            self.monitor.update_corpus_stats(self.corpus_state.stats())
        # The transport section exists whenever there is something to
        # account for: a worker supervisor (the backend exposes its stats
        # as ``transport_stats``) and/or a telemetry stream.  The recorder
        # is closed -- final drain, remainder spilled -- *before* its
        # stats are read, so spill accounting is complete.
        supervisor_stats = getattr(self.backend, "transport_stats", None)
        if supervisor_stats is not None or self.telemetry.enabled:
            transport: Dict[str, object] = dict(supervisor_stats or {})
            self.telemetry.record(
                "run_finish",
                trials=sum(1 for grid in grids for r in grid if r is not None),
                quarantined=self.last_run_report["quarantined_trials"],
                transport=dict(transport))
            self.telemetry.close()
            if self.telemetry.enabled:
                transport["telemetry"] = self.telemetry.stats()
            self.last_run_report["transport"] = transport
            self.monitor.update_transport_stats(transport)
        self.monitor.update_robustness_stats(self.backend.robustness_stats)
        self.monitor.finish(self.last_run_report)

        if self.reuse_results:
            for spec_index, fingerprint in enumerate(fingerprints):
                for trial, result in enumerate(grids[spec_index]):
                    key = (fingerprint, trial)
                    if result is not None and key not in self._completed:
                        self._completed[key] = result.to_dict()

        return [TrialSet(spec=spec, results=grids[spec_index])
                for spec_index, spec in enumerate(specs)]

    def _record_trial_events(self, task: TrialTask,
                             result: FuzzCampaignResult,
                             recovery_seen: Dict[str, int]) -> None:
        """Emit the per-trial telemetry event, plus a recovery delta if any.

        Recovery events are *diffs* of the backend's running robustness
        counters against the last snapshot recorded, so the stream carries
        one event per self-healing incident rather than repeating totals.
        """
        cache = {name: value for name, value in result.metadata.items()
                 if name.endswith(("_hits", "_misses", "_evictions"))
                 and isinstance(value, int)}
        self.telemetry.record(
            "trial",
            spec_index=task.spec_index, trial_index=task.trial_index,
            label=task.spec.describe(), coverage=result.coverage_count,
            total_points=result.total_points,
            bugs=sorted(result.bug_detections), cache=cache)
        delta = {name: value - recovery_seen.get(name, 0)
                 for name, value in self.backend.robustness_stats.items()
                 if value != recovery_seen.get(name, 0)}
        if delta:
            recovery_seen.update(self.backend.robustness_stats)
            self.telemetry.record("recovery", counters=delta)

    def run_trials(self, spec: CampaignSpec) -> TrialSet:
        """Single-spec convenience wrapper over :meth:`run_grid`."""
        return self.run_grid([spec])[0]


def run_grid(specs: Sequence[CampaignSpec],
             backend: Optional[ExecutionBackend] = None,
             checkpoint_path: Optional[str] = None,
             monitor: Optional[ProgressMonitor] = None,
             cache_entries: Optional[int] = None) -> List[TrialSet]:
    """Functional one-shot form of :meth:`CampaignEngine.run_grid`."""
    engine = CampaignEngine(backend=backend, checkpoint_path=checkpoint_path,
                            monitor=monitor, cache_entries=cache_entries,
                            reuse_results=False)  # one-shot: a memo would never be hit
    return engine.run_grid(specs)


def grid_summary(trialsets: Sequence[TrialSet]) -> Dict[str, object]:
    """Aggregate statistics over a finished grid (used by the grid benchmarks)."""
    completed: List[Tuple[TrialSet, FuzzCampaignResult]] = [
        (ts, result) for ts in trialsets for result in ts.completed_results()]
    return {
        "specs": len(trialsets),
        "trials_completed": len(completed),
        "trials_expected": sum(ts.spec.trials for ts in trialsets),
        "tests_executed": sum(r.num_tests for _, r in completed),
        "total_elapsed_seconds": sum(r.elapsed_seconds for _, r in completed),
        "bugs_detected": sorted({bug for _, r in completed
                                 for bug in r.bug_detections}),
    }
