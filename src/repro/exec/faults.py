"""Deterministic fault injection for the campaign execution stack.

Chaos engineering needs two halves: mechanisms that self-heal, and a way
to *prove* they do.  This module is the proving half -- a seeded,
serializable :class:`FaultPlan` describing exactly which failures to
inject at which **named sites** threaded through the execution stack, and
the :class:`FaultInjector` that fires them at runtime.  Because rules
trigger on deterministic hit counts (``after`` / ``times``) rather than
wall clocks, the same plan reproduces the same failure schedule on every
run -- chaos tests can assert bit-identical recovery
(``tests/exec/test_chaos.py``, ``docs/robustness.md``).

Sites and the actions each one interprets:

=====================  =========================================================
site                   actions
=====================  =========================================================
``worker.batch``       ``kill`` (``os._exit`` holding the claim), ``delay``
``worker.trial``       ``kill``, ``delay`` -- fired between trials of a batch
``queue.claim``        ``backdate`` (claim-steal: lease looks expired), ``delay``
``queue.publish``      ``torn`` (corrupted result file), ``oserror``, ``delay``
``journal.append``     ``corrupt`` (scrambled record), ``torn`` (half a record)
``transport.spawn``    ``oserror`` (worker launch fails), ``delay``
``transport.probe``    ``down`` (health probe reports the worker dead), ``delay``
``sink.connect``       ``oserror`` (telemetry connect refused), ``delay``
``sink.write``         ``oserror`` (telemetry send fails mid-stream), ``delay``
=====================  =========================================================

Plans cross process boundaries as JSON (``repro.cli worker --fault-plan``
or the ``REPRO_FAULT_PLAN`` environment variable), so externally launched
workers and dispatchers can run under one scripted failure schedule.
Production code never constructs an injector; every site is a no-op until
:func:`install` is called.
"""

from __future__ import annotations

import json
import os
import random
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

# ------------------------------------------------------------------ site names
SITE_WORKER_BATCH = "worker.batch"
SITE_WORKER_TRIAL = "worker.trial"
SITE_QUEUE_CLAIM = "queue.claim"
SITE_QUEUE_PUBLISH = "queue.publish"
SITE_JOURNAL_APPEND = "journal.append"
SITE_TRANSPORT_SPAWN = "transport.spawn"
SITE_TRANSPORT_PROBE = "transport.probe"
SITE_SINK_CONNECT = "sink.connect"
SITE_SINK_WRITE = "sink.write"

SITES = frozenset({
    SITE_WORKER_BATCH,
    SITE_WORKER_TRIAL,
    SITE_QUEUE_CLAIM,
    SITE_QUEUE_PUBLISH,
    SITE_JOURNAL_APPEND,
    SITE_TRANSPORT_SPAWN,
    SITE_TRANSPORT_PROBE,
    SITE_SINK_CONNECT,
    SITE_SINK_WRITE,
})

# ------------------------------------------------------------------- actions
ACTION_KILL = "kill"
ACTION_DELAY = "delay"
ACTION_BACKDATE = "backdate"
ACTION_TORN = "torn"
ACTION_CORRUPT = "corrupt"
ACTION_OSERROR = "oserror"
ACTION_DOWN = "down"

#: actions each site knows how to interpret (validated at plan build time,
#: so a typo'd plan fails fast instead of silently never firing).
ACTIONS_BY_SITE: Dict[str, frozenset] = {
    SITE_WORKER_BATCH: frozenset({ACTION_KILL, ACTION_DELAY}),
    SITE_WORKER_TRIAL: frozenset({ACTION_KILL, ACTION_DELAY}),
    SITE_QUEUE_CLAIM: frozenset({ACTION_BACKDATE, ACTION_DELAY}),
    SITE_QUEUE_PUBLISH: frozenset({ACTION_TORN, ACTION_OSERROR, ACTION_DELAY}),
    SITE_JOURNAL_APPEND: frozenset({ACTION_CORRUPT, ACTION_TORN}),
    SITE_TRANSPORT_SPAWN: frozenset({ACTION_OSERROR, ACTION_DELAY}),
    SITE_TRANSPORT_PROBE: frozenset({ACTION_DOWN, ACTION_DELAY}),
    SITE_SINK_CONNECT: frozenset({ACTION_OSERROR, ACTION_DELAY}),
    SITE_SINK_WRITE: frozenset({ACTION_OSERROR, ACTION_DELAY}),
}

#: exit status used by the ``kill`` action -- matches SIGKILL's 128+9 so
#: supervisors treat an injected kill exactly like the real thing.
KILL_EXIT_CODE = 137

#: environment variable holding a fault-plan JSON file path; honored by
#: ``repro.cli`` so chaos CI jobs can inject dispatcher-side faults.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

PLAN_VERSION = 1


class InjectedError(OSError):
    """The transient ``OSError`` raised by the ``oserror`` action.

    A subclass of :class:`OSError` on purpose: recovery paths must treat
    it exactly like a real filesystem error, retries and all.
    """


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: fire ``action`` at ``site`` on selected hits.

    Attributes:
        site: injection-site name (one of :data:`SITES`).
        action: what to do there (see :data:`ACTIONS_BY_SITE`).
        after: skip this many qualifying hits before firing.
        times: fire on this many hits once armed (``0`` = every later hit).
        arg: action parameter (``delay`` seconds; ignored elsewhere).
        match: context equality filters -- the rule only counts hits whose
            ``fire()`` context matches every ``(key, value)`` pair, e.g.
            ``{"task_id": "run-000002"}`` targets one specific batch.
    """

    site: str
    action: str
    after: int = 0
    times: int = 1
    arg: Optional[float] = None
    match: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"sites: {sorted(SITES)}")
        if self.action not in ACTIONS_BY_SITE[self.site]:
            raise ValueError(
                f"site {self.site!r} does not support action {self.action!r}; "
                f"supported: {sorted(ACTIONS_BY_SITE[self.site])}")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.times < 0:
            raise ValueError("times must be >= 0 (0 = unlimited)")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (inverse of :meth:`from_dict`)."""
        data: Dict[str, object] = {"site": self.site, "action": self.action}
        if self.after:
            data["after"] = self.after
        if self.times != 1:
            data["times"] = self.times
        if self.arg is not None:
            data["arg"] = self.arg
        if self.match:
            data["match"] = dict(self.match)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultRule":
        match = data.get("match") or {}
        return cls(site=str(data["site"]), action=str(data["action"]),
                   after=int(data.get("after", 0)),
                   times=int(data.get("times", 1)),
                   arg=(float(data["arg"]) if data.get("arg") is not None
                        else None),
                   match=tuple(sorted(match.items())))


@dataclass(frozen=True)
class FaultPlan:
    """A serializable failure schedule: rules plus the jitter seed."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {"version": PLAN_VERSION, "seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        version = data.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise ValueError(f"fault plan version {version} not supported "
                             f"(this build reads version {PLAN_VERSION})")
        return cls(rules=tuple(FaultRule.from_dict(rule)
                               for rule in data.get("rules", [])),
                   seed=int(data.get("seed", 0)))

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)


class FaultInjector:
    """Stateful runtime half of a :class:`FaultPlan`.

    Each rule keeps its own hit counter, so firing is a pure function of
    the sequence of ``fire()`` calls -- deterministic within one process.
    ``fired_log`` records every fault actually delivered (site, action,
    context), which chaos tests assert against to prove the schedule ran.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._hits = [0] * len(plan.rules)
        self.fired_log: List[Tuple[str, str, Dict[str, object]]] = []

    def fire(self, site: str, **context: object) -> List[FaultRule]:
        """Count a hit of ``site``; return the rules due to fire on it."""
        fired: List[FaultRule] = []
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            if any(context.get(key) != value for key, value in rule.match):
                continue
            hit = self._hits[index]
            self._hits[index] = hit + 1
            if hit < rule.after:
                continue
            if rule.times and hit >= rule.after + rule.times:
                continue
            fired.append(rule)
            self.fired_log.append((site, rule.action, dict(context)))
        return fired


# --------------------------------------------------------- process-global hook
_installed: Optional[FaultInjector] = None


def install(injector: FaultInjector) -> FaultInjector:
    """Install ``injector`` as this process's active fault source."""
    global _installed
    _installed = injector
    return injector


def uninstall() -> None:
    """Remove the active injector (every site reverts to a no-op)."""
    global _installed
    _installed = None


def installed() -> Optional[FaultInjector]:
    return _installed


def install_plan_file(path: str) -> FaultInjector:
    """Load a plan JSON file and install its injector."""
    return install(FaultPlan.from_file(path).injector())


def install_from_env() -> Optional[FaultInjector]:
    """Install the plan named by ``$REPRO_FAULT_PLAN``, if set."""
    path = os.environ.get(FAULT_PLAN_ENV)
    if not path:
        return None
    return install_plan_file(path)


def fire(site: str, **context: object) -> Sequence[FaultRule]:
    """Site entry point: a no-op (cheap ``None`` check) until installed."""
    if _installed is None:
        return ()
    return _installed.fire(site, **context)


def perform(rule: FaultRule) -> None:
    """Apply a site-generic action (``kill``/``delay``/``oserror``).

    Site-specific actions (``torn``/``corrupt``/``backdate``) are
    interpreted by the site code itself -- they need the bytes or paths
    only the site holds.
    """
    if rule.action == ACTION_KILL:
        # os._exit, not sys.exit: the point is to die *without* cleanup,
        # leaving claim files and descriptors exactly as SIGKILL would.
        os._exit(KILL_EXIT_CODE)
    elif rule.action == ACTION_DELAY:
        time.sleep(rule.arg if rule.arg is not None else 0.05)
    elif rule.action == ACTION_OSERROR:
        raise InjectedError(f"injected transient fault at {rule.site}")


def corrupt_bytes(data: bytes, rule: FaultRule) -> bytes:
    """Damage an outgoing record/file body per ``torn``/``corrupt``.

    ``torn`` keeps only the first half (a write cut short mid-record);
    ``corrupt`` overwrites a deterministic interior slice, which either
    breaks the JSON outright or -- the nastier case -- leaves it parseable
    with silently wrong content, exactly what record checksums exist to
    catch.
    """
    if rule.action == ACTION_TORN:
        return data[: max(1, len(data) // 2)]
    if rule.action == ACTION_CORRUPT:
        keep_newline = data.endswith(b"\n")
        body = data[:-1] if keep_newline else data
        start = len(body) // 3
        width = min(8, max(1, len(body) - start))
        body = body[:start] + b"0" * width + body[start + width:]
        return body + (b"\n" if keep_newline else b"")
    return data


# ------------------------------------------------------------------- backoff
class Backoff:
    """Jittered exponential backoff, deterministic under a fixed seed.

    Replaces fixed sleeps in the worker idle loop and the transient-error
    retry paths: delays grow ``base * factor**n`` up to ``cap``, each
    multiplied by a jitter factor drawn from ``[1 - jitter, 1 + jitter]``
    so a fleet of workers polling one filesystem never thunders in phase.
    """

    def __init__(self, base: float, cap: Optional[float] = None,
                 factor: float = 2.0, jitter: float = 0.25,
                 seed: int = 0) -> None:
        if base <= 0:
            raise ValueError("base must be > 0")
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.base = base
        self.cap = cap if cap is not None else base * 16
        self.factor = factor
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._attempt = 0

    @property
    def attempt(self) -> int:
        """How far the schedule has escalated (0 = next delay is ``base``)."""
        return self._attempt

    def reset(self) -> None:
        """Back to the base delay (call after any successful operation).

        Sites that keep a long-lived instance (the worker idle poll, the
        queue's publish retries, the telemetry sink's reconnect loop) MUST
        call this the moment the operation succeeds, or the next transient
        outage starts from an inflated delay left over from the previous
        one.  Each site owns its own instance -- sharing one ``Backoff``
        across sites couples their escalation schedules.
        """
        self._attempt = 0

    def next(self) -> float:
        """The next delay in seconds (advances the schedule)."""
        delay = min(self.cap, self.base * (self.factor ** self._attempt))
        self._attempt += 1
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def sleep(self) -> float:
        """Sleep for :meth:`next`; returns the delay actually used."""
        delay = self.next()
        time.sleep(delay)
        return delay


def stable_seed(name: str) -> int:
    """A deterministic per-name jitter seed (worker ids, queue roots)."""
    return zlib.crc32(name.encode("utf-8"))


__all__ = [
    "ACTION_DOWN",
    "ACTIONS_BY_SITE",
    "Backoff",
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedError",
    "KILL_EXIT_CODE",
    "SITES",
    "corrupt_bytes",
    "fire",
    "install",
    "install_from_env",
    "install_plan_file",
    "installed",
    "perform",
    "stable_seed",
    "uninstall",
]
