"""Command-line interface.

Installed as the ``mabfuzz`` console script::

    mabfuzz list                                  # processors, fuzzers, bugs
    mabfuzz fuzz --processor cva6 --fuzzer mabfuzz:ucb --tests 500
    mabfuzz table1 --tests 800 --trials 2         # Table I reproduction
    mabfuzz coverage --tests 500 --trials 2       # Fig. 3 + Fig. 4 reproduction
    mabfuzz trapcov --tests 400 --trials 2        # trap/CSR-transition study
    mabfuzz ablation gamma --tests 300            # ablation sweeps
    mabfuzz report --workers 4 --resume grid.jsonl   # parallel + resumable
    mabfuzz worker --queue spool/                 # serve a distributed queue
    mabfuzz deadletter list --queue spool/        # inspect quarantined batches
    mabfuzz telemetry serve --port 9900           # collect --telemetry streams

Every command prints its results to stdout; ``--output`` additionally writes
them to a file.  The grid commands (table1/coverage/report/ablation) accept
``--workers N`` to shard campaigns across processes, ``--backend
distributed --queue DIR`` to dispatch to externally launched ``worker``
processes, and ``--resume PATH`` to journal/restore completed trials --
see docs/parallel.md and docs/distributed.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.api import available_fuzzers, available_processors, quick_campaign
from repro.core.config import MABFuzzConfig
from repro.core.monitor import ProgressMonitor
from repro.exec import (
    CampaignEngine,
    DistributedBackend,
    LocalTransport,
    ProcessPoolBackend,
    SerialBackend,
    SpoolQueue,
    SshTransport,
    WorkerSpec,
    WorkerSupervisor,
    faults,
    run_worker,
)
from repro.exec.queue import ATTEMPTS_KEY, MAX_ATTEMPTS_KEY
from repro.telemetry import TelemetryListener, parse_sink_spec
from repro.fuzzing.base import FuzzerConfig
from repro.harness.experiments import (
    ExperimentConfig,
    TRAP_SCENARIOS,
    figure3_series,
    figure4_summary,
    run_alpha_ablation,
    run_arm_count_ablation,
    run_coverage_study,
    run_gamma_ablation,
    run_table1,
    run_trap_coverage_study,
)
from repro.harness.figures import render_figure3
from repro.harness.report import build_experiments_report
from repro.harness.tables import (
    render_ablation_table,
    render_figure4_table,
    render_table1,
    render_trap_coverage_table,
)
from repro.coverage.csr_transitions import COVERAGE_MODELS
from repro.isa.scenarios import SCENARIOS
from repro.rtl.bugs import BUGS_BY_ID


def _experiment_config(args, algorithms=None, processors=None) -> ExperimentConfig:
    return ExperimentConfig(
        num_tests=args.tests,
        trials=args.trials,
        seed=args.seed,
        algorithms=tuple(algorithms or ("egreedy", "ucb", "exp3")),
        processors=tuple(processors or ("cva6", "rocket", "boom")),
        fuzzer_config=FuzzerConfig(num_seeds=args.seeds,
                                   mutants_per_test=args.mutants,
                                   corpus=getattr(args, "corpus", False)),
        mab_config=MABFuzzConfig(),
    )


def _supervisor(args) -> Optional[WorkerSupervisor]:
    """Build the worker supervisor from the grid command's fleet flags."""
    specs = []
    if args.spawn_workers:
        transport = LocalTransport()
        for index in range(args.spawn_workers):
            # A chaos fault plan applies to the first worker slot only:
            # the point of --worker-fault-plan is one scripted casualty
            # whose supervised recovery the rest of the fleet absorbs.
            specs.append(WorkerSpec(
                host=f"local-{index}", transport=transport,
                fault_plan=args.worker_fault_plan if index == 0 else None))
    if args.worker_hosts:
        transport = SshTransport()
        specs.extend(WorkerSpec(host=host, transport=transport)
                     for host in args.worker_hosts)
    if not specs:
        if args.worker_fault_plan or args.crash_loop_budget is not None:
            raise SystemExit("--worker-fault-plan/--crash-loop-budget require "
                             "--spawn-workers or --worker-hosts")
        return None
    kwargs = {}
    if args.crash_loop_budget is not None:
        kwargs["crash_loop_budget"] = args.crash_loop_budget
    return WorkerSupervisor(
        specs, args.queue,
        log=lambda line: print(line, file=sys.stderr, flush=True),
        **kwargs)


def _backend(args):
    """Resolve the execution backend from the grid command's arguments."""
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    backend_name = args.backend
    if backend_name is None:  # infer from the other flags, as before
        backend_name = "process" if args.workers > 1 else "serial"
    if backend_name == "distributed":
        if args.queue is None:
            raise SystemExit("--backend distributed requires --queue DIR")
        if args.workers != 1:
            raise SystemExit("--workers does not apply to --backend "
                             "distributed; parallelism is however many "
                             "`worker` processes are attached to the queue")
        if args.max_tasks_per_child is not None:
            raise SystemExit("--max-tasks-per-child only applies to the "
                             "process backend; recycle distributed workers "
                             "with `worker --max-tasks` instead")
        kwargs = {}
        if args.lease_timeout is not None:
            kwargs["lease_timeout"] = args.lease_timeout
        if args.max_attempts is not None:
            kwargs["max_attempts"] = args.max_attempts
        return DistributedBackend(args.queue,
                                  stop_workers_on_exit=args.stop_workers,
                                  supervisor=_supervisor(args),
                                  **kwargs)
    if args.queue is not None or args.stop_workers:
        raise SystemExit("--queue/--stop-workers require --backend distributed")
    if args.lease_timeout is not None or args.max_attempts is not None:
        raise SystemExit("--lease-timeout/--max-attempts require "
                         "--backend distributed")
    if args.spawn_workers or args.worker_hosts or args.worker_fault_plan \
            or args.crash_loop_budget is not None:
        raise SystemExit("--spawn-workers/--worker-hosts/--worker-fault-plan/"
                         "--crash-loop-budget require --backend distributed")
    if backend_name == "process":
        if args.workers < 2:
            raise SystemExit("--backend process requires --workers >= 2")
        return ProcessPoolBackend(args.workers,
                                  max_tasks_per_child=args.max_tasks_per_child)
    # Serial: reject flags that only make sense with other backends.
    if args.max_tasks_per_child is not None:
        raise SystemExit("--max-tasks-per-child requires --workers > 1")
    if args.workers > 1:
        raise SystemExit("--backend serial is incompatible with --workers > 1")
    return SerialBackend()


def _engine(args) -> CampaignEngine:
    """Build the campaign engine the grid commands hand their specs to."""
    if args.batch_size is not None and args.batch_size < 0:
        raise SystemExit("--batch-size must be >= 0 (0 = unbounded)")
    if args.cache_entries is not None and args.cache_entries < 1:
        raise SystemExit("--cache-entries must be >= 1")
    backend = _backend(args)
    if args.batch_size is not None:
        # 0 = unbounded batches (one per cache-locality group).
        backend.batch_size = args.batch_size or None
    telemetry = None
    if args.telemetry:
        telemetry = parse_sink_spec(args.telemetry,
                                    spill_path=args.telemetry_spill)
    elif args.telemetry_spill:
        raise SystemExit("--telemetry-spill requires --telemetry")
    monitor = ProgressMonitor(
        sink=lambda line: print(line, file=sys.stderr, flush=True))
    return CampaignEngine(backend=backend, checkpoint_path=args.resume,
                          monitor=monitor, cache_entries=args.cache_entries,
                          telemetry=telemetry)


def _emit(text: str, output: Optional[str]) -> None:
    print(text)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


# ----------------------------------------------------------------- commands
def _cmd_list(args) -> int:
    lines = ["Processors:"]
    lines += [f"  {name}" for name in available_processors()]
    lines.append("Fuzzers:")
    lines += [f"  {name}" for name in available_fuzzers()]
    lines.append("Injectable vulnerabilities:")
    for bug_id, bug_cls in sorted(BUGS_BY_ID.items()):
        bug = bug_cls()
        lines.append(f"  {bug_id} (CWE-{bug.cwe}, {bug.processor}): {bug.description}")
    _emit("\n".join(lines), args.output)
    return 0


def _cmd_fuzz(args) -> int:
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    result = quick_campaign(
        processor=args.processor,
        fuzzer=args.fuzzer,
        num_tests=args.tests,
        seed=args.seed,
        fuzzer_config=FuzzerConfig(num_seeds=args.seeds,
                                   mutants_per_test=args.mutants,
                                   scenario=args.scenario,
                                   corpus=args.corpus),
        coverage_model=args.coverage_model,
    )
    if profiler is not None:
        import pstats

        profiler.disable()
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative")
        print(f"profile: top {args.profile_top} functions by cumulative time "
              f"(full stats -> {args.profile})", file=sys.stderr)
        stats.print_stats(args.profile_top)
        from repro.isa.compiled import superblock_cache_stats, superblocks_enabled

        sb = superblock_cache_stats()
        print(f"profile: superblocks "
              f"{'on' if superblocks_enabled() else 'off'} -- "
              f"{sb['hits']} cache hits, {sb['misses']} misses, "
              f"{sb['evictions']} evictions", file=sys.stderr)
        print("profile: inspect offline with "
              f"`python -m pstats {args.profile}` "
              "(or snakeviz, if installed)", file=sys.stderr)
    lines = [result.summary()]
    if args.coverage_model == "csr":
        lines.append(f"  csr transitions covered: "
                     f"{result.metadata.get('csr_transition_points', 0)}")
    for bug_id, detection in sorted(result.bug_detections.items()):
        lines.append(f"  {bug_id}: detected after {detection.tests_to_detection} tests")
    _emit("\n".join(lines), args.output)
    return 0


def _cmd_table1(args) -> int:
    config = _experiment_config(args)
    result = run_table1(config, engine=_engine(args))
    _emit(render_table1(result), args.output)
    return 0


def _cmd_coverage(args) -> int:
    config = _experiment_config(args, processors=args.processors)
    study = run_coverage_study(config, engine=_engine(args))
    text = "\n\n".join([
        render_figure3(figure3_series(study)),
        render_figure4_table(figure4_summary(study)),
    ])
    _emit(text, args.output)
    return 0


def _cmd_report(args) -> int:
    config = _experiment_config(args, processors=args.processors)
    engine = _engine(args)
    table1 = run_table1(config, engine=engine)
    study = run_coverage_study(config, engine=engine)
    text = build_experiments_report(table1=table1, study=study,
                                    notes=f"Scaled runs: {args.tests} tests x "
                                          f"{args.trials} trials per campaign.")
    _emit(text, args.output)
    return 0


def _cmd_trapcov(args) -> int:
    config = _experiment_config(args, algorithms=(args.algorithm,),
                                processors=args.processors)
    study = run_trap_coverage_study(config, engine=_engine(args),
                                    algorithm=args.algorithm,
                                    scenarios=tuple(args.scenarios))
    _emit(render_trap_coverage_table(study), args.output)
    return 0


_ABLATIONS = {
    "alpha": (run_alpha_ablation, "alpha"),
    "gamma": (run_gamma_ablation, "gamma"),
    "arms": (run_arm_count_ablation, "num_arms"),
}


def _cmd_ablation(args) -> int:
    config = _experiment_config(args, algorithms=(args.algorithm,),
                                processors=(args.processor,))
    runner, parameter = _ABLATIONS[args.which]
    results = runner(config, processor=args.processor, algorithm=args.algorithm,
                     engine=_engine(args))
    _emit(render_ablation_table(results, parameter_name=parameter), args.output)
    return 0


def _cmd_worker(args) -> int:
    if args.fault_plan:
        faults.install_plan_file(args.fault_plan)
    try:
        executed = run_worker(
            args.queue,
            worker_id=args.worker_id,
            poll_interval=args.poll_interval,
            lease_timeout=args.lease_timeout,
            max_tasks=args.max_tasks,
            max_attempts=args.max_attempts,
            max_poll_interval=args.max_poll_interval,
            log=lambda line: print(line, file=sys.stderr, flush=True),
        )
    except OSError as error:
        # The queue itself failed (publish impossible even after retries):
        # exit nonzero so supervisors restart or alert on this worker.
        # Per-batch errors never reach here -- they are published to the
        # dispatcher and the worker keeps serving.
        print(f"worker error: {error}", file=sys.stderr, flush=True)
        return 1
    print(f"executed {executed} batches")
    return 0


def _cmd_deadletter(args) -> int:
    """Inspect and service the queue's quarantine (docs/service.md)."""
    import json

    queue = SpoolQueue(args.queue)
    ids = sorted(queue.deadletter_ids())
    if args.action == "list":
        if not ids:
            _emit(f"deadletter/ of {args.queue} is empty", args.output)
            return 0
        lines = [f"{len(ids)} quarantined batch(es) in {args.queue}:"]
        for task_id in ids:
            record = queue.read_deadletter(task_id) or {}
            payload = record.get("payload") or {}
            trials = payload.get("tasks") or []
            error = str(record.get("error", "?")).strip().splitlines()
            lines.append(f"  {task_id}: attempts={record.get('attempts')} "
                         f"trials={len(trials)} error={error[0] if error else '?'}")
        _emit("\n".join(lines), args.output)
        return 0
    if args.all:
        targets = ids
    elif args.task_id:
        targets = [args.task_id]
    else:
        raise SystemExit(f"deadletter {args.action} requires TASK_ID or --all")
    lines = []
    for task_id in targets:
        record = queue.read_deadletter(task_id)
        if record is None:
            raise SystemExit(f"no deadletter record for {task_id!r} "
                             f"in {args.queue}")
        if args.action == "show":
            lines.append(json.dumps(record, indent=2, sort_keys=True))
        elif args.action == "discard":
            queue.discard_deadletter(task_id)
            lines.append(f"discarded {task_id}")
        else:  # requeue
            payload = record.get("payload")
            if not isinstance(payload, dict) or payload.get("kind") != "batch":
                raise SystemExit(
                    f"refusing to requeue {task_id}: quarantine record does "
                    "not carry a batch payload (inspect it with "
                    "`deadletter show` and discard it instead)")
            payload = {key: value for key, value in payload.items()
                       if key not in (ATTEMPTS_KEY, MAX_ATTEMPTS_KEY)}
            budget = args.max_attempts
            if budget is None:
                original = (record.get("payload") or {}).get(MAX_ATTEMPTS_KEY)
                budget = int(original) if original is not None else None
            # Fresh retry envelope: the batch earned its quarantine under
            # the old budget; requeueing it is an operator's decision to
            # try again from zero.
            queue.ensure().enqueue(task_id, payload, attempts=0,
                                   max_attempts=budget)
            queue.discard_deadletter(task_id)
            lines.append(f"requeued {task_id} (fresh budget "
                         f"{budget if budget is not None else 'unbounded'})")
    _emit("\n".join(lines), args.output)
    return 0


def _cmd_telemetry(args) -> int:
    """Run the NDJSON telemetry collector until interrupted."""
    listener = TelemetryListener(host=args.host, port=args.port,
                                 path=args.log)
    listener.start()
    print(f"telemetry: listening on {listener.host}:{listener.port}"
          + (f", events -> {args.log}" if args.log else ""),
          file=sys.stderr, flush=True)
    try:
        while True:
            import time

            time.sleep(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        listener.stop()
        print(f"telemetry: {len(listener.events)} events received",
              file=sys.stderr, flush=True)
    return 0


# -------------------------------------------------------------------- parser
_EXECUTION_EPILOG = """\
parallel execution:
  --workers N shards the campaign grid across N worker processes;
  --backend distributed --queue DIR dispatches to `worker` processes
  launched separately against the same spool directory;
  --resume PATH journals completed trials to a JSONL checkpoint and
  restores them on the next invocation with the same configuration.
  Results are bit-identical whichever backend runs them (docs/parallel.md,
  docs/distributed.md).
"""


def _add_common_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tests", type=int, default=400, help="tests per campaign")
    parser.add_argument("--trials", type=int, default=2, help="trials per campaign")
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument("--seeds", type=int, default=10, help="initial seed tests")
    parser.add_argument("--mutants", type=int, default=4,
                        help="mutants per interesting test")
    parser.add_argument("--corpus", action="store_true",
                        help="enable the coverage-directed corpus: tests "
                             "reaching novel coverage are kept as seeds, "
                             "mutation draws from them, and trials/workers "
                             "share one global coverage map (docs/corpus.md)")
    parser.add_argument("--output", help="also write the result to this file")


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Options of the parallel execution engine (grid commands only)."""
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the campaign grid "
                             "(1 = serial in-process)")
    parser.add_argument("--backend", choices=("serial", "process", "distributed"),
                        default=None,
                        help="execution backend (default: inferred from "
                             "--workers)")
    parser.add_argument("--queue", metavar="DIR", default=None,
                        help="spool directory shared with `worker` processes "
                             "(distributed backend only)")
    parser.add_argument("--stop-workers", action="store_true",
                        help="write the queue's STOP sentinel when the grid "
                             "finishes, so attached workers drain and exit")
    parser.add_argument("--lease-timeout", type=float, default=None,
                        help="seconds before a silent worker's claim is "
                             "requeued (distributed backend only)")
    parser.add_argument("--max-attempts", type=int, default=None,
                        help="execution budget per batch before it is "
                             "quarantined in deadletter/ (distributed "
                             "backend only; default 3)")
    parser.add_argument("--max-tasks-per-child", type=int, default=None,
                        help="recycle each pool worker after this many batches")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="max trials per worker batch (0 = one batch per "
                             "cache-locality group)")
    parser.add_argument("--cache-entries", type=int, default=None,
                        help="capacity of the per-worker golden/DUT run "
                             "caches (default 4096)")
    parser.add_argument("--resume", metavar="PATH", default=None,
                        help="JSONL checkpoint journal to write and resume from")
    parser.add_argument("--spawn-workers", type=int, default=0, metavar="N",
                        help="launch and supervise N local `worker` "
                             "processes for the queue (distributed backend "
                             "only; crashed workers restart under the "
                             "crash-loop budget, docs/service.md)")
    parser.add_argument("--worker-hosts", nargs="+", metavar="HOST",
                        default=None,
                        help="launch and supervise one `worker` per ssh "
                             "host (distributed backend only)")
    parser.add_argument("--crash-loop-budget", type=int, default=None,
                        help="supervised restarts allowed per host per "
                             "crash window before the host is marked "
                             "degraded (default 3)")
    parser.add_argument("--worker-fault-plan", metavar="PATH", default=None,
                        help="fault-plan JSON exported to the first "
                             "supervised worker's initial spawn (chaos "
                             "testing; restarts run clean)")
    parser.add_argument("--telemetry", metavar="SPEC", default=None,
                        help="stream NDJSON campaign telemetry to a sink: "
                             "tcp:HOST:PORT, file:PATH, or a bare file "
                             "path (docs/service.md)")
    parser.add_argument("--telemetry-spill", metavar="PATH", default=None,
                        help="local spill file for events a disconnected "
                             "tcp: telemetry sink cannot buffer")
    parser.epilog = _EXECUTION_EPILOG
    parser.formatter_class = argparse.RawDescriptionHelpFormatter


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="mabfuzz", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list processors, fuzzers and bugs")
    list_parser.add_argument("--output")
    list_parser.set_defaults(func=_cmd_list)

    fuzz_parser = subparsers.add_parser("fuzz", help="run one fuzzing campaign")
    fuzz_parser.add_argument("--processor", default="cva6",
                             choices=available_processors())
    fuzz_parser.add_argument("--fuzzer", default="mabfuzz:ucb",
                             choices=available_fuzzers())
    fuzz_parser.add_argument("--scenario", default="user", choices=SCENARIOS,
                             help="seed workload family: user-level, "
                                  "trap/CSR scenarios, or an alternating mix")
    fuzz_parser.add_argument("--coverage-model", default="base",
                             choices=COVERAGE_MODELS,
                             help="'csr' adds CSR-transition coverage points "
                                  "(docs/coverage.md)")
    fuzz_parser.add_argument("--profile", metavar="PATH", default=None,
                             help="run the campaign under cProfile and dump "
                                  "the stats to PATH (a hot-function summary "
                                  "is printed to stderr); see "
                                  "docs/performance.md")
    fuzz_parser.add_argument("--profile-top", type=int, default=25,
                             help="functions to show in the stderr profile "
                                  "summary (default 25)")
    _add_common_campaign_arguments(fuzz_parser)
    fuzz_parser.set_defaults(func=_cmd_fuzz)

    table1_parser = subparsers.add_parser("table1", help="reproduce Table I")
    _add_common_campaign_arguments(table1_parser)
    _add_execution_arguments(table1_parser)
    table1_parser.set_defaults(func=_cmd_table1)

    coverage_parser = subparsers.add_parser("coverage",
                                            help="reproduce Fig. 3 and Fig. 4")
    coverage_parser.add_argument("--processors", nargs="+",
                                 default=["cva6", "rocket", "boom"],
                                 choices=["cva6", "rocket", "boom"])
    _add_common_campaign_arguments(coverage_parser)
    _add_execution_arguments(coverage_parser)
    coverage_parser.set_defaults(func=_cmd_coverage)

    report_parser = subparsers.add_parser("report",
                                          help="run all experiments and emit a Markdown report")
    report_parser.add_argument("--processors", nargs="+",
                               default=["cva6", "rocket", "boom"],
                               choices=["cva6", "rocket", "boom"])
    _add_common_campaign_arguments(report_parser)
    _add_execution_arguments(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    trapcov_parser = subparsers.add_parser(
        "trapcov", help="trap/CSR scenario study: CSR-transition coverage "
                        "per seed scenario")
    trapcov_parser.add_argument("--processors", nargs="+",
                                default=["cva6", "rocket", "boom"],
                                choices=["cva6", "rocket", "boom"])
    trapcov_parser.add_argument("--algorithm", default="ucb",
                                choices=("egreedy", "ucb", "exp3"))
    trapcov_parser.add_argument("--scenarios", nargs="+",
                                default=list(TRAP_SCENARIOS),
                                choices=list(SCENARIOS),
                                help="seed scenarios to compare")
    _add_common_campaign_arguments(trapcov_parser)
    _add_execution_arguments(trapcov_parser)
    trapcov_parser.set_defaults(func=_cmd_trapcov)

    ablation_parser = subparsers.add_parser("ablation", help="run an ablation sweep")
    ablation_parser.add_argument("which", choices=sorted(_ABLATIONS))
    ablation_parser.add_argument("--processor", default="cva6",
                                 choices=available_processors())
    ablation_parser.add_argument("--algorithm", default="ucb",
                                 choices=("egreedy", "ucb", "exp3"))
    _add_common_campaign_arguments(ablation_parser)
    _add_execution_arguments(ablation_parser)
    ablation_parser.set_defaults(func=_cmd_ablation)

    worker_parser = subparsers.add_parser(
        "worker", help="serve a distributed campaign queue until its STOP "
                       "sentinel appears")
    worker_parser.add_argument("--queue", metavar="DIR", required=True,
                               help="spool directory shared with the dispatcher")
    worker_parser.add_argument("--worker-id", default=None,
                               help="stable worker name (default: host-pid)")
    worker_parser.add_argument("--poll-interval", type=float, default=0.2,
                               help="seconds between queue scans while idle")
    worker_parser.add_argument("--lease-timeout", type=float, default=300.0,
                               help="seconds before another worker's stalled "
                                    "claim is rescued")
    worker_parser.add_argument("--max-tasks", type=int, default=None,
                               help="exit after this many batches (worker "
                                    "recycling)")
    worker_parser.add_argument("--max-attempts", type=int, default=None,
                               help="retry-budget fallback applied when "
                                    "rescuing stale tasks enqueued without "
                                    "one (default 3)")
    worker_parser.add_argument("--max-poll-interval", type=float, default=None,
                               help="ceiling of the idle-poll backoff "
                                    "(default 16x --poll-interval)")
    worker_parser.add_argument("--fault-plan", metavar="PATH", default=None,
                               help="fault-injection plan JSON for chaos "
                                    "testing (docs/robustness.md)")
    worker_parser.set_defaults(func=_cmd_worker)

    deadletter_parser = subparsers.add_parser(
        "deadletter", help="inspect, requeue or discard quarantined batches")
    deadletter_parser.add_argument("action",
                                   choices=("list", "show", "requeue",
                                            "discard"))
    deadletter_parser.add_argument("task_id", nargs="?", default=None,
                                   help="quarantined task id (see `list`)")
    deadletter_parser.add_argument("--queue", metavar="DIR", required=True,
                                   help="spool directory holding the "
                                        "deadletter/ quarantine")
    deadletter_parser.add_argument("--all", action="store_true",
                                   help="apply show/requeue/discard to every "
                                        "quarantined batch")
    deadletter_parser.add_argument("--max-attempts", type=int, default=None,
                                   help="retry budget for requeued batches "
                                        "(default: the batch's original "
                                        "budget)")
    deadletter_parser.add_argument("--output")
    deadletter_parser.set_defaults(func=_cmd_deadletter)

    telemetry_parser = subparsers.add_parser(
        "telemetry", help="serve a TCP collector for --telemetry tcp: "
                          "streams")
    telemetry_parser.add_argument("action", choices=("serve",))
    telemetry_parser.add_argument("--host", default="127.0.0.1")
    telemetry_parser.add_argument("--port", type=int, default=0,
                                  help="TCP port (0 = ephemeral, printed "
                                       "on stderr)")
    telemetry_parser.add_argument("--log", metavar="PATH", default=None,
                                  help="append received events to this "
                                       "NDJSON file")
    telemetry_parser.set_defaults(func=_cmd_telemetry)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``mabfuzz`` console script."""
    # Chaos CI jobs inject dispatcher-side faults by exporting
    # REPRO_FAULT_PLAN; a no-op when the variable is unset.
    faults.install_from_env()
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
