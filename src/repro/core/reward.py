"""The α-weighted local/global coverage reward (Sec. III-B).

For a pulled arm ``a`` at time ``t``::

    R_t(a) = α * |cov_L_t(a)| + (1 - α) * |cov_G_t(a)|

where ``cov_L`` is the set of points covered by this test that the *arm*
had never covered before and ``cov_G`` is the subset of those that were new
*globally* (not covered by any arm).  Because every arm's history is a
subset of the global history, ``cov_G ⊆ cov_L`` always holds, and with the
paper's α = 0.25 a globally-new point contributes α + (1 - α) = 1.0 while an
arm-only-new point contributes α = 0.25 -- i.e. globally-new points are
worth 3x more ((1)/(0.25) − … as the paper phrases it, "3x importance").

Coverage-point *weights* extend the formula for richer coverage models:
``|cov|`` generalises to ``Σ w(p)`` over the new points, where ``w`` is
resolved per point by longest dotted-prefix match against a weight table
(``{"csr.mcause": 3.0, "trap": 2.0}``).  With no table configured every
weight is 1.0 and the reward collapses to the paper's counts exactly.
The CSR-transition coverage family (``csr.<reg>.<old>-><new>``, see
docs/coverage.md) is the intended consumer: weighting it above the hit-set
families steers the bandit toward arms that move the privileged state
machine, not just arms that touch new decode points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping, Optional, Set


@dataclass(frozen=True)
class RewardBreakdown:
    """The reward of one pull, together with its coverage components.

    ``local_value`` / ``global_value`` hold the *weighted* sums when the
    computer was configured with point weights; ``None`` means unweighted
    (the value falls back to the plain counts).
    """

    local_new: FrozenSet[str]
    global_new: FrozenSet[str]
    alpha: float
    local_value: Optional[float] = None
    global_value: Optional[float] = None

    @property
    def local_count(self) -> int:
        return len(self.local_new)

    @property
    def global_count(self) -> int:
        return len(self.global_new)

    @property
    def value(self) -> float:
        """R_t(a) = α Σw(cov_L) + (1 − α) Σw(cov_G) (weights default to 1)."""
        local = self.local_count if self.local_value is None else self.local_value
        global_ = (self.global_count if self.global_value is None
                   else self.global_value)
        return self.alpha * local + (1.0 - self.alpha) * global_


class RewardComputer:
    """Computes the MABFuzz reward from per-test coverage observations.

    Args:
        alpha: weight of arm-locally new coverage (the paper's α).
        point_weights: optional ``dotted-prefix -> weight`` table.  A
            point's weight is the entry with the longest matching prefix
            (``"csr.mcause"`` beats ``"csr"`` for ``csr.mcause.none->...``);
            unmatched points weigh 1.0.
    """

    def __init__(self, alpha: float = 0.25,
                 point_weights: Optional[Mapping[str, float]] = None) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.alpha = alpha
        if point_weights:
            for prefix, weight in point_weights.items():
                if weight < 0.0:
                    raise ValueError(
                        f"point weight for {prefix!r} must be non-negative")
            self.point_weights = dict(point_weights)
        else:
            self.point_weights = None

    # ------------------------------------------------------------------ weights
    def point_weight(self, point: str) -> float:
        """Weight of one coverage point (longest dotted-prefix match)."""
        weights = self.point_weights
        if weights is None:
            return 1.0
        prefix = point
        while True:
            weight = weights.get(prefix)
            if weight is not None:
                return weight
            cut = prefix.rfind(".")
            if cut < 0:
                return 1.0
            prefix = prefix[:cut]

    def _weighted_sum(self, points: Iterable[str]) -> float:
        return sum(self.point_weight(point) for point in points)

    # ------------------------------------------------------------------ compute
    def compute(self,
                arm_coverage: Set[str],
                test_coverage: Iterable[str],
                global_new_points: Iterable[str]) -> RewardBreakdown:
        """Build the reward breakdown for one executed test.

        Args:
            arm_coverage: points the pulled arm had covered before this test.
            test_coverage: points covered by the test just executed.
            global_new_points: subset of ``test_coverage`` that no arm had
                covered before (as reported by the coverage database).
        """
        test_points = set(test_coverage)
        local_new = frozenset(test_points - arm_coverage)
        global_new = frozenset(global_new_points) & local_new
        if self.point_weights is None:
            return RewardBreakdown(local_new=local_new, global_new=global_new,
                                   alpha=self.alpha)
        return RewardBreakdown(
            local_new=local_new, global_new=global_new, alpha=self.alpha,
            local_value=self._weighted_sum(local_new),
            global_value=self._weighted_sum(global_new),
        )
