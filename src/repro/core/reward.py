"""The α-weighted local/global coverage reward (Sec. III-B).

For a pulled arm ``a`` at time ``t``::

    R_t(a) = α * |cov_L_t(a)| + (1 - α) * |cov_G_t(a)|

where ``cov_L`` is the set of points covered by this test that the *arm*
had never covered before and ``cov_G`` is the subset of those that were new
*globally* (not covered by any arm).  Because every arm's history is a
subset of the global history, ``cov_G ⊆ cov_L`` always holds, and with the
paper's α = 0.25 a globally-new point contributes α + (1 - α) = 1.0 while an
arm-only-new point contributes α = 0.25 -- i.e. globally-new points are
worth 3x more ((1)/(0.25) − … as the paper phrases it, "3x importance").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set


@dataclass(frozen=True)
class RewardBreakdown:
    """The reward of one pull, together with its coverage components."""

    local_new: FrozenSet[str]
    global_new: FrozenSet[str]
    alpha: float

    @property
    def local_count(self) -> int:
        return len(self.local_new)

    @property
    def global_count(self) -> int:
        return len(self.global_new)

    @property
    def value(self) -> float:
        """R_t(a) = α |cov_L| + (1 − α) |cov_G|."""
        return self.alpha * self.local_count + (1.0 - self.alpha) * self.global_count


class RewardComputer:
    """Computes the MABFuzz reward from per-test coverage observations."""

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.alpha = alpha

    def compute(self,
                arm_coverage: Set[str],
                test_coverage: Iterable[str],
                global_new_points: Iterable[str]) -> RewardBreakdown:
        """Build the reward breakdown for one executed test.

        Args:
            arm_coverage: points the pulled arm had covered before this test.
            test_coverage: points covered by the test just executed.
            global_new_points: subset of ``test_coverage`` that no arm had
                covered before (as reported by the coverage database).
        """
        test_points = set(test_coverage)
        local_new = frozenset(test_points - arm_coverage)
        global_new = frozenset(global_new_points) & local_new
        return RewardBreakdown(local_new=local_new, global_new=global_new,
                               alpha=self.alpha)
