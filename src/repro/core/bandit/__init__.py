"""Multi-armed bandit algorithms (with the paper's reset-arms modification)."""

from repro.core.bandit.base import BanditAlgorithm
from repro.core.bandit.epsilon_greedy import EpsilonGreedyBandit
from repro.core.bandit.ucb import UCBBandit
from repro.core.bandit.exp3 import EXP3Bandit
from repro.core.bandit.baselines import (
    GreedyPolicy,
    RoundRobinPolicy,
    UniformRandomPolicy,
)
from repro.core.bandit.factory import available_bandits, make_bandit

__all__ = [
    "BanditAlgorithm",
    "EpsilonGreedyBandit",
    "UCBBandit",
    "EXP3Bandit",
    "GreedyPolicy",
    "RoundRobinPolicy",
    "UniformRandomPolicy",
    "available_bandits",
    "make_bandit",
]
