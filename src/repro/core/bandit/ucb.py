"""Modified UCB1 (Algorithm 1 of the paper, UCB branch).

Upper-confidence-bound selection ``argmax_a [Q(a) + sqrt(2 ln t / N(a))]``
where never-pulled arms (N(a) = 0) have unbounded confidence and are pulled
first.  The reset-arms modification clears ``Q(a)`` and ``N(a)`` so a reset
arm is immediately re-explored.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.core.bandit.base import BanditAlgorithm


class UCBBandit(BanditAlgorithm):
    """UCB1 with reset support and a tunable exploration multiplier."""

    name = "ucb"

    def __init__(self, num_arms: int, exploration: float = 1.0, rng=None) -> None:
        super().__init__(num_arms, rng)
        if exploration <= 0:
            raise ValueError("exploration must be positive")
        self.exploration = exploration
        self.q_values: List[float] = [0.0] * num_arms
        self.arm_pulls: List[int] = [0] * num_arms
        self._time = 0

    def _ucb_scores(self) -> List[float]:
        scores = []
        time = max(self._time, 1)
        for arm in range(self.num_arms):
            pulls = self.arm_pulls[arm]
            if pulls == 0:
                scores.append(math.inf)
                continue
            bonus = self.exploration * math.sqrt(2.0 * math.log(time) / pulls)
            scores.append(self.q_values[arm] + bonus)
        return scores

    def select(self) -> int:
        return self._argmax_random_tie(self._ucb_scores())

    def update(self, arm: int, reward: float) -> None:
        self._record_pull(arm)
        self._time += 1
        self.arm_pulls[arm] += 1
        step = self.arm_pulls[arm]
        self.q_values[arm] += (reward - self.q_values[arm]) / step

    def reset_arm(self, arm: int) -> None:
        self._check_arm(arm)
        self.q_values[arm] = 0.0
        self.arm_pulls[arm] = 0

    def snapshot(self) -> Dict[str, object]:
        snap = super().snapshot()
        snap.update({
            "exploration": self.exploration,
            "q_values": list(self.q_values),
            "arm_pulls": list(self.arm_pulls),
            "time": self._time,
        })
        return snap
