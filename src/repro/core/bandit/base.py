"""Bandit algorithm interface.

The scheduler only needs three operations from an algorithm: ``select`` an
arm index, ``update`` it with an observed reward, and ``reset_arm`` when the
saturation monitor replaces the arm's seed.  Anything implementing this
interface -- including user-defined policies (see
``examples/custom_bandit.py``) -- plugs into MABFuzz unchanged, which is the
paper's "agnostic to any MAB algorithm" property.
"""

from __future__ import annotations

import abc
from typing import Dict, List

from repro.utils.rng import make_rng


class BanditAlgorithm(abc.ABC):
    """Interface of a K-armed bandit policy with reset support."""

    #: short machine-readable algorithm name.
    name = "bandit"

    def __init__(self, num_arms: int, rng=None) -> None:
        if num_arms < 1:
            raise ValueError("num_arms must be >= 1")
        self.num_arms = num_arms
        self.rng = make_rng(rng)
        self.total_pulls = 0
        self.pull_counts: List[int] = [0] * num_arms

    # ----------------------------------------------------------------- policy
    @abc.abstractmethod
    def select(self) -> int:
        """Return the index of the arm to pull next."""

    @abc.abstractmethod
    def update(self, arm: int, reward: float) -> None:
        """Feed back the reward observed for pulling ``arm``."""

    @abc.abstractmethod
    def reset_arm(self, arm: int) -> None:
        """Treat ``arm`` as a brand-new arm (the paper's reset-arms feature)."""

    # ------------------------------------------------------------------ common
    def _check_arm(self, arm: int) -> None:
        if not 0 <= arm < self.num_arms:
            raise IndexError(f"arm index out of range: {arm}")

    def _record_pull(self, arm: int) -> None:
        self._check_arm(arm)
        self.total_pulls += 1
        self.pull_counts[arm] += 1

    def snapshot(self) -> Dict[str, object]:
        """Diagnostic snapshot of the algorithm's internal state."""
        return {
            "name": self.name,
            "num_arms": self.num_arms,
            "total_pulls": self.total_pulls,
            "pull_counts": list(self.pull_counts),
        }

    # ------------------------------------------------------------------ helpers
    def _argmax_random_tie(self, values) -> int:
        """Argmax with uniformly random tie-breaking (avoids index-0 bias)."""
        best = max(values)
        candidates = [i for i, v in enumerate(values) if v == best]
        if len(candidates) == 1:
            return candidates[0]
        return int(self.rng.choice(candidates))
