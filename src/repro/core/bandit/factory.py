"""Name-based bandit construction."""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.core.bandit.base import BanditAlgorithm
from repro.core.bandit.baselines import GreedyPolicy, RoundRobinPolicy, UniformRandomPolicy
from repro.core.bandit.epsilon_greedy import EpsilonGreedyBandit
from repro.core.bandit.exp3 import EXP3Bandit
from repro.core.bandit.ucb import UCBBandit
from repro.core.config import MABFuzzConfig

#: Accepted aliases for each algorithm.
_ALIASES = {
    "egreedy": "egreedy",
    "epsilon-greedy": "egreedy",
    "epsilon_greedy": "egreedy",
    "e-greedy": "egreedy",
    "ucb": "ucb",
    "ucb1": "ucb",
    "exp3": "exp3",
    "uniform": "uniform",
    "random": "uniform",
    "roundrobin": "roundrobin",
    "round-robin": "roundrobin",
    "greedy": "greedy",
}


def available_bandits() -> Tuple[str, ...]:
    """Canonical names of the shipped bandit algorithms and baseline policies."""
    return ("egreedy", "ucb", "exp3", "uniform", "roundrobin", "greedy")


def make_bandit(algorithm: Union[str, BanditAlgorithm],
                num_arms: int,
                config: Optional[MABFuzzConfig] = None,
                reward_normalizer: float = 1.0,
                rng=None) -> BanditAlgorithm:
    """Build a bandit by name, or pass an existing instance through.

    Args:
        algorithm: canonical name / alias, or a ready :class:`BanditAlgorithm`.
        num_arms: number of arms the policy must schedule.
        config: MABFuzz configuration providing ε, η and the UCB multiplier.
        reward_normalizer: |C| used by EXP3's reward normalisation.
        rng: seed or generator for the policy's internal randomness.
    """
    if isinstance(algorithm, BanditAlgorithm):
        if algorithm.num_arms != num_arms:
            raise ValueError(
                f"bandit has {algorithm.num_arms} arms but {num_arms} are required")
        return algorithm
    config = config or MABFuzzConfig(num_arms=num_arms)
    key = _ALIASES.get(algorithm.lower())
    if key is None:
        raise KeyError(f"unknown bandit algorithm {algorithm!r}; "
                       f"available: {available_bandits()}")
    if key == "egreedy":
        return EpsilonGreedyBandit(num_arms, epsilon=config.epsilon, rng=rng)
    if key == "ucb":
        return UCBBandit(num_arms, exploration=config.ucb_exploration, rng=rng)
    if key == "exp3":
        return EXP3Bandit(num_arms, eta=config.eta,
                          reward_normalizer=reward_normalizer, rng=rng)
    if key == "uniform":
        return UniformRandomPolicy(num_arms, rng=rng)
    if key == "roundrobin":
        return RoundRobinPolicy(num_arms, rng=rng)
    return GreedyPolicy(num_arms, rng=rng)
