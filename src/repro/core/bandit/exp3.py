"""Modified EXP3 (Algorithm 2 of the paper).

EXP3 maintains one weight per arm and samples arms from the mixture of the
normalised weights and a uniform distribution (exploration fraction η).
Two modifications make it suitable for hardware fuzzing:

* rewards are normalised by the total number of coverage points |C| of the
  DUT (line 6 of Algorithm 2), keeping the importance-weighted exponent
  bounded, and
* when an arm is reset its weight is replaced by the *average weight of the
  other arms* (line 10), so the fresh seed starts from a neutral position
  rather than inheriting the depleted arm's history.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.core.bandit.base import BanditAlgorithm


class EXP3Bandit(BanditAlgorithm):
    """EXP3 with reward normalisation and reset support."""

    name = "exp3"

    def __init__(self, num_arms: int, eta: float = 0.1,
                 reward_normalizer: float = 1.0, rng=None) -> None:
        super().__init__(num_arms, rng)
        if not 0.0 < eta <= 1.0:
            raise ValueError("eta must be in (0, 1]")
        if reward_normalizer <= 0:
            raise ValueError("reward_normalizer must be positive")
        self.eta = eta
        self.reward_normalizer = reward_normalizer
        self.weights: List[float] = [1.0] * num_arms
        self._last_probabilities: List[float] = [1.0 / num_arms] * num_arms

    # ----------------------------------------------------------------- policy
    def probabilities(self) -> List[float]:
        """Current arm-selection distribution P(a)."""
        total = sum(self.weights)
        uniform = self.eta / self.num_arms
        return [(1.0 - self.eta) * w / total + uniform for w in self.weights]

    def select(self) -> int:
        probabilities = self.probabilities()
        self._last_probabilities = probabilities
        return int(self.rng.choice(self.num_arms, p=np.array(probabilities)))

    def update(self, arm: int, reward: float) -> None:
        self._record_pull(arm)
        normalised = reward / self.reward_normalizer
        # When update immediately follows select (the MABFuzz loop), the
        # recomputed distribution equals the one used for sampling, so this
        # is exactly Algorithm 2; recomputing also keeps delayed updates
        # (the mutation-operator extension) well-defined.
        probability = self.probabilities()[arm]
        estimate = normalised / max(probability, 1e-12)
        self.weights[arm] *= math.exp(self.eta * estimate / self.num_arms)
        self._rescale_if_needed()

    def reset_arm(self, arm: int) -> None:
        self._check_arm(arm)
        if self.num_arms == 1:
            self.weights[arm] = 1.0
            return
        others = [w for index, w in enumerate(self.weights) if index != arm]
        self.weights[arm] = sum(others) / len(others)

    # ------------------------------------------------------------------ guard
    def _rescale_if_needed(self, limit: float = 1e12) -> None:
        """Keep weights in a numerically safe range (scale-invariant for P)."""
        largest = max(self.weights)
        if largest > limit:
            self.weights = [w / largest for w in self.weights]

    def snapshot(self) -> Dict[str, object]:
        snap = super().snapshot()
        snap.update({
            "eta": self.eta,
            "reward_normalizer": self.reward_normalizer,
            "weights": list(self.weights),
            "probabilities": self.probabilities(),
        })
        return snap
