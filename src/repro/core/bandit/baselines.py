"""Non-learning scheduling policies used as ablation baselines.

These implement the same :class:`~repro.core.bandit.base.BanditAlgorithm`
interface so they can be dropped into MABFuzz unchanged:

* :class:`UniformRandomPolicy` -- pick an arm uniformly at random (what many
  existing fuzzers effectively do, Sec. III-B).
* :class:`RoundRobinPolicy` -- cycle through the arms (static schedule).
* :class:`GreedyPolicy` -- always exploit the best-observed arm (the
  motivational example's failure mode: it would never try seed S2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.bandit.base import BanditAlgorithm


class UniformRandomPolicy(BanditAlgorithm):
    """Select arms uniformly at random; ignores rewards."""

    name = "uniform"

    def select(self) -> int:
        return int(self.rng.integers(0, self.num_arms))

    def update(self, arm: int, reward: float) -> None:
        self._record_pull(arm)

    def reset_arm(self, arm: int) -> None:
        self._check_arm(arm)


class RoundRobinPolicy(BanditAlgorithm):
    """Cycle deterministically through the arms; ignores rewards."""

    name = "roundrobin"

    def __init__(self, num_arms: int, rng=None) -> None:
        super().__init__(num_arms, rng)
        self._next = 0

    def select(self) -> int:
        arm = self._next
        self._next = (self._next + 1) % self.num_arms
        return arm

    def update(self, arm: int, reward: float) -> None:
        self._record_pull(arm)

    def reset_arm(self, arm: int) -> None:
        self._check_arm(arm)


class GreedyPolicy(BanditAlgorithm):
    """Pure exploitation: always pick the arm with the best average reward."""

    name = "greedy"

    def __init__(self, num_arms: int, rng=None) -> None:
        super().__init__(num_arms, rng)
        self.q_values: List[float] = [0.0] * num_arms
        self.arm_pulls: List[int] = [0] * num_arms

    def select(self) -> int:
        return self._argmax_random_tie(self.q_values)

    def update(self, arm: int, reward: float) -> None:
        self._record_pull(arm)
        self.arm_pulls[arm] += 1
        self.q_values[arm] += (reward - self.q_values[arm]) / self.arm_pulls[arm]

    def reset_arm(self, arm: int) -> None:
        self._check_arm(arm)
        self.q_values[arm] = 0.0
        self.arm_pulls[arm] = 0

    def snapshot(self) -> Dict[str, object]:
        snap = super().snapshot()
        snap.update({"q_values": list(self.q_values),
                     "arm_pulls": list(self.arm_pulls)})
        return snap
