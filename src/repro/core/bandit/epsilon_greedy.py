"""Modified ε-greedy (Algorithm 1 of the paper, ε-greedy branch).

Standard incremental sample-average ε-greedy with one modification: when the
saturation monitor resets an arm, both its action-value estimate ``Q(a)``
and its pull counter ``N(a)`` are cleared (lines 11-12 of Algorithm 1), so
the fresh seed behind the arm is treated as a brand-new action.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.bandit.base import BanditAlgorithm


class EpsilonGreedyBandit(BanditAlgorithm):
    """ε-greedy with sample-average value estimates and reset support."""

    name = "egreedy"

    def __init__(self, num_arms: int, epsilon: float = 0.1, rng=None) -> None:
        super().__init__(num_arms, rng)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self.q_values: List[float] = [0.0] * num_arms
        self.arm_pulls: List[int] = [0] * num_arms

    def select(self) -> int:
        if self.rng.random() < self.epsilon:
            return int(self.rng.integers(0, self.num_arms))
        return self._argmax_random_tie(self.q_values)

    def update(self, arm: int, reward: float) -> None:
        self._record_pull(arm)
        self.arm_pulls[arm] += 1
        step = self.arm_pulls[arm]
        self.q_values[arm] += (reward - self.q_values[arm]) / step

    def reset_arm(self, arm: int) -> None:
        self._check_arm(arm)
        self.q_values[arm] = 0.0
        self.arm_pulls[arm] = 0

    def snapshot(self) -> Dict[str, object]:
        snap = super().snapshot()
        snap.update({
            "epsilon": self.epsilon,
            "q_values": list(self.q_values),
            "arm_pulls": list(self.arm_pulls),
        })
        return snap
