"""MABFuzz configuration.

Defaults follow the paper's experimental setup (Sec. IV-A): 10 arms,
α = 0.25 (a globally-new point is worth 3x an arm-locally-new one),
reset threshold γ = 3, EXP3 learning rate η = 0.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class MABFuzzConfig:
    """Hyper-parameters of the MABFuzz scheduling layer.

    Attributes:
        num_arms: number of arms (seeds scheduled concurrently).
        alpha: weight of *arm-locally* new coverage in the reward; the
            complementary ``1 - alpha`` weights *globally* new coverage.
        gamma: saturation window -- an arm is reset after ``gamma``
            consecutive selections without new coverage.  ``None`` disables
            resets (used by the ablation study).
        epsilon: exploration probability of the ε-greedy algorithm.
        eta: learning rate of EXP3.
        ucb_exploration: multiplier on UCB's confidence bonus
            (1.0 reproduces the paper's ``sqrt(2 ln t / N)``).
        saturation_metric: ``"global"`` monitors globally-new points per
            pull (the fuzzer's objective); ``"local"`` monitors arm-locally
            new points.
        arm_pool_max: cap on each arm's pending-test pool.
        reward_weights: optional ``dotted-prefix -> weight`` table applied
            to coverage points inside the reward (longest-prefix match,
            unmatched points weigh 1.0); ``None`` reproduces the paper's
            pure counts.  Used to weight the CSR-transition family above
            plain hit-set points (see docs/coverage.md).
    """

    num_arms: int = 10
    alpha: float = 0.25
    gamma: Optional[int] = 3
    epsilon: float = 0.1
    eta: float = 0.1
    ucb_exploration: float = 1.0
    saturation_metric: str = "global"
    arm_pool_max: Optional[int] = 128
    reward_weights: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.num_arms < 1:
            raise ValueError("num_arms must be >= 1")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.gamma is not None and self.gamma < 1:
            raise ValueError("gamma must be >= 1 (or None to disable resets)")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if not 0.0 < self.eta <= 1.0:
            raise ValueError("eta must be in (0, 1]")
        if self.saturation_metric not in ("global", "local"):
            raise ValueError("saturation_metric must be 'global' or 'local'")
        if self.arm_pool_max is not None and self.arm_pool_max < 1:
            raise ValueError("arm_pool_max must be >= 1 or None")
        if self.reward_weights is not None:
            for prefix, weight in self.reward_weights.items():
                if weight < 0.0:
                    raise ValueError(
                        f"reward weight for {prefix!r} must be non-negative")
