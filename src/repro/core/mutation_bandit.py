"""MAB over mutation operators (the Sec. V "other avenues" extension).

The paper's discussion section suggests applying MAB algorithms to the
choice of *mutation operator* instead of (or in addition to) the choice of
seed.  :class:`MutationBanditFuzzer` implements that avenue on top of the
TheHuzz loop: mutation operators are arms of an EXP3/UCB/ε-greedy bandit,
and an operator is rewarded when a mutant it produced later covers new
points.  The corresponding ablation bench compares it against the static
operator weights of plain TheHuzz.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.bandit.base import BanditAlgorithm
from repro.core.bandit.factory import make_bandit
from repro.core.config import MABFuzzConfig
from repro.fuzzing.base import FuzzerConfig
from repro.fuzzing.results import TestOutcome
from repro.fuzzing.thehuzz import TheHuzzFuzzer
from repro.isa.program import TestProgram
from repro.rtl.harness import DutModel
from repro.utils.rng import derive_rng


class MutationBanditFuzzer(TheHuzzFuzzer):
    """TheHuzz with a bandit choosing the mutation operator for every mutant.

    The fuzzing loop is byte-for-byte TheHuzz (FIFO pool, interesting
    tests spawn mutants) except that each mutant's operator is selected by
    a bandit over the 14 operators of
    :class:`~repro.fuzzing.mutation.MutationEngine` instead of the static
    published weights.  The reward signal closes one iteration later: when
    a mutant is executed, the operator that *produced* it (recorded in
    ``TestProgram.mutation_op``) is credited with the number of new
    coverage points the mutant reached.

    Corpus mode composes transparently: the inherited ``_next_test``
    restocks a dry pool from corpus draws, and every executed test is
    offered to the corpus by the base class
    (see :mod:`repro.fuzzing.corpus`).

    Args:
        dut: the device-under-test model to fuzz.
        algorithm: bandit algorithm name (``"exp3"``, ``"ucb"``,
            ``"egreedy"``) or a pre-built :class:`BanditAlgorithm`.
        mab_config: bandit hyper-parameters (only the algorithm-specific
            fields are read; arm count is the operator count).
        config: shared :class:`FuzzerConfig` (pool sizes, scenario,
            corpus knob).
        rng: seed or generator for the fuzzer's derived RNG streams.
    """

    def __init__(self,
                 dut: DutModel,
                 algorithm: Union[str, BanditAlgorithm] = "exp3",
                 mab_config: Optional[MABFuzzConfig] = None,
                 config: Optional[FuzzerConfig] = None,
                 rng=None) -> None:
        super().__init__(dut, config, rng)
        self.mab_config = mab_config or MABFuzzConfig()
        self.operator_names = list(self.mutation_engine.operator_names)
        self._operator_index = {name: i for i, name in enumerate(self.operator_names)}
        self.bandit = make_bandit(
            algorithm,
            num_arms=len(self.operator_names),
            config=self.mab_config,
            reward_normalizer=max(dut.total_coverage_points, 1),
            rng=derive_rng(self.rng, "mutation-bandit"),
        )
        self.name = f"mutation-bandit:{self.bandit.name}"

    # -------------------------------------------------------------- scheduling
    def _mutate_with_bandit(self, program: TestProgram) -> list:
        """Produce ``mutants_per_test`` mutants, one bandit pull per mutant.

        Each pull selects an operator arm; the mutant records the operator
        in its provenance so the delayed reward in ``_after_test`` can
        credit the right arm when the mutant eventually executes.
        """
        mutants = []
        operators = self.mutation_engine.operators
        for _ in range(self.mutation_engine.mutants_per_test):
            index = self.bandit.select()
            operator = operators[index]
            mutants.append(self.mutation_engine.mutate_once(program, operator))
        return mutants

    def _after_test(self, program: TestProgram, outcome: TestOutcome) -> None:
        # Reward the operator that produced this test (seeds have no operator).
        if program.mutation_op is not None:
            index = self._operator_index.get(program.mutation_op)
            if index is not None:
                self.bandit.update(index, float(len(outcome.new_points)))
        if outcome.is_interesting:
            self.pool.push_many(self._mutate_with_bandit(program))

    # ------------------------------------------------------------------ results
    def _result_metadata(self) -> Dict[str, object]:
        metadata = super()._result_metadata()
        metadata.update({
            "algorithm": self.bandit.name,
            "operator_arms": len(self.operator_names),
        })
        return metadata
