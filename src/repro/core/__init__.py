"""MABFuzz: the paper's contribution.

The ``core`` package layers a multi-armed-bandit scheduling policy on top of
the base fuzzer substrate:

* :mod:`repro.core.bandit` -- the modified ε-greedy, UCB and EXP3 algorithms
  with the *reset arms* feature (Algorithms 1 and 2 of the paper), plus
  non-learning baseline policies.
* :mod:`repro.core.arms` -- arms (seed + per-arm test pool + per-arm
  coverage history).
* :mod:`repro.core.reward` -- the α-weighted local/global coverage reward.
* :mod:`repro.core.monitor` -- the γ-window saturation monitor.
* :mod:`repro.core.scheduler` -- glue between bandit, arms, reward and monitor.
* :mod:`repro.core.mabfuzz` -- the MABFuzz fuzzer itself.
* :mod:`repro.core.mutation_bandit` -- the Sec. V extension: MAB over
  mutation operators.
"""

from repro.core.config import MABFuzzConfig
from repro.core.arms import Arm, ArmSet
from repro.core.reward import RewardBreakdown, RewardComputer
from repro.core.monitor import SaturationMonitor
from repro.core.scheduler import MABScheduler, SchedulerUpdate
from repro.core.mabfuzz import MABFuzz
from repro.core.mutation_bandit import MutationBanditFuzzer
from repro.core.bandit import (
    BanditAlgorithm,
    EpsilonGreedyBandit,
    UCBBandit,
    EXP3Bandit,
    UniformRandomPolicy,
    RoundRobinPolicy,
    GreedyPolicy,
    make_bandit,
    available_bandits,
)

__all__ = [
    "MABFuzzConfig",
    "Arm",
    "ArmSet",
    "RewardBreakdown",
    "RewardComputer",
    "SaturationMonitor",
    "MABScheduler",
    "SchedulerUpdate",
    "MABFuzz",
    "MutationBanditFuzzer",
    "BanditAlgorithm",
    "EpsilonGreedyBandit",
    "UCBBandit",
    "EXP3Bandit",
    "UniformRandomPolicy",
    "RoundRobinPolicy",
    "GreedyPolicy",
    "make_bandit",
    "available_bandits",
]
