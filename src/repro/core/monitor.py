"""Campaign monitors: γ-window saturation and grid-run progress.

:class:`SaturationMonitor` implements the paper's arm-saturation detector
(Sec. III-C): for every arm it remembers how much new coverage each of the
last γ pulls of that arm produced.  When γ consecutive pulls produced
nothing new, the arm is declared *saturated* (depleted) and the scheduler
replaces it with a fresh seed.  γ trades depth for breadth: a large γ gives
a seed more chances to reach deep points before being abandoned, a small γ
moves on to unexplored regions sooner (footnote 1 of the paper).

:class:`ProgressMonitor` tracks the other time axis -- a whole grid of
campaigns running through the parallel execution subsystem
(:mod:`repro.exec`): trials done/total, throughput-based ETA, and the
golden/DUT cache traffic reported by finished trials.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional


class SaturationMonitor:
    """Tracks per-arm new-coverage history over a sliding γ-window."""

    def __init__(self, gamma: Optional[int] = 3) -> None:
        if gamma is not None and gamma < 1:
            raise ValueError("gamma must be >= 1 (or None to disable resets)")
        self.gamma = gamma
        self._history: Dict[int, Deque[int]] = {}

    # ------------------------------------------------------------------ updates
    def record(self, arm_index: int, new_coverage_count: int) -> None:
        """Record how many new points one pull of ``arm_index`` produced."""
        if new_coverage_count < 0:
            raise ValueError("new_coverage_count must be non-negative")
        if self.gamma is None:
            return
        history = self._history.setdefault(arm_index, deque(maxlen=self.gamma))
        history.append(new_coverage_count)

    def clear(self, arm_index: int) -> None:
        """Forget the history of ``arm_index`` (called when the arm is reset)."""
        self._history.pop(arm_index, None)

    # ------------------------------------------------------------------ queries
    def is_saturated(self, arm_index: int) -> bool:
        """Whether the arm produced no new coverage in its entire γ-window."""
        if self.gamma is None:
            return False
        history = self._history.get(arm_index)
        if history is None or len(history) < self.gamma:
            return False
        return all(count == 0 for count in history)

    def window(self, arm_index: int) -> List[int]:
        """The recorded window of ``arm_index`` (most recent last)."""
        return list(self._history.get(arm_index, ()))


class ProgressMonitor:
    """Live progress of a grid run: trials done/total, ETA, cache traffic.

    The execution engine calls :meth:`start` once with the total trial
    count *before* loading any checkpoint journal, then
    :meth:`restore_completed` once the restore finishes (restored trials
    count as already done), then :meth:`trial_completed` per finished
    trial.  ``sink`` receives one rendered status line per event (e.g.
    ``print`` or a logger method); ``None`` keeps the monitor silent but
    still queryable.

    The ETA is throughput-based -- remaining trials divided by observed
    completed-trials-per-second -- which is the right model for a sharded
    grid where several trials finish per wall-clock interval.  Observed
    throughput starts at the *restore* boundary, not at :meth:`start`:
    journal-restore/salvage wall-clock must never be divided by only the
    trials run afterwards (see :meth:`restore_completed`).
    """

    def __init__(self, sink: Optional[Callable[[str], None]] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._sink = sink
        self._clock = clock
        self.total_trials = 0
        self.completed_trials = 0
        self.restored_trials = 0
        self.cache_stats: Dict[str, int] = {"golden_cache_hits": 0,
                                            "golden_cache_misses": 0}
        #: worker-side cache-traffic deltas for the current grid, summed
        #: over finished batches (DUT-run and shared golden caches); fed
        #: out-of-band by the engine because these counters are kept out
        #: of result metadata on purpose.
        self.worker_cache_stats: Dict[str, int] = {}
        #: self-healing counters for the current grid: stale-lease
        #: requeues, failed-batch retries, dead-lettered batches and
        #: journal records dropped by the salvage pass.  Fed by the engine
        #: (journal side) and the backend (queue side).
        self.robustness_stats: Dict[str, int] = {}
        #: corpus-mode feedback-loop counters (global map size, stored
        #: seeds, admission traffic); fed by the engine after each trial
        #: of a corpus-enabled grid, empty otherwise.
        self.corpus_stats: Dict[str, int] = {}
        #: supervised-transport counters for the current grid (worker
        #: restarts, degraded hosts, telemetry delivery accounting); fed
        #: by the engine from ``last_run_report["transport"]``, empty for
        #: unsupervised runs (see ``docs/service.md``).
        self.transport_stats: Dict[str, object] = {}
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------ updates
    def start(self, total_trials: int, restored_trials: int = 0,
              backend: str = "serial") -> None:
        """Begin tracking a grid of ``total_trials`` trials."""
        if total_trials < 0 or restored_trials < 0:
            raise ValueError("trial counts must be non-negative")
        if restored_trials > total_trials:
            raise ValueError("restored_trials cannot exceed total_trials")
        self.total_trials = total_trials
        self.completed_trials = restored_trials
        self.restored_trials = restored_trials
        self.cache_stats = dict.fromkeys(self.cache_stats, 0)  # per-grid rates
        self.worker_cache_stats = {}
        self.robustness_stats = {}
        self.corpus_stats = {}
        self.transport_stats = {}
        self._started_at = self._clock()
        if self._sink is not None:
            restored = (f" ({restored_trials} restored from checkpoint)"
                        if restored_trials else "")
            self._sink(f"grid: {total_trials} trials on {backend}{restored}")

    def restore_completed(self, restored_trials: int) -> None:
        """Credit journal-restored trials and rebase the throughput clock.

        The engine calls :meth:`start` before loading the checkpoint
        journal (so the grid banner is emitted even when the restore or
        its salvage pass is slow) and this method once the restore is
        done.  Rebasing ``_started_at`` here is the whole point:
        :meth:`eta_seconds` divides elapsed wall-clock by the trials
        *run* since restore, so elapsed must not include restore time --
        a large resume used to inflate the first ETAs by exactly the
        journal-load duration.
        """
        if restored_trials < 0:
            raise ValueError("restored_trials must be non-negative")
        if restored_trials > self.total_trials:
            raise ValueError("restored_trials cannot exceed total_trials")
        self.completed_trials = restored_trials
        self.restored_trials = restored_trials
        self._started_at = self._clock()
        if self._sink is not None and restored_trials:
            self._sink(f"grid: {restored_trials}/{self.total_trials} trials "
                       f"restored from checkpoint")

    def trial_completed(self, label: str = "",
                        metadata: Optional[Dict[str, object]] = None) -> None:
        """Record one finished trial (``metadata`` = the result's metadata)."""
        self.completed_trials += 1
        for counter in self.cache_stats:
            value = (metadata or {}).get(counter)
            if isinstance(value, int):
                self.cache_stats[counter] += value
        if self._sink is not None:
            self._sink(self.render(label))

    def update_cache_stats(self, stats: Dict[str, int]) -> None:
        """Replace the worker-side cache deltas (the engine passes the
        backend's running per-grid totals, so this is a snapshot, not an
        increment)."""
        self.worker_cache_stats = dict(stats)

    def update_robustness_stats(self, stats: Dict[str, int]) -> None:
        """Merge self-healing counters (snapshot semantics per key).

        The engine feeds two sources with disjoint keys -- the journal
        salvage tally (once, at load) and the backend's running recovery
        totals (every completion) -- so each key is replaced, not summed.
        """
        for name, value in stats.items():
            if value:
                self.robustness_stats[name] = value

    def update_corpus_stats(self, stats: Dict[str, int]) -> None:
        """Replace the corpus feedback-loop snapshot (engine-fed, corpus-on)."""
        self.corpus_stats = dict(stats)

    def update_transport_stats(self, stats: Dict[str, object]) -> None:
        """Replace the supervised-transport snapshot (engine-fed)."""
        self.transport_stats = dict(stats)

    def finish(self, report: Optional[Dict[str, object]] = None) -> None:
        """Emit closing summary lines for recovery and corpus state.

        Quiet on a clean corpus-off run; a run that requeued, retried,
        dead-lettered or salvaged anything gets one closing line so the
        damage is visible even if the per-trial status lines scrolled
        away, and a corpus-enabled run always gets one line naming the
        final global map size and seed count.  ``report`` is the engine's
        ``last_run_report`` (used to name the dead-lettered trial count).
        """
        if self._sink is None:
            return
        if self.corpus_stats:
            self._sink(f"corpus: {self.corpus_stats.get('global_points', 0)} "
                       f"points in global map, "
                       f"{self.corpus_stats.get('entries', 0)} seeds stored")
        if self.transport_stats:
            self._sink("transport: " + self._transport_line())
        quarantined = int((report or {}).get("quarantined_trials", 0) or 0)
        if not self.robustness_stats and not quarantined:
            return
        parts = [f"{name.replace('_', ' ')} {value}"
                 for name, value in sorted(self.robustness_stats.items())]
        if quarantined:
            parts.append(f"{quarantined} trial(s) lost to deadletter/")
        self._sink("grid recovery: " + " | ".join(parts))

    def _transport_line(self) -> str:
        """The closing transport summary: worker fleet, then telemetry.

        Always names the restart and degraded-host counts -- the chaos
        tests grep this line to prove a supervised recovery actually
        happened -- and appends telemetry delivery accounting when a sink
        was configured.
        """
        stats = self.transport_stats
        parts = []
        if "hosts" in stats:
            parts.append(f"{stats.get('spawned', 0)} workers on "
                         f"{stats['hosts']} host(s)")
            parts.append(f"{stats.get('restarts', 0)} restarted")
            degraded = stats.get("degraded_hosts") or []
            parts.append(f"{len(degraded)} degraded"
                         + (f" ({', '.join(degraded)})" if degraded else ""))
        telemetry = stats.get("telemetry") or {}
        if telemetry:
            tele = [f"{telemetry.get('events', 0)} events"]
            for counter in ("reconnects", "spilled", "dropped", "errors"):
                value = telemetry.get(counter)
                if value:
                    tele.append(f"{value} {counter}")
            parts.append("telemetry " + "/".join(tele))
        return " | ".join(parts)

    # ------------------------------------------------------------------ queries
    @property
    def remaining_trials(self) -> int:
        return max(0, self.total_trials - self.completed_trials)

    def elapsed_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to completion (``None`` until one trial ran)."""
        ran = self.completed_trials - self.restored_trials
        if ran < 1 or self.remaining_trials == 0:
            return 0.0 if self.remaining_trials == 0 else None
        return self.remaining_trials * (self.elapsed_seconds() / ran)

    def golden_cache_hit_rate(self) -> Optional[float]:
        """Aggregate golden-cache hit rate over finished trials (or ``None``)."""
        hits = self.cache_stats["golden_cache_hits"]
        total = hits + self.cache_stats["golden_cache_misses"]
        return hits / total if total else None

    def dut_cache_hit_rate(self) -> Optional[float]:
        """Worker DUT-run cache hit rate this grid (or ``None`` before traffic)."""
        hits = self.worker_cache_stats.get("dut_cache_hits", 0)
        total = hits + self.worker_cache_stats.get("dut_cache_misses", 0)
        return hits / total if total else None

    def cache_evictions(self) -> int:
        """LRU spills in the worker caches this grid (capacity pressure signal)."""
        return (self.worker_cache_stats.get("dut_cache_evictions", 0)
                + self.worker_cache_stats.get("shared_golden_evictions", 0))

    def render(self, label: str = "") -> str:
        """One status line: ``trials 3/12 | eta 41s | golden-cache 87% hit``."""
        parts = [f"trials {self.completed_trials}/{self.total_trials}"]
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        hit_rate = self.golden_cache_hit_rate()
        if hit_rate is not None:
            parts.append(f"golden-cache {100.0 * hit_rate:.0f}% hit")
        dut_rate = self.dut_cache_hit_rate()
        if dut_rate is not None:
            parts.append(f"dut-cache {100.0 * dut_rate:.0f}% hit")
        evictions = self.cache_evictions()
        if evictions:
            parts.append(f"{evictions} evicted")
        for counter in ("requeued", "retried", "deadlettered",
                        "journal_dropped"):
            value = self.robustness_stats.get(counter)
            if value:
                parts.append(f"{counter.replace('_', '-')} {value}")
        if self.corpus_stats:
            parts.append(f"corpus {self.corpus_stats.get('global_points', 0)}pts"
                         f"/{self.corpus_stats.get('entries', 0)} seeds")
        if label:
            parts.append(label)
        return " | ".join(parts)
