"""The γ-window saturation monitor (Sec. III-C).

For every arm the monitor remembers how much new coverage each of the last
γ pulls of that arm produced.  When γ consecutive pulls produced nothing
new, the arm is declared *saturated* (depleted) and the scheduler replaces
it with a fresh seed.  γ trades depth for breadth: a large γ gives a seed
more chances to reach deep points before being abandoned, a small γ moves
on to unexplored regions sooner (footnote 1 of the paper).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional


class SaturationMonitor:
    """Tracks per-arm new-coverage history over a sliding γ-window."""

    def __init__(self, gamma: Optional[int] = 3) -> None:
        if gamma is not None and gamma < 1:
            raise ValueError("gamma must be >= 1 (or None to disable resets)")
        self.gamma = gamma
        self._history: Dict[int, Deque[int]] = {}

    # ------------------------------------------------------------------ updates
    def record(self, arm_index: int, new_coverage_count: int) -> None:
        """Record how many new points one pull of ``arm_index`` produced."""
        if new_coverage_count < 0:
            raise ValueError("new_coverage_count must be non-negative")
        if self.gamma is None:
            return
        history = self._history.setdefault(arm_index, deque(maxlen=self.gamma))
        history.append(new_coverage_count)

    def clear(self, arm_index: int) -> None:
        """Forget the history of ``arm_index`` (called when the arm is reset)."""
        self._history.pop(arm_index, None)

    # ------------------------------------------------------------------ queries
    def is_saturated(self, arm_index: int) -> bool:
        """Whether the arm produced no new coverage in its entire γ-window."""
        if self.gamma is None:
            return False
        history = self._history.get(arm_index)
        if history is None or len(history) < self.gamma:
            return False
        return all(count == 0 for count in history)

    def window(self, arm_index: int) -> List[int]:
        """The recorded window of ``arm_index`` (most recent last)."""
        return list(self._history.get(arm_index, ()))
