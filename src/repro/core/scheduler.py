"""The MAB scheduler: bandit + arms + reward + saturation monitor.

This is the glue that Fig. 2 of the paper draws around the fuzzer: the
bandit algorithm chooses an arm, the executed test's coverage is turned
into the α-weighted reward, the γ-window monitor decides whether the arm is
depleted, and depleted arms are reset both in the arm set (fresh seed) and
inside the bandit (reset-arms modification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.core.arms import Arm, ArmSet
from repro.core.bandit.base import BanditAlgorithm
from repro.core.monitor import SaturationMonitor
from repro.core.reward import RewardBreakdown, RewardComputer
from repro.isa.program import TestProgram


@dataclass(frozen=True)
class SchedulerUpdate:
    """What happened when the scheduler processed one test outcome."""

    arm_index: int
    reward: RewardBreakdown
    was_reset: bool
    replacement_seed_id: Optional[str] = None

    @property
    def reward_value(self) -> float:
        return self.reward.value


class MABScheduler:
    """Selects arms with a bandit algorithm and keeps them fresh via resets."""

    def __init__(self,
                 bandit: BanditAlgorithm,
                 arms: ArmSet,
                 reward: RewardComputer,
                 monitor: SaturationMonitor,
                 seed_provider: Callable[[], TestProgram],
                 saturation_metric: str = "global") -> None:
        if bandit.num_arms != len(arms):
            raise ValueError(
                f"bandit schedules {bandit.num_arms} arms but the arm set has {len(arms)}")
        if saturation_metric not in ("global", "local"):
            raise ValueError("saturation_metric must be 'global' or 'local'")
        self.bandit = bandit
        self.arms = arms
        self.reward = reward
        self.monitor = monitor
        self.seed_provider = seed_provider
        self.saturation_metric = saturation_metric
        self.updates: int = 0
        self.reset_log: List[int] = []

    # --------------------------------------------------------------- selection
    def select(self) -> Arm:
        """Ask the bandit for the next arm to pull."""
        return self.arms[self.bandit.select()]

    # ------------------------------------------------------------------ update
    def update(self, arm: Arm, test_coverage: Iterable[str],
               global_new_points: Iterable[str]) -> SchedulerUpdate:
        """Process the outcome of one test executed on behalf of ``arm``."""
        breakdown = self.reward.compute(arm.local_coverage, test_coverage,
                                        global_new_points)
        arm.record_pull(test_coverage, breakdown.value)
        self.bandit.update(arm.index, breakdown.value)

        monitored = (breakdown.global_count if self.saturation_metric == "global"
                     else breakdown.local_count)
        self.monitor.record(arm.index, monitored)
        self.updates += 1

        was_reset = False
        replacement_id: Optional[str] = None
        if self.monitor.is_saturated(arm.index):
            replacement = self.seed_provider()
            self.arms.reset_arm(arm.index, replacement)
            self.bandit.reset_arm(arm.index)
            self.monitor.clear(arm.index)
            self.reset_log.append(self.updates)
            was_reset = True
            replacement_id = replacement.program_id
        return SchedulerUpdate(arm_index=arm.index, reward=breakdown,
                               was_reset=was_reset,
                               replacement_seed_id=replacement_id)

    # ----------------------------------------------------------------- queries
    @property
    def total_resets(self) -> int:
        return len(self.reset_log)
