"""Arms: the unit the MAB agent schedules.

Each arm corresponds to one seed (Sec. III-B): it owns the seed program, a
FIFO pool of tests derived from that seed by mutation, and the set of
coverage points any of its tests have reached (needed for the *local* part
of the reward).  When the saturation monitor declares an arm depleted, the
arm is *reset*: a fresh seed replaces it and the per-arm history is cleared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from repro.fuzzing.testpool import TestPool
from repro.isa.program import TestProgram


@dataclass
class Arm:
    """One bandit arm: a seed, its test pool and its coverage history."""

    index: int
    seed: TestProgram
    pool: TestPool = field(default_factory=TestPool)
    local_coverage: Set[str] = field(default_factory=set)
    pulls: int = 0
    total_reward: float = 0.0
    resets: int = 0
    generation: int = 0

    def __post_init__(self) -> None:
        if not len(self.pool):
            self.pool.push(self.seed)

    # ------------------------------------------------------------------ queries
    @property
    def mean_reward(self) -> float:
        """Average reward per pull since the last reset."""
        return self.total_reward / self.pulls if self.pulls else 0.0

    def local_new_points(self, coverage: Iterable[str]) -> Set[str]:
        """Points in ``coverage`` this arm has never reached before."""
        return set(coverage) - self.local_coverage

    # ------------------------------------------------------------------ updates
    def record_pull(self, coverage: Iterable[str], reward: float) -> None:
        """Account for one executed test of this arm."""
        self.pulls += 1
        self.total_reward += reward
        self.local_coverage.update(coverage)

    def reset_with(self, new_seed: TestProgram) -> None:
        """Replace the arm with a fresh seed (the paper's arm reset)."""
        self.seed = new_seed
        self.pool.clear()
        self.pool.push(new_seed)
        self.local_coverage.clear()
        self.pulls = 0
        self.total_reward = 0.0
        self.resets += 1
        self.generation += 1


class ArmSet:
    """The fixed-size collection of arms scheduled by the bandit."""

    def __init__(self, seeds: Iterable[TestProgram],
                 pool_max: Optional[int] = None) -> None:
        seeds = list(seeds)
        if not seeds:
            raise ValueError("an ArmSet needs at least one seed")
        self.pool_max = pool_max
        self.arms: List[Arm] = [
            Arm(index=i, seed=seed, pool=TestPool(max_size=pool_max))
            for i, seed in enumerate(seeds)
        ]

    def __len__(self) -> int:
        return len(self.arms)

    def __iter__(self):
        return iter(self.arms)

    def __getitem__(self, index: int) -> Arm:
        return self.arms[index]

    @property
    def total_resets(self) -> int:
        return sum(arm.resets for arm in self.arms)

    def reset_arm(self, index: int, new_seed: TestProgram) -> Arm:
        """Reset arm ``index`` with ``new_seed`` and return it."""
        arm = self.arms[index]
        arm.reset_with(new_seed)
        return arm

    @classmethod
    def from_generator(cls, seed_generator, num_arms: int,
                       pool_max: Optional[int] = None) -> "ArmSet":
        """Build an arm set from ``num_arms`` freshly generated seeds."""
        if num_arms < 1:
            raise ValueError("num_arms must be >= 1")
        return cls(seed_generator.generate_many(num_arms), pool_max=pool_max)
