"""MABFuzz: the final formulation of Sec. III-D.

``MABFuzz`` is a drop-in replacement for :class:`~repro.fuzzing.thehuzz.
TheHuzzFuzzer`: it reuses the same seed generator, mutation engine, DUT
session and differential tester, and only replaces the *which test next*
decision with the MAB scheduler.  One fuzzing iteration is exactly Fig. 2:

1. the bandit selects an arm,
2. the oldest pending test of that arm is simulated on the DUT (and the
   golden model, for differential testing),
3. the test is mutated and the mutants are appended to the arm's pool,
4. the coverage feedback is converted to the α-weighted reward and fed back
   to the bandit, and
5. the γ-window monitor resets the arm (fresh seed, reset bandit state)
   if it has stopped producing new coverage.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.arms import Arm, ArmSet
from repro.core.bandit.base import BanditAlgorithm
from repro.core.bandit.factory import make_bandit
from repro.core.config import MABFuzzConfig
from repro.core.monitor import SaturationMonitor
from repro.core.reward import RewardComputer
from repro.core.scheduler import MABScheduler
from repro.fuzzing.base import Fuzzer, FuzzerConfig
from repro.fuzzing.results import TestOutcome
from repro.isa.program import TestProgram
from repro.rtl.harness import DutModel
from repro.utils.rng import derive_rng


class MABFuzz(Fuzzer):
    """The MAB-scheduled hardware fuzzer (the paper's contribution)."""

    def __init__(self,
                 dut: DutModel,
                 algorithm: Union[str, BanditAlgorithm] = "ucb",
                 mab_config: Optional[MABFuzzConfig] = None,
                 config: Optional[FuzzerConfig] = None,
                 rng=None) -> None:
        super().__init__(dut, config, rng)
        self.mab_config = mab_config or MABFuzzConfig()
        self.bandit = make_bandit(
            algorithm,
            num_arms=self.mab_config.num_arms,
            config=self.mab_config,
            reward_normalizer=max(dut.total_coverage_points, 1),
            rng=derive_rng(self.rng, "bandit"),
        )
        self.name = f"mabfuzz:{self.bandit.name}"
        self.arms = ArmSet.from_generator(
            self.seed_generator, self.mab_config.num_arms,
            pool_max=self.mab_config.arm_pool_max)
        self.scheduler = MABScheduler(
            bandit=self.bandit,
            arms=self.arms,
            reward=RewardComputer(self.mab_config.alpha,
                                  point_weights=self.mab_config.reward_weights),
            monitor=SaturationMonitor(self.mab_config.gamma),
            seed_provider=self.seed_generator.generate,
            saturation_metric=self.mab_config.saturation_metric,
        )
        self._current_arm: Optional[Arm] = None

    # -------------------------------------------------------------- scheduling
    def _next_test(self) -> TestProgram:
        arm = self.scheduler.select()
        self._current_arm = arm
        if not arm.pool:
            # The arm consumed every pending test (possible when the pool cap
            # dropped mutants); refill it with fresh mutants of its seed.
            arm.pool.push_many(self.mutation_engine.mutate(arm.seed))
        return arm.pool.pop()

    def _after_test(self, program: TestProgram, outcome: TestOutcome) -> None:
        arm = self._current_arm
        assert arm is not None, "_after_test called before _next_test"
        # Fig. 2: the executed test is mutated and its children join the
        # selected arm's pool (independently of the reward).
        arm.pool.push_many(self.mutation_engine.mutate(program))
        self.scheduler.update(arm, outcome.coverage, outcome.new_points)
        self._current_arm = None

    # ------------------------------------------------------------------ results
    def _result_metadata(self) -> Dict[str, object]:
        metadata = super()._result_metadata()
        metadata.update({
            "algorithm": self.bandit.name,
            "num_arms": self.mab_config.num_arms,
            "alpha": self.mab_config.alpha,
            "gamma": self.mab_config.gamma,
            "total_resets": self.scheduler.total_resets,
        })
        return metadata
