"""MABFuzz: the final formulation of Sec. III-D.

``MABFuzz`` is a drop-in replacement for :class:`~repro.fuzzing.thehuzz.
TheHuzzFuzzer`: it reuses the same seed generator, mutation engine, DUT
session and differential tester, and only replaces the *which test next*
decision with the MAB scheduler.  One fuzzing iteration is exactly Fig. 2:

1. the bandit selects an arm,
2. the oldest pending test of that arm is simulated on the DUT (and the
   golden model, for differential testing),
3. the test is mutated and the mutants are appended to the arm's pool,
4. the coverage feedback is converted to the α-weighted reward and fed back
   to the bandit, and
5. the γ-window monitor resets the arm (fresh seed, reset bandit state)
   if it has stopped producing new coverage.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.arms import Arm, ArmSet
from repro.core.bandit.base import BanditAlgorithm
from repro.core.bandit.factory import make_bandit
from repro.core.config import MABFuzzConfig
from repro.core.monitor import SaturationMonitor
from repro.core.reward import RewardComputer
from repro.core.scheduler import MABScheduler
from repro.fuzzing.base import Fuzzer, FuzzerConfig
from repro.fuzzing.results import TestOutcome
from repro.isa.program import TestProgram
from repro.rtl.harness import DutModel
from repro.utils.rng import derive_rng


class MABFuzz(Fuzzer):
    """The MAB-scheduled hardware fuzzer (the paper's contribution)."""

    def __init__(self,
                 dut: DutModel,
                 algorithm: Union[str, BanditAlgorithm] = "ucb",
                 mab_config: Optional[MABFuzzConfig] = None,
                 config: Optional[FuzzerConfig] = None,
                 rng=None) -> None:
        super().__init__(dut, config, rng)
        self.mab_config = mab_config or MABFuzzConfig()
        self.bandit = make_bandit(
            algorithm,
            num_arms=self.mab_config.num_arms,
            config=self.mab_config,
            reward_normalizer=max(dut.total_coverage_points, 1),
            rng=derive_rng(self.rng, "bandit"),
        )
        self.name = f"mabfuzz:{self.bandit.name}"
        self.arms = ArmSet.from_generator(
            self.seed_generator, self.mab_config.num_arms,
            pool_max=self.mab_config.arm_pool_max)
        self.scheduler = MABScheduler(
            bandit=self.bandit,
            arms=self.arms,
            reward=RewardComputer(self.mab_config.alpha,
                                  point_weights=self.mab_config.reward_weights),
            monitor=SaturationMonitor(self.mab_config.gamma),
            seed_provider=self._provide_seed,
            saturation_metric=self.mab_config.saturation_metric,
        )
        self._current_arm: Optional[Arm] = None

    # -------------------------------------------------------------- corpus mode
    def _provide_seed(self) -> TestProgram:
        """Replacement seed for a saturated arm: always a fresh generation.

        Saturation resets are the scheduler's *exploration pump* -- an arm
        is reset precisely because its neighbourhood stopped paying, so
        restarting it from a corpus draw (a program whose neighbourhood is
        by definition already charted) would defeat the reset.  Corpus
        mode leans on this harder, not softer: with the grid-globally
        novel reward (see :meth:`_after_test`), arms re-charting territory
        other trials or workers already covered saturate quickly and are
        pumped toward genuinely unexplored regions.  Measured on this
        repo's DUT models, corpus-drawn reset seeds cost 60-100 union
        coverage points per 3-trial grid versus fresh resets.
        """
        return self.seed_generator.generate()

    def on_corpus_state(self) -> None:
        """Re-seed one arm from injected corpus state.

        Arms are built in ``__init__``, before the campaign runner merges
        state accumulated by earlier trials / other workers.  Once that
        state lands, the *first* arm restarts from a mutated corpus draw
        -- a dedicated exploit arm working the neighbourhood of proven
        programs -- while every other arm keeps its fresh generator seed.
        The bandit arbitrates from there: if the corpus arm's mutants keep
        finding grid-novel points it gets pulled, and if they only re-reach
        known coverage its reward starves and the γ-window resets it to a
        fresh seed.  Keeping the exploit allocation this small is
        deliberate -- corpus mutants mostly re-cover their parent's
        points, and reseeding half the arms measurably *loses* union
        coverage against a corpus-off grid at equal budget.
        """
        if self.corpus is None or not self.corpus:
            return
        seed = self._corpus_seed()
        if seed is not None:
            arm = self.arms[0]
            arm.seed = seed
            arm.pool.clear()
            arm.pool.push(seed)

    # -------------------------------------------------------------- scheduling
    def _next_test(self) -> TestProgram:
        arm = self.scheduler.select()
        self._current_arm = arm
        if not arm.pool:
            # The arm consumed every pending test (possible when the pool cap
            # dropped mutants); refill it with mutants of a corpus draw when
            # available, else of its own seed.
            base = self._corpus_seed() or arm.seed
            arm.pool.push_many(self.mutation_engine.mutate(base))
        return arm.pool.pop()

    def _after_test(self, program: TestProgram, outcome: TestOutcome) -> None:
        arm = self._current_arm
        assert arm is not None, "_after_test called before _next_test"
        # Fig. 2: the executed test is mutated and its children join the
        # selected arm's pool (independently of the reward).
        arm.pool.push_many(self.mutation_engine.mutate(program))
        # Corpus mode swaps the reward's novelty term for *grid-global*
        # novelty (points no earlier trial or other worker reached): arms
        # re-charting inherited territory earn nothing, saturate, and are
        # reset toward unexplored regions.
        new_points = (self._corpus_novel if self.corpus is not None
                      else outcome.new_points)
        self.scheduler.update(arm, outcome.coverage, new_points)
        self._current_arm = None

    # ------------------------------------------------------------------ results
    def _result_metadata(self) -> Dict[str, object]:
        metadata = super()._result_metadata()
        metadata.update({
            "algorithm": self.bandit.name,
            "num_arms": self.mab_config.num_arms,
            "alpha": self.mab_config.alpha,
            "gamma": self.mab_config.gamma,
            "total_resets": self.scheduler.total_resets,
        })
        return metadata
