"""32-bit word -> Instruction decoding.

Decoding is the inverse of :mod:`repro.isa.assembler`: every legally encoded
instruction round-trips exactly.  Words that do not match any known
instruction decode to ``Instruction.illegal(word)`` -- they remain first-class
citizens of the fuzzing loop (they execute by raising an illegal-instruction
trap), which matters because bit-level mutation frequently produces them.

Decoding is on the hottest path of the differential fuzzing loop (every
fetched word of every golden *and* DUT run goes through it), so it is
table-driven rather than a linear spec scan:

* dense lookup tables keyed on ``(opcode, funct3, funct7/funct5/funct12)``
  are built once from :data:`~repro.isa.encoding.SPECS` at import time, and
* a bounded module-level cache maps raw words to shared, immutable
  :class:`Instruction` values so repeated fetches of the same word (the
  common case in looping or mutated programs) skip decoding entirely.
  Illegal words are cached too -- bit-level mutation re-executes them often.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.isa.encoding import (
    OPCODE_AMO,
    OPCODE_MISC_MEM,
    OPCODE_OP_IMM_32,
    OPCODE_SYSTEM,
    SPECS,
    InstrFormat,
    InstrSpec,
)
from repro.isa.instruction import Instruction
from repro.utils.bits import get_bit, get_bits, sign_extend


def _build_tables() -> Tuple[Dict, Dict, Dict, Dict, Dict, Dict, Optional[InstrSpec]]:
    """Build the dense decode tables from SPECS (once, at import time).

    Every spec lands in exactly one table chosen by its format:

    ==============  ========================================================
    table            key
    ==============  ========================================================
    opcode-only      ``opcode``                      (U/J: lui, auipc, jal)
    simple           ``(opcode, funct3)``            (I, S, B, CSR, fence)
    R                ``(opcode, funct3, funct7)``    (+ OP-IMM-32 shifts)
    shift-64         ``(opcode, funct3, funct7>>1)`` (6-bit shamt encodings)
    system           ``funct12``                     (+ rd = rs1 = 0 check)
    amo              ``(funct3, funct5)``
    ==============  ========================================================

    OP-IMM-32 shift immediates constrain the full 7-bit funct7 exactly like
    R-type encodings do, so they share the R table (their opcodes are
    disjoint from the R-type opcodes).
    """
    opcode_only: Dict[int, InstrSpec] = {}
    simple: Dict[Tuple[int, int], InstrSpec] = {}
    r_table: Dict[Tuple[int, int, int], InstrSpec] = {}
    shift64: Dict[Tuple[int, int, int], InstrSpec] = {}
    system_f12: Dict[int, InstrSpec] = {}
    amo: Dict[Tuple[int, int], InstrSpec] = {}
    fence_i: Optional[InstrSpec] = None

    for spec in SPECS.values():
        fmt = spec.fmt
        if spec.funct3 is None:
            opcode_only[spec.opcode] = spec
        elif fmt is InstrFormat.R:
            r_table[(spec.opcode, spec.funct3, spec.funct7)] = spec
        elif fmt is InstrFormat.I_SHIFT:
            if spec.opcode == OPCODE_OP_IMM_32:
                r_table[(spec.opcode, spec.funct3, spec.funct7)] = spec
            else:
                shift64[(spec.opcode, spec.funct3, spec.funct7 >> 1)] = spec
        elif fmt is InstrFormat.SYSTEM:
            system_f12[spec.funct12] = spec
        elif fmt is InstrFormat.AMO:
            amo[(spec.funct3, spec.funct5)] = spec
        elif fmt is InstrFormat.FENCE and spec.mnemonic == "fence.i":
            fence_i = spec
        else:
            key = (spec.opcode, spec.funct3)
            if key in simple:  # pragma: no cover - spec-table invariant
                raise RuntimeError(f"ambiguous decode key {key}")
            simple[key] = spec
    return opcode_only, simple, r_table, shift64, system_f12, amo, fence_i


(_OPCODE_ONLY, _SIMPLE, _R_TABLE, _SHIFT64,
 _SYSTEM_F12, _AMO, _FENCE_I) = _build_tables()


def _decode_fields(word: int) -> Tuple[int, int, int, int, int, int]:
    opcode = get_bits(word, 6, 0)
    rd = get_bits(word, 11, 7)
    funct3 = get_bits(word, 14, 12)
    rs1 = get_bits(word, 19, 15)
    rs2 = get_bits(word, 24, 20)
    funct7 = get_bits(word, 31, 25)
    return opcode, rd, funct3, rs1, rs2, funct7


def _imm_i(word: int) -> int:
    return sign_extend(get_bits(word, 31, 20), 12)


def _imm_s(word: int) -> int:
    value = (get_bits(word, 31, 25) << 5) | get_bits(word, 11, 7)
    return sign_extend(value, 12)


def _imm_b(word: int) -> int:
    value = (
        (get_bit(word, 31) << 12)
        | (get_bit(word, 7) << 11)
        | (get_bits(word, 30, 25) << 5)
        | (get_bits(word, 11, 8) << 1)
    )
    return sign_extend(value, 13)


def _imm_u(word: int) -> int:
    return get_bits(word, 31, 12)


def _imm_j(word: int) -> int:
    value = (
        (get_bit(word, 31) << 20)
        | (get_bits(word, 19, 12) << 12)
        | (get_bit(word, 20) << 11)
        | (get_bits(word, 30, 21) << 1)
    )
    return sign_extend(value, 21)


def _match_spec(word: int) -> Optional[InstrSpec]:
    opcode = word & 0x7F
    spec = _OPCODE_ONLY.get(opcode)
    if spec is not None:
        return spec
    funct3 = (word >> 12) & 0x7
    spec = _SIMPLE.get((opcode, funct3))
    if spec is not None:
        return spec
    spec = _R_TABLE.get((opcode, funct3, (word >> 25) & 0x7F))
    if spec is not None:
        return spec
    spec = _SHIFT64.get((opcode, funct3, (word >> 26) & 0x3F))
    if spec is not None:
        return spec
    if opcode == OPCODE_SYSTEM:
        spec = _SYSTEM_F12.get((word >> 20) & 0xFFF)
        if spec is not None and spec.funct3 == funct3:
            # Reserved encodings of ECALL/EBREAK/MRET/WFI require rd = rs1 = 0.
            if (word >> 7) & 0x1F == 0 and (word >> 15) & 0x1F == 0:
                return spec
        return None
    if opcode == OPCODE_AMO:
        return _AMO.get((funct3, (word >> 27) & 0x1F))
    if opcode == OPCODE_MISC_MEM and _FENCE_I is not None \
            and funct3 == _FENCE_I.funct3:
        # FENCE.I requires rd = rs1 = 0 in the base encoding.
        if (word >> 7) & 0x1F == 0 and (word >> 15) & 0x1F == 0:
            return _FENCE_I
        return None
    return None


def _decode_uncached(word: int) -> Instruction:
    spec = _match_spec(word)
    if spec is None:
        return Instruction.illegal(word)

    opcode, rd, funct3, rs1, rs2, funct7 = _decode_fields(word)
    fmt = spec.fmt
    if fmt is InstrFormat.R:
        return Instruction(spec.mnemonic, rd=rd, rs1=rs1, rs2=rs2)
    if fmt is InstrFormat.I:
        return Instruction(spec.mnemonic, rd=rd, rs1=rs1, imm=_imm_i(word))
    if fmt is InstrFormat.I_SHIFT:
        width = 0x1F if spec.opcode == OPCODE_OP_IMM_32 else 0x3F
        return Instruction(spec.mnemonic, rd=rd, rs1=rs1, imm=get_bits(word, 25, 20) & width)
    if fmt is InstrFormat.S:
        return Instruction(spec.mnemonic, rs1=rs1, rs2=rs2, imm=_imm_s(word))
    if fmt is InstrFormat.B:
        return Instruction(spec.mnemonic, rs1=rs1, rs2=rs2, imm=_imm_b(word))
    if fmt is InstrFormat.U:
        return Instruction(spec.mnemonic, rd=rd, imm=_imm_u(word))
    if fmt is InstrFormat.J:
        return Instruction(spec.mnemonic, rd=rd, imm=_imm_j(word))
    if fmt is InstrFormat.CSR:
        return Instruction(spec.mnemonic, rd=rd, rs1=rs1, csr=get_bits(word, 31, 20))
    if fmt is InstrFormat.CSR_IMM:
        return Instruction(spec.mnemonic, rd=rd, imm=rs1, csr=get_bits(word, 31, 20))
    if fmt is InstrFormat.FENCE:
        return Instruction(spec.mnemonic, rd=rd, rs1=rs1, imm=get_bits(word, 27, 20))
    if fmt is InstrFormat.SYSTEM:
        return Instruction(spec.mnemonic)
    if fmt is InstrFormat.AMO:
        return Instruction(
            spec.mnemonic,
            rd=rd,
            rs1=rs1,
            rs2=rs2,
            aq=get_bit(word, 26),
            rl=get_bit(word, 25),
        )
    raise AssertionError(f"unhandled format {fmt}")  # pragma: no cover


#: Bounded word -> Instruction cache.  Instructions are frozen (and shared
#: between the golden model, all DUTs and the mutation engine), so returning
#: the same object for the same word is safe.  The bound comfortably covers a
#: campaign's working set; on overflow the cache is simply cleared -- cheaper
#: and just as effective as LRU bookkeeping at this size.
_DECODE_CACHE: Dict[int, Instruction] = {}
_DECODE_CACHE_MAX = 1 << 16


def decode_word(word: int) -> Instruction:
    """Decode a 32-bit ``word`` into an :class:`Instruction`.

    Unknown or reserved encodings decode to an ``illegal`` placeholder that
    preserves the raw word.  Results are cached and shared: callers must not
    mutate them (they cannot -- :class:`Instruction` is frozen).
    """
    word &= 0xFFFF_FFFF
    instr = _DECODE_CACHE.get(word)
    if instr is None:
        instr = _decode_uncached(word)
        if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
            _DECODE_CACHE.clear()
        _DECODE_CACHE[word] = instr
    return instr


def clear_decode_cache() -> None:
    """Drop all cached decodes (useful for benchmarks and memory pressure)."""
    _DECODE_CACHE.clear()


def decode_cache_info() -> Dict[str, int]:
    """Current size and capacity of the decode cache."""
    return {"size": len(_DECODE_CACHE), "max_size": _DECODE_CACHE_MAX}


def decode_instruction(word: int) -> Instruction:
    """Alias of :func:`decode_word`."""
    return decode_word(word)


def is_legal_word(word: int) -> bool:
    """Return True if ``word`` decodes to a known (non-illegal) instruction."""
    return _match_spec(word & 0xFFFF_FFFF) is not None
