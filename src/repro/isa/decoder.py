"""32-bit word -> Instruction decoding.

Decoding is the inverse of :mod:`repro.isa.assembler`: every legally encoded
instruction round-trips exactly.  Words that do not match any known
instruction decode to ``Instruction.illegal(word)`` -- they remain first-class
citizens of the fuzzing loop (they execute by raising an illegal-instruction
trap), which matters because bit-level mutation frequently produces them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.encoding import (
    OPCODE_OP_IMM_32,
    SPECS,
    InstrFormat,
    InstrSpec,
)
from repro.isa.instruction import Instruction
from repro.utils.bits import get_bit, get_bits, sign_extend


def _index_specs() -> Dict[int, List[InstrSpec]]:
    index: Dict[int, List[InstrSpec]] = {}
    for spec in SPECS.values():
        index.setdefault(spec.opcode, []).append(spec)
    return index


_SPECS_BY_OPCODE = _index_specs()


def _decode_fields(word: int) -> Tuple[int, int, int, int, int, int]:
    opcode = get_bits(word, 6, 0)
    rd = get_bits(word, 11, 7)
    funct3 = get_bits(word, 14, 12)
    rs1 = get_bits(word, 19, 15)
    rs2 = get_bits(word, 24, 20)
    funct7 = get_bits(word, 31, 25)
    return opcode, rd, funct3, rs1, rs2, funct7


def _imm_i(word: int) -> int:
    return sign_extend(get_bits(word, 31, 20), 12)


def _imm_s(word: int) -> int:
    value = (get_bits(word, 31, 25) << 5) | get_bits(word, 11, 7)
    return sign_extend(value, 12)


def _imm_b(word: int) -> int:
    value = (
        (get_bit(word, 31) << 12)
        | (get_bit(word, 7) << 11)
        | (get_bits(word, 30, 25) << 5)
        | (get_bits(word, 11, 8) << 1)
    )
    return sign_extend(value, 13)


def _imm_u(word: int) -> int:
    return get_bits(word, 31, 12)


def _imm_j(word: int) -> int:
    value = (
        (get_bit(word, 31) << 20)
        | (get_bits(word, 19, 12) << 12)
        | (get_bit(word, 20) << 11)
        | (get_bits(word, 30, 21) << 1)
    )
    return sign_extend(value, 21)


def _match_spec(word: int) -> Optional[InstrSpec]:
    opcode, rd, funct3, rs1, rs2, funct7 = _decode_fields(word)
    for spec in _SPECS_BY_OPCODE.get(opcode, ()):
        if spec.funct3 is not None and spec.funct3 != funct3:
            continue
        if spec.fmt is InstrFormat.R and spec.funct7 != funct7:
            continue
        if spec.fmt is InstrFormat.I_SHIFT:
            if spec.opcode == OPCODE_OP_IMM_32:
                if spec.funct7 != funct7:
                    continue
            else:
                if (spec.funct7 >> 1) != get_bits(word, 31, 26):
                    continue
        if spec.fmt is InstrFormat.SYSTEM:
            if spec.funct12 != get_bits(word, 31, 20):
                continue
            if rd != 0 or rs1 != 0:
                # Reserved encodings of ECALL/EBREAK/MRET/WFI.
                continue
        if spec.fmt is InstrFormat.AMO and spec.funct5 != get_bits(word, 31, 27):
            continue
        if spec.fmt is InstrFormat.FENCE and spec.mnemonic == "fence.i":
            # FENCE.I requires rd = rs1 = 0 in the base encoding.
            if rd != 0 or rs1 != 0:
                continue
        return spec
    return None


def decode_word(word: int) -> Instruction:
    """Decode a 32-bit ``word`` into an :class:`Instruction`.

    Unknown or reserved encodings decode to an ``illegal`` placeholder that
    preserves the raw word.
    """
    word &= 0xFFFF_FFFF
    spec = _match_spec(word)
    if spec is None:
        return Instruction.illegal(word)

    opcode, rd, funct3, rs1, rs2, funct7 = _decode_fields(word)
    fmt = spec.fmt
    if fmt is InstrFormat.R:
        return Instruction(spec.mnemonic, rd=rd, rs1=rs1, rs2=rs2)
    if fmt is InstrFormat.I:
        return Instruction(spec.mnemonic, rd=rd, rs1=rs1, imm=_imm_i(word))
    if fmt is InstrFormat.I_SHIFT:
        width = 0x1F if spec.opcode == OPCODE_OP_IMM_32 else 0x3F
        return Instruction(spec.mnemonic, rd=rd, rs1=rs1, imm=get_bits(word, 25, 20) & width)
    if fmt is InstrFormat.S:
        return Instruction(spec.mnemonic, rs1=rs1, rs2=rs2, imm=_imm_s(word))
    if fmt is InstrFormat.B:
        return Instruction(spec.mnemonic, rs1=rs1, rs2=rs2, imm=_imm_b(word))
    if fmt is InstrFormat.U:
        return Instruction(spec.mnemonic, rd=rd, imm=_imm_u(word))
    if fmt is InstrFormat.J:
        return Instruction(spec.mnemonic, rd=rd, imm=_imm_j(word))
    if fmt is InstrFormat.CSR:
        return Instruction(spec.mnemonic, rd=rd, rs1=rs1, csr=get_bits(word, 31, 20))
    if fmt is InstrFormat.CSR_IMM:
        return Instruction(spec.mnemonic, rd=rd, imm=rs1, csr=get_bits(word, 31, 20))
    if fmt is InstrFormat.FENCE:
        return Instruction(spec.mnemonic, rd=rd, rs1=rs1, imm=get_bits(word, 27, 20))
    if fmt is InstrFormat.SYSTEM:
        return Instruction(spec.mnemonic)
    if fmt is InstrFormat.AMO:
        return Instruction(
            spec.mnemonic,
            rd=rd,
            rs1=rs1,
            rs2=rs2,
            aq=get_bit(word, 26),
            rl=get_bit(word, 25),
        )
    raise AssertionError(f"unhandled format {fmt}")  # pragma: no cover


def decode_instruction(word: int) -> Instruction:
    """Alias of :func:`decode_word`."""
    return decode_word(word)


def is_legal_word(word: int) -> bool:
    """Return True if ``word`` decodes to a known (non-illegal) instruction."""
    return _match_spec(word & 0xFFFF_FFFF) is not None
