"""Instruction -> 32-bit word encoding.

The encoding follows the RISC-V unprivileged specification.  The
``Instruction.imm`` field convention per format is:

* I/S/B formats: signed immediate (byte offset for branches).
* U format: the raw 20-bit ``imm[31:12]`` field (the execution stage shifts).
* J format: signed 21-bit byte offset.
* I_SHIFT: shift amount (0-63, or 0-31 for the ``*w`` variants).
* CSR_IMM: 5-bit zero-extended immediate.
* FENCE: the 8-bit predecessor/successor set.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.isa.encoding import (
    OPCODE_OP_IMM_32,
    InstrFormat,
    InstrSpec,
    spec_for,
)
from repro.isa.instruction import Instruction
from repro.utils.bits import get_bit, get_bits


def _encode_r(spec: InstrSpec, instr: Instruction) -> int:
    return (
        (spec.funct7 << 25)
        | ((instr.rs2 & 0x1F) << 20)
        | ((instr.rs1 & 0x1F) << 15)
        | (spec.funct3 << 12)
        | ((instr.rd & 0x1F) << 7)
        | spec.opcode
    )


def _encode_i(spec: InstrSpec, instr: Instruction) -> int:
    imm = instr.imm & 0xFFF
    return (
        (imm << 20)
        | ((instr.rs1 & 0x1F) << 15)
        | (spec.funct3 << 12)
        | ((instr.rd & 0x1F) << 7)
        | spec.opcode
    )


def _encode_i_shift(spec: InstrSpec, instr: Instruction) -> int:
    if spec.opcode == OPCODE_OP_IMM_32:
        shamt = instr.imm & 0x1F
        upper = spec.funct7 << 25
    else:
        shamt = instr.imm & 0x3F
        upper = (spec.funct7 >> 1) << 26
    return (
        upper
        | (shamt << 20)
        | ((instr.rs1 & 0x1F) << 15)
        | (spec.funct3 << 12)
        | ((instr.rd & 0x1F) << 7)
        | spec.opcode
    )


def _encode_s(spec: InstrSpec, instr: Instruction) -> int:
    imm = instr.imm & 0xFFF
    return (
        (get_bits(imm, 11, 5) << 25)
        | ((instr.rs2 & 0x1F) << 20)
        | ((instr.rs1 & 0x1F) << 15)
        | (spec.funct3 << 12)
        | (get_bits(imm, 4, 0) << 7)
        | spec.opcode
    )


def _encode_b(spec: InstrSpec, instr: Instruction) -> int:
    imm = instr.imm & 0x1FFF
    return (
        (get_bit(imm, 12) << 31)
        | (get_bits(imm, 10, 5) << 25)
        | ((instr.rs2 & 0x1F) << 20)
        | ((instr.rs1 & 0x1F) << 15)
        | (spec.funct3 << 12)
        | (get_bits(imm, 4, 1) << 8)
        | (get_bit(imm, 11) << 7)
        | spec.opcode
    )


def _encode_u(spec: InstrSpec, instr: Instruction) -> int:
    return ((instr.imm & 0xFFFFF) << 12) | ((instr.rd & 0x1F) << 7) | spec.opcode


def _encode_j(spec: InstrSpec, instr: Instruction) -> int:
    imm = instr.imm & 0x1F_FFFF
    return (
        (get_bit(imm, 20) << 31)
        | (get_bits(imm, 10, 1) << 21)
        | (get_bit(imm, 11) << 20)
        | (get_bits(imm, 19, 12) << 12)
        | ((instr.rd & 0x1F) << 7)
        | spec.opcode
    )


def _encode_csr(spec: InstrSpec, instr: Instruction) -> int:
    return (
        ((instr.csr & 0xFFF) << 20)
        | ((instr.rs1 & 0x1F) << 15)
        | (spec.funct3 << 12)
        | ((instr.rd & 0x1F) << 7)
        | spec.opcode
    )


def _encode_csr_imm(spec: InstrSpec, instr: Instruction) -> int:
    return (
        ((instr.csr & 0xFFF) << 20)
        | ((instr.imm & 0x1F) << 15)
        | (spec.funct3 << 12)
        | ((instr.rd & 0x1F) << 7)
        | spec.opcode
    )


def _encode_fence(spec: InstrSpec, instr: Instruction) -> int:
    return (
        ((instr.imm & 0xFF) << 20)
        | ((instr.rs1 & 0x1F) << 15)
        | (spec.funct3 << 12)
        | ((instr.rd & 0x1F) << 7)
        | spec.opcode
    )


def _encode_system(spec: InstrSpec, instr: Instruction) -> int:
    return (spec.funct12 << 20) | (spec.funct3 << 12) | spec.opcode


def _encode_amo(spec: InstrSpec, instr: Instruction) -> int:
    funct7 = (spec.funct5 << 2) | ((instr.aq & 1) << 1) | (instr.rl & 1)
    return (
        (funct7 << 25)
        | ((instr.rs2 & 0x1F) << 20)
        | ((instr.rs1 & 0x1F) << 15)
        | (spec.funct3 << 12)
        | ((instr.rd & 0x1F) << 7)
        | spec.opcode
    )


_ENCODERS = {
    InstrFormat.R: _encode_r,
    InstrFormat.I: _encode_i,
    InstrFormat.I_SHIFT: _encode_i_shift,
    InstrFormat.S: _encode_s,
    InstrFormat.B: _encode_b,
    InstrFormat.U: _encode_u,
    InstrFormat.J: _encode_j,
    InstrFormat.CSR: _encode_csr,
    InstrFormat.CSR_IMM: _encode_csr_imm,
    InstrFormat.FENCE: _encode_fence,
    InstrFormat.SYSTEM: _encode_system,
    InstrFormat.AMO: _encode_amo,
}


def encode_instruction(instr: Instruction) -> int:
    """Encode ``instr`` into its 32-bit instruction word."""
    if instr.is_illegal:
        if instr.raw is None:
            raise ValueError("illegal instruction without a raw word")
        return instr.raw & 0xFFFF_FFFF
    spec = spec_for(instr.mnemonic)
    return _ENCODERS[spec.fmt](spec, instr) & 0xFFFF_FFFF


def assemble(instr: Instruction) -> int:
    """Alias of :func:`encode_instruction`."""
    return encode_instruction(instr)


def assemble_program(instructions: Iterable[Instruction]) -> List[int]:
    """Encode a sequence of instructions into 32-bit words."""
    return [encode_instruction(i) for i in instructions]
