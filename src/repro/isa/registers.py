"""Integer register file naming for RV64.

The architectural register file has 32 general-purpose 64-bit registers,
``x0`` .. ``x31``, where ``x0`` is hard-wired to zero.  ABI names are used
by the disassembler and in human-readable traces.
"""

from __future__ import annotations

NUM_REGISTERS = 32

#: ABI register names indexed by register number.
REG_ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

_ABI_TO_INDEX = {name: idx for idx, name in enumerate(REG_ABI_NAMES)}
_ABI_TO_INDEX["fp"] = 8  # fp is an alias for s0


def abi_name(index: int) -> str:
    """Return the ABI name of register ``index`` (``x0`` -> ``zero``)."""
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {index}")
    return REG_ABI_NAMES[index]


def register_index(name: str) -> int:
    """Resolve a register name (``x7``, ``t2``, ``fp`` ...) to its index."""
    name = name.strip().lower()
    if name in _ABI_TO_INDEX:
        return _ABI_TO_INDEX[name]
    if name.startswith("x"):
        try:
            index = int(name[1:])
        except ValueError as exc:
            raise ValueError(f"unknown register name: {name!r}") from exc
        if 0 <= index < NUM_REGISTERS:
            return index
    raise ValueError(f"unknown register name: {name!r}")
