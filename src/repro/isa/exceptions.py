"""RISC-V synchronous exception (trap) causes.

The golden model and the DUT models raise :class:`Trap` internally when an
instruction faults; the trap is then *architecturally committed* (mcause /
mepc / mtval updated, pc redirected to mtvec) rather than propagated as a
Python error, mirroring how a real core behaves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TrapCause(enum.IntEnum):
    """Machine-cause register (mcause) exception codes."""

    INSTRUCTION_ADDRESS_MISALIGNED = 0
    INSTRUCTION_ACCESS_FAULT = 1
    ILLEGAL_INSTRUCTION = 2
    BREAKPOINT = 3
    LOAD_ADDRESS_MISALIGNED = 4
    LOAD_ACCESS_FAULT = 5
    STORE_ADDRESS_MISALIGNED = 6
    STORE_ACCESS_FAULT = 7
    ECALL_FROM_U = 8
    ECALL_FROM_S = 9
    ECALL_FROM_M = 11


@dataclass(frozen=True)
class Trap(Exception):
    """A synchronous exception raised while executing one instruction."""

    cause: TrapCause
    tval: int = 0

    def __str__(self) -> str:
        return f"Trap({self.cause.name}, tval=0x{self.tval:x})"
