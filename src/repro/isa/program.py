"""Test-program container.

A :class:`TestProgram` is the unit of work of the fuzzers: a finite sequence
of instructions placed at a base address, together with provenance metadata
(which seed / arm it descends from and which mutation created it).  Programs
are immutable; the mutation engine produces new programs.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

from repro.isa.assembler import assemble_program
from repro.isa.disassembler import disassemble_program
from repro.isa.instruction import Instruction

#: Default load address of test programs (start of modelled DRAM).  The DRAM
#: window is placed below 2 GiB so that ``lui``-built addresses stay positive
#: under RV64 sign extension.
DEFAULT_BASE_ADDRESS = 0x4000_0000

#: stack of active id counters; the base entry is the process-global one.
_id_counters = [itertools.count()]


def next_program_id(prefix: str = "t") -> str:
    """Return a fresh program identifier from the innermost id scope.

    Outside any :class:`program_id_scope` the ids are process-unique.
    Inside one they restart from 0, which is what makes the ids recorded
    in campaign results (e.g. ``BugDetection.program_id``) functions of
    the campaign alone rather than of interpreter history -- a
    prerequisite for the serial-vs-parallel bit-identical guarantee of
    the execution subsystem.
    """
    return f"{prefix}{next(_id_counters[-1])}"


class program_id_scope:
    """Context manager isolating program-id numbering (restarts at 0).

    Scopes nest; ids are only unique *within* one scope, so never compare
    program ids across scopes (campaign trials each get their own).
    """

    def __enter__(self) -> "program_id_scope":
        _id_counters.append(itertools.count())
        return self

    def __exit__(self, *exc_info) -> None:
        _id_counters.pop()


@dataclass(frozen=True)
class TestProgram:
    """An immutable sequence of instructions plus fuzzing provenance.

    Attributes:
        instructions: the program body, executed in order from ``base_address``.
        base_address: load address of the first instruction.
        program_id: unique identifier assigned at creation time.
        parent_id: id of the program this one was mutated from (seeds: ``None``).
        seed_id: id of the ancestral seed program.
        generation: mutation depth (seeds are generation 0).
        mutation_op: name of the mutation operator that produced this program.
    """

    instructions: Tuple[Instruction, ...]
    base_address: int = DEFAULT_BASE_ADDRESS
    program_id: str = field(default_factory=next_program_id)
    parent_id: Optional[str] = None
    seed_id: Optional[str] = None
    generation: int = 0
    mutation_op: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "instructions", tuple(self.instructions))
        if self.seed_id is None:
            object.__setattr__(self, "seed_id", self.program_id)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def words(self) -> Tuple[int, ...]:
        """Encode the program into 32-bit instruction words.

        The encoding is memoised: programs are immutable and every run
        (golden *and* DUT) needs the words, so assembling once per program
        keeps the assembler off the fuzzing hot path.
        """
        cached = self.__dict__.get("_words")
        if cached is None:
            cached = tuple(assemble_program(self.instructions))
            object.__setattr__(self, "_words", cached)
        return cached

    def fingerprint(self) -> str:
        """Content hash of the encoded program (provenance-independent)."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            digest = hashlib.sha256()
            for word in self.words():
                digest.update(word.to_bytes(4, "little"))
            digest.update(self.base_address.to_bytes(8, "little"))
            cached = digest.hexdigest()[:16]
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def end_address(self) -> int:
        """Address of the first byte past the last instruction."""
        return self.base_address + 4 * len(self.instructions)

    def with_instructions(
        self,
        instructions: Sequence[Instruction],
        mutation_op: Optional[str] = None,
    ) -> "TestProgram":
        """Return a child program with ``instructions`` and updated lineage."""
        return TestProgram(
            instructions=tuple(instructions),
            base_address=self.base_address,
            program_id=next_program_id(),
            parent_id=self.program_id,
            seed_id=self.seed_id,
            generation=self.generation + 1,
            mutation_op=mutation_op,
        )

    def listing(self) -> str:
        """Return a human-readable disassembly listing."""
        return "\n".join(disassemble_program(self.instructions, self.base_address))
