"""The :class:`Instruction` value type.

An :class:`Instruction` is a *decoded* view of one 32-bit instruction word:
a mnemonic plus operand fields.  It is intentionally a plain dataclass so
that mutation operators can copy-and-modify instructions cheaply and tests
can construct them literally.  It is frozen *and* slotted: decode results
are cached and shared between the golden model, the DUT models and the
mutation engine, so instances must be immutable, and the slots keep
per-instruction allocation small on the fuzzing hot path.

A special mnemonic ``"illegal"`` represents an instruction word that does
not decode to any known instruction (the natural product of bit-level
mutation); the raw word is preserved so it can still be re-encoded, executed
(raising an illegal-instruction trap) and mutated further.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

ILLEGAL_MNEMONIC = "illegal"


@dataclass(frozen=True, slots=True)
class Instruction:
    """A single decoded RISC-V instruction.

    Operand fields not used by the instruction's format are left at their
    defaults and ignored by the assembler.

    Attributes:
        mnemonic: canonical lower-case mnemonic, or ``"illegal"``.
        rd: destination register index (0-31).
        rs1: first source register index (0-31).
        rs2: second source register index (0-31).
        imm: immediate value (sign semantics depend on the format).
        csr: CSR address for Zicsr instructions.
        raw: the raw 32-bit word for ``"illegal"`` instructions; ``None``
            for regular instructions (their encoding is derived on demand).
        aq: acquire bit for atomics.
        rl: release bit for atomics.
    """

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    csr: int = 0
    raw: Optional[int] = None
    aq: int = 0
    rl: int = 0

    @classmethod
    def illegal(cls, word: int) -> "Instruction":
        """Build an illegal-instruction placeholder for ``word``."""
        return cls(mnemonic=ILLEGAL_MNEMONIC, raw=word & 0xFFFF_FFFF)

    @property
    def is_illegal(self) -> bool:
        """Whether this is an undecodable (illegal) instruction word."""
        return self.mnemonic == ILLEGAL_MNEMONIC

    def with_fields(self, **changes) -> "Instruction":
        """Return a copy of the instruction with ``changes`` applied."""
        return replace(self, **changes)

    def __str__(self) -> str:  # pragma: no cover - convenience only
        from repro.isa.disassembler import disassemble

        return disassemble(self)
