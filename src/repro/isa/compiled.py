"""Per-program compiled traces: pre-decoded threaded code for the executors.

Every run of a :class:`~repro.isa.program.TestProgram` -- golden *and* every
DUT -- used to re-fetch and re-decode each instruction word on every step.
Both are deterministic functions of the immutable program, so this module
compiles a program **once** into a threaded-code list of per-instruction
entries ``(word, instruction, handler)``:

* ``word`` is the 32-bit encoding exactly as the memory image holds it (what
  legacy ``fetch_word`` returned),
* ``instruction`` is the shared decode result (the same object the
  word->Instruction cache in :mod:`repro.isa.decoder` hands the legacy
  path), and
* ``handler`` is the executor's per-mnemonic execute closure, resolved at
  compile time (``None`` for illegal words, which take the trap path).

The shared run loop in :mod:`repro.sim.golden` indexes this list by
``(pc - base) >> 2`` instead of fetching and decoding, falling back to the
generic ``Executor.step`` for anything a compiled entry cannot represent:
misaligned in-range program counters, and words a store has overwritten
since load (self-modifying programs are legal here -- the ``mem.region.code``
coverage point exists precisely because stores may hit the code window).

Compiled traces are cached in a bounded process-global LRU keyed by the
program *fingerprint* (content hash of words + base address), so trials
that regenerate identical programs -- bug-set sweeps, MABFuzz arms
replaying seeds, duplicate mutants -- share one compilation per process,
and the execution subsystem's ``--cache-entries`` knob re-bounds it
together with the golden/DUT run caches (see ``docs/performance.md``).

On top of the per-entry trace this module builds **superblocks**: maximal
straight-line runs of compiled entries, fused so the executors can retire a
whole run in one tight loop instead of paying the shared run loop's
per-step dispatch.  A superblock ends at the first entry that can redirect
or halt execution (branches, jumps, system instructions, CSR accesses) or
that has no handler (illegal words trap through the generic path).  Every
instruction *inside* a block therefore falls through to ``pc + 4`` -- even
when it traps, because the harness convention resumes at the next
instruction -- which is exactly what lets the fused loops defer the ``pc``
write to the block exit.  Blocks are built lazily per entry index (only
leaders that execution actually reaches pay the build) and cached per
program in a second fingerprint-keyed LRU bounded by the same
``--cache-entries`` knob (``superblock_*`` counters in
``process_cache_stats``).  See ``docs/performance.md`` for the formation
rules and the run loop's fallback cases.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import List, Dict, Optional, Tuple

from repro.isa.decoder import decode_word
from repro.isa.encoding import InstrClass, spec_for
from repro.isa.exceptions import Trap, TrapCause
from repro.isa.program import TestProgram

#: default capacity of the process-global fingerprint-keyed cache; the
#: execution subsystem re-bounds it per batch together with the run caches.
DEFAULT_COMPILED_ENTRIES = 4096


class CompiledProgram:
    """A program's threaded-code form: one ``(word, instr, handler)`` per slot."""

    __slots__ = ("base_address", "end_address", "entries")

    def __init__(self, base_address: int, entries: Tuple[Tuple, ...]) -> None:
        self.base_address = base_address
        self.end_address = base_address + 4 * len(entries)
        self.entries = entries

    def __len__(self) -> int:
        return len(self.entries)


def _compile(program: TestProgram) -> CompiledProgram:
    """Pre-decode ``program`` into a :class:`CompiledProgram` (uncached)."""
    # Local import: the ISA layer only reaches into the executor's handler
    # table at compile time, keeping ``import repro.isa`` free of the sim
    # package at module-import time.
    from repro.sim.executor import handler_for

    entries = []
    for word in program.words():
        word &= 0xFFFF_FFFF
        instr = decode_word(word)
        entries.append((word, instr, handler_for(instr)))
    return CompiledProgram(program.base_address, tuple(entries))


class CompiledTraceCache:
    """Bounded LRU of compiled traces keyed by program fingerprint."""

    def __init__(self, max_entries: int = DEFAULT_COMPILED_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CompiledProgram]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_compile(self, program: TestProgram) -> CompiledProgram:
        key = program.fingerprint()
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        compiled = _compile(program)
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = compiled
        return compiled

    def configure(self, max_entries: int) -> None:
        """Re-bound the cache, spilling LRU entries down to the new capacity."""
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "entries": len(self._entries),
                "max_entries": self.max_entries}

    def __len__(self) -> int:
        return len(self._entries)


#: the process-global compiled-trace cache (one per worker process).
_PROCESS_COMPILED_CACHE: Optional[CompiledTraceCache] = None


def process_compiled_cache() -> CompiledTraceCache:
    """The calling process's shared compiled-trace cache (created lazily)."""
    global _PROCESS_COMPILED_CACHE
    if _PROCESS_COMPILED_CACHE is None:
        _PROCESS_COMPILED_CACHE = CompiledTraceCache()
    return _PROCESS_COMPILED_CACHE


def compile_program(program: TestProgram) -> CompiledProgram:
    """The compiled trace of ``program``, served from the process LRU.

    Deliberately *not* memoised on the program object: live programs (test
    pools, MABFuzz arms) would pin their traces outside the cache bound,
    and the engine's ``--cache-entries`` knob could no longer reclaim the
    memory.  A lookup is one memoised ``fingerprint()`` read plus an LRU
    dict get -- negligible next to a run.
    """
    return process_compiled_cache().get_or_compile(program)


def compiled_cache_stats() -> Dict[str, int]:
    """Counters of the process-global compiled-trace cache."""
    return process_compiled_cache().stats()


def configure_compiled_cache(max_entries: Optional[int]) -> None:
    """Re-bound the process cache (``None`` = :data:`DEFAULT_COMPILED_ENTRIES`)."""
    process_compiled_cache().configure(
        DEFAULT_COMPILED_ENTRIES if max_entries is None else max_entries)


# ---------------------------------------------------------------------------
# Superblocks: fused straight-line runs of the compiled trace.
# ---------------------------------------------------------------------------

#: instruction classes that end a superblock.  Branches and jumps redirect
#: the pc; system instructions halt (``ecall``), trap, or redirect
#: (``mret``); CSR instructions read or write machine state the fused
#: loops deliberately leave to the generic step (counter aliases, tracked
#: CSR coverage).  Everything else -- ALU, loads/stores, atomics, fences,
#: mul/div -- commits ``next_pc == pc + 4`` unconditionally, *including*
#: when it traps (the harness convention resumes at the next instruction).
_TERMINATOR_CLASSES = frozenset({
    InstrClass.BRANCH, InstrClass.JUMP, InstrClass.SYSTEM, InstrClass.CSR,
})

#: terminators that may still execute *inside* a block as its final "tail"
#: entry: branches and jumps commit one ordinary record whose ``next_pc``
#: carries the (possibly redirected) target, and on a misaligned-target
#: trap the trap record's ``next_pc`` is ``pc + 4`` -- either way the
#: block exit pc is simply the tail record's ``next_pc``.  System and CSR
#: instructions stay excluded: they read or write machine state (counter
#: CSRs, ``mepc``) that the fused loops batch or do not maintain
#: mid-block.
_TAIL_CLASSES = frozenset({InstrClass.BRANCH, InstrClass.JUMP})

#: minimum entries worth fusing.  Even a one-instruction "block" wins for
#: the instrumented DUT executor: the fused loop replaces the whole
#: per-step hook-dispatch chain (fetch/decode recording, observe hooks,
#: retirement bookkeeping), which costs far more than the block dispatch
#: checks, and isolated straight-line instructions between terminators are
#: common in fuzzed programs (~1/3 of non-terminator steps).
MIN_SUPERBLOCK_LENGTH = 1


def dirty_word_span(mem_addr: int, mem_size: int,
                    base_address: int, end_address: int) -> Optional[Tuple[int, int]]:
    """Code-window word indices ``(first, last)`` a committed store dirtied.

    The single source of range math for self-modification tracking: the
    shared run loop's dirty-word set, the fused superblock loops' abort
    check, and the invalidation tests all call this helper, so a store
    spanning the ``end_address`` boundary or brushing ``base_address``
    from below is clamped identically everywhere.  Returns ``None`` when
    ``[mem_addr, mem_addr + mem_size)`` misses the code window entirely
    (in particular a byte store at ``base_address - 1`` dirties nothing).
    """
    if mem_addr >= end_address or mem_addr + mem_size <= base_address:
        return None
    first = max(mem_addr - base_address, 0) >> 2
    last = (min(mem_addr + mem_size, end_address) - base_address - 1) >> 2
    return first, last


class Superblock:
    """One fused straight-line run of compiled entries.

    Attributes:
        start: word index of the block's first entry in the compiled trace.
        length: number of fused entries.
        base_address / end_address: the owning program's code window, so
            the fused loops can run the dirty-store abort check without
            reaching back to the program.
        word_set: ``frozenset`` of the word indices the block spans; the
            run loop dispatches a block only when this is disjoint from
            the dirty-word set (a store into the middle of a fused block
            must re-fetch every subsequent instruction).
        entries: the compiled ``(word, instr, handler)`` slice -- what the
            golden fused loop iterates.
        tail_redirect: ``True`` when the final entry is a branch or jump
            (:data:`_TAIL_CLASSES`); the block's exit pc is then the tail
            record's ``next_pc`` instead of the fall-through address.
        csr_tail: ``True`` when the final entry is a CSR instruction.  CSR
            reads must observe architecturally exact MINSTRET/MCYCLE, so
            the fused loops flush their batched retirement counters (and
            reset the batch) immediately before executing the tail.
        dut_plan: per-entry execution plan the DUT harness attaches
            lazily on first use (pre-resolved spec/class/register fields
            plus the per-instruction static coverage mask); ``None``
            until then.  The plan is DUT-independent, so one block serves
            every DUT model.
        model_plans: per-model structural-emission plans, keyed by model
            class and attached lazily by ``structural_block_mask``
            overrides.  Coverage bit masks are stable for the life of the
            process and the tables they come from depend only on the
            model class, so a resolved plan list stays valid for as long
            as the block is cached.
    """

    __slots__ = ("start", "length", "base_address", "end_address",
                 "word_set", "entries", "dut_plan", "model_plans",
                 "tail_redirect", "csr_tail")

    def __init__(self, start: int, entries: Tuple[Tuple, ...],
                 base_address: int, end_address: int,
                 tail_redirect: bool = False, csr_tail: bool = False) -> None:
        self.start = start
        self.length = len(entries)
        self.base_address = base_address
        self.end_address = end_address
        self.word_set = frozenset(range(start, start + len(entries)))
        self.entries = entries
        self.dut_plan = None
        self.model_plans = {}
        self.tail_redirect = tail_redirect
        self.csr_tail = csr_tail


#: table sentinel distinguishing "not built yet" from "not fusable" (None).
_UNBUILT = object()


def _illegal_step(executor, instr, pc: int, word: int):
    """Superblock stand-in handler for illegal words.

    Compiled entries carry ``None`` handlers for illegal words and the
    per-step dispatcher raises the illegal-instruction trap itself.  Inside
    a superblock the entry gets this handler instead, so the fused loops'
    existing ``except Trap`` arm commits the identical trap record --
    illegal words are deterministic straight-line entries (trap, fall
    through to pc+4) and no longer terminate block formation.
    """
    raise Trap(TrapCause.ILLEGAL_INSTRUCTION, tval=word)


class ProgramBlocks:
    """Lazily built superblock table of one compiled program.

    ``at(index)`` returns the superblock *leading at* ``index`` (or
    ``None`` when fewer than :data:`MIN_SUPERBLOCK_LENGTH` fusable entries
    start there).  Blocks are built per leader index on first request, so
    a program only pays for the leaders execution actually reaches; blocks
    starting at different indices may overlap (a jump into the middle of
    one straight-line run simply leads its own block).
    """

    __slots__ = ("_compiled", "_table")

    def __init__(self, compiled: CompiledProgram) -> None:
        self._compiled = compiled
        self._table: List[object] = [_UNBUILT] * len(compiled.entries)

    def at(self, index: int) -> Optional[Superblock]:
        block = self._table[index]
        if block is _UNBUILT:
            block = self._build(index)
            self._table[index] = block
        return block

    def _build(self, index: int) -> Optional[Superblock]:
        entries = self._compiled.entries
        count = len(entries)
        stop = index
        tail_redirect = False
        csr_tail = False
        fused_illegal = False
        while stop < count:
            handler = entries[stop][2]
            if handler is None:
                # Illegal word: a deterministic illegal-instruction trap
                # that falls through to pc+4, so it fuses like any other
                # straight-line entry (via _illegal_step below).
                fused_illegal = True
                stop += 1
                continue
            cls = spec_for(entries[stop][1].mnemonic).cls
            if cls in _TERMINATOR_CLASSES:
                if cls in _TAIL_CLASSES:
                    stop += 1  # branch/jump closes the block as its tail
                    tail_redirect = True
                elif cls is InstrClass.CSR:
                    # CSR closes the block as its tail: the fused loops
                    # flush their batched retirement counters right before
                    # it, so its CSR reads/writes are architecturally
                    # exact.  It always falls through (or traps to pc+4),
                    # so no redirect handling is needed.
                    stop += 1
                    csr_tail = True
                break
            stop += 1
        if stop - index < MIN_SUPERBLOCK_LENGTH:
            return None
        block_entries = entries[index:stop]
        if fused_illegal:
            block_entries = tuple(
                entry if entry[2] is not None
                else (entry[0], entry[1], _illegal_step)
                for entry in block_entries)
        compiled = self._compiled
        return Superblock(index, block_entries,
                          compiled.base_address, compiled.end_address,
                          tail_redirect, csr_tail)


class SuperblockCache:
    """Bounded LRU of per-program superblock tables keyed by fingerprint."""

    def __init__(self, max_entries: int = DEFAULT_COMPILED_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, ProgramBlocks]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(self, program: TestProgram,
                     compiled: Optional[CompiledProgram] = None) -> ProgramBlocks:
        key = program.fingerprint()
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        if compiled is None:
            compiled = compile_program(program)
        blocks = ProgramBlocks(compiled)
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = blocks
        return blocks

    def configure(self, max_entries: int) -> None:
        """Re-bound the cache, spilling LRU entries down to the new capacity."""
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "entries": len(self._entries),
                "max_entries": self.max_entries}

    def __len__(self) -> int:
        return len(self._entries)


#: the process-global superblock cache (one per worker process).
_PROCESS_SUPERBLOCK_CACHE: Optional[SuperblockCache] = None


def process_superblock_cache() -> SuperblockCache:
    """The calling process's shared superblock cache (created lazily)."""
    global _PROCESS_SUPERBLOCK_CACHE
    if _PROCESS_SUPERBLOCK_CACHE is None:
        _PROCESS_SUPERBLOCK_CACHE = SuperblockCache()
    return _PROCESS_SUPERBLOCK_CACHE


def superblocks_for(program: TestProgram,
                    compiled: Optional[CompiledProgram] = None) -> ProgramBlocks:
    """The superblock table of ``program``, served from the process LRU.

    Pass the already-resolved ``compiled`` trace when the caller holds one
    (the run loop does) to skip a redundant compiled-cache lookup on miss.
    """
    return process_superblock_cache().get_or_build(program, compiled)


def superblock_cache_stats() -> Dict[str, int]:
    """Counters of the process-global superblock cache."""
    return process_superblock_cache().stats()


def configure_superblock_cache(max_entries: Optional[int]) -> None:
    """Re-bound the process cache (``None`` = :data:`DEFAULT_COMPILED_ENTRIES`)."""
    process_superblock_cache().configure(
        DEFAULT_COMPILED_ENTRIES if max_entries is None else max_entries)


# Superblock dispatch can be disabled fleet-wide or per process -- the
# per-entry path is the reference semantics, and CI proves a mixed fleet
# (some workers fused, some not) still agrees bit-for-bit.  Worker
# processes read the environment variable at import, so exporting
# ``REPRO_SUPERBLOCKS=0`` before launching a worker opts just that worker
# out; ``set_superblocks_enabled`` flips the current process at runtime
# (benchmarks and the digest-equality tests toggle it around runs).
_SUPERBLOCKS_ENABLED = (
    os.environ.get("REPRO_SUPERBLOCKS", "1").strip().lower()
    not in ("0", "false", "off", "no"))


def superblocks_enabled() -> bool:
    """Whether run loops in this process dispatch fused superblocks."""
    return _SUPERBLOCKS_ENABLED


def set_superblocks_enabled(enabled: bool) -> None:
    """Enable/disable superblock dispatch for this process."""
    global _SUPERBLOCKS_ENABLED
    _SUPERBLOCKS_ENABLED = bool(enabled)
