"""Per-program compiled traces: pre-decoded threaded code for the executors.

Every run of a :class:`~repro.isa.program.TestProgram` -- golden *and* every
DUT -- used to re-fetch and re-decode each instruction word on every step.
Both are deterministic functions of the immutable program, so this module
compiles a program **once** into a threaded-code list of per-instruction
entries ``(word, instruction, handler)``:

* ``word`` is the 32-bit encoding exactly as the memory image holds it (what
  legacy ``fetch_word`` returned),
* ``instruction`` is the shared decode result (the same object the
  word->Instruction cache in :mod:`repro.isa.decoder` hands the legacy
  path), and
* ``handler`` is the executor's per-mnemonic execute closure, resolved at
  compile time (``None`` for illegal words, which take the trap path).

The shared run loop in :mod:`repro.sim.golden` indexes this list by
``(pc - base) >> 2`` instead of fetching and decoding, falling back to the
generic ``Executor.step`` for anything a compiled entry cannot represent:
misaligned in-range program counters, and words a store has overwritten
since load (self-modifying programs are legal here -- the ``mem.region.code``
coverage point exists precisely because stores may hit the code window).

Compiled traces are cached in a bounded process-global LRU keyed by the
program *fingerprint* (content hash of words + base address), so trials
that regenerate identical programs -- bug-set sweeps, MABFuzz arms
replaying seeds, duplicate mutants -- share one compilation per process,
and the execution subsystem's ``--cache-entries`` knob re-bounds it
together with the golden/DUT run caches (see ``docs/performance.md``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.isa.decoder import decode_word
from repro.isa.program import TestProgram

#: default capacity of the process-global fingerprint-keyed cache; the
#: execution subsystem re-bounds it per batch together with the run caches.
DEFAULT_COMPILED_ENTRIES = 4096


class CompiledProgram:
    """A program's threaded-code form: one ``(word, instr, handler)`` per slot."""

    __slots__ = ("base_address", "end_address", "entries")

    def __init__(self, base_address: int, entries: Tuple[Tuple, ...]) -> None:
        self.base_address = base_address
        self.end_address = base_address + 4 * len(entries)
        self.entries = entries

    def __len__(self) -> int:
        return len(self.entries)


def _compile(program: TestProgram) -> CompiledProgram:
    """Pre-decode ``program`` into a :class:`CompiledProgram` (uncached)."""
    # Local import: the ISA layer only reaches into the executor's handler
    # table at compile time, keeping ``import repro.isa`` free of the sim
    # package at module-import time.
    from repro.sim.executor import handler_for

    entries = []
    for word in program.words():
        word &= 0xFFFF_FFFF
        instr = decode_word(word)
        entries.append((word, instr, handler_for(instr)))
    return CompiledProgram(program.base_address, tuple(entries))


class CompiledTraceCache:
    """Bounded LRU of compiled traces keyed by program fingerprint."""

    def __init__(self, max_entries: int = DEFAULT_COMPILED_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CompiledProgram]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_compile(self, program: TestProgram) -> CompiledProgram:
        key = program.fingerprint()
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        compiled = _compile(program)
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = compiled
        return compiled

    def configure(self, max_entries: int) -> None:
        """Re-bound the cache, spilling LRU entries down to the new capacity."""
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "entries": len(self._entries),
                "max_entries": self.max_entries}

    def __len__(self) -> int:
        return len(self._entries)


#: the process-global compiled-trace cache (one per worker process).
_PROCESS_COMPILED_CACHE: Optional[CompiledTraceCache] = None


def process_compiled_cache() -> CompiledTraceCache:
    """The calling process's shared compiled-trace cache (created lazily)."""
    global _PROCESS_COMPILED_CACHE
    if _PROCESS_COMPILED_CACHE is None:
        _PROCESS_COMPILED_CACHE = CompiledTraceCache()
    return _PROCESS_COMPILED_CACHE


def compile_program(program: TestProgram) -> CompiledProgram:
    """The compiled trace of ``program``, served from the process LRU.

    Deliberately *not* memoised on the program object: live programs (test
    pools, MABFuzz arms) would pin their traces outside the cache bound,
    and the engine's ``--cache-entries`` knob could no longer reclaim the
    memory.  A lookup is one memoised ``fingerprint()`` read plus an LRU
    dict get -- negligible next to a run.
    """
    return process_compiled_cache().get_or_compile(program)


def compiled_cache_stats() -> Dict[str, int]:
    """Counters of the process-global compiled-trace cache."""
    return process_compiled_cache().stats()


def configure_compiled_cache(max_entries: Optional[int]) -> None:
    """Re-bound the process cache (``None`` = :data:`DEFAULT_COMPILED_ENTRIES`)."""
    process_compiled_cache().configure(
        DEFAULT_COMPILED_ENTRIES if max_entries is None else max_entries)
