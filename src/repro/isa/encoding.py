"""Instruction formats, opcode tables and the full instruction-spec table.

The modelled ISA is RV64IM + Zicsr + Zifencei + a subset of the A extension
(LR/SC and the common AMOs), which is the subset exercised by the paper's
seven vulnerabilities and by TheHuzz's instruction generator.

Every instruction the library knows about has an :class:`InstrSpec` entry in
:data:`SPECS`, keyed by mnemonic.  The assembler, decoder, disassembler,
golden model, DUT decode stages and the mutation engine all consult this one
table, so extending the ISA is a single-file change.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class InstrFormat(enum.Enum):
    """RISC-V encoding formats (plus CSR/shift/system sub-formats)."""

    R = "R"
    I = "I"
    I_SHIFT = "I_SHIFT"      # shift-immediate: shamt in imm[5:0]
    S = "S"
    B = "B"
    U = "U"
    J = "J"
    CSR = "CSR"              # CSRRW/CSRRS/CSRRC: rs1 is a register
    CSR_IMM = "CSR_IMM"      # CSRRWI/...: rs1 field is a 5-bit immediate
    FENCE = "FENCE"          # FENCE / FENCE.I
    SYSTEM = "SYSTEM"        # ECALL / EBREAK / MRET / WFI (funct12 encoded)
    AMO = "AMO"              # atomics: funct5 + aq/rl in funct7


class InstrClass(enum.Enum):
    """Coarse functional class, used by coverage, generation and mutation."""

    ARITH = "arith"
    LOGIC = "logic"
    SHIFT = "shift"
    COMPARE = "compare"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CSR = "csr"
    SYSTEM = "system"
    FENCE = "fence"
    ATOMIC = "atomic"


# Major opcodes (bits [6:0] of the instruction word).
OPCODE_LUI = 0x37
OPCODE_AUIPC = 0x17
OPCODE_JAL = 0x6F
OPCODE_JALR = 0x67
OPCODE_BRANCH = 0x63
OPCODE_LOAD = 0x03
OPCODE_STORE = 0x23
OPCODE_OP_IMM = 0x13
OPCODE_OP = 0x33
OPCODE_OP_IMM_32 = 0x1B
OPCODE_OP_32 = 0x3B
OPCODE_MISC_MEM = 0x0F
OPCODE_SYSTEM = 0x73
OPCODE_AMO = 0x2F


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one instruction.

    Attributes:
        mnemonic: canonical lower-case mnemonic (e.g. ``"addi"``).
        fmt: encoding format.
        opcode: major opcode (bits [6:0]).
        funct3: bits [14:12], or ``None`` when unused (LUI/AUIPC/JAL).
        funct7: bits [31:25] for R-type / shift instructions, ``None`` otherwise.
        funct12: bits [31:20] for SYSTEM instructions without operands.
        funct5: bits [31:27] for AMO instructions.
        cls: coarse functional class.
        extension: ISA extension the instruction belongs to ("I", "M", "A",
            "Zicsr", "Zifencei").
        alu_op: canonical ALU operation name ("add", "sraw", ...) resolved at
            spec-build time for ALU-class instructions (``None`` otherwise).
            Immediate forms map onto their register form (``addi`` -> ``add``)
            so the executor never does per-step string surgery.
        alu_src_imm: whether the second ALU operand comes from the immediate
            field rather than ``rs2``.
    """

    mnemonic: str
    fmt: InstrFormat
    opcode: int
    funct3: Optional[int] = None
    funct7: Optional[int] = None
    funct12: Optional[int] = None
    funct5: Optional[int] = None
    cls: InstrClass = InstrClass.ARITH
    extension: str = "I"
    alu_op: Optional[str] = None
    alu_src_imm: bool = False

    @property
    def writes_rd(self) -> bool:
        """Whether the instruction architecturally writes a destination register."""
        return self.fmt in (
            InstrFormat.R,
            InstrFormat.I,
            InstrFormat.I_SHIFT,
            InstrFormat.U,
            InstrFormat.J,
            InstrFormat.CSR,
            InstrFormat.CSR_IMM,
            InstrFormat.AMO,
        )

    @property
    def reads_rs1(self) -> bool:
        return self.fmt in (
            InstrFormat.R,
            InstrFormat.I,
            InstrFormat.I_SHIFT,
            InstrFormat.S,
            InstrFormat.B,
            InstrFormat.CSR,
            InstrFormat.AMO,
        )

    @property
    def reads_rs2(self) -> bool:
        return self.fmt in (InstrFormat.R, InstrFormat.S, InstrFormat.B, InstrFormat.AMO)


#: ALU-class instruction classes (everything dispatched through an ALU op).
ALU_CLASSES = (InstrClass.ARITH, InstrClass.LOGIC, InstrClass.SHIFT,
               InstrClass.COMPARE, InstrClass.MUL, InstrClass.DIV)

#: Immediate ALU mnemonics -> their canonical register-form operation.
_IMM_ALU_CANONICAL = {
    "addi": "add", "slti": "slt", "sltiu": "sltu", "xori": "xor",
    "ori": "or", "andi": "and", "slli": "sll", "srli": "srl",
    "srai": "sra", "addiw": "addw", "slliw": "sllw",
    "srliw": "srlw", "sraiw": "sraw",
}


def _resolve_alu_op(mnemonic: str, fmt: InstrFormat,
                    cls: InstrClass) -> Tuple[Optional[str], bool]:
    """Resolve the canonical ALU op and operand source once, at build time."""
    if cls not in ALU_CLASSES or mnemonic in ("lui", "auipc"):
        return None, False
    if fmt in (InstrFormat.I, InstrFormat.I_SHIFT):
        return _IMM_ALU_CANONICAL.get(mnemonic, mnemonic), True
    return mnemonic, False


def _spec(
    mnemonic: str,
    fmt: InstrFormat,
    opcode: int,
    cls: InstrClass,
    extension: str = "I",
    funct3: Optional[int] = None,
    funct7: Optional[int] = None,
    funct12: Optional[int] = None,
    funct5: Optional[int] = None,
) -> InstrSpec:
    alu_op, alu_src_imm = _resolve_alu_op(mnemonic, fmt, cls)
    return InstrSpec(
        mnemonic=mnemonic,
        fmt=fmt,
        opcode=opcode,
        funct3=funct3,
        funct7=funct7,
        funct12=funct12,
        funct5=funct5,
        cls=cls,
        extension=extension,
        alu_op=alu_op,
        alu_src_imm=alu_src_imm,
    )


def _build_specs() -> Dict[str, InstrSpec]:
    specs: List[InstrSpec] = []
    F, C = InstrFormat, InstrClass

    # --- RV64I upper-immediate / jumps ---------------------------------------
    specs.append(_spec("lui", F.U, OPCODE_LUI, C.ARITH))
    specs.append(_spec("auipc", F.U, OPCODE_AUIPC, C.ARITH))
    specs.append(_spec("jal", F.J, OPCODE_JAL, C.JUMP))
    specs.append(_spec("jalr", F.I, OPCODE_JALR, C.JUMP, funct3=0))

    # --- branches -------------------------------------------------------------
    for mnem, f3 in (("beq", 0), ("bne", 1), ("blt", 4), ("bge", 5),
                     ("bltu", 6), ("bgeu", 7)):
        specs.append(_spec(mnem, F.B, OPCODE_BRANCH, C.BRANCH, funct3=f3))

    # --- loads / stores ---------------------------------------------------------
    for mnem, f3 in (("lb", 0), ("lh", 1), ("lw", 2), ("ld", 3),
                     ("lbu", 4), ("lhu", 5), ("lwu", 6)):
        specs.append(_spec(mnem, F.I, OPCODE_LOAD, C.LOAD, funct3=f3))
    for mnem, f3 in (("sb", 0), ("sh", 1), ("sw", 2), ("sd", 3)):
        specs.append(_spec(mnem, F.S, OPCODE_STORE, C.STORE, funct3=f3))

    # --- OP-IMM -----------------------------------------------------------------
    for mnem, f3, cls in (("addi", 0, C.ARITH), ("slti", 2, C.COMPARE),
                          ("sltiu", 3, C.COMPARE), ("xori", 4, C.LOGIC),
                          ("ori", 6, C.LOGIC), ("andi", 7, C.LOGIC)):
        specs.append(_spec(mnem, F.I, OPCODE_OP_IMM, cls, funct3=f3))
    specs.append(_spec("slli", F.I_SHIFT, OPCODE_OP_IMM, C.SHIFT, funct3=1, funct7=0x00))
    specs.append(_spec("srli", F.I_SHIFT, OPCODE_OP_IMM, C.SHIFT, funct3=5, funct7=0x00))
    specs.append(_spec("srai", F.I_SHIFT, OPCODE_OP_IMM, C.SHIFT, funct3=5, funct7=0x20))

    # --- OP-IMM-32 --------------------------------------------------------------
    specs.append(_spec("addiw", F.I, OPCODE_OP_IMM_32, C.ARITH, funct3=0))
    specs.append(_spec("slliw", F.I_SHIFT, OPCODE_OP_IMM_32, C.SHIFT, funct3=1, funct7=0x00))
    specs.append(_spec("srliw", F.I_SHIFT, OPCODE_OP_IMM_32, C.SHIFT, funct3=5, funct7=0x00))
    specs.append(_spec("sraiw", F.I_SHIFT, OPCODE_OP_IMM_32, C.SHIFT, funct3=5, funct7=0x20))

    # --- OP ----------------------------------------------------------------------
    op_rv32 = (
        ("add", 0, 0x00, C.ARITH), ("sub", 0, 0x20, C.ARITH),
        ("sll", 1, 0x00, C.SHIFT), ("slt", 2, 0x00, C.COMPARE),
        ("sltu", 3, 0x00, C.COMPARE), ("xor", 4, 0x00, C.LOGIC),
        ("srl", 5, 0x00, C.SHIFT), ("sra", 5, 0x20, C.SHIFT),
        ("or", 6, 0x00, C.LOGIC), ("and", 7, 0x00, C.LOGIC),
    )
    for mnem, f3, f7, cls in op_rv32:
        specs.append(_spec(mnem, F.R, OPCODE_OP, cls, funct3=f3, funct7=f7))
    op_m = (
        ("mul", 0, C.MUL), ("mulh", 1, C.MUL), ("mulhsu", 2, C.MUL),
        ("mulhu", 3, C.MUL), ("div", 4, C.DIV), ("divu", 5, C.DIV),
        ("rem", 6, C.DIV), ("remu", 7, C.DIV),
    )
    for mnem, f3, cls in op_m:
        specs.append(_spec(mnem, F.R, OPCODE_OP, cls, extension="M", funct3=f3, funct7=0x01))

    # --- OP-32 -------------------------------------------------------------------
    op32_rv64 = (
        ("addw", 0, 0x00, C.ARITH), ("subw", 0, 0x20, C.ARITH),
        ("sllw", 1, 0x00, C.SHIFT), ("srlw", 5, 0x00, C.SHIFT),
        ("sraw", 5, 0x20, C.SHIFT),
    )
    for mnem, f3, f7, cls in op32_rv64:
        specs.append(_spec(mnem, F.R, OPCODE_OP_32, cls, funct3=f3, funct7=f7))
    op32_m = (
        ("mulw", 0, C.MUL), ("divw", 4, C.DIV), ("divuw", 5, C.DIV),
        ("remw", 6, C.DIV), ("remuw", 7, C.DIV),
    )
    for mnem, f3, cls in op32_m:
        specs.append(_spec(mnem, F.R, OPCODE_OP_32, cls, extension="M", funct3=f3, funct7=0x01))

    # --- fences ---------------------------------------------------------------------
    specs.append(_spec("fence", F.FENCE, OPCODE_MISC_MEM, C.FENCE, funct3=0))
    specs.append(_spec("fence.i", F.FENCE, OPCODE_MISC_MEM, C.FENCE,
                       extension="Zifencei", funct3=1))

    # --- SYSTEM: environment + CSR ----------------------------------------------------
    specs.append(_spec("ecall", F.SYSTEM, OPCODE_SYSTEM, C.SYSTEM, funct3=0, funct12=0x000))
    specs.append(_spec("ebreak", F.SYSTEM, OPCODE_SYSTEM, C.SYSTEM, funct3=0, funct12=0x001))
    specs.append(_spec("mret", F.SYSTEM, OPCODE_SYSTEM, C.SYSTEM, funct3=0, funct12=0x302))
    specs.append(_spec("wfi", F.SYSTEM, OPCODE_SYSTEM, C.SYSTEM, funct3=0, funct12=0x105))
    for mnem, f3 in (("csrrw", 1), ("csrrs", 2), ("csrrc", 3)):
        specs.append(_spec(mnem, F.CSR, OPCODE_SYSTEM, C.CSR, extension="Zicsr", funct3=f3))
    for mnem, f3 in (("csrrwi", 5), ("csrrsi", 6), ("csrrci", 7)):
        specs.append(_spec(mnem, F.CSR_IMM, OPCODE_SYSTEM, C.CSR, extension="Zicsr", funct3=f3))

    # --- A extension subset -----------------------------------------------------------
    amo_ops = (
        ("lr", 0x02), ("sc", 0x03), ("amoswap", 0x01), ("amoadd", 0x00),
        ("amoxor", 0x04), ("amoand", 0x0C), ("amoor", 0x08),
    )
    for base, f5 in amo_ops:
        for suffix, f3 in ((".w", 2), (".d", 3)):
            specs.append(_spec(base + suffix, F.AMO, OPCODE_AMO, C.ATOMIC,
                               extension="A", funct3=f3, funct5=f5))

    table = {s.mnemonic: s for s in specs}
    if len(table) != len(specs):
        raise RuntimeError("duplicate mnemonics in instruction spec table")
    return table


#: Mnemonic -> :class:`InstrSpec` for every modelled instruction.
SPECS: Dict[str, InstrSpec] = _build_specs()


def spec_for(mnemonic: str) -> InstrSpec:
    """Return the spec for ``mnemonic`` (case-insensitive)."""
    key = mnemonic.lower()
    if key not in SPECS:
        raise KeyError(f"unknown mnemonic: {mnemonic!r}")
    return SPECS[key]


def mnemonics() -> Tuple[str, ...]:
    """All known mnemonics, in a stable order."""
    return tuple(sorted(SPECS))


def mnemonics_of_class(cls: InstrClass) -> Tuple[str, ...]:
    """All mnemonics belonging to functional class ``cls``, sorted."""
    return tuple(sorted(m for m, s in SPECS.items() if s.cls is cls))


def mnemonics_of_extension(extension: str) -> Tuple[str, ...]:
    """All mnemonics belonging to ISA ``extension`` ("I", "M", "A", ...)."""
    return tuple(sorted(m for m, s in SPECS.items() if s.extension == extension))
