"""RISC-V ISA substrate: encodings, assembly, decoding and test generation.

The fuzzers operate on :class:`~repro.isa.program.TestProgram` objects,
which are sequences of :class:`~repro.isa.instruction.Instruction` values.
Instructions round-trip through 32-bit words via the assembler and decoder,
which is what makes bit-level mutation (as performed by TheHuzz's mutation
engine) meaningful.
"""

from repro.isa.registers import (
    NUM_REGISTERS,
    REG_ABI_NAMES,
    abi_name,
    register_index,
)
from repro.isa.csr import (
    CSR_NAMES,
    IMPLEMENTED_CSRS,
    READ_ONLY_CSRS,
    UNIMPLEMENTED_CSRS,
    csr_name,
    is_implemented_csr,
    is_read_only_csr,
)
from repro.isa.exceptions import TrapCause, Trap
from repro.isa.encoding import (
    InstrClass,
    InstrFormat,
    InstrSpec,
    SPECS,
    spec_for,
    mnemonics,
    mnemonics_of_class,
)
from repro.isa.instruction import Instruction
from repro.isa.assembler import assemble, assemble_program, encode_instruction
from repro.isa.decoder import decode_instruction, decode_word, is_legal_word
from repro.isa.disassembler import disassemble, disassemble_program
from repro.isa.program import TestProgram
from repro.isa.generator import InstructionGenerator, SeedGenerator
from repro.isa.scenarios import (
    SCENARIOS,
    MixedSeedGenerator,
    TrapScenarioGenerator,
    make_seed_provider,
)

__all__ = [
    "NUM_REGISTERS",
    "REG_ABI_NAMES",
    "abi_name",
    "register_index",
    "CSR_NAMES",
    "IMPLEMENTED_CSRS",
    "READ_ONLY_CSRS",
    "UNIMPLEMENTED_CSRS",
    "csr_name",
    "is_implemented_csr",
    "is_read_only_csr",
    "TrapCause",
    "Trap",
    "InstrClass",
    "InstrFormat",
    "InstrSpec",
    "SPECS",
    "spec_for",
    "mnemonics",
    "mnemonics_of_class",
    "Instruction",
    "assemble",
    "assemble_program",
    "encode_instruction",
    "decode_instruction",
    "decode_word",
    "is_legal_word",
    "disassemble",
    "disassemble_program",
    "TestProgram",
    "InstructionGenerator",
    "SeedGenerator",
    "SCENARIOS",
    "MixedSeedGenerator",
    "TrapScenarioGenerator",
    "make_seed_provider",
]
