"""Human-readable rendering of instructions and programs.

Only used for logs, bug reports and examples; nothing in the fuzzing loop
depends on the textual form.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.isa.csr import csr_name
from repro.isa.encoding import InstrFormat, spec_for
from repro.isa.instruction import Instruction
from repro.isa.registers import abi_name


def disassemble(instr: Instruction) -> str:
    """Render ``instr`` as assembly text."""
    if instr.is_illegal:
        return f".word 0x{(instr.raw or 0):08x}  # illegal"
    spec = spec_for(instr.mnemonic)
    fmt = spec.fmt
    mnem = instr.mnemonic
    rd, rs1, rs2 = abi_name(instr.rd), abi_name(instr.rs1), abi_name(instr.rs2)
    if fmt is InstrFormat.R:
        return f"{mnem} {rd}, {rs1}, {rs2}"
    if fmt is InstrFormat.I:
        if spec.cls.value == "load" or mnem == "jalr":
            return f"{mnem} {rd}, {instr.imm}({rs1})"
        return f"{mnem} {rd}, {rs1}, {instr.imm}"
    if fmt is InstrFormat.I_SHIFT:
        return f"{mnem} {rd}, {rs1}, {instr.imm}"
    if fmt is InstrFormat.S:
        return f"{mnem} {rs2}, {instr.imm}({rs1})"
    if fmt is InstrFormat.B:
        return f"{mnem} {rs1}, {rs2}, {instr.imm}"
    if fmt is InstrFormat.U:
        return f"{mnem} {rd}, 0x{instr.imm & 0xFFFFF:x}"
    if fmt is InstrFormat.J:
        return f"{mnem} {rd}, {instr.imm}"
    if fmt is InstrFormat.CSR:
        return f"{mnem} {rd}, {csr_name(instr.csr)}, {rs1}"
    if fmt is InstrFormat.CSR_IMM:
        return f"{mnem} {rd}, {csr_name(instr.csr)}, {instr.imm & 0x1F}"
    if fmt is InstrFormat.FENCE:
        return mnem
    if fmt is InstrFormat.SYSTEM:
        return mnem
    if fmt is InstrFormat.AMO:
        suffix = ".aq" if instr.aq else ""
        suffix += ".rl" if instr.rl else ""
        return f"{mnem}{suffix} {rd}, {rs2}, ({rs1})"
    raise AssertionError(f"unhandled format {fmt}")  # pragma: no cover


def disassemble_program(instructions: Iterable[Instruction],
                        base_address: int = 0) -> List[str]:
    """Render a program, one ``address: text`` line per instruction."""
    lines = []
    for offset, instr in enumerate(instructions):
        address = base_address + 4 * offset
        lines.append(f"0x{address:08x}: {disassemble(instr)}")
    return lines
