"""Trap/CSR scenario generation: seeds that deliberately provoke traps.

The default :class:`~repro.isa.generator.SeedGenerator` emits user-level
workloads in which traps are rare accidents (odd offsets, unlucky CSR
addresses).  The paper's bandit is most interesting when arms differ in
*what they can reach*, so this module adds the privileged/trap seed family:
programs built around stimulus groups that architecturally provoke
illegal-instruction, misaligned-access, access-fault, breakpoint and CSR
traps when reached (dependent instructions stay adjacent so the random
filler between groups can never clobber a staged register; a filler
branch can still occasionally jump past a group) -- and to walk the machine CSRs
(mscratch, mtvec, mepc, mcause, mtval) through value-class transitions the
CSR-transition coverage model (:mod:`repro.coverage.csr_transitions`)
observes.

Three seed providers share the ``generate()`` / ``generate_many()``
interface the fuzzers consume:

* :class:`~repro.isa.generator.SeedGenerator` -- the ``"user"`` scenario,
* :class:`TrapScenarioGenerator` -- the ``"trap"`` scenario,
* :class:`MixedSeedGenerator` -- the ``"mixed"`` scenario, alternating the
  two so MABFuzz arms split between user-level and privileged workloads
  (and arm resets keep alternating deterministically).

Pick one with :func:`make_seed_provider`; ``FuzzerConfig.scenario`` is the
configuration surface.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.isa import csr as csrdefs
from repro.isa.generator import (
    DATA_BASE_REGISTERS,
    GeneratorConfig,
    InstructionGenerator,
    SeedGenerator,
    preamble_instructions,
)
from repro.isa.instruction import Instruction
from repro.isa.program import DEFAULT_BASE_ADDRESS, TestProgram, next_program_id
from repro.utils.rng import make_rng

#: scenario names accepted by ``FuzzerConfig.scenario``.
SCENARIOS = ("user", "trap", "mixed")


class TrapScenarioGenerator:
    """Generates seed programs that deterministically reach trap handlers.

    Every seed focuses on one *scenario kind* (drawn round-robin-free from
    the rng) and interleaves its trap stimuli with user-level filler so
    mutation still has ordinary instructions to work with:

    ==============  ========================================================
    kind             guaranteed stimuli
    ==============  ========================================================
    ``illegal``      undecodable raw words, reserved SYSTEM encodings
    ``misaligned``   odd-offset loads/stores, branch/jalr to pc % 4 != 0
    ``access``       loads/stores far outside the DRAM window
    ``csr``          unimplemented-CSR access, read-only writes, and
                     machine-CSR write walks (mscratch/mtvec/mepc/mcause/
                     mtval) driving CSR-transition coverage
    ``system``       ebreak, mret after seeding mepc, wfi, trailing ecall
    ==============  ========================================================
    """

    #: scenario kinds a seed can focus on.
    KINDS = ("illegal", "misaligned", "access", "csr", "system")

    def __init__(self, config: Optional[GeneratorConfig] = None, rng=None) -> None:
        self.config = config or GeneratorConfig()
        self.rng = make_rng(rng)
        self._filler = InstructionGenerator(self.config, self.rng)
        #: each builder returns *stimulus groups*: instructions inside one
        #: group are register/data dependent and must stay adjacent, so the
        #: user-level filler is only ever inserted between groups and can
        #: never clobber a staged base register.
        self._builders: Dict[str, Callable[[], List[List[Instruction]]]] = {
            "illegal": self._illegal_stimuli,
            "misaligned": self._misaligned_stimuli,
            "access": self._access_stimuli,
            "csr": self._csr_stimuli,
            "system": self._system_stimuli,
        }

    # ------------------------------------------------------------------ helpers
    def _register(self) -> int:
        pool = self.config.register_pool
        return int(pool[self.rng.integers(0, len(pool))])

    def _illegal_word(self) -> int:
        """A 32-bit word whose low opcode bits cannot decode."""
        word = int(self.rng.integers(0, 2**32))
        # Clearing bit 1 leaves bits [1:0] in the reserved/compressed space,
        # which no spec in the modelled ISA occupies.
        return word & ~0x2

    # ------------------------------------------------------------- stimuli kinds
    def _illegal_stimuli(self) -> List[List[Instruction]]:
        groups = [[Instruction.illegal(self._illegal_word())],
                  [Instruction.illegal(self._illegal_word())]]
        # A reserved SYSTEM encoding: csrrw/csrrs against an address drawn
        # from the unimplemented set traps in a correct design (and is the
        # exact stimulus behind CVA6's V6).
        address = int(self.rng.choice(sorted(csrdefs.UNIMPLEMENTED_CSRS)))
        groups.append([Instruction("csrrw", rd=self._register(),
                                   rs1=self._register(), csr=address)])
        return groups

    def _misaligned_stimuli(self) -> List[List[Instruction]]:
        base = int(self.rng.choice(DATA_BASE_REGISTERS))
        odd = 1 + 2 * int(self.rng.integers(0, 4))
        groups = [
            [Instruction("lw", rd=self._register(), rs1=base, imm=odd)],
            [Instruction("sh", rs1=base, rs2=self._register(), imm=odd)],
            # Taken branch to a target 2 (mod 4) bytes away: encodable but
            # misaligned, so it must raise INSTRUCTION_ADDRESS_MISALIGNED.
            [Instruction("beq", rs1=0, rs2=0, imm=6)],
        ]
        if self.rng.random() < 0.5:
            # jalr to an odd base: bit 0 is cleared by the ISA, bit 1 traps.
            # One group: the staged base must reach the jalr unclobbered.
            register = self._register()
            groups.append([
                Instruction("addi", rd=register, rs1=0,
                            imm=2 + 4 * int(self.rng.integers(0, 8))),
                Instruction("jalr", rd=0, rs1=register, imm=0),
            ])
        return groups

    def _access_stimuli(self) -> List[List[Instruction]]:
        # One group: lw/sd consume the out-of-window base the lui stages.
        register = self._register()
        upper = int(self.rng.choice((0x10000, 0x20000, 0x7FFFF)))
        return [[
            Instruction("lui", rd=register, imm=upper),
            Instruction("lw", rd=self._register(), rs1=register, imm=0),
            Instruction("sd", rs1=register, rs2=self._register(), imm=8),
        ]]

    def _csr_stimuli(self) -> List[List[Instruction]]:
        walk_targets = (csrdefs.MSCRATCH, csrdefs.MTVEC, csrdefs.MEPC,
                        csrdefs.MCAUSE, csrdefs.MTVAL)
        register = self._register()
        return [
            # Walk a machine CSR away from zero and back: two guaranteed
            # class transitions for the CSR-transition coverage model.
            [Instruction("csrrwi", rd=self._register(),
                         imm=1 + int(self.rng.integers(0, 31)),
                         csr=int(self.rng.choice(walk_targets)))],
            [Instruction("csrrci", rd=self._register(), imm=0x1F,
                         csr=int(self.rng.choice(walk_targets)))],
            # Read-only write: illegal-instruction trap.
            [Instruction("csrrw", rd=self._register(), rs1=register,
                         csr=int(self.rng.choice(sorted(csrdefs.READ_ONLY_CSRS))))],
            # Unimplemented CSR read: illegal-instruction trap (or V6).
            [Instruction("csrrs", rd=self._register(), rs1=0,
                         csr=int(self.rng.choice(sorted(csrdefs.UNIMPLEMENTED_CSRS))))],
        ]

    def _system_stimuli(self) -> List[List[Instruction]]:
        groups = [[Instruction("ebreak")]]
        if self.rng.random() < 0.5:
            # Seed mepc with a small invalid address, then mret to it: the
            # pc leaves the program window, exercising the fetch-fault halt.
            # One group: filler between the write and the mret could trap
            # and overwrite mepc with its own pc.
            groups.append([
                Instruction("csrrwi", rd=0,
                            imm=4 * int(self.rng.integers(1, 8)),
                            csr=csrdefs.MEPC),
                Instruction("mret"),
            ])
        else:
            groups.append([Instruction("wfi")])
            groups.append([Instruction("ecall")])
        return groups

    # ----------------------------------------------------------------- programs
    def generate(self, kind: Optional[str] = None,
                 length: Optional[int] = None) -> TestProgram:
        """Generate one trap-scenario seed program.

        Args:
            kind: force a scenario kind from :data:`KINDS` (``None`` = draw).
            length: target body length; ``None`` draws from the configured
                range (stimuli included).
        """
        if kind is None:
            kind = str(self.KINDS[self.rng.integers(0, len(self.KINDS))])
        elif kind not in self._builders:
            raise KeyError(f"unknown scenario kind {kind!r}; "
                           f"available: {self.KINDS}")
        if length is None:
            length = int(self.rng.integers(self.config.min_instructions,
                                           self.config.max_instructions + 1))
        groups = self._builders[kind]()
        stimulus_count = sum(len(group) for group in groups)
        body: List[Instruction] = []
        filler_budget = max(length - stimulus_count, len(groups))
        per_gap = max(filler_budget // (len(groups) + 1), 1)
        for group in groups:
            body.extend(self._filler.random_instruction()
                        for _ in range(per_gap))
            body.extend(group)
        trailing = max(filler_budget - per_gap * len(groups), 0)
        body.extend(self._filler.random_instruction() for _ in range(trailing))
        instructions = preamble_instructions() + body
        return TestProgram(
            instructions=tuple(instructions),
            base_address=DEFAULT_BASE_ADDRESS,
            program_id=next_program_id("trap"),
        )

    def generate_many(self, count: int) -> List[TestProgram]:
        """Generate ``count`` trap-scenario seeds (kinds drawn per seed)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.generate() for _ in range(count)]


class MixedSeedGenerator:
    """Alternates user-level and trap-scenario seeds, starting user-level.

    ``generate_many(n)`` therefore seeds an arm set with arms 0, 2, 4 ...
    on user-level workloads and arms 1, 3, 5 ... on trap scenarios; arm
    resets drawn through ``generate()`` continue the same alternation, so
    the user/trap balance is preserved over a whole campaign.  Both
    sub-generators share one rng stream, keeping the draw sequence (and
    therefore campaign results) a pure function of the seed.
    """

    def __init__(self, config: Optional[GeneratorConfig] = None, rng=None) -> None:
        self.config = config or GeneratorConfig()
        self.rng = make_rng(rng)
        self._user = SeedGenerator(self.config, self.rng)
        self._trap = TrapScenarioGenerator(self.config, self.rng)
        self._draws = 0

    def generate(self) -> TestProgram:
        """The next seed in the user/trap alternation."""
        provider = self._user if self._draws % 2 == 0 else self._trap
        self._draws += 1
        return provider.generate()

    def generate_many(self, count: int) -> List[TestProgram]:
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.generate() for _ in range(count)]


def make_seed_provider(scenario: str,
                       config: Optional[GeneratorConfig] = None,
                       rng=None):
    """Build the seed provider for ``scenario`` (``"user"``/``"trap"``/``"mixed"``).

    The ``"user"`` path constructs a plain :class:`~repro.isa.generator.
    SeedGenerator` exactly as the fuzzers always did, so existing campaigns
    stay bit-identical.
    """
    if scenario == "user":
        return SeedGenerator(config, rng)
    if scenario == "trap":
        return TrapScenarioGenerator(config, rng)
    if scenario == "mixed":
        return MixedSeedGenerator(config, rng)
    raise KeyError(f"unknown scenario {scenario!r}; available: {SCENARIOS}")
