"""Random instruction and seed-program generation.

TheHuzz (and therefore MABFuzz) bootstraps each campaign from a set of
*seed* programs made of randomly generated instructions.  Two properties of
the generator matter for reproducing the paper's behaviour:

1. Seeds must be *diverse*: different seeds should emphasise different parts
   of the ISA so that, as in the paper's motivational example, different
   arms reach different regions of the design.  Each seed is generated under
   a randomly drawn *profile* (a weighting over instruction classes).
2. Rare stimuli must remain reachable: illegal encodings, unimplemented-CSR
   accesses, FENCE.I, EBREAK and out-of-range memory accesses all appear
   with small probability, because the paper's vulnerabilities V1-V7 are
   triggered by exactly these events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.isa import csr as csrdefs
from repro.isa.encoding import InstrClass, InstrFormat, mnemonics_of_class, spec_for
from repro.isa.instruction import Instruction
from repro.isa.program import DEFAULT_BASE_ADDRESS, TestProgram, next_program_id
from repro.utils.rng import make_rng

#: Default relative weight of each instruction class in generated code.
DEFAULT_CLASS_WEIGHTS: Dict[InstrClass, float] = {
    InstrClass.ARITH: 0.22,
    InstrClass.LOGIC: 0.12,
    InstrClass.SHIFT: 0.08,
    InstrClass.COMPARE: 0.06,
    InstrClass.MUL: 0.06,
    InstrClass.DIV: 0.05,
    InstrClass.LOAD: 0.11,
    InstrClass.STORE: 0.09,
    InstrClass.BRANCH: 0.08,
    InstrClass.JUMP: 0.02,
    InstrClass.CSR: 0.05,
    InstrClass.SYSTEM: 0.02,
    InstrClass.FENCE: 0.02,
    InstrClass.ATOMIC: 0.02,
}


@dataclass(frozen=True)
class GeneratorConfig:
    """Configuration of the random instruction/seed generator.

    Attributes:
        min_instructions: minimum seed length (excluding the preamble).
        max_instructions: maximum seed length (excluding the preamble).
        class_weights: base weighting over instruction classes.
        register_pool: registers favoured as operands (creates hazards).
        wide_register_prob: probability of picking any register instead of
            one from ``register_pool``.
        valid_memory_prob: probability that a load/store uses a base register
            holding a valid data address (set up by the preamble).
        illegal_word_prob: probability of emitting a raw, undecodable word.
        profile_concentration: Dirichlet concentration used when drawing a
            per-seed class profile; lower values give more skewed (more
            diverse) seeds.
        randomize_profile: whether each seed draws its own class profile.
    """

    min_instructions: int = 12
    max_instructions: int = 24
    class_weights: Dict[InstrClass, float] = field(
        default_factory=lambda: dict(DEFAULT_CLASS_WEIGHTS)
    )
    register_pool: Sequence[int] = (5, 6, 7, 12, 13, 14, 28, 29)
    wide_register_prob: float = 0.15
    valid_memory_prob: float = 0.6
    illegal_word_prob: float = 0.01
    profile_concentration: float = 0.6
    randomize_profile: bool = True

    def __post_init__(self) -> None:
        if self.min_instructions < 1:
            raise ValueError("min_instructions must be >= 1")
        if self.max_instructions < self.min_instructions:
            raise ValueError("max_instructions must be >= min_instructions")
        if not 0.0 <= self.illegal_word_prob <= 1.0:
            raise ValueError("illegal_word_prob must be in [0, 1]")


#: Start of the valid data region used by the preamble (see repro.sim.memory).
DATA_REGION_BASE = 0x4000_4000
#: Registers the preamble initialises with valid data addresses.
DATA_BASE_REGISTERS = (10, 11)


def preamble_instructions() -> List[Instruction]:
    """Instructions prepended to every seed to set up valid memory bases.

    ``x10`` and ``x11`` are pointed into the modelled data region so that a
    substantial fraction of generated loads/stores hit valid memory, while
    the rest exercise the misaligned/out-of-range exception paths.
    """
    upper = (DATA_REGION_BASE >> 12) & 0xFFFFF
    return [
        Instruction("lui", rd=DATA_BASE_REGISTERS[0], imm=upper),
        Instruction("addi", rd=DATA_BASE_REGISTERS[1],
                    rs1=DATA_BASE_REGISTERS[0], imm=0x100),
        Instruction("addi", rd=28, rs1=0, imm=17),
        Instruction("addi", rd=29, rs1=0, imm=-3),
    ]


class InstructionGenerator:
    """Generates random (but plausibly structured) single instructions."""

    def __init__(self, config: Optional[GeneratorConfig] = None, rng=None) -> None:
        self.config = config or GeneratorConfig()
        self.rng = make_rng(rng)
        self._classes = list(self.config.class_weights)
        self._mnemonics_by_class = {
            cls: mnemonics_of_class(cls) for cls in self._classes
        }

    # ------------------------------------------------------------------ operands
    def _random_register(self) -> int:
        if self.rng.random() < self.config.wide_register_prob:
            return int(self.rng.integers(0, 32))
        pool = self.config.register_pool
        return int(pool[self.rng.integers(0, len(pool))])

    def _random_imm12(self) -> int:
        choice = self.rng.random()
        if choice < 0.3:
            return int(self.rng.integers(-16, 17))
        if choice < 0.4:
            return 0
        if choice < 0.5:
            return -1
        return int(self.rng.integers(-2048, 2048))

    def _random_branch_offset(self, max_instructions: int = 16) -> int:
        # Mostly short forward branches so programs keep making progress.
        magnitude = int(self.rng.integers(1, max_instructions + 1)) * 4
        if self.rng.random() < 0.2:
            return -magnitude
        return magnitude

    def _random_csr(self) -> int:
        # Performance-counter CSRs are favoured the way directed CSR tests do
        # in TheHuzz's generator; this also keeps the instret-reading path
        # (the stimulus that exposes V7) reachable at a realistic rate.
        if self.rng.random() < 0.25:
            counters = (csrdefs.MINSTRET, csrdefs.INSTRET, csrdefs.MCYCLE, csrdefs.CYCLE)
            return int(self.rng.choice(counters))
        return int(self.rng.choice(csrdefs.GENERATABLE_CSRS))

    # ------------------------------------------------------------- instructions
    def random_instruction(self, cls: Optional[InstrClass] = None,
                           weights: Optional[Dict[InstrClass, float]] = None) -> Instruction:
        """Generate one random instruction.

        Args:
            cls: force a specific instruction class (``None`` = draw from weights).
            weights: override class weights for this draw.
        """
        if self.rng.random() < self.config.illegal_word_prob:
            return Instruction.illegal(int(self.rng.integers(0, 2**32)))
        if cls is None:
            cls = self._draw_class(weights or self.config.class_weights)
        options = self._mnemonics_by_class[cls]
        mnemonic = str(self.rng.choice(options))
        return self._fill_operands(mnemonic)

    def _draw_class(self, weights: Dict[InstrClass, float]) -> InstrClass:
        classes = self._classes
        raw = np.array([max(weights.get(c, 0.0), 0.0) for c in classes], dtype=float)
        if raw.sum() <= 0:
            raw = np.ones(len(classes))
        probabilities = raw / raw.sum()
        index = int(self.rng.choice(len(classes), p=probabilities))
        return classes[index]

    def _fill_operands(self, mnemonic: str) -> Instruction:
        spec = spec_for(mnemonic)
        fmt = spec.fmt
        rd = self._random_register()
        rs1 = self._random_register()
        rs2 = self._random_register()
        if fmt is InstrFormat.R:
            return Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
        if fmt is InstrFormat.I:
            if spec.cls is InstrClass.LOAD or mnemonic == "jalr":
                return self._memory_style(mnemonic, rd=rd)
            return Instruction(mnemonic, rd=rd, rs1=rs1, imm=self._random_imm12())
        if fmt is InstrFormat.I_SHIFT:
            limit = 32 if mnemonic.endswith("w") else 64
            return Instruction(mnemonic, rd=rd, rs1=rs1,
                               imm=int(self.rng.integers(0, limit)))
        if fmt is InstrFormat.S:
            return self._memory_style(mnemonic, rs2=rs2)
        if fmt is InstrFormat.B:
            return Instruction(mnemonic, rs1=rs1, rs2=rs2,
                               imm=self._random_branch_offset())
        if fmt is InstrFormat.U:
            return Instruction(mnemonic, rd=rd, imm=int(self.rng.integers(0, 1 << 20)))
        if fmt is InstrFormat.J:
            return Instruction(mnemonic, rd=rd, imm=self._random_branch_offset(8))
        if fmt is InstrFormat.CSR:
            return Instruction(mnemonic, rd=rd, rs1=rs1, csr=self._random_csr())
        if fmt is InstrFormat.CSR_IMM:
            return Instruction(mnemonic, rd=rd, imm=int(self.rng.integers(0, 32)),
                               csr=self._random_csr())
        if fmt is InstrFormat.FENCE:
            if mnemonic == "fence.i":
                return Instruction(mnemonic)
            return Instruction(mnemonic, imm=0xFF)
        if fmt is InstrFormat.SYSTEM:
            return Instruction(mnemonic)
        if fmt is InstrFormat.AMO:
            instr = self._memory_style(mnemonic, rd=rd, rs2=rs2)
            return instr.with_fields(aq=int(self.rng.integers(0, 2)),
                                     rl=int(self.rng.integers(0, 2)))
        raise AssertionError(f"unhandled format {fmt}")  # pragma: no cover

    def _memory_style(self, mnemonic: str, rd: int = 0, rs2: int = 0) -> Instruction:
        """Build a load/store/jalr/AMO instruction with a plausible address."""
        spec = spec_for(mnemonic)
        if self.rng.random() < self.config.valid_memory_prob:
            rs1 = int(self.rng.choice(DATA_BASE_REGISTERS))
            # Aligned-ish offsets spread across the data region keep most
            # accesses valid (and spread over cache sets); a sprinkle of odd
            # offsets exercises the misalignment exception paths.
            imm = int(self.rng.integers(0, 250)) * 8
            if self.rng.random() < 0.15:
                imm += int(self.rng.integers(1, 8))
        else:
            rs1 = self._random_register()
            imm = self._random_imm12()
        if spec.fmt is InstrFormat.AMO:
            return Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
        if spec.fmt is InstrFormat.S:
            return Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=imm)
        return Instruction(mnemonic, rd=rd, rs1=rs1, imm=imm)


class SeedGenerator:
    """Generates seed :class:`TestProgram` objects for a fuzzing campaign."""

    def __init__(self, config: Optional[GeneratorConfig] = None, rng=None) -> None:
        self.config = config or GeneratorConfig()
        self.rng = make_rng(rng)
        self._instr_gen = InstructionGenerator(self.config, self.rng)

    def _draw_profile(self) -> Dict[InstrClass, float]:
        """Draw a per-seed class-weight profile (Dirichlet around the defaults)."""
        if not self.config.randomize_profile:
            return dict(self.config.class_weights)
        classes = list(self.config.class_weights)
        base = np.array([self.config.class_weights[c] for c in classes], dtype=float)
        base = base / base.sum()
        concentration = self.config.profile_concentration
        sample = self.rng.dirichlet(base * len(classes) * concentration + 1e-3)
        return {cls: float(w) for cls, w in zip(classes, sample)}

    def generate(self, profile: Optional[Dict[InstrClass, float]] = None,
                 length: Optional[int] = None) -> TestProgram:
        """Generate one seed program.

        Args:
            profile: explicit class-weight profile; ``None`` draws a random one.
            length: explicit body length; ``None`` draws uniformly from the
                configured range.
        """
        if profile is None:
            profile = self._draw_profile()
        if length is None:
            length = int(self.rng.integers(self.config.min_instructions,
                                           self.config.max_instructions + 1))
        body = [self._instr_gen.random_instruction(weights=profile)
                for _ in range(length)]
        instructions = preamble_instructions() + body
        return TestProgram(
            instructions=tuple(instructions),
            base_address=DEFAULT_BASE_ADDRESS,
            program_id=next_program_id("seed"),
        )

    def generate_many(self, count: int) -> List[TestProgram]:
        """Generate ``count`` seed programs (each with its own profile)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.generate() for _ in range(count)]
