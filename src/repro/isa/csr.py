"""Control and status register (CSR) address space.

Only machine-mode CSRs are modelled (the DUT models and the golden
reference run everything in M-mode, matching how TheHuzz-style fuzzers
drive bare-metal test programs).  A set of *unimplemented* CSR addresses is
also enumerated: accessing them must raise an illegal-instruction exception
in a correct design, and vulnerability V6 in CVA6 (CWE-1281) makes the DUT
return undefined values instead.
"""

from __future__ import annotations

# --- implemented machine-mode CSRs -------------------------------------------------
MSTATUS = 0x300
MISA = 0x301
MIE = 0x304
MTVEC = 0x305
MCOUNTEREN = 0x306
MSCRATCH = 0x340
MEPC = 0x341
MCAUSE = 0x342
MTVAL = 0x343
MIP = 0x344
MCYCLE = 0xB00
MINSTRET = 0xB02
MVENDORID = 0xF11
MARCHID = 0xF12
MIMPID = 0xF13
MHARTID = 0xF14
CYCLE = 0xC00
TIME = 0xC01
INSTRET = 0xC02

#: CSR address -> canonical name, for every CSR the golden model implements.
CSR_NAMES = {
    MSTATUS: "mstatus",
    MISA: "misa",
    MIE: "mie",
    MTVEC: "mtvec",
    MCOUNTEREN: "mcounteren",
    MSCRATCH: "mscratch",
    MEPC: "mepc",
    MCAUSE: "mcause",
    MTVAL: "mtval",
    MIP: "mip",
    MCYCLE: "mcycle",
    MINSTRET: "minstret",
    MVENDORID: "mvendorid",
    MARCHID: "marchid",
    MIMPID: "mimpid",
    MHARTID: "mhartid",
    CYCLE: "cycle",
    TIME: "time",
    INSTRET: "instret",
}

#: Addresses of CSRs implemented by the golden model (and correct DUTs).
IMPLEMENTED_CSRS = frozenset(CSR_NAMES)

#: Implemented CSRs that are read-only; writes raise illegal-instruction.
READ_ONLY_CSRS = frozenset(
    {MVENDORID, MARCHID, MIMPID, MHARTID, CYCLE, TIME, INSTRET}
)

#: A representative set of CSR addresses that exist in the privileged spec
#: but are *not* implemented by these cores.  Accesses must trap; CVA6's V6
#: vulnerability instead returns X-values (modelled as pseudo-random data).
UNIMPLEMENTED_CSRS = frozenset(
    {
        0x180,  # satp        (no S-mode)
        0x100,  # sstatus
        0x105,  # stvec
        0x141,  # sepc
        0x142,  # scause
        0x3A0,  # pmpcfg0
        0x3B0,  # pmpaddr0
        0x7A0,  # tselect
        0x7A1,  # tdata1
        0x7B0,  # dcsr
        0x7B1,  # dpc
        0x320,  # mcountinhibit
        0xB03,  # mhpmcounter3
        0x323,  # mhpmevent3
    }
)

#: CSR addresses the fuzzer's instruction generator may emit (implemented
#: plus unimplemented, so the V6 path is reachable by random tests).
GENERATABLE_CSRS = tuple(sorted(IMPLEMENTED_CSRS | UNIMPLEMENTED_CSRS))


def csr_name(address: int) -> str:
    """Return the canonical name of ``address`` or ``csr_0x###`` if unknown."""
    return CSR_NAMES.get(address, f"csr_0x{address:03x}")


def is_implemented_csr(address: int) -> bool:
    """Return True if the golden model implements the CSR at ``address``."""
    return address in IMPLEMENTED_CSRS


def is_read_only_csr(address: int) -> bool:
    """Return True if the CSR at ``address`` is implemented but read-only."""
    return address in READ_ONLY_CSRS
