"""Text renderers for the paper's tables.

The renderers produce plain-text tables whose rows mirror the paper's
Table I and the Fig. 4 summary, so a benchmark run prints directly
comparable output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.coverage.csr_transitions import transition_space
from repro.harness.campaign import TrialSet
from repro.harness.experiments import Table1Result, TrapCoverageStudy


def _format_speedup(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    return f"{value:.2f}x"


def _format_tests(value: Optional[float]) -> str:
    if value is None:
        return "not detected"
    return f"{value:.1f}"


def _render_rows(header: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    rows = [list(header)] + [list(r) for r in rows]
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_table1(result: Table1Result) -> str:
    """Render the Table I reproduction (detection speedups vs TheHuzz)."""
    algorithms = list(result.config.algorithms)
    header = ["Bug", "CWE", "Processor", "TheHuzz #tests"] + [
        f"{algo} speedup" for algo in algorithms
    ]
    rows: List[List[str]] = []
    lower_bound_seen = False
    for row in result.rows:
        cells = [row.bug_id, str(row.cwe), row.processor,
                 _format_tests(row.baseline_tests)]
        for algo in algorithms:
            text = _format_speedup(row.speedups.get(algo))
            if row.baseline_tests is None and text != "n/a":
                # The baseline never detected this bug: the speedup was
                # computed against the censored campaign length, so it is
                # only a lower bound.
                text = ">=" + text
                lower_bound_seen = True
            cells.append(text)
        rows.append(cells)
    title = ("Table I reproduction: vulnerability detection speedup "
             "compared to TheHuzz")
    rendered = f"{title}\n{_render_rows(header, rows)}"
    if lower_bound_seen:
        rendered += ("\n('>=' marks lower bounds: TheHuzz never detected the bug "
                     "within its campaign, the MAB fuzzer did.)")
    return rendered


def render_figure4_table(summary: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Render the Fig. 4 summary as a table (speedup and increment per core)."""
    header = ["Processor", "Algorithm", "Coverage speedup", "Coverage increment",
              "MABFuzz points", "TheHuzz points"]
    rows: List[List[str]] = []
    for processor, per_algo in summary.items():
        for algo, metrics in per_algo.items():
            rows.append([
                processor,
                algo,
                f"{metrics['speedup']:.2f}x",
                f"{metrics['increment_percent']:+.2f}%",
                f"{metrics['final_coverage']:.0f}",
                f"{metrics['baseline_coverage']:.0f}",
            ])
    title = "Fig. 4 reproduction: coverage speedup and increment vs TheHuzz"
    return f"{title}\n{_render_rows(header, rows)}"


def render_trap_coverage_table(study: TrapCoverageStudy) -> str:
    """Render the trap/CSR-transition coverage experiment.

    One row per (processor, seed scenario): overall coverage, how many of
    the enumerable CSR-transition points the campaigns reached, and how
    many ``trap.*`` points fired -- the evidence that trap arms buy
    coverage user-level arms cannot reach.
    """
    space_size = len(transition_space())
    header = ["Processor", "Scenario", "Coverage %", "CSR transitions",
              "Transition %", "Trap points"]
    rows: List[List[str]] = []
    for processor in study.config.processors:
        for scenario in study.scenarios:
            trialset = study.get(processor, scenario)
            transitions = study.mean_metadata(processor, scenario,
                                              "csr_transition_points")
            trap_points = study.mean_metadata(processor, scenario, "trap_points")
            rows.append([
                processor,
                scenario,
                f"{trialset.mean_coverage_percent():.1f}%",
                f"{transitions:.1f}/{space_size}",
                f"{100.0 * transitions / space_size:.1f}%",
                f"{trap_points:.1f}",
            ])
    title = (f"Trap/CSR scenario study: CSR-transition coverage by seed "
             f"scenario ({study.fuzzer})")
    return f"{title}\n{_render_rows(header, rows)}"


def render_ablation_table(results: Dict[object, TrialSet],
                          parameter_name: str,
                          bug_id: Optional[str] = None) -> str:
    """Render an ablation sweep (coverage and optional detection per setting)."""
    header = [parameter_name, "Mean coverage", "Coverage %"]
    if bug_id is not None:
        header.append(f"{bug_id} mean tests")
    rows: List[List[str]] = []
    for value, trialset in results.items():
        row = [
            str(value),
            f"{trialset.mean_coverage_count():.0f}",
            f"{trialset.mean_coverage_percent():.1f}%",
        ]
        if bug_id is not None:
            detections = [t for t in trialset.detection_tests(bug_id) if t is not None]
            row.append(f"{sum(detections) / len(detections):.1f}" if detections
                       else "not detected")
        rows.append(row)
    return _render_rows(header, rows)
