"""Evaluation harness: campaigns, metrics and the paper's experiments."""

from repro.harness.campaign import CampaignSpec, TrialSet, run_campaign, run_trials
from repro.harness.metrics import (
    coverage_increment_percent,
    coverage_speedup,
    detection_speedup,
    mean_coverage_curve,
    mean_detection_tests,
)
from repro.harness.experiments import (
    ExperimentConfig,
    Table1Result,
    CoverageStudy,
    run_table1,
    run_coverage_study,
    figure3_series,
    figure4_summary,
    run_alpha_ablation,
    run_gamma_ablation,
    run_arm_count_ablation,
    run_mutation_bandit_comparison,
)
from repro.harness.tables import render_table1, render_figure4_table, render_ablation_table
from repro.harness.figures import render_figure3, figure3_csv, figure4_csv
from repro.harness.report import build_experiments_report

__all__ = [
    "CampaignSpec",
    "TrialSet",
    "run_campaign",
    "run_trials",
    "coverage_increment_percent",
    "coverage_speedup",
    "detection_speedup",
    "mean_coverage_curve",
    "mean_detection_tests",
    "ExperimentConfig",
    "Table1Result",
    "CoverageStudy",
    "run_table1",
    "run_coverage_study",
    "figure3_series",
    "figure4_summary",
    "run_alpha_ablation",
    "run_gamma_ablation",
    "run_arm_count_ablation",
    "run_mutation_bandit_comparison",
    "render_table1",
    "render_figure4_table",
    "render_ablation_table",
    "render_figure3",
    "figure3_csv",
    "figure4_csv",
    "build_experiments_report",
]
