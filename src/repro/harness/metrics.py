"""Evaluation metrics: detection speedups, coverage speedups and increments.

The definitions follow the paper's evaluation (Sec. IV):

* **Detection speedup** (Table I) -- the ratio of the number of tests the
  baseline needs to first detect a vulnerability to the number of tests the
  MAB fuzzer needs, averaged over trials.
* **Coverage speedup** (Fig. 4, left axis) -- how many times fewer tests the
  MAB fuzzer needs to reach the baseline's end-of-campaign coverage.
* **Coverage increment** (Fig. 4, right axis) -- the relative increase in
  covered points at the end of the campaign, in percent.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.coverage.database import CoverageSample
from repro.fuzzing.results import FuzzCampaignResult
from repro.harness.campaign import TrialSet


# ------------------------------------------------------------------ detection
def mean_detection_tests(results: Iterable[FuzzCampaignResult], bug_id: str,
                         censor_at: Optional[int] = None) -> Optional[float]:
    """Average tests-to-detection for ``bug_id`` over trials.

    Trials that never detected the bug are treated as censored at
    ``censor_at`` tests (default: the campaign length); if *no* trial
    detected the bug, ``None`` is returned.
    """
    values: List[float] = []
    any_detected = False
    for result in results:
        tests = result.detection_tests(bug_id)
        if tests is None:
            values.append(float(censor_at if censor_at is not None else result.num_tests))
        else:
            any_detected = True
            values.append(float(tests))
    if not values or not any_detected:
        return None
    return sum(values) / len(values)


def detection_speedup(baseline: Iterable[FuzzCampaignResult],
                      candidate: Iterable[FuzzCampaignResult],
                      bug_id: str,
                      censor_baseline: bool = True) -> Optional[float]:
    """Speedup of ``candidate`` over ``baseline`` in detecting ``bug_id``.

    Undetected trials are censored at their campaign length, so:

    * candidate missed, baseline detected -> conservative speedup < 1;
    * baseline missed, candidate detected -> a *lower bound* on the true
      speedup (> 1), provided ``censor_baseline`` is True;
    * neither detected -> ``None`` (no information).
    """
    baseline = list(baseline)
    candidate = list(candidate)
    base_tests = mean_detection_tests(baseline, bug_id)
    cand_tests = mean_detection_tests(
        candidate, bug_id,
        censor_at=max((r.num_tests for r in candidate), default=None))
    if base_tests is None:
        if not censor_baseline or cand_tests is None:
            return None
        base_tests = float(sum(r.num_tests for r in baseline) / len(baseline))
    if cand_tests is None:
        cand_tests = float(max(r.num_tests for r in candidate))
    return base_tests / cand_tests


# ------------------------------------------------------------------- coverage
def mean_coverage_curve(results: Sequence[FuzzCampaignResult],
                        num_samples: int = 50) -> List[CoverageSample]:
    """Average the coverage-vs-tests curves of several trials.

    The curves are sampled at ``num_samples`` evenly spaced test counts so
    that trials remain comparable.
    """
    results = list(results)
    if not results:
        return []
    horizon = min(r.num_tests for r in results)
    num_samples = min(num_samples, horizon)
    sample_points = [
        int(round((i + 1) * horizon / num_samples)) - 1 for i in range(num_samples)
    ]
    averaged = []
    for test_index in sample_points:
        mean_covered = sum(r.coverage_at(test_index) for r in results) / len(results)
        averaged.append(CoverageSample(test_index=test_index,
                                       covered=int(round(mean_covered))))
    return averaged


def coverage_speedup(baseline: Sequence[FuzzCampaignResult],
                     candidate: Sequence[FuzzCampaignResult]) -> float:
    """How many times fewer tests ``candidate`` needs to match ``baseline``'s coverage.

    The target is the baseline's mean end-of-campaign coverage.  If the
    candidate never reaches it, the roles are inverted on the candidate's
    final coverage, producing a value below 1.
    """
    baseline = list(baseline)
    candidate = list(candidate)
    if not baseline or not candidate:
        raise ValueError("both result sets must be non-empty")
    baseline_final = sum(r.coverage_count for r in baseline) / len(baseline)
    baseline_tests = sum(r.num_tests for r in baseline) / len(baseline)

    candidate_times = [r.tests_to_reach_coverage(int(baseline_final)) for r in candidate]
    if all(t is not None for t in candidate_times):
        mean_candidate = sum(candidate_times) / len(candidate_times)
        return baseline_tests / max(mean_candidate, 1.0)

    # Candidate never reached the baseline's coverage: measure how quickly
    # the baseline reaches the *candidate's* final coverage instead.
    candidate_final = sum(r.coverage_count for r in candidate) / len(candidate)
    candidate_tests = sum(r.num_tests for r in candidate) / len(candidate)
    baseline_times = [r.tests_to_reach_coverage(int(candidate_final)) for r in baseline]
    usable = [t for t in baseline_times if t is not None]
    if not usable:
        return 1.0
    mean_baseline = sum(usable) / len(usable)
    return mean_baseline / max(candidate_tests, 1.0)


def coverage_increment_percent(baseline: Sequence[FuzzCampaignResult],
                               candidate: Sequence[FuzzCampaignResult]) -> float:
    """Relative end-of-campaign coverage increase of ``candidate`` vs ``baseline`` (%)."""
    baseline = list(baseline)
    candidate = list(candidate)
    if not baseline or not candidate:
        raise ValueError("both result sets must be non-empty")
    baseline_final = sum(r.coverage_count for r in baseline) / len(baseline)
    candidate_final = sum(r.coverage_count for r in candidate) / len(candidate)
    if baseline_final == 0:
        return 0.0
    return 100.0 * (candidate_final - baseline_final) / baseline_final


# ------------------------------------------------------------------ trial sets
def trialset_detection_speedup(baseline: TrialSet, candidate: TrialSet,
                               bug_id: str) -> Optional[float]:
    """Detection speedup between two trial sets."""
    return detection_speedup(baseline.completed_results(),
                             candidate.completed_results(), bug_id)


def trialset_coverage_speedup(baseline: TrialSet, candidate: TrialSet) -> float:
    """Coverage speedup between two trial sets."""
    return coverage_speedup(baseline.completed_results(),
                            candidate.completed_results())


def trialset_coverage_increment(baseline: TrialSet, candidate: TrialSet) -> float:
    """Coverage increment between two trial sets (%)."""
    return coverage_increment_percent(baseline.completed_results(),
                                      candidate.completed_results())
