"""Markdown report generation (the EXPERIMENTS.md machinery)."""

from __future__ import annotations

from typing import Optional

from repro.harness.experiments import (
    CoverageStudy,
    Table1Result,
    figure3_series,
    figure4_summary,
)
from repro.harness.figures import figure3_csv, render_figure3
from repro.harness.tables import render_figure4_table, render_table1


def build_experiments_report(table1: Optional[Table1Result] = None,
                             study: Optional[CoverageStudy] = None,
                             notes: str = "") -> str:
    """Build a Markdown report of measured results for EXPERIMENTS.md.

    Any experiment that was not run is simply omitted from the report, so
    partial reports (e.g. Table I only) are possible.
    """
    sections = ["# MABFuzz reproduction — measured results", ""]
    if notes:
        sections += [notes.strip(), ""]
    if table1 is not None:
        sections += ["## Table I — vulnerability detection speedup", "",
                     "```", render_table1(table1), "```", ""]
    if study is not None:
        series = figure3_series(study)
        summary = figure4_summary(study)
        sections += ["## Figure 3 — branch coverage vs tests", "",
                     "```", render_figure3(series), "```", "",
                     "### Raw series (CSV)", "", "```",
                     figure3_csv(series), "```", ""]
        sections += ["## Figure 4 — coverage speedup and increment", "",
                     "```", render_figure4_table(summary), "```", ""]
    return "\n".join(sections)
