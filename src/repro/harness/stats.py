"""Small statistics helpers for aggregating repeated trials.

The paper repeats every experiment at least three times "to reduce
randomness in results" (Sec. IV-A); these helpers summarise such repeated
measurements (mean, sample standard deviation, normal-approximation
confidence intervals, geometric means for speedups) without pulling in any
dependency beyond NumPy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Summary statistics of one repeated measurement."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def format(self, unit: str = "") -> str:
        """Render as ``mean ± half-width unit (n=count)``."""
        half_width = (self.ci_high - self.ci_low) / 2.0
        suffix = f" {unit}" if unit else ""
        return f"{self.mean:.2f} ± {half_width:.2f}{suffix} (n={self.count})"


def summarize(values: Iterable[float], confidence: float = 0.95) -> Summary:
    """Summarise ``values`` with a normal-approximation confidence interval."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarise an empty sequence")
    minimum = float(data.min())
    maximum = float(data.max())
    # Pairwise summation can push the mean a few ulps outside [min, max]
    # (e.g. three identical values); clamp so the bounds invariant holds.
    mean = min(max(float(data.mean()), minimum), maximum)
    std = float(data.std(ddof=1)) if data.size > 1 else 0.0
    z = _z_score(confidence)
    half_width = z * std / math.sqrt(data.size) if data.size > 1 else 0.0
    return Summary(
        count=int(data.size),
        mean=mean,
        std=std,
        minimum=minimum,
        maximum=maximum,
        ci_low=mean - half_width,
        ci_high=mean + half_width,
    )


def _z_score(confidence: float) -> float:
    """Two-sided z-score for a handful of common confidence levels."""
    table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    if confidence not in table:
        raise ValueError(f"unsupported confidence level {confidence}; "
                         f"choose one of {sorted(table)}")
    return table[confidence]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the right way to average speedup ratios)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot average an empty sequence")
    if (data <= 0).any():
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.log(data).mean()))


def median(values: Iterable[float]) -> float:
    """Median of the values."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot take the median of an empty sequence")
    return float(np.median(data))


def censored_mean(values: Sequence[Optional[float]],
                  censor_at: float) -> Optional[float]:
    """Mean of values where ``None`` entries are censored at ``censor_at``.

    Returns ``None`` if every entry is ``None`` (nothing was ever observed).
    """
    if not values:
        return None
    if all(v is None for v in values):
        return None
    filled: List[float] = [censor_at if v is None else float(v) for v in values]
    return sum(filled) / len(filled)
