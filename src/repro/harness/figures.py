"""Renderers for the paper's figures.

Figures are emitted as CSV series (for plotting elsewhere) and as compact
ASCII charts so benchmark output remains human-readable in a terminal.
"""

from __future__ import annotations

from typing import Dict, List

from repro.coverage.database import CoverageSample

Figure3Series = Dict[str, Dict[str, List[CoverageSample]]]
Figure4Summary = Dict[str, Dict[str, Dict[str, float]]]


def figure3_csv(series: Figure3Series) -> str:
    """Fig. 3 as CSV: processor, fuzzer, tests, covered points."""
    lines = ["processor,fuzzer,tests,covered_points"]
    for processor, per_fuzzer in series.items():
        for fuzzer, samples in per_fuzzer.items():
            for sample in samples:
                lines.append(
                    f"{processor},{fuzzer},{sample.test_index + 1},{sample.covered}")
    return "\n".join(lines)


def figure4_csv(summary: Figure4Summary) -> str:
    """Fig. 4 as CSV: processor, algorithm, coverage speedup, increment."""
    lines = ["processor,algorithm,coverage_speedup,coverage_increment_percent"]
    for processor, per_algo in summary.items():
        for algo, metrics in per_algo.items():
            lines.append(f"{processor},{algo},{metrics['speedup']:.3f},"
                         f"{metrics['increment_percent']:.3f}")
    return "\n".join(lines)


def _ascii_curve(samples: List[CoverageSample], width: int = 40,
                 max_value: int = 0) -> str:
    if not samples:
        return ""
    peak = max(max_value, max(s.covered for s in samples), 1)
    cells = []
    blocks = " .:-=+*#%@"
    for sample in samples[:width]:
        level = int((len(blocks) - 1) * sample.covered / peak)
        cells.append(blocks[level])
    return "".join(cells)


def render_figure3(series: Figure3Series) -> str:
    """Fig. 3 as a compact per-processor ASCII chart plus final values."""
    lines = ["Fig. 3 reproduction: branch coverage vs number of tests"]
    for processor, per_fuzzer in series.items():
        lines.append(f"\n[{processor}]")
        peak = max((samples[-1].covered for samples in per_fuzzer.values()
                    if samples), default=1)
        for fuzzer, samples in per_fuzzer.items():
            final = samples[-1].covered if samples else 0
            curve = _ascii_curve(samples, max_value=peak)
            lines.append(f"  {fuzzer:<18} |{curve}| final={final}")
    return "\n".join(lines)
