"""The paper's experiments (Table I, Fig. 3, Fig. 4) and the ablations.

Every experiment is a plain function taking an :class:`ExperimentConfig`
(which mainly scales the campaign size) and returning a structured result
that the renderers in :mod:`repro.harness.tables` /
:mod:`repro.harness.figures` turn into the paper's tables and figure data.

Each experiment first assembles its full grid of
:class:`~repro.harness.campaign.CampaignSpec` cells and then hands the
grid to a :class:`~repro.exec.engine.CampaignEngine` in one call, so an
``engine`` configured with a process-pool or distributed backend
parallelises across the *whole* grid (every processor × fuzzer × trial
cell at once), not merely within one campaign -- and a checkpointed
engine resumes any of them.

Passing the *same* engine to several experiments compounds: the engine
replays (spec, trial) cells it has already completed from memory, so
``run_table1`` followed by ``run_coverage_study`` (the ``mabfuzz report``
path) executes their overlapping cells once.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.config import MABFuzzConfig
from repro.coverage.database import CoverageSample
from repro.fuzzing.base import FuzzerConfig
from repro.harness.campaign import CampaignSpec, TrialSet
from repro.harness.metrics import (
    coverage_increment_percent,
    coverage_speedup,
    detection_speedup,
    mean_coverage_curve,
    mean_detection_tests,
)
from repro.rtl.bugs import BUGS_BY_ID, CVA6_BUG_IDS, ROCKET_BUG_IDS

if TYPE_CHECKING:
    from repro.exec.engine import CampaignEngine


def _resolve_engine(engine: Optional["CampaignEngine"]) -> "CampaignEngine":
    """Default to a serial in-process engine (imported lazily: cycle)."""
    if engine is not None:
        return engine
    from repro.exec.engine import CampaignEngine

    return CampaignEngine()


@dataclass(frozen=True)
class ExperimentConfig:
    """Scaling knobs shared by all experiments.

    The defaults are sized for laptop-scale runs (minutes, not the paper's
    50,000-test VCS campaigns); the shapes of the results -- who wins, and
    roughly by how much -- are what the reproduction targets.
    """

    num_tests: int = 400
    trials: int = 2
    seed: int = 0
    algorithms: Tuple[str, ...] = ("egreedy", "ucb", "exp3")
    processors: Tuple[str, ...] = ("cva6", "rocket", "boom")
    fuzzer_config: Optional[FuzzerConfig] = None
    mab_config: Optional[MABFuzzConfig] = None

    def mab_fuzzer_names(self) -> Tuple[str, ...]:
        return tuple(f"mabfuzz:{algo}" for algo in self.algorithms)

    def spec(self, processor: str, fuzzer: str, **overrides) -> CampaignSpec:
        """Build a campaign spec for one (processor, fuzzer) pair."""
        base = CampaignSpec(
            processor=processor,
            fuzzer=fuzzer,
            num_tests=self.num_tests,
            trials=self.trials,
            seed=self.seed,
            fuzzer_config=self.fuzzer_config,
            mab_config=self.mab_config,
        )
        return replace(base, **overrides) if overrides else base


# =============================================================== Table I (E1)
@dataclass(frozen=True)
class Table1Row:
    """One vulnerability row of Table I."""

    bug_id: str
    cwe: int
    description: str
    processor: str
    baseline_tests: Optional[float]
    speedups: Dict[str, Optional[float]] = field(default_factory=dict)


@dataclass
class Table1Result:
    """The full Table I reproduction."""

    config: ExperimentConfig
    rows: List[Table1Row] = field(default_factory=list)
    trialsets: Dict[Tuple[str, str], TrialSet] = field(default_factory=dict)

    def row(self, bug_id: str) -> Table1Row:
        for row in self.rows:
            if row.bug_id == bug_id:
                return row
        raise KeyError(f"no row for bug {bug_id}")

    def best_speedup(self, bug_id: str) -> Optional[float]:
        """Best speedup any MAB algorithm achieved on ``bug_id``."""
        values = [v for v in self.row(bug_id).speedups.values() if v is not None]
        return max(values) if values else None


def _bug_map() -> Dict[str, Tuple[str, ...]]:
    """Processor -> bug ids evaluated on it (per the paper)."""
    return {"cva6": CVA6_BUG_IDS, "rocket": ROCKET_BUG_IDS}


def run_table1(config: Optional[ExperimentConfig] = None,
               engine: Optional["CampaignEngine"] = None) -> Table1Result:
    """Reproduce Table I: vulnerability detection speedup vs TheHuzz."""
    config = config or ExperimentConfig()
    runner = _resolve_engine(engine)
    result = Table1Result(config=config)
    fuzzers = ("thehuzz",) + config.mab_fuzzer_names()

    cells = [(processor, fuzzer)
             for processor in _bug_map() for fuzzer in fuzzers]
    trialsets = runner.run_grid([config.spec(processor, fuzzer)
                                 for processor, fuzzer in cells])
    result.trialsets = dict(zip(cells, trialsets))

    for processor, bug_ids in _bug_map().items():
        baseline = result.trialsets[(processor, "thehuzz")]
        for bug_id in bug_ids:
            bug_cls = BUGS_BY_ID[bug_id]
            speedups: Dict[str, Optional[float]] = {}
            for algo, fuzzer in zip(config.algorithms, config.mab_fuzzer_names()):
                speedups[algo] = detection_speedup(
                    baseline.completed_results(),
                    result.trialsets[(processor, fuzzer)].completed_results(),
                    bug_id)
            result.rows.append(Table1Row(
                bug_id=bug_id,
                cwe=bug_cls.cwe,
                description=bug_cls.description,
                processor=processor,
                baseline_tests=mean_detection_tests(
                    baseline.completed_results(), bug_id),
                speedups=speedups,
            ))
    return result


# ====================================================== Fig. 3 / Fig. 4 (E2, E3)
@dataclass
class CoverageStudy:
    """Shared campaign data behind Fig. 3 and Fig. 4."""

    config: ExperimentConfig
    trialsets: Dict[Tuple[str, str], TrialSet] = field(default_factory=dict)

    def fuzzers(self) -> Tuple[str, ...]:
        return ("thehuzz",) + self.config.mab_fuzzer_names()

    def get(self, processor: str, fuzzer: str) -> TrialSet:
        return self.trialsets[(processor, fuzzer)]


def run_coverage_study(config: Optional[ExperimentConfig] = None,
                       engine: Optional["CampaignEngine"] = None) -> CoverageStudy:
    """Run the coverage campaigns behind Fig. 3 / Fig. 4 (TheHuzz + MAB algorithms)."""
    config = config or ExperimentConfig()
    runner = _resolve_engine(engine)
    study = CoverageStudy(config=config)
    cells = [(processor, fuzzer)
             for processor in config.processors
             for fuzzer in ("thehuzz",) + config.mab_fuzzer_names()]
    trialsets = runner.run_grid([config.spec(processor, fuzzer)
                                 for processor, fuzzer in cells])
    study.trialsets = dict(zip(cells, trialsets))
    return study


def figure3_series(study: CoverageStudy,
                   num_samples: int = 25
                   ) -> Dict[str, Dict[str, List[CoverageSample]]]:
    """Fig. 3 data: mean coverage-vs-tests curves per processor per fuzzer."""
    series: Dict[str, Dict[str, List[CoverageSample]]] = {}
    for processor in study.config.processors:
        series[processor] = {}
        for fuzzer in study.fuzzers():
            trialset = study.get(processor, fuzzer)
            series[processor][fuzzer] = mean_coverage_curve(
                trialset.completed_results(), num_samples=num_samples)
    return series


def figure4_summary(study: CoverageStudy) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 4 data: coverage speedup and increment vs TheHuzz per processor/algorithm."""
    summary: Dict[str, Dict[str, Dict[str, float]]] = {}
    for processor in study.config.processors:
        baseline = study.get(processor, "thehuzz")
        summary[processor] = {}
        for algo, fuzzer in zip(study.config.algorithms,
                                study.config.mab_fuzzer_names()):
            candidate = study.get(processor, fuzzer)
            summary[processor][algo] = {
                "speedup": coverage_speedup(baseline.completed_results(),
                                            candidate.completed_results()),
                "increment_percent": coverage_increment_percent(
                    baseline.completed_results(), candidate.completed_results()),
                "final_coverage": candidate.mean_coverage_count(),
                "baseline_coverage": baseline.mean_coverage_count(),
            }
    return summary


# =================================================================== ablations
def _run_sweep(keys: Sequence, specs: Sequence[CampaignSpec],
               engine: Optional["CampaignEngine"]) -> Dict:
    """Run one ablation grid and key its TrialSets by the swept values."""
    trialsets = _resolve_engine(engine).run_grid(specs)
    return dict(zip(keys, trialsets))


def run_alpha_ablation(config: Optional[ExperimentConfig] = None,
                       alphas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
                       processor: str = "cva6",
                       algorithm: str = "ucb",
                       engine: Optional["CampaignEngine"] = None
                       ) -> Dict[float, TrialSet]:
    """E4: sweep the reward weighting α (the paper fixes α = 0.25)."""
    config = config or ExperimentConfig()
    specs = [config.spec(processor, f"mabfuzz:{algorithm}",
                         mab_config=replace(config.mab_config or MABFuzzConfig(),
                                            alpha=alpha))
             for alpha in alphas]
    return _run_sweep(alphas, specs, engine)


def run_gamma_ablation(config: Optional[ExperimentConfig] = None,
                       gammas: Sequence[Optional[int]] = (1, 3, 5, 10, None),
                       processor: str = "cva6",
                       algorithm: str = "ucb",
                       engine: Optional["CampaignEngine"] = None
                       ) -> Dict[Optional[int], TrialSet]:
    """E5: sweep the reset threshold γ; ``None`` disables resets entirely."""
    config = config or ExperimentConfig()
    specs = [config.spec(processor, f"mabfuzz:{algorithm}",
                         mab_config=replace(config.mab_config or MABFuzzConfig(),
                                            gamma=gamma))
             for gamma in gammas]
    return _run_sweep(gammas, specs, engine)


def run_arm_count_ablation(config: Optional[ExperimentConfig] = None,
                           arm_counts: Sequence[int] = (2, 5, 10, 20),
                           processor: str = "cva6",
                           algorithm: str = "ucb",
                           engine: Optional["CampaignEngine"] = None
                           ) -> Dict[int, TrialSet]:
    """E6: sweep the number of arms (the paper fixes 10)."""
    config = config or ExperimentConfig()
    specs = [config.spec(processor, f"mabfuzz:{algorithm}",
                         mab_config=replace(config.mab_config or MABFuzzConfig(),
                                            num_arms=count))
             for count in arm_counts]
    return _run_sweep(arm_counts, specs, engine)


# ===================================================== trap/CSR coverage (E8)
#: scenario mix evaluated by the trap-coverage experiment.
TRAP_SCENARIOS: Tuple[str, ...] = ("user", "trap", "mixed")


@dataclass
class TrapCoverageStudy:
    """The trap/CSR-transition coverage experiment.

    For every processor and every seed scenario (user / trap / mixed) one
    MABFuzz campaign runs under the ``"csr"`` coverage model, so the
    results quantify how much of the CSR-transition space each workload
    family reaches -- the coverage dimension the ProcessorFuzz line of work
    showed separates trap-reaching inputs from plain user-level code.
    """

    config: ExperimentConfig
    fuzzer: str
    scenarios: Tuple[str, ...] = TRAP_SCENARIOS
    trialsets: Dict[Tuple[str, str], TrialSet] = field(default_factory=dict)

    def get(self, processor: str, scenario: str) -> TrialSet:
        return self.trialsets[(processor, scenario)]

    def mean_metadata(self, processor: str, scenario: str, key: str) -> float:
        """Mean of one numeric metadata entry over completed trials."""
        completed = self.get(processor, scenario).completed_results()
        if not completed:
            return 0.0
        return sum(float(r.metadata.get(key, 0)) for r in completed) / len(completed)


def run_trap_coverage_study(config: Optional[ExperimentConfig] = None,
                            engine: Optional["CampaignEngine"] = None,
                            algorithm: str = "ucb",
                            scenarios: Sequence[str] = TRAP_SCENARIOS
                            ) -> TrapCoverageStudy:
    """E8: user vs trap vs mixed seed arms under CSR-transition coverage.

    Every cell is a MABFuzz campaign whose DUT runs the ``"csr"`` coverage
    model; the ``scenario`` only changes which seed family the arms draw
    from, so differences in ``csr_transition_points`` are attributable to
    the workload mix the bandit schedules over.
    """
    config = config or ExperimentConfig()
    runner = _resolve_engine(engine)
    fuzzer = f"mabfuzz:{algorithm}"
    study = TrapCoverageStudy(config=config, fuzzer=fuzzer,
                              scenarios=tuple(scenarios))
    cells = [(processor, scenario)
             for processor in config.processors for scenario in study.scenarios]
    specs = []
    for processor, scenario in cells:
        fuzzer_config = replace(config.fuzzer_config or FuzzerConfig(),
                                scenario=scenario)
        specs.append(config.spec(processor, fuzzer,
                                 fuzzer_config=fuzzer_config,
                                 coverage_model="csr"))
    trialsets = runner.run_grid(specs)
    study.trialsets = dict(zip(cells, trialsets))
    return study


def run_mutation_bandit_comparison(config: Optional[ExperimentConfig] = None,
                                   processor: str = "cva6",
                                   algorithm: str = "exp3",
                                   engine: Optional["CampaignEngine"] = None
                                   ) -> Dict[str, TrialSet]:
    """E7 (Sec. V extension): MAB over mutation operators vs static weights."""
    config = config or ExperimentConfig()
    fuzzers = ("thehuzz", f"mutation-bandit:{algorithm}")
    specs = [config.spec(processor, fuzzer) for fuzzer in fuzzers]
    return _run_sweep(fuzzers, specs, engine)
