"""Campaign running: one (processor, fuzzer) pair, possibly repeated.

The paper runs every configuration at least three times to reduce the
effect of randomness (Sec. IV-A); :class:`TrialSet` is the container for
such repeated campaigns and the unit the metrics module aggregates over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api import make_fuzzer, make_processor
from repro.core.config import MABFuzzConfig
from repro.fuzzing.base import FuzzerConfig
from repro.fuzzing.results import FuzzCampaignResult


@dataclass(frozen=True)
class CampaignSpec:
    """A reproducible description of one campaign configuration.

    Attributes:
        processor: DUT name (``"cva6"``, ``"rocket"``, ``"boom"``).
        fuzzer: fuzzer name (``"thehuzz"``, ``"mabfuzz:ucb"`` ...).
        num_tests: tests per trial.
        trials: number of repeated trials.
        seed: base RNG seed; trial ``i`` uses ``seed + i``.
        bugs: bug ids to inject (``None`` = the paper's defaults for the DUT).
        fuzzer_config: shared fuzzer configuration.
        mab_config: MABFuzz configuration (ignored by non-MAB fuzzers).
    """

    processor: str
    fuzzer: str
    num_tests: int = 500
    trials: int = 3
    seed: int = 0
    bugs: Optional[Sequence[str]] = None
    fuzzer_config: Optional[FuzzerConfig] = None
    mab_config: Optional[MABFuzzConfig] = None

    def __post_init__(self) -> None:
        if self.num_tests < 1:
            raise ValueError("num_tests must be >= 1")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")


@dataclass
class TrialSet:
    """The results of all trials of one campaign specification."""

    spec: CampaignSpec
    results: List[FuzzCampaignResult] = field(default_factory=list)

    @property
    def fuzzer_name(self) -> str:
        return self.spec.fuzzer

    @property
    def processor(self) -> str:
        return self.spec.processor

    @property
    def num_trials(self) -> int:
        return len(self.results)

    def mean_coverage_count(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.coverage_count for r in self.results) / len(self.results)

    def mean_coverage_percent(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.coverage_percent for r in self.results) / len(self.results)

    def detection_tests(self, bug_id: str) -> List[Optional[int]]:
        """Per-trial tests-to-detection for ``bug_id`` (``None`` = undetected)."""
        return [r.detection_tests(bug_id) for r in self.results]


def run_campaign(spec: CampaignSpec, trial_index: int = 0) -> FuzzCampaignResult:
    """Run a single trial of ``spec`` and return its result."""
    dut = make_processor(spec.processor, bugs=spec.bugs)
    fuzzer = make_fuzzer(
        spec.fuzzer, dut,
        fuzzer_config=spec.fuzzer_config,
        mab_config=spec.mab_config,
        rng=spec.seed + trial_index,
    )
    return fuzzer.run(spec.num_tests,
                      metadata={"trial": trial_index, "seed": spec.seed + trial_index})


def run_trials(spec: CampaignSpec) -> TrialSet:
    """Run every trial of ``spec`` and collect the results."""
    results = [run_campaign(spec, trial) for trial in range(spec.trials)]
    return TrialSet(spec=spec, results=results)
