"""Campaign running: one (processor, fuzzer) pair, possibly repeated.

The paper runs every configuration at least three times to reduce the
effect of randomness (Sec. IV-A); :class:`TrialSet` is the container for
such repeated campaigns and the unit the metrics module aggregates over.

Trials are independent, so :func:`run_trials` can hand them to an
execution backend from :mod:`repro.exec` (serial or multi-process); the
per-trial seeds are derived purely from the spec content, which is what
makes trial ``i`` bit-reproducible regardless of which worker runs it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.api import make_fuzzer, make_processor
from repro.core.config import MABFuzzConfig
from repro.coverage.csr_transitions import COVERAGE_MODELS
from repro.fuzzing.base import FuzzerConfig
from repro.fuzzing.results import FuzzCampaignResult
from repro.isa.encoding import InstrClass
from repro.isa.generator import GeneratorConfig
from repro.isa.program import program_id_scope

if TYPE_CHECKING:  # avoid a cycle: repro.exec imports this module.
    from repro.exec.backends import ExecutionBackend
    from repro.exec.cache import DutRunCache
    from repro.sim.golden import GoldenTraceCache


@dataclass(frozen=True)
class CampaignSpec:
    """A reproducible description of one campaign configuration.

    Attributes:
        processor: DUT name (``"cva6"``, ``"rocket"``, ``"boom"``).
        fuzzer: fuzzer name (``"thehuzz"``, ``"mabfuzz:ucb"`` ...).
        num_tests: tests per trial.
        trials: number of repeated trials.
        seed: base RNG seed; trial ``i`` uses :func:`trial_seed`.
        bugs: bug ids to inject (``None`` = the paper's defaults for the DUT).
        fuzzer_config: shared fuzzer configuration (incl. the seed
            ``scenario``: user / trap / mixed workloads).
        mab_config: MABFuzz configuration (ignored by non-MAB fuzzers).
        coverage_model: DUT coverage model -- ``"base"`` (hit sets only) or
            ``"csr"`` (adds CSR-transition points, docs/coverage.md).
    """

    processor: str
    fuzzer: str
    num_tests: int = 500
    trials: int = 3
    seed: int = 0
    bugs: Optional[Sequence[str]] = None
    fuzzer_config: Optional[FuzzerConfig] = None
    mab_config: Optional[MABFuzzConfig] = None
    coverage_model: str = "base"

    def __post_init__(self) -> None:
        if self.num_tests < 1:
            raise ValueError("num_tests must be >= 1")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if self.coverage_model not in COVERAGE_MODELS:
            raise ValueError(f"coverage_model must be one of {COVERAGE_MODELS}")

    def fingerprint(self) -> str:
        """Stable content hash of this spec (process-independent).

        Used by the checkpoint journal to match completed trials to specs
        across interrupted runs, so it must not depend on
        ``PYTHONHASHSEED``, dict ordering or object identity.

        ``trials`` is deliberately excluded: trial ``i`` is bit-identical
        regardless of how many trials the spec asks for (see
        :func:`trial_seed`), so re-running a grid with a *larger* trial
        count must still restore the trials already journaled.

        Fields added after the wire format shipped (``coverage_model``,
        ``FuzzerConfig.scenario``, ``MABFuzzConfig.reward_weights``) are
        stripped at their default values, so a spec that does not use them
        fingerprints exactly as it did before they existed -- journals
        written by earlier versions keep resuming.
        """
        canonical = _canonical(self)
        del canonical["trials"]
        if canonical.get("coverage_model") == "base":
            del canonical["coverage_model"]
        fuzzer_config = canonical.get("fuzzer_config")
        if isinstance(fuzzer_config, dict) and fuzzer_config.get("scenario") == "user":
            del fuzzer_config["scenario"]
        if isinstance(fuzzer_config, dict) and fuzzer_config.get("corpus") is False:
            del fuzzer_config["corpus"]
        mab_config = canonical.get("mab_config")
        if isinstance(mab_config, dict) and mab_config.get("reward_weights") is None:
            del mab_config["reward_weights"]
        payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()

    def describe(self) -> str:
        """Short human-readable label (used in journals and progress lines)."""
        return (f"{self.fuzzer}@{self.processor}"
                f" tests={self.num_tests} trials={self.trials} seed={self.seed}")

    # ------------------------------------------------------------- wire format
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (inverse of :meth:`from_dict`).

        This is the *task* side of the distributed wire format: the spool
        queue ships specs to workers as these dictionaries, the mirror
        image of ``FuzzCampaignResult.to_dict()`` on the result side.
        """
        return {
            "processor": self.processor,
            "fuzzer": self.fuzzer,
            "num_tests": self.num_tests,
            "trials": self.trials,
            "seed": self.seed,
            "bugs": list(self.bugs) if self.bugs is not None else None,
            "fuzzer_config": _fuzzer_config_to_dict(self.fuzzer_config),
            "mab_config": _mab_config_to_dict(self.mab_config),
            "coverage_model": self.coverage_model,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output (fingerprint-stable)."""
        bugs = data.get("bugs")
        return cls(
            processor=str(data["processor"]),
            fuzzer=str(data["fuzzer"]),
            num_tests=int(data["num_tests"]),
            trials=int(data["trials"]),
            seed=int(data["seed"]),
            bugs=[str(bug) for bug in bugs] if bugs is not None else None,
            fuzzer_config=_fuzzer_config_from_dict(data.get("fuzzer_config")),
            mab_config=_mab_config_from_dict(data.get("mab_config")),
            # Absent in payloads written before the trap/CSR subsystem.
            coverage_model=str(data.get("coverage_model", "base")),
        )


def _canonical(obj: object) -> object:
    """Reduce ``obj`` to a JSON-serializable canonical form for hashing."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__type__": type(obj).__name__,
                **{f.name: _canonical(getattr(obj, f.name))
                   for f in dataclasses.fields(obj)}}
    if isinstance(obj, Enum):
        return str(obj.value)
    if isinstance(obj, dict):
        return {str(_canonical(key)): _canonical(value)
                for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = [_canonical(item) for item in obj]
        return sorted(items, key=repr) if isinstance(obj, (set, frozenset)) else items
    return obj


def _generator_config_to_dict(config: Optional[GeneratorConfig]
                              ) -> Optional[Dict[str, object]]:
    if config is None:
        return None
    return {
        "min_instructions": config.min_instructions,
        "max_instructions": config.max_instructions,
        "class_weights": {cls.name: weight
                          for cls, weight in config.class_weights.items()},
        "register_pool": list(config.register_pool),
        "wide_register_prob": config.wide_register_prob,
        "valid_memory_prob": config.valid_memory_prob,
        "illegal_word_prob": config.illegal_word_prob,
        "profile_concentration": config.profile_concentration,
        "randomize_profile": config.randomize_profile,
    }


def _generator_config_from_dict(data: Optional[Dict[str, object]]
                                ) -> Optional[GeneratorConfig]:
    if data is None:
        return None
    return GeneratorConfig(
        min_instructions=int(data["min_instructions"]),
        max_instructions=int(data["max_instructions"]),
        class_weights={InstrClass[name]: float(weight)
                       for name, weight in data["class_weights"].items()},
        register_pool=tuple(int(reg) for reg in data["register_pool"]),
        wide_register_prob=float(data["wide_register_prob"]),
        valid_memory_prob=float(data["valid_memory_prob"]),
        illegal_word_prob=float(data["illegal_word_prob"]),
        profile_concentration=float(data["profile_concentration"]),
        randomize_profile=bool(data["randomize_profile"]),
    )


def _fuzzer_config_to_dict(config: Optional[FuzzerConfig]
                           ) -> Optional[Dict[str, object]]:
    if config is None:
        return None
    return {
        "num_seeds": config.num_seeds,
        "mutants_per_test": config.mutants_per_test,
        "generator_config": _generator_config_to_dict(config.generator_config),
        "mutation_weights": (dict(config.mutation_weights)
                             if config.mutation_weights is not None else None),
        "max_program_steps": config.max_program_steps,
        "scenario": config.scenario,
        "corpus": config.corpus,
    }


def _fuzzer_config_from_dict(data: Optional[Dict[str, object]]
                             ) -> Optional[FuzzerConfig]:
    if data is None:
        return None
    steps = data.get("max_program_steps")
    weights = data.get("mutation_weights")
    return FuzzerConfig(
        num_seeds=int(data["num_seeds"]),
        mutants_per_test=int(data["mutants_per_test"]),
        generator_config=_generator_config_from_dict(data.get("generator_config")),
        mutation_weights=({str(op): float(w) for op, w in weights.items()}
                          if weights is not None else None),
        max_program_steps=int(steps) if steps is not None else None,
        # Absent in payloads written before the trap/CSR subsystem.
        scenario=str(data.get("scenario", "user")),
        # Absent in payloads written before the corpus subsystem.
        corpus=bool(data.get("corpus", False)),
    )


def _mab_config_to_dict(config: Optional[MABFuzzConfig]
                        ) -> Optional[Dict[str, object]]:
    if config is None:
        return None
    return {f.name: getattr(config, f.name)
            for f in dataclasses.fields(config)}


def _mab_config_from_dict(data: Optional[Dict[str, object]]
                          ) -> Optional[MABFuzzConfig]:
    if data is None:
        return None
    return MABFuzzConfig(**data)


def trial_seed(spec: CampaignSpec, trial_index: int) -> int:
    """Derive the RNG seed of trial ``trial_index`` of ``spec``.

    The seed is spread through BLAKE2b over ``(processor, fuzzer, base
    seed, trial)``, so specs that share a base seed (the experiment grids
    all do) still get statistically independent streams per cell -- the
    pre-parallel scheme ``seed + trial_index`` made trial 1 of ``seed=0``
    identical to trial 0 of ``seed=1`` for the same (processor, fuzzer).

    Compatibility note: results produced before the parallel-execution
    subsystem (PR 2) used ``spec.seed + trial_index`` and are not
    seed-comparable with results produced after it.
    """
    if trial_index < 0:
        raise ValueError("trial_index must be non-negative")
    key = f"{spec.processor}\x1f{spec.fuzzer}\x1f{spec.seed}\x1f{trial_index}"
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") & (2**63 - 1)


@dataclass
class TrialSet:
    """The results of all trials of one campaign specification.

    ``results`` may be *partial* after a checkpoint resume: entries can be
    missing (shorter list) or ``None`` (a hole for a not-yet-run trial
    index).  Every aggregate helper operates on :meth:`completed_results`
    so a partially restored set never crashes the metrics layer.
    """

    spec: CampaignSpec
    results: List[Optional[FuzzCampaignResult]] = field(default_factory=list)

    @property
    def fuzzer_name(self) -> str:
        return self.spec.fuzzer

    @property
    def processor(self) -> str:
        return self.spec.processor

    def completed_results(self) -> List[FuzzCampaignResult]:
        """The trials that actually ran (skips ``None`` placeholders)."""
        return [r for r in self.results if r is not None]

    @property
    def num_trials(self) -> int:
        """Number of completed trials (may be < ``spec.trials`` after resume)."""
        return len(self.completed_results())

    @property
    def is_complete(self) -> bool:
        """Whether every trial the spec asks for has a result."""
        return self.num_trials >= self.spec.trials

    def missing_trials(self) -> List[int]:
        """Trial indices that still need to run to complete the spec."""
        return [i for i in range(self.spec.trials)
                if i >= len(self.results) or self.results[i] is None]

    def mean_coverage_count(self) -> float:
        completed = self.completed_results()
        if not completed:
            return 0.0
        return sum(r.coverage_count for r in completed) / len(completed)

    def mean_coverage_percent(self) -> float:
        completed = self.completed_results()
        if not completed:
            return 0.0
        return sum(r.coverage_percent for r in completed) / len(completed)

    def detection_tests(self, bug_id: str) -> List[Optional[int]]:
        """Per-completed-trial tests-to-detection for ``bug_id``.

        ``None`` entries mean *ran but did not detect*; trials that have
        not run at all (resume holes) are excluded entirely, since they say
        nothing about detectability.
        """
        return [r.detection_tests(bug_id) for r in self.completed_results()]


def run_campaign(spec: CampaignSpec, trial_index: int = 0,
                 dut_cache: Optional["DutRunCache"] = None,
                 golden_fallback: Optional["GoldenTraceCache"] = None,
                 corpus_state: Optional[Dict[str, object]] = None,
                 corpus_sink=None) -> FuzzCampaignResult:
    """Run a single trial of ``spec`` and return its result.

    ``dut_cache`` optionally routes DUT runs through a
    :class:`~repro.exec.cache.DutRunCache` (the parallel workers install a
    process-local one), and ``golden_fallback`` chains a shared golden-trace
    cache behind the trial's own session cache; neither ever changes
    results -- only wall-clock -- and the session's golden-cache counters
    (which *are* result metadata) stay per-trial either way.

    When the spec enables corpus mode (``FuzzerConfig.corpus``),
    ``corpus_state`` is a :meth:`~repro.fuzzing.corpus.CorpusManager.
    to_payload` dict of accumulated state merged into the trial's corpus
    before it runs (the feedback from earlier trials / other workers),
    and ``corpus_sink`` is called with the trial's full corpus payload
    after it finishes so the caller can fold the trial's discoveries back.
    Both are ignored for corpus-off specs.
    """
    seed = trial_seed(spec, trial_index)
    with program_id_scope():  # ids restart at 0: results are process-independent
        dut = make_processor(spec.processor, bugs=spec.bugs,
                             coverage_model=spec.coverage_model)
        fuzzer = make_fuzzer(
            spec.fuzzer, dut,
            fuzzer_config=spec.fuzzer_config,
            mab_config=spec.mab_config,
            rng=seed,
        )
        if dut_cache is not None:
            fuzzer.session.dut_cache = dut_cache
        if golden_fallback is not None:
            fuzzer.session.golden_cache.fallback = golden_fallback
        if fuzzer.corpus is not None:
            if corpus_state:
                fuzzer.corpus.merge_payload(corpus_state)
            fuzzer.on_corpus_state()
        result = fuzzer.run(spec.num_tests,
                            metadata={"trial": trial_index, "seed": seed})
        if fuzzer.corpus is not None and corpus_sink is not None:
            corpus_sink(fuzzer.corpus.to_payload())
        return result


def run_trials(spec: CampaignSpec,
               backend: Optional["ExecutionBackend"] = None,
               checkpoint: Optional[str] = None) -> TrialSet:
    """Run every trial of ``spec`` and collect the results.

    With the default arguments this runs serially in-process exactly as it
    always did.  Passing ``backend`` shards the trials across it (e.g.
    ``ProcessPoolBackend(workers=4)``), and ``checkpoint`` names a JSONL
    journal so an interrupted run resumes from completed trials -- see
    ``docs/parallel.md``.
    """
    if backend is None and checkpoint is None:
        results = [run_campaign(spec, trial) for trial in range(spec.trials)]
        return TrialSet(spec=spec, results=results)
    from repro.exec.engine import CampaignEngine  # local import: cycle

    engine = CampaignEngine(backend=backend, checkpoint_path=checkpoint)
    return engine.run_grid([spec])[0]
