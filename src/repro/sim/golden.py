"""The golden reference model and the shared program-run loop.

:class:`ModelBase` owns the run loop (load program, step until halt, collect
the commit trace); :class:`GoldenModel` is the reference instantiation using
the plain :class:`~repro.sim.executor.Executor`.  DUT models
(:mod:`repro.rtl`) reuse the same run loop with an instrumented executor, so
that a defect-free DUT is trace-identical to the golden model by
construction -- exactly the property differential testing relies on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.isa.compiled import (compile_program, dirty_word_span,
                                superblocks_enabled, superblocks_for)
from repro.isa.program import TestProgram
from repro.sim.executor import Executor, ExecutorConfig
from repro.sim.memory import DEFAULT_LAYOUT, Memory, MemoryLayout
from repro.sim.state import ArchState
from repro.sim.trace import ExecutionResult, HaltReason


class ModelBase:
    """Shared run loop for golden and DUT models."""

    #: human-readable model name (overridden by DUTs).
    name = "model"

    def __init__(self, executor_config: Optional[ExecutorConfig] = None,
                 layout: MemoryLayout = DEFAULT_LAYOUT) -> None:
        self.executor_config = executor_config or ExecutorConfig()
        self.layout = layout

    # ------------------------------------------------------------------ factory
    def _make_executor(self, state: ArchState, memory: Memory) -> Executor:
        """Build the executor used for one program run (overridden by DUTs)."""
        return Executor(state, memory, self.executor_config)

    def _prepare_run(self, executor: Executor, program: TestProgram) -> None:
        """Hook called before stepping begins (DUTs reset microarch state here)."""

    def _finish_run(self, executor: Executor, result: ExecutionResult) -> None:
        """Hook called after the run completes."""

    # ---------------------------------------------------------------------- run
    def run(self, program: TestProgram,
            max_steps: Optional[int] = None) -> ExecutionResult:
        """Execute ``program`` to completion and return its commit trace.

        The loop is driven by the program's **compiled trace**
        (:func:`repro.isa.compiled.compile_program`): an in-range, aligned
        ``pc`` indexes straight into the pre-decoded ``(word, instr,
        handler)`` entries and skips fetch + decode entirely.  On top of
        that, straight-line runs dispatch as fused **superblocks**
        (:func:`repro.isa.compiled.superblocks_for` /
        :meth:`Executor.run_block`), retiring a whole run per loop
        iteration.  A block is dispatched only when its preconditions
        hold; otherwise the loop degrades gracefully, one level at a time:

        * fewer than ``block.length`` steps remain under the step limit
          (a partial block replays per-entry, so step-limit truncation is
          bit-identical to the unfused loop), or the block overlaps a
          dirty word -> per-entry compiled dispatch;
        * a misaligned in-range ``pc`` (reachable via ``mret`` with a
          software-seeded ``mepc``) or a word some earlier store
          overwrote -> the generic fetch-and-decode :meth:`Executor.step`,
          whose semantics (including its trap behaviour) are unchanged.

        Committed stores that overlap the code window mark their word
        slots dirty (range math shared with the fused loops through
        :func:`repro.isa.compiled.dirty_word_span`), so self-modifying
        programs execute exactly as they always did -- a store into the
        middle of a fused block aborts it and every subsequent
        instruction is re-fetched.
        """
        memory = Memory(self.layout)
        memory.load_program_words(program.base_address, program.words())
        state = ArchState(pc=program.base_address)
        executor = self._make_executor(state, memory)
        self._prepare_run(executor, program)

        compiled = compile_program(program)
        entries = compiled.entries
        base_address = program.base_address
        limit = max_steps or self.executor_config.step_limit
        result = ExecutionResult()
        records = result.records
        end_address = compiled.end_address
        dirty_words: Optional[set] = None  # built lazily on first code store
        step_compiled = executor.step_compiled
        blocks = superblocks_for(program, compiled) if superblocks_enabled() else None
        run_block = executor.run_block
        while not executor.halted:
            pc = state.pc
            if pc == end_address:
                result.halt_reason = HaltReason.PROGRAM_END
                break
            if not (base_address <= pc < end_address):
                result.halt_reason = HaltReason.PC_OUT_OF_RANGE
                break
            if len(records) >= limit:
                result.halt_reason = HaltReason.STEP_LIMIT
                break
            offset = pc - base_address
            if offset & 3:
                record = executor.step()  # misaligned fetch: generic path
            else:
                index = offset >> 2
                if dirty_words is not None and index in dirty_words:
                    record = executor.step()  # overwritten word: re-fetch
                else:
                    if blocks is not None:
                        block = blocks.at(index)
                        if (block is not None
                                and block.length <= limit - len(records)
                                and (dirty_words is None
                                     or dirty_words.isdisjoint(block.word_set))):
                            span = run_block(block, records)
                            if span is not None:
                                if dirty_words is None:
                                    dirty_words = set()
                                dirty_words.update(range(span[0], span[1] + 1))
                            continue
                    record = step_compiled(entries[index])
            if record is not None:
                records.append(record)
                mem_addr = record.mem_addr
                if mem_addr is not None:
                    # Records carry mem_addr only for committed memory
                    # *writes* (stores, AMOs, successful SCs).
                    span = dirty_word_span(mem_addr, record.mem_size or 1,
                                           base_address, end_address)
                    if span is not None:
                        # The store overlapped the code window: its compiled
                        # entries are stale from the next fetch on.
                        if dirty_words is None:
                            dirty_words = set()
                        dirty_words.update(range(span[0], span[1] + 1))
        else:
            # Loop exited because the executor halted itself (e.g. ecall).
            if executor.halt_reason is not None:
                result.halt_reason = executor.halt_reason

        result.steps = len(result.records)
        result.final_registers = tuple(state.regs)
        result.final_csrs = dict(state.csrs)
        self._finish_run(executor, result)
        return result


class GoldenModel(ModelBase):
    """SPIKE-substitute: the architecturally correct reference model."""

    name = "golden"


class KeyedRunCache:
    """Bounded LRU cache of deterministic model runs, keyed by subclasses.

    Both the golden reference and the DUT models are deterministic
    functions of (program, step limit, model configuration), so their runs
    can be cached and shared.  Subclasses define what "model configuration"
    means by overriding :meth:`key`; everything else -- hit/miss/eviction
    counters, the LRU spill policy, stats -- is shared here so the two
    caches cannot drift apart.

    ``fallback`` optionally chains a second (usually longer-lived, e.g.
    process-level) cache behind this one: a miss here is served from the
    fallback before the model is actually run, and freshly computed runs
    are inserted into both levels.  The fallback keeps its own counters;
    this cache's ``hits``/``misses`` are unaffected by where a miss was
    ultimately served from, which is what keeps per-trial counter metadata
    independent of worker history (see ``docs/parallel.md``).

    Cached results are shared objects -- callers must treat them as
    read-only (every consumer does: the differential tester and the
    coverage database only read).
    """

    def __init__(self, max_entries: int = 4096,
                 fallback: Optional["KeyedRunCache"] = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.fallback = fallback
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(model: ModelBase, program: TestProgram, step_limit: int) -> Tuple:
        """Cache key for one run (overridden per cache flavour)."""
        raise NotImplementedError

    # ------------------------------------------------------------- primitives
    def lookup(self, key: Tuple):
        """Return the entry for ``key`` (or ``None``), updating counters/LRU."""
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        return None

    def insert(self, key: Tuple, result: object) -> None:
        """Store ``result`` under ``key``, spilling the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = result
            return
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = result

    def configure(self, max_entries: int) -> None:
        """Re-bound the cache, spilling LRU entries down to the new capacity."""
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------- runs
    def get_or_run(self, model: ModelBase, program: TestProgram,
                   max_steps: Optional[int] = None):
        """Return the cached run for ``program``, running ``model`` on a miss."""
        limit = max_steps or model.executor_config.step_limit
        key = self.key(model, program, limit)
        cached = self.lookup(key)
        if cached is not None:
            return cached
        result = None
        if self.fallback is not None:
            result = self.fallback.lookup(key)
        if result is None:
            result = model.run(program, max_steps)
            if self.fallback is not None:
                self.fallback.insert(key, result)
        self.insert(key, result)
        return result

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "entries": len(self._entries),
                "max_entries": self.max_entries}

    def __len__(self) -> int:
        return len(self._entries)


class GoldenTraceCache(KeyedRunCache):
    """Program-keyed cache of golden-model execution results.

    The golden model is deterministic: the commit trace depends only on the
    encoded program words, the load address and the step limit.  Campaigns
    re-run the same seed programs constantly (MABFuzz arms replay their
    seeds; duplicate mutants are common), so caching the golden trace halves
    the per-iteration simulation cost for every repeated program.

    ``hits`` / ``misses`` counters are surfaced in the fuzzing-session stats.
    """

    @staticmethod
    def key(model: ModelBase, program: TestProgram,
            step_limit: int) -> Tuple:
        """Cache key: program content hash + step limit + model configuration.

        The model's executor config and memory layout are part of the key so
        a cache shared between sessions can never serve a trace computed
        under a different golden-model configuration.
        """
        return (program.fingerprint(), step_limit,
                model.executor_config, model.layout)

    def get_or_run(self, model: ModelBase, program: TestProgram,
                   max_steps: Optional[int] = None) -> ExecutionResult:
        """Return the cached trace for ``program``, running ``model`` on a miss."""
        return super().get_or_run(model, program, max_steps)
