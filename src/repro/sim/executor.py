"""Instruction-set executor: the functional semantics of the modelled ISA.

The :class:`Executor` implements fetch/decode/execute for one hart.  It is
used directly by the golden model and subclassed by the DUT harness
(:mod:`repro.rtl.harness`), which overrides the protected hook methods
(``_decode``, ``_mem_load``, ``_csr_read``, ``_trap_cause``,
``_count_retirement`` ...) to inject microarchitectural behaviour, coverage
instrumentation and the paper's vulnerabilities.

Harness conventions (shared by the golden model and all DUTs so that a
*correct* DUT produces a bit-identical commit trace):

* Traps are recorded architecturally (mcause/mepc/mtval updated) and then
  execution resumes at the *next* instruction, modelling a bare-metal test
  harness whose trap handler skips the faulting instruction.
* ``ecall`` ends the test.
* Every executed instruction increments ``minstret`` and ``mcycle`` by one.
* A program halts when the pc leaves the program body, when the step limit
  is reached, or at ``ecall``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa import csr as csrdefs
from repro.isa.decoder import decode_word
from repro.isa.encoding import InstrClass, InstrFormat, spec_for
from repro.isa.exceptions import Trap, TrapCause
from repro.isa.instruction import Instruction
from repro.sim.memory import Memory
from repro.sim.state import ArchState
from repro.sim.trace import CommitRecord, HaltReason
from repro.utils.bits import MASK64, sign_extend, to_signed, to_unsigned


@dataclass(frozen=True)
class ExecutorConfig:
    """Execution-policy knobs shared by golden and DUT models."""

    step_limit: int = 512
    count_trapped_instructions: bool = True


_LOAD_SIZES = {
    "lb": (1, True), "lh": (2, True), "lw": (4, True), "ld": (8, True),
    "lbu": (1, False), "lhu": (2, False), "lwu": (4, False),
}
_STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}


class Executor:
    """Functional executor for one hart over an :class:`ArchState` + :class:`Memory`."""

    def __init__(self, state: ArchState, memory: Memory,
                 config: Optional[ExecutorConfig] = None) -> None:
        self.state = state
        self.memory = memory
        self.config = config or ExecutorConfig()
        self.halted = False
        self.halt_reason: Optional[HaltReason] = None
        self._step_index = 0

    # =================================================================== hooks
    # The DUT harness overrides these to model decode defects, cache effects,
    # coverage emission and the injected vulnerabilities.

    def _decode(self, word: int, pc: int) -> Instruction:
        return decode_word(word)

    def _mem_load(self, address: int, size: int, signed: bool,
                  instr: Instruction) -> int:
        return self.memory.load(address, size, signed)

    def _mem_store(self, address: int, value: int, size: int,
                   instr: Instruction) -> None:
        self.memory.store(address, value, size)

    def _csr_read(self, address: int, instr: Instruction) -> int:
        return self.state.read_csr(address)

    def _csr_write(self, address: int, value: int, instr: Instruction) -> None:
        self.state.write_csr(address, value)

    def _trap_cause(self, trap: Trap, instr: Instruction, pc: int) -> Optional[Trap]:
        """Map a raised trap to the trap that is architecturally reported.

        Returning ``None`` suppresses the trap entirely (the instruction then
        commits as a no-op writing 0 to ``rd`` if it has one) -- this models
        defects such as V5 where an exception is silently swallowed.
        """
        return trap

    def _count_retirement(self, instr: Instruction, trapped: bool) -> None:
        if trapped and not self.config.count_trapped_instructions:
            self.state.csrs[csrdefs.MCYCLE] = (
                self.state.csrs[csrdefs.MCYCLE] + 1) & MASK64
            return
        self.state.increment_counters(instret=1, cycles=1)

    def _observe_commit(self, record: CommitRecord, instr: Instruction) -> CommitRecord:
        """Called after each commit; DUTs use it for coverage and bug effects."""
        return record

    # =================================================================== fetch
    def step(self) -> Optional[CommitRecord]:
        """Execute one instruction; return its commit record (or ``None`` if halted)."""
        if self.halted:
            return None
        pc = self.state.pc
        try:
            word = self.memory.fetch_word(pc)
        except Trap as trap:
            record = self._commit_trap(pc, 0, Instruction.illegal(0), trap)
            self.halted = True
            self.halt_reason = HaltReason.PC_OUT_OF_RANGE
            return record
        instr = self._decode(word, pc)
        try:
            record = self._execute(instr, pc, word)
        except Trap as trap:
            reported = self._trap_cause(trap, instr, pc)
            if reported is None:
                record = self._commit_suppressed_trap(pc, word, instr)
            else:
                record = self._commit_trap(pc, word, instr, reported)
        self._count_retirement(instr, trapped=record.trap is not None)
        record = self._observe_commit(record, instr)
        self.state.pc = record.next_pc
        self._step_index += 1
        if instr.mnemonic == "ecall":
            self.halted = True
            self.halt_reason = HaltReason.ECALL
        return record

    # ============================================================ trap commits
    def _commit_trap(self, pc: int, word: int, instr: Instruction,
                     trap: Trap) -> CommitRecord:
        self.state.csrs[csrdefs.MEPC] = pc
        self.state.csrs[csrdefs.MCAUSE] = int(trap.cause)
        self.state.csrs[csrdefs.MTVAL] = trap.tval & MASK64
        return CommitRecord(
            step=self._step_index, pc=pc, word=word, mnemonic=instr.mnemonic,
            trap=trap.cause, next_pc=(pc + 4) & MASK64,
        )

    def _commit_suppressed_trap(self, pc: int, word: int,
                                instr: Instruction) -> CommitRecord:
        """Commit an instruction whose trap was (incorrectly) suppressed."""
        rd = instr.rd if not instr.is_illegal and spec_for(instr.mnemonic).writes_rd else None
        rd_value = None
        if rd is not None:
            self.state.write_reg(rd, 0)
            rd_value = 0 if rd != 0 else None
            rd = rd if rd != 0 else None
        return CommitRecord(
            step=self._step_index, pc=pc, word=word, mnemonic=instr.mnemonic,
            rd=rd, rd_value=rd_value, next_pc=(pc + 4) & MASK64,
        )

    # ================================================================= execute
    def _execute(self, instr: Instruction, pc: int, word: int) -> CommitRecord:
        if instr.is_illegal:
            raise Trap(TrapCause.ILLEGAL_INSTRUCTION, tval=word)
        mnemonic = instr.mnemonic
        spec = spec_for(mnemonic)
        cls = spec.cls

        if cls in (InstrClass.ARITH, InstrClass.LOGIC, InstrClass.SHIFT,
                   InstrClass.COMPARE, InstrClass.MUL, InstrClass.DIV):
            return self._exec_alu(instr, pc, word, spec)
        if cls is InstrClass.LOAD:
            return self._exec_load(instr, pc, word)
        if cls is InstrClass.STORE:
            return self._exec_store(instr, pc, word)
        if cls is InstrClass.BRANCH:
            return self._exec_branch(instr, pc, word)
        if cls is InstrClass.JUMP:
            return self._exec_jump(instr, pc, word)
        if cls is InstrClass.CSR:
            return self._exec_csr(instr, pc, word, spec)
        if cls is InstrClass.SYSTEM:
            return self._exec_system(instr, pc, word)
        if cls is InstrClass.FENCE:
            return self._commit_simple(instr, pc, word)
        if cls is InstrClass.ATOMIC:
            return self._exec_atomic(instr, pc, word, spec)
        raise AssertionError(f"unhandled class {cls}")  # pragma: no cover

    # ------------------------------------------------------------------ helpers
    def _commit_rd(self, instr: Instruction, pc: int, word: int, value: int,
                   next_pc: Optional[int] = None, mem_addr: Optional[int] = None,
                   mem_value: Optional[int] = None,
                   mem_size: Optional[int] = None) -> CommitRecord:
        value &= MASK64
        self.state.write_reg(instr.rd, value)
        rd = instr.rd if instr.rd != 0 else None
        return CommitRecord(
            step=self._step_index, pc=pc, word=word, mnemonic=instr.mnemonic,
            rd=rd, rd_value=value if rd is not None else None,
            mem_addr=mem_addr, mem_value=mem_value, mem_size=mem_size,
            next_pc=(pc + 4) & MASK64 if next_pc is None else next_pc & MASK64,
        )

    def _commit_simple(self, instr: Instruction, pc: int, word: int,
                       next_pc: Optional[int] = None) -> CommitRecord:
        return CommitRecord(
            step=self._step_index, pc=pc, word=word, mnemonic=instr.mnemonic,
            next_pc=(pc + 4) & MASK64 if next_pc is None else next_pc & MASK64,
        )

    # ---------------------------------------------------------------------- ALU
    def _exec_alu(self, instr: Instruction, pc: int, word: int, spec) -> CommitRecord:
        mnemonic = instr.mnemonic
        if mnemonic == "lui":
            return self._commit_rd(instr, pc, word, sign_extend(instr.imm << 12, 32))
        if mnemonic == "auipc":
            return self._commit_rd(instr, pc, word, pc + sign_extend(instr.imm << 12, 32))

        rs1 = self.state.read_reg(instr.rs1)
        if spec.fmt in (InstrFormat.I, InstrFormat.I_SHIFT):
            rs2 = instr.imm
            immediate = True
        else:
            rs2 = self.state.read_reg(instr.rs2)
            immediate = False
        value = self._alu_value(mnemonic, rs1, rs2, immediate)
        return self._commit_rd(instr, pc, word, value)

    def _alu_value(self, mnemonic: str, rs1: int, rs2: int, immediate: bool) -> int:
        s1, s2 = to_signed(rs1), to_signed(rs2)
        u1, u2 = to_unsigned(rs1), to_unsigned(rs2)
        base = mnemonic.rstrip("i") if immediate and not mnemonic.endswith("iw") else mnemonic
        if immediate:
            base = {"addi": "add", "slti": "slt", "sltiu": "sltu", "xori": "xor",
                    "ori": "or", "andi": "and", "slli": "sll", "srli": "srl",
                    "srai": "sra", "addiw": "addw", "slliw": "sllw",
                    "srliw": "srlw", "sraiw": "sraw"}.get(mnemonic, mnemonic)
        word_op = base.endswith("w") and base not in ("sltu",)

        if word_op:
            w1 = sign_extend(rs1 & 0xFFFF_FFFF, 32)
            w2 = sign_extend(rs2 & 0xFFFF_FFFF, 32)
            shamt = rs2 & 0x1F
            if base == "addw":
                result = w1 + w2
            elif base == "subw":
                result = w1 - w2
            elif base == "sllw":
                result = (rs1 & 0xFFFF_FFFF) << shamt
            elif base == "srlw":
                result = (rs1 & 0xFFFF_FFFF) >> shamt
            elif base == "sraw":
                result = w1 >> shamt
            elif base == "mulw":
                result = w1 * w2
            elif base == "divw":
                result = self._div(w1, w2, signed=True, bits=32)
            elif base == "divuw":
                result = self._div(rs1 & 0xFFFF_FFFF, rs2 & 0xFFFF_FFFF,
                                   signed=False, bits=32)
            elif base == "remw":
                result = self._rem(w1, w2, signed=True, bits=32)
            elif base == "remuw":
                result = self._rem(rs1 & 0xFFFF_FFFF, rs2 & 0xFFFF_FFFF,
                                   signed=False, bits=32)
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unhandled word op {base}")
            return sign_extend(result & 0xFFFF_FFFF, 32) & MASK64

        shamt = rs2 & 0x3F
        if base == "add":
            return (u1 + u2) & MASK64
        if base == "sub":
            return (u1 - u2) & MASK64
        if base == "sll":
            return (u1 << shamt) & MASK64
        if base == "slt":
            return 1 if s1 < s2 else 0
        if base == "sltu":
            return 1 if u1 < u2 else 0
        if base == "xor":
            return u1 ^ u2
        if base == "srl":
            return u1 >> shamt
        if base == "sra":
            return (s1 >> shamt) & MASK64
        if base == "or":
            return u1 | u2
        if base == "and":
            return u1 & u2
        if base == "mul":
            return (s1 * s2) & MASK64
        if base == "mulh":
            return ((s1 * s2) >> 64) & MASK64
        if base == "mulhsu":
            return ((s1 * u2) >> 64) & MASK64
        if base == "mulhu":
            return ((u1 * u2) >> 64) & MASK64
        if base == "div":
            return self._div(s1, s2, signed=True, bits=64) & MASK64
        if base == "divu":
            return self._div(u1, u2, signed=False, bits=64) & MASK64
        if base == "rem":
            return self._rem(s1, s2, signed=True, bits=64) & MASK64
        if base == "remu":
            return self._rem(u1, u2, signed=False, bits=64) & MASK64
        raise AssertionError(f"unhandled ALU op {base}")  # pragma: no cover

    @staticmethod
    def _div(dividend: int, divisor: int, signed: bool, bits: int) -> int:
        if divisor == 0:
            return -1 if signed else (1 << bits) - 1
        if signed and dividend == -(1 << (bits - 1)) and divisor == -1:
            return dividend
        quotient = abs(dividend) // abs(divisor)
        if signed and (dividend < 0) != (divisor < 0):
            quotient = -quotient
        return quotient

    @staticmethod
    def _rem(dividend: int, divisor: int, signed: bool, bits: int) -> int:
        if divisor == 0:
            return dividend
        if signed and dividend == -(1 << (bits - 1)) and divisor == -1:
            return 0
        remainder = abs(dividend) % abs(divisor)
        if signed and dividend < 0:
            remainder = -remainder
        return remainder

    # ------------------------------------------------------------------- memory
    def _exec_load(self, instr: Instruction, pc: int, word: int) -> CommitRecord:
        size, signed = _LOAD_SIZES[instr.mnemonic]
        address = (self.state.read_reg(instr.rs1) + instr.imm) & MASK64
        value = self._mem_load(address, size, signed, instr)
        return self._commit_rd(instr, pc, word, value)

    def _exec_store(self, instr: Instruction, pc: int, word: int) -> CommitRecord:
        size = _STORE_SIZES[instr.mnemonic]
        address = (self.state.read_reg(instr.rs1) + instr.imm) & MASK64
        value = self.state.read_reg(instr.rs2) & ((1 << (8 * size)) - 1)
        self._mem_store(address, value, size, instr)
        return CommitRecord(
            step=self._step_index, pc=pc, word=word, mnemonic=instr.mnemonic,
            mem_addr=address, mem_value=value, mem_size=size,
            next_pc=(pc + 4) & MASK64,
        )

    # ----------------------------------------------------------------- branches
    def _exec_branch(self, instr: Instruction, pc: int, word: int) -> CommitRecord:
        rs1 = self.state.read_reg(instr.rs1)
        rs2 = self.state.read_reg(instr.rs2)
        s1, s2 = to_signed(rs1), to_signed(rs2)
        taken = {
            "beq": rs1 == rs2,
            "bne": rs1 != rs2,
            "blt": s1 < s2,
            "bge": s1 >= s2,
            "bltu": rs1 < rs2,
            "bgeu": rs1 >= rs2,
        }[instr.mnemonic]
        target = (pc + instr.imm) & MASK64 if taken else (pc + 4) & MASK64
        if taken and target % 4 != 0:
            raise Trap(TrapCause.INSTRUCTION_ADDRESS_MISALIGNED, tval=target)
        return self._commit_simple(instr, pc, word, next_pc=target)

    def _exec_jump(self, instr: Instruction, pc: int, word: int) -> CommitRecord:
        if instr.mnemonic == "jal":
            target = (pc + instr.imm) & MASK64
        else:  # jalr
            target = (self.state.read_reg(instr.rs1) + instr.imm) & MASK64 & ~1
        if target % 4 != 0:
            raise Trap(TrapCause.INSTRUCTION_ADDRESS_MISALIGNED, tval=target)
        return self._commit_rd(instr, pc, word, pc + 4, next_pc=target)

    # ---------------------------------------------------------------------- CSR
    def _exec_csr(self, instr: Instruction, pc: int, word: int, spec) -> CommitRecord:
        address = instr.csr
        is_imm = spec.fmt is InstrFormat.CSR_IMM
        operand = (instr.imm & 0x1F) if is_imm else self.state.read_reg(instr.rs1)
        writes = True
        mnemonic = instr.mnemonic
        if mnemonic in ("csrrs", "csrrc", "csrrsi", "csrrci"):
            source_is_zero = (instr.imm & 0x1F) == 0 if is_imm else instr.rs1 == 0
            writes = not source_is_zero
        old_value = self._csr_read(address, instr)
        new_value = None
        if writes:
            if mnemonic in ("csrrw", "csrrwi"):
                new_value = operand
            elif mnemonic in ("csrrs", "csrrsi"):
                new_value = old_value | operand
            else:
                new_value = old_value & ~operand
            self._csr_write(address, new_value, instr)
        record = self._commit_rd(instr, pc, word, old_value)
        if new_value is not None:
            record = CommitRecord(
                step=record.step, pc=record.pc, word=record.word,
                mnemonic=record.mnemonic, rd=record.rd, rd_value=record.rd_value,
                csr_addr=address, csr_value=new_value & MASK64,
                next_pc=record.next_pc,
            )
        return record

    # ------------------------------------------------------------------- system
    def _exec_system(self, instr: Instruction, pc: int, word: int) -> CommitRecord:
        mnemonic = instr.mnemonic
        if mnemonic == "ecall":
            raise Trap(TrapCause.ECALL_FROM_M, tval=0)
        if mnemonic == "ebreak":
            raise Trap(TrapCause.BREAKPOINT, tval=pc)
        if mnemonic == "mret":
            return self._commit_simple(instr, pc, word,
                                       next_pc=self.state.csrs[csrdefs.MEPC])
        # wfi behaves as a nop in this harness.
        return self._commit_simple(instr, pc, word)

    # ------------------------------------------------------------------ atomics
    def _exec_atomic(self, instr: Instruction, pc: int, word: int, spec) -> CommitRecord:
        size = 4 if instr.mnemonic.endswith(".w") else 8
        signed = size == 4
        address = self.state.read_reg(instr.rs1) & MASK64
        base = instr.mnemonic.split(".")[0]
        if base == "lr":
            value = self._mem_load(address, size, signed, instr)
            self.state.reservation = address
            return self._commit_rd(instr, pc, word, value)
        if base == "sc":
            if self.state.reservation == address:
                value = self.state.read_reg(instr.rs2) & ((1 << (8 * size)) - 1)
                self._mem_store(address, value, size, instr)
                self.state.reservation = None
                return self._commit_rd(instr, pc, word, 0, mem_addr=address,
                                       mem_value=value, mem_size=size)
            self.state.reservation = None
            return self._commit_rd(instr, pc, word, 1)
        # AMO read-modify-write.
        old = self._mem_load(address, size, signed, instr)
        rs2 = self.state.read_reg(instr.rs2)
        if base == "amoswap":
            new = rs2
        elif base == "amoadd":
            new = old + rs2
        elif base == "amoxor":
            new = old ^ rs2
        elif base == "amoand":
            new = old & rs2
        elif base == "amoor":
            new = old | rs2
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unhandled AMO {base}")
        new &= (1 << (8 * size)) - 1
        self._mem_store(address, new, size, instr)
        return self._commit_rd(instr, pc, word, old, mem_addr=address,
                               mem_value=new, mem_size=size)
