"""Instruction-set executor: the functional semantics of the modelled ISA.

The :class:`Executor` implements fetch/decode/execute for one hart.  It is
used directly by the golden model and subclassed by the DUT harness
(:mod:`repro.rtl.harness`), which overrides the protected hook methods
(``_decode``, ``_mem_load``, ``_csr_read``, ``_trap_cause``,
``_count_retirement`` ...) to inject microarchitectural behaviour, coverage
instrumentation and the paper's vulnerabilities.

Execution is table-dispatched: every mnemonic's handler -- including its
canonical ALU operation, operand signedness and load/store width -- is
resolved **once** from the instruction-spec table when this module is
imported, not per step.  Handlers are closures that reach all overridable
behaviour (memory, CSRs, traps, retirement) through the ``self`` hook
methods, so a single shared dispatch table serves the golden executor and
every DUT subclass without changing their semantics.

Harness conventions (shared by the golden model and all DUTs so that a
*correct* DUT produces a bit-identical commit trace):

* Traps are recorded architecturally (mcause/mepc/mtval updated) and then
  execution resumes at the *next* instruction, modelling a bare-metal test
  harness whose trap handler skips the faulting instruction.
* ``ecall`` ends the test.
* Every executed instruction increments ``minstret`` and ``mcycle`` by one.
* A program halts when the pc leaves the program body, when the step limit
  is reached, or at ``ecall``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.isa import csr as csrdefs
from repro.isa.compiled import Superblock, dirty_word_span
from repro.isa.decoder import decode_word
from repro.isa.encoding import InstrClass, InstrFormat, SPECS, spec_for
from repro.isa.exceptions import Trap, TrapCause
from repro.isa.instruction import Instruction
from repro.sim.memory import Memory
from repro.sim.state import ArchState
from repro.sim.trace import CommitRecord, HaltReason
from repro.utils.bits import MASK64, sign_extend, to_signed, to_unsigned


@dataclass(frozen=True)
class ExecutorConfig:
    """Execution-policy knobs shared by golden and DUT models."""

    step_limit: int = 512
    count_trapped_instructions: bool = True


_LOAD_SIZES = {
    "lb": (1, True), "lh": (2, True), "lw": (4, True), "ld": (8, True),
    "lbu": (1, False), "lhu": (2, False), "lwu": (4, False),
}
_STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}


def _div(dividend: int, divisor: int, signed: bool, bits: int) -> int:
    if divisor == 0:
        return -1 if signed else (1 << bits) - 1
    if signed and dividend == -(1 << (bits - 1)) and divisor == -1:
        return dividend
    quotient = abs(dividend) // abs(divisor)
    if signed and (dividend < 0) != (divisor < 0):
        quotient = -quotient
    return quotient


def _rem(dividend: int, divisor: int, signed: bool, bits: int) -> int:
    if divisor == 0:
        return dividend
    if signed and dividend == -(1 << (bits - 1)) and divisor == -1:
        return 0
    remainder = abs(dividend) % abs(divisor)
    if signed and dividend < 0:
        remainder = -remainder
    return remainder


def _word_result(result: int) -> int:
    """32-bit result, sign-extended into the 64-bit register domain."""
    return sign_extend(result & 0xFFFF_FFFF, 32) & MASK64


def _w(value: int) -> int:
    """Low 32 bits of ``value`` as a signed Python integer."""
    return sign_extend(value & 0xFFFF_FFFF, 32)


# Canonical ALU operation -> value function.  Each takes the raw operand
# values (register reads are unsigned 64-bit; immediates may be negative
# Python ints) and returns the masked 64-bit result -- exactly the values the
# original per-step string-dispatched implementation produced.
_ALU_OPS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: (to_unsigned(a) + to_unsigned(b)) & MASK64,
    "sub": lambda a, b: (to_unsigned(a) - to_unsigned(b)) & MASK64,
    "sll": lambda a, b: (to_unsigned(a) << (b & 0x3F)) & MASK64,
    "slt": lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    "sltu": lambda a, b: 1 if to_unsigned(a) < to_unsigned(b) else 0,
    "xor": lambda a, b: to_unsigned(a) ^ to_unsigned(b),
    "srl": lambda a, b: to_unsigned(a) >> (b & 0x3F),
    "sra": lambda a, b: (to_signed(a) >> (b & 0x3F)) & MASK64,
    "or": lambda a, b: to_unsigned(a) | to_unsigned(b),
    "and": lambda a, b: to_unsigned(a) & to_unsigned(b),
    "mul": lambda a, b: (to_signed(a) * to_signed(b)) & MASK64,
    "mulh": lambda a, b: ((to_signed(a) * to_signed(b)) >> 64) & MASK64,
    "mulhsu": lambda a, b: ((to_signed(a) * to_unsigned(b)) >> 64) & MASK64,
    "mulhu": lambda a, b: ((to_unsigned(a) * to_unsigned(b)) >> 64) & MASK64,
    "div": lambda a, b: _div(to_signed(a), to_signed(b), True, 64) & MASK64,
    "divu": lambda a, b: _div(to_unsigned(a), to_unsigned(b), False, 64) & MASK64,
    "rem": lambda a, b: _rem(to_signed(a), to_signed(b), True, 64) & MASK64,
    "remu": lambda a, b: _rem(to_unsigned(a), to_unsigned(b), False, 64) & MASK64,
    "addw": lambda a, b: _word_result(_w(a) + _w(b)),
    "subw": lambda a, b: _word_result(_w(a) - _w(b)),
    "sllw": lambda a, b: _word_result((a & 0xFFFF_FFFF) << (b & 0x1F)),
    "srlw": lambda a, b: _word_result((a & 0xFFFF_FFFF) >> (b & 0x1F)),
    "sraw": lambda a, b: _word_result(_w(a) >> (b & 0x1F)),
    "mulw": lambda a, b: _word_result(_w(a) * _w(b)),
    "divw": lambda a, b: _word_result(_div(_w(a), _w(b), True, 32)),
    "divuw": lambda a, b: _word_result(
        _div(a & 0xFFFF_FFFF, b & 0xFFFF_FFFF, False, 32)),
    "remw": lambda a, b: _word_result(_rem(_w(a), _w(b), True, 32)),
    "remuw": lambda a, b: _word_result(
        _rem(a & 0xFFFF_FFFF, b & 0xFFFF_FFFF, False, 32)),
}

_BRANCH_OPS: Dict[str, Callable[[int, int], bool]] = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: to_signed(a) < to_signed(b),
    "bge": lambda a, b: to_signed(a) >= to_signed(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}

_AMO_OPS: Dict[str, Callable[[int, int], int]] = {
    "amoswap": lambda old, rs2: rs2,
    "amoadd": lambda old, rs2: old + rs2,
    "amoxor": lambda old, rs2: old ^ rs2,
    "amoand": lambda old, rs2: old & rs2,
    "amoor": lambda old, rs2: old | rs2,
}


class Executor:
    """Functional executor for one hart over an :class:`ArchState` + :class:`Memory`."""

    def __init__(self, state: ArchState, memory: Memory,
                 config: Optional[ExecutorConfig] = None) -> None:
        self.state = state
        self.memory = memory
        self.config = config or ExecutorConfig()
        self.halted = False
        self.halt_reason: Optional[HaltReason] = None
        self._step_index = 0

    # =================================================================== hooks
    # The DUT harness overrides these to model decode defects, cache effects,
    # coverage emission and the injected vulnerabilities.

    def _observe_decode(self, instr: Instruction, word: int, pc: int) -> Instruction:
        """Observe (and possibly replace) a decoded instruction.

        This is the post-decode hook shared by the fetch-and-decode path
        (:meth:`step`) and the pre-decoded compiled-trace path
        (:meth:`step_compiled`): DUTs emit fetch/decode coverage and give
        the injected bugs their ``on_decode`` shot here, so both paths
        instrument every commit identically.
        """
        return instr

    def _decode(self, word: int, pc: int) -> Instruction:
        return self._observe_decode(decode_word(word), word, pc)

    def _mem_load(self, address: int, size: int, signed: bool,
                  instr: Instruction) -> int:
        return self.memory.load(address, size, signed)

    def _mem_store(self, address: int, value: int, size: int,
                   instr: Instruction) -> None:
        self.memory.store(address, value, size)

    def _csr_read(self, address: int, instr: Instruction) -> int:
        return self.state.read_csr(address)

    def _csr_write(self, address: int, value: int, instr: Instruction) -> None:
        self.state.write_csr(address, value)

    def _trap_cause(self, trap: Trap, instr: Instruction, pc: int) -> Optional[Trap]:
        """Map a raised trap to the trap that is architecturally reported.

        Returning ``None`` suppresses the trap entirely (the instruction then
        commits as a no-op writing 0 to ``rd`` if it has one) -- this models
        defects such as V5 where an exception is silently swallowed.
        """
        return trap

    def _count_retirement(self, instr: Instruction, trapped: bool) -> None:
        if trapped and not self.config.count_trapped_instructions:
            self.state.csrs[csrdefs.MCYCLE] = (
                self.state.csrs[csrdefs.MCYCLE] + 1) & MASK64
            return
        self.state.increment_counters(instret=1, cycles=1)

    def _observe_commit(self, record: CommitRecord, instr: Instruction) -> CommitRecord:
        """Called after each commit; DUTs use it for coverage and bug effects."""
        return record

    # =================================================================== fetch
    def step(self) -> Optional[CommitRecord]:
        """Execute one instruction; return its commit record (or ``None`` if halted)."""
        if self.halted:
            return None
        pc = self.state.pc
        try:
            word = self.memory.fetch_word(pc)
        except Trap as trap:
            record = self._commit_trap(pc, 0, Instruction.illegal(0), trap)
            self.halted = True
            self.halt_reason = HaltReason.PC_OUT_OF_RANGE
            return record
        instr = self._decode(word, pc)
        return self._dispatch_step(instr, pc, word,
                                   _HANDLERS.get(instr.mnemonic))

    def step_compiled(self, entry: tuple) -> Optional[CommitRecord]:
        """Execute one pre-decoded instruction from a compiled trace.

        ``entry`` is a ``(word, instr, handler)`` tuple produced by
        :func:`repro.isa.compiled.compile_program`; the caller (the shared
        run loop in :mod:`repro.sim.golden`) guarantees it corresponds to
        the current ``pc`` and that the backing memory word is unmodified.
        Semantics are identical to :meth:`step` minus the fetch and decode:
        the decode-observation hook still runs (a bug may replace the
        instruction, in which case the pre-resolved handler is discarded).
        """
        if self.halted:
            return None
        word, instr, handler = entry
        pc = self.state.pc
        observed = self._observe_decode(instr, word, pc)
        if observed is not instr:
            instr = observed
            handler = _HANDLERS.get(instr.mnemonic)
        return self._dispatch_step(instr, pc, word, handler)

    def _dispatch_step(self, instr: Instruction, pc: int, word: int,
                       handler: Optional[Callable]) -> CommitRecord:
        """Execute + commit one decoded instruction (shared by both step paths)."""
        try:
            if handler is not None:
                record = handler(self, instr, pc, word)
            else:
                record = self._execute(instr, pc, word)
        except Trap as trap:
            reported = self._trap_cause(trap, instr, pc)
            if reported is None:
                record = self._commit_suppressed_trap(pc, word, instr)
            else:
                record = self._commit_trap(pc, word, instr, reported)
        self._count_retirement(instr, trapped=record.trap is not None)
        record = self._observe_commit(record, instr)
        self.state.pc = record.next_pc
        self._step_index += 1
        if instr.mnemonic == "ecall":
            self.halted = True
            self.halt_reason = HaltReason.ECALL
        return record

    # ============================================================ superblocks
    def run_block(self, block: Superblock, records: list) -> Optional[tuple]:
        """Execute one fused superblock from the current pc.

        The caller (the shared run loop in :mod:`repro.sim.golden`)
        guarantees the preconditions: ``state.pc`` is the block's leader
        address, none of the block's words are dirty, and at least
        ``block.length`` steps remain under the step limit.  Commit
        records are appended to ``records`` directly; ``state.pc`` is
        written once at block exit.  Returns the ``(first, last)``
        dirty-word span of a committed store that hit the code window --
        which aborts the block after that instruction, so every
        subsequent word is re-fetched -- or ``None``.

        This base implementation fuses the *base* semantics: handler
        call, trap commit, retirement counters.  It bypasses the
        per-step hook methods (``_observe_decode``, ``_trap_cause``,
        ``_count_retirement``, ``_observe_commit``), which are identity
        no-ops here; any subclass that overrides a hook MUST also
        override :meth:`run_block` (with a fused loop of its own, or by
        delegating to :meth:`run_block_generic`, which routes every entry
        through the hooks).
        """
        state = self.state
        csrs = state.csrs
        pc = state.pc
        base_address = block.base_address
        end_address = block.end_address
        count_trapped = self.config.count_trapped_instructions
        append = records.append
        dirtied = None
        # Retirement counters are batched: nothing before a block's tail
        # can read MINSTRET/MCYCLE, so one pair of dict writes at block
        # exit replaces two per entry.  A CSR tail *can* read (or write)
        # them, so the batch is flushed -- and restarted -- right before
        # the tail entry executes; ``commits`` equals the entry index, so
        # the flush triggers exactly there.
        flush_at = block.length - 1 if block.csr_tail else -1
        commits = 0
        uncounted = 0  # trapped commits excluded from minstret
        for word, instr, handler in block.entries:
            if commits == flush_at:
                csrs[csrdefs.MINSTRET] = (
                    csrs[csrdefs.MINSTRET] + commits - uncounted) & MASK64
                csrs[csrdefs.MCYCLE] = (csrs[csrdefs.MCYCLE] + commits) & MASK64
                commits = 0
                uncounted = 0
                flush_at = -1
            try:
                record = handler(self, instr, pc, word)
            except Trap as trap:
                csrs[csrdefs.MEPC] = pc
                csrs[csrdefs.MCAUSE] = int(trap.cause)
                csrs[csrdefs.MTVAL] = trap.tval & MASK64
                record = CommitRecord(
                    step=self._step_index, pc=pc, word=word,
                    mnemonic=instr.mnemonic, trap=trap.cause,
                    next_pc=(pc + 4) & MASK64, trap_tval=trap.tval & MASK64)
                if not count_trapped:
                    uncounted += 1
            commits += 1
            append(record)
            self._step_index += 1
            pc += 4
            mem_addr = record.mem_addr
            if mem_addr is not None:
                dirtied = dirty_word_span(mem_addr, record.mem_size or 1,
                                          base_address, end_address)
                if dirtied is not None:
                    break  # store hit the code window: stop fused execution
        csrs[csrdefs.MINSTRET] = (csrs[csrdefs.MINSTRET] + commits - uncounted) & MASK64
        csrs[csrdefs.MCYCLE] = (csrs[csrdefs.MCYCLE] + commits) & MASK64
        if block.tail_redirect and dirtied is None:
            # The tail branch/jump ran: its record carries the exit pc
            # (the redirect target, or pc + 4 for not-taken and trapped
            # tails -- trap records commit ``next_pc == pc + 4`` too).
            state.pc = record.next_pc
        else:
            state.pc = pc & MASK64
        return dirtied

    def run_block_generic(self, block: Superblock, records: list) -> Optional[tuple]:
        """Hook-preserving superblock execution: per-entry via :meth:`step_compiled`.

        Semantically identical to the shared run loop's per-entry path --
        every decode/trap/commit hook fires -- just without re-checking
        bounds/alignment/dirtiness between entries (the block's
        preconditions cover those).  Stops early, returning control to the
        outer loop, when an entry halts the hart, redirects the pc (a bug
        replacing an instruction can turn a fusable entry into a jump), or
        dirties part of the code window (returning the dirty span, like
        :meth:`run_block`).
        """
        step_compiled = self.step_compiled
        base_address = block.base_address
        end_address = block.end_address
        for entry in block.entries:
            pc = self.state.pc
            record = step_compiled(entry)
            if record is None:  # halted before the entry ran
                break
            records.append(record)
            mem_addr = record.mem_addr
            if mem_addr is not None:
                span = dirty_word_span(mem_addr, record.mem_size or 1,
                                       base_address, end_address)
                if span is not None:
                    return span
            if self.halted or record.next_pc != (pc + 4) & MASK64:
                break
        return None

    # ============================================================ trap commits
    def _commit_trap(self, pc: int, word: int, instr: Instruction,
                     trap: Trap) -> CommitRecord:
        self.state.csrs[csrdefs.MEPC] = pc
        self.state.csrs[csrdefs.MCAUSE] = int(trap.cause)
        self.state.csrs[csrdefs.MTVAL] = trap.tval & MASK64
        return CommitRecord(
            step=self._step_index, pc=pc, word=word, mnemonic=instr.mnemonic,
            trap=trap.cause, next_pc=(pc + 4) & MASK64,
            trap_tval=trap.tval & MASK64,
        )

    def _commit_suppressed_trap(self, pc: int, word: int,
                                instr: Instruction) -> CommitRecord:
        """Commit an instruction whose trap was (incorrectly) suppressed."""
        rd = instr.rd if not instr.is_illegal and spec_for(instr.mnemonic).writes_rd else None
        rd_value = None
        if rd is not None:
            self.state.write_reg(rd, 0)
            rd_value = 0 if rd != 0 else None
            rd = rd if rd != 0 else None
        return CommitRecord(
            step=self._step_index, pc=pc, word=word, mnemonic=instr.mnemonic,
            rd=rd, rd_value=rd_value, next_pc=(pc + 4) & MASK64,
        )

    # ================================================================= execute
    def _execute(self, instr: Instruction, pc: int, word: int) -> CommitRecord:
        handler = _HANDLERS.get(instr.mnemonic)
        if handler is None:
            if instr.is_illegal:
                raise Trap(TrapCause.ILLEGAL_INSTRUCTION, tval=word)
            raise KeyError(f"unknown mnemonic: {instr.mnemonic!r}")
        return handler(self, instr, pc, word)

    # ------------------------------------------------------------------ helpers
    def _commit_rd(self, instr: Instruction, pc: int, word: int, value: int,
                   next_pc: Optional[int] = None, mem_addr: Optional[int] = None,
                   mem_value: Optional[int] = None,
                   mem_size: Optional[int] = None) -> CommitRecord:
        value &= MASK64
        rd = instr.rd if instr.rd != 0 else None
        if rd is not None:  # write_reg inlined: x0 stays hardwired to zero
            self.state.regs[rd] = value
        return CommitRecord(
            step=self._step_index, pc=pc, word=word, mnemonic=instr.mnemonic,
            rd=rd, rd_value=value if rd is not None else None,
            mem_addr=mem_addr, mem_value=mem_value, mem_size=mem_size,
            next_pc=(pc + 4) & MASK64 if next_pc is None else next_pc & MASK64,
        )

    def _commit_simple(self, instr: Instruction, pc: int, word: int,
                       next_pc: Optional[int] = None) -> CommitRecord:
        return CommitRecord(
            step=self._step_index, pc=pc, word=word, mnemonic=instr.mnemonic,
            next_pc=(pc + 4) & MASK64 if next_pc is None else next_pc & MASK64,
        )

    # --------------------------------------------------------- compatibility
    def _alu_value(self, mnemonic: str, rs1: int, rs2: int, immediate: bool) -> int:
        """Value of one ALU operation (kept for tests/tools; not on the hot path)."""
        spec = spec_for(mnemonic)
        alu_op = spec.alu_op if spec.alu_op is not None else mnemonic
        return _ALU_OPS[alu_op](rs1, rs2)

    @staticmethod
    def _div(dividend: int, divisor: int, signed: bool, bits: int) -> int:
        return _div(dividend, divisor, signed, bits)

    @staticmethod
    def _rem(dividend: int, divisor: int, signed: bool, bits: int) -> int:
        return _rem(dividend, divisor, signed, bits)


# ============================================================ handler factory
# One handler closure per mnemonic, specialised at import time with
# everything that is static per instruction (ALU op, operand source,
# load/store width, branch comparator, AMO op, CSR flavour).  Handlers call
# all overridable behaviour through ``self`` hook methods, so the table is
# shared by the golden Executor and every DUT subclass.

def _make_lui_handler():
    def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
        return self._commit_rd(instr, pc, word, sign_extend(instr.imm << 12, 32))
    return execute


def _make_auipc_handler():
    def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
        return self._commit_rd(instr, pc, word, pc + sign_extend(instr.imm << 12, 32))
    return execute


def _make_alu_handler(alu_op: str, src_imm: bool):
    value_of = _ALU_OPS[alu_op]
    if src_imm:
        def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
            rs1 = self.state.regs[instr.rs1]
            return self._commit_rd(instr, pc, word, value_of(rs1, instr.imm))
    else:
        def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
            regs = self.state.regs
            return self._commit_rd(instr, pc, word,
                                   value_of(regs[instr.rs1], regs[instr.rs2]))
    return execute


def _make_load_handler(size: int, signed: bool):
    def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
        address = (self.state.regs[instr.rs1] + instr.imm) & MASK64
        value = self._mem_load(address, size, signed, instr)
        return self._commit_rd(instr, pc, word, value)
    return execute


def _make_store_handler(size: int):
    mask = (1 << (8 * size)) - 1
    def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
        regs = self.state.regs
        address = (regs[instr.rs1] + instr.imm) & MASK64
        value = regs[instr.rs2] & mask
        self._mem_store(address, value, size, instr)
        return CommitRecord(
            step=self._step_index, pc=pc, word=word, mnemonic=instr.mnemonic,
            mem_addr=address, mem_value=value, mem_size=size,
            next_pc=(pc + 4) & MASK64,
        )
    return execute


def _make_branch_handler(mnemonic: str):
    taken_of = _BRANCH_OPS[mnemonic]
    def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
        regs = self.state.regs
        taken = taken_of(regs[instr.rs1], regs[instr.rs2])
        target = (pc + instr.imm) & MASK64 if taken else (pc + 4) & MASK64
        if taken and target % 4 != 0:
            raise Trap(TrapCause.INSTRUCTION_ADDRESS_MISALIGNED, tval=target)
        return self._commit_simple(instr, pc, word, next_pc=target)
    return execute


def _make_jump_handler(mnemonic: str):
    is_jal = mnemonic == "jal"
    def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
        if is_jal:
            target = (pc + instr.imm) & MASK64
        else:  # jalr
            target = (self.state.regs[instr.rs1] + instr.imm) & MASK64 & ~1
        if target % 4 != 0:
            raise Trap(TrapCause.INSTRUCTION_ADDRESS_MISALIGNED, tval=target)
        return self._commit_rd(instr, pc, word, pc + 4, next_pc=target)
    return execute


def _make_csr_handler(mnemonic: str, fmt: InstrFormat):
    is_imm = fmt is InstrFormat.CSR_IMM
    kind = mnemonic[4]  # csrr[w|s|c](i) -> "w" / "s" / "c"
    conditional = kind in ("s", "c")
    def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
        address = instr.csr
        operand = (instr.imm & 0x1F) if is_imm else self.state.regs[instr.rs1]
        writes = True
        if conditional:
            source_is_zero = (instr.imm & 0x1F) == 0 if is_imm else instr.rs1 == 0
            writes = not source_is_zero
        old_value = self._csr_read(address, instr)
        new_value = None
        if writes:
            if kind == "w":
                new_value = operand
            elif kind == "s":
                new_value = old_value | operand
            else:
                new_value = old_value & ~operand
            self._csr_write(address, new_value, instr)
        record = self._commit_rd(instr, pc, word, old_value)
        if new_value is not None:
            record = CommitRecord(
                step=record.step, pc=record.pc, word=record.word,
                mnemonic=record.mnemonic, rd=record.rd, rd_value=record.rd_value,
                csr_addr=address, csr_value=new_value & MASK64,
                next_pc=record.next_pc,
            )
        return record
    return execute


def _make_system_handler(mnemonic: str):
    if mnemonic == "ecall":
        def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
            raise Trap(TrapCause.ECALL_FROM_M, tval=0)
    elif mnemonic == "ebreak":
        def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
            raise Trap(TrapCause.BREAKPOINT, tval=pc)
    elif mnemonic == "mret":
        def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
            return self._commit_simple(instr, pc, word,
                                       next_pc=self.state.csrs[csrdefs.MEPC])
    else:  # wfi behaves as a nop in this harness.
        def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
            return self._commit_simple(instr, pc, word)
    return execute


def _make_fence_handler():
    def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
        return self._commit_simple(instr, pc, word)
    return execute


def _make_atomic_handler(mnemonic: str):
    base = mnemonic.split(".")[0]
    size = 4 if mnemonic.endswith(".w") else 8
    signed = size == 4
    mask = (1 << (8 * size)) - 1
    if base == "lr":
        def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
            address = self.state.regs[instr.rs1] & MASK64
            value = self._mem_load(address, size, signed, instr)
            self.state.reservation = address
            return self._commit_rd(instr, pc, word, value)
    elif base == "sc":
        def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
            state = self.state
            address = state.regs[instr.rs1] & MASK64
            if state.reservation == address:
                value = state.regs[instr.rs2] & mask
                self._mem_store(address, value, size, instr)
                state.reservation = None
                return self._commit_rd(instr, pc, word, 0, mem_addr=address,
                                       mem_value=value, mem_size=size)
            state.reservation = None
            return self._commit_rd(instr, pc, word, 1)
    else:
        amo_of = _AMO_OPS[base]
        def execute(self: Executor, instr: Instruction, pc: int, word: int) -> CommitRecord:
            state = self.state
            address = state.regs[instr.rs1] & MASK64
            old = self._mem_load(address, size, signed, instr)
            new = amo_of(old, state.regs[instr.rs2]) & mask
            self._mem_store(address, new, size, instr)
            return self._commit_rd(instr, pc, word, old, mem_addr=address,
                                   mem_value=new, mem_size=size)
    return execute


def _build_handlers() -> Dict[str, Callable]:
    handlers: Dict[str, Callable] = {}
    for mnemonic, spec in SPECS.items():
        cls = spec.cls
        if mnemonic == "lui":
            handlers[mnemonic] = _make_lui_handler()
        elif mnemonic == "auipc":
            handlers[mnemonic] = _make_auipc_handler()
        elif spec.alu_op is not None:
            handlers[mnemonic] = _make_alu_handler(spec.alu_op, spec.alu_src_imm)
        elif cls is InstrClass.LOAD:
            size, signed = _LOAD_SIZES[mnemonic]
            handlers[mnemonic] = _make_load_handler(size, signed)
        elif cls is InstrClass.STORE:
            handlers[mnemonic] = _make_store_handler(_STORE_SIZES[mnemonic])
        elif cls is InstrClass.BRANCH:
            handlers[mnemonic] = _make_branch_handler(mnemonic)
        elif cls is InstrClass.JUMP:
            handlers[mnemonic] = _make_jump_handler(mnemonic)
        elif cls is InstrClass.CSR:
            handlers[mnemonic] = _make_csr_handler(mnemonic, spec.fmt)
        elif cls is InstrClass.SYSTEM:
            handlers[mnemonic] = _make_system_handler(mnemonic)
        elif cls is InstrClass.FENCE:
            handlers[mnemonic] = _make_fence_handler()
        elif cls is InstrClass.ATOMIC:
            handlers[mnemonic] = _make_atomic_handler(mnemonic)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unhandled class {cls}")
    return handlers


#: mnemonic -> handler closure, built once from SPECS at import time.
_HANDLERS: Dict[str, Callable] = _build_handlers()


def handler_for(instr: Instruction) -> Optional[Callable]:
    """The execute closure for ``instr`` (``None`` = illegal/unknown path).

    Used by the trace compiler (:mod:`repro.isa.compiled`) to resolve
    handlers once per program instead of once per step; a ``None`` handler
    makes :meth:`Executor.step_compiled` fall back to :meth:`Executor._execute`,
    which raises the architectural illegal-instruction trap.
    """
    return _HANDLERS.get(instr.mnemonic)
