"""Architectural commit trace records.

Differential testing (Sec. II-A) compares, instruction by instruction, what
the DUT committed against what the golden reference committed.  A
:class:`CommitRecord` captures exactly the architecturally-visible effects
of one instruction; :meth:`CommitRecord.arch_key` is the tuple the
differential tester compares.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.exceptions import TrapCause


class HaltReason(enum.Enum):
    """Why a program run terminated."""

    PROGRAM_END = "program_end"        # pc ran past the last instruction
    ECALL = "ecall"                    # environment call (end-of-test convention)
    PC_OUT_OF_RANGE = "pc_out_of_range"
    STEP_LIMIT = "step_limit"


@dataclass(slots=True, eq=True)
class CommitRecord:
    """Architecturally visible effects of executing one instruction.

    Records are immutable *by convention*: one is constructed per committed
    instruction on the simulator's innermost loop, and the frozen-dataclass
    ``object.__setattr__`` init path costs ~4x a plain slots init, so the
    class is deliberately not ``frozen=True``.  Every consumer (the
    differential tester, coverage emitters, the run caches that share
    results across trials) only reads.

    Attributes:
        step: commit index within the run (0-based).
        pc: address of the instruction.
        word: raw 32-bit encoding.
        mnemonic: decoded mnemonic (or ``"illegal"``).
        rd: destination register written, or ``None``.
        rd_value: value written to ``rd``.
        trap: trap cause raised by this instruction, or ``None``.
        trap_tval: value written to ``mtval`` when the trap committed
            (the faulting address/word), or ``None`` for trap-free commits.
        mem_addr: effective address of a committed store, or ``None``.
        mem_value: value stored.
        mem_size: store size in bytes.
        csr_addr: CSR written by this instruction, or ``None``.
        csr_value: value written to the CSR.
        next_pc: pc after this instruction committed.
    """

    step: int
    pc: int
    word: int
    mnemonic: str
    rd: Optional[int] = None
    rd_value: Optional[int] = None
    trap: Optional[TrapCause] = None
    mem_addr: Optional[int] = None
    mem_value: Optional[int] = None
    mem_size: Optional[int] = None
    csr_addr: Optional[int] = None
    csr_value: Optional[int] = None
    next_pc: int = 0
    trap_tval: Optional[int] = None

    def arch_key(self) -> Tuple:
        """The tuple compared by the differential tester."""
        return (
            self.pc,
            self.rd,
            self.rd_value,
            self.trap,
            self.mem_addr,
            self.mem_value,
            self.csr_addr,
            self.csr_value,
            self.next_pc,
        )


@dataclass
class ExecutionResult:
    """Outcome of running one test program on one model."""

    records: List[CommitRecord] = field(default_factory=list)
    halt_reason: HaltReason = HaltReason.PROGRAM_END
    final_registers: Tuple[int, ...] = ()
    final_csrs: Dict[int, int] = field(default_factory=dict)
    steps: int = 0

    @property
    def instret(self) -> int:
        """Number of committed instructions."""
        return len(self.records)

    def trapped_steps(self) -> List[CommitRecord]:
        """All commit records that raised a trap."""
        return [r for r in self.records if r.trap is not None]
