"""Architectural state: register file, program counter and CSR file."""

from __future__ import annotations

from typing import Dict, Optional

from repro.isa import csr as csrdefs
from repro.isa.exceptions import Trap, TrapCause
from repro.utils.bits import MASK64


#: Reset values of the implemented CSRs.
_CSR_RESET_VALUES: Dict[int, int] = {
    csrdefs.MSTATUS: 0x0000_0000_0000_1800,  # MPP = M
    csrdefs.MISA: (2 << 62) | 0x0014_1105,   # RV64IMA + others
    csrdefs.MIE: 0,
    csrdefs.MTVEC: 0,
    csrdefs.MCOUNTEREN: 0,
    csrdefs.MSCRATCH: 0,
    csrdefs.MEPC: 0,
    csrdefs.MCAUSE: 0,
    csrdefs.MTVAL: 0,
    csrdefs.MIP: 0,
    csrdefs.MCYCLE: 0,
    csrdefs.MINSTRET: 0,
    csrdefs.MVENDORID: 0,
    csrdefs.MARCHID: 0x5EED,
    csrdefs.MIMPID: 0x1,
    csrdefs.MHARTID: 0,
}

#: User-visible counter CSRs aliased onto their machine-mode counterparts.
_COUNTER_ALIASES = {
    csrdefs.CYCLE: csrdefs.MCYCLE,
    csrdefs.INSTRET: csrdefs.MINSTRET,
    csrdefs.TIME: csrdefs.MCYCLE,
}


class ArchState:
    """Mutable architectural state of one hart.

    The state object deliberately contains *only* architecturally visible
    quantities (x-registers, pc, CSRs, LR/SC reservation); microarchitectural
    structures live in the DUT models.
    """

    def __init__(self, pc: int = 0) -> None:
        self.regs = [0] * 32
        self.pc = pc
        self.csrs: Dict[int, int] = dict(_CSR_RESET_VALUES)
        self.reservation: Optional[int] = None

    # ------------------------------------------------------------------ x-regs
    def read_reg(self, index: int) -> int:
        return self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = value & MASK64

    # ------------------------------------------------------------------ CSRs
    def read_csr(self, address: int) -> int:
        """Read a CSR; unimplemented CSRs raise illegal-instruction."""
        if address in _COUNTER_ALIASES:
            address = _COUNTER_ALIASES[address]
        if address not in self.csrs:
            raise Trap(TrapCause.ILLEGAL_INSTRUCTION, tval=address)
        return self.csrs[address]

    def write_csr(self, address: int, value: int) -> None:
        """Write a CSR; unimplemented or read-only CSRs raise illegal-instruction."""
        if address in _COUNTER_ALIASES or csrdefs.is_read_only_csr(address):
            raise Trap(TrapCause.ILLEGAL_INSTRUCTION, tval=address)
        if address not in self.csrs:
            raise Trap(TrapCause.ILLEGAL_INSTRUCTION, tval=address)
        self.csrs[address] = value & MASK64

    # ------------------------------------------------------------------ counters
    def increment_counters(self, instret: int = 1, cycles: int = 1) -> None:
        self.csrs[csrdefs.MINSTRET] = (self.csrs[csrdefs.MINSTRET] + instret) & MASK64
        self.csrs[csrdefs.MCYCLE] = (self.csrs[csrdefs.MCYCLE] + cycles) & MASK64

    # ------------------------------------------------------------------ snapshot
    def snapshot(self) -> Dict[str, int]:
        """Return a flat, comparable snapshot of the architectural state."""
        snap = {f"x{i}": v for i, v in enumerate(self.regs)}
        snap["pc"] = self.pc
        for address, value in sorted(self.csrs.items()):
            snap[csrdefs.csr_name(address)] = value
        return snap
