"""Sparse byte-addressable memory with a simple address map.

The modelled SoC exposes one valid DRAM window.  Accesses outside it raise
access-fault traps -- this is the path exercised by vulnerability V5
("exception not thrown when invalid addresses accessed"), which is why the
layout is explicit and checkable rather than an unbounded dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.isa.exceptions import Trap, TrapCause


@dataclass(frozen=True)
class MemoryLayout:
    """Valid address window of the modelled SoC.

    Attributes:
        dram_base: first valid byte address.
        dram_size: size of the valid window in bytes.
        code_size: size of the region (starting at ``dram_base``) reserved
            for test-program code; the remainder is the data region used by
            the seed preamble.
    """

    dram_base: int = 0x4000_0000
    dram_size: int = 0x0000_8000
    code_size: int = 0x0000_4000

    @property
    def dram_end(self) -> int:
        return self.dram_base + self.dram_size

    @property
    def data_base(self) -> int:
        return self.dram_base + self.code_size

    def contains(self, address: int, size: int = 1) -> bool:
        """Whether ``[address, address+size)`` lies inside the valid window."""
        return self.dram_base <= address and address + size <= self.dram_end


#: Layout shared by the golden model and all DUT models.
DEFAULT_LAYOUT = MemoryLayout()


class Memory:
    """Sparse little-endian byte memory honouring a :class:`MemoryLayout`."""

    def __init__(self, layout: MemoryLayout = DEFAULT_LAYOUT) -> None:
        self.layout = layout
        self._bytes: Dict[int, int] = {}

    def clone(self) -> "Memory":
        """Return an independent copy of this memory."""
        copy = Memory(self.layout)
        copy._bytes = dict(self._bytes)
        return copy

    # ------------------------------------------------------------------ checks
    def _check(self, address: int, size: int, store: bool) -> None:
        if not self.layout.contains(address, size):
            cause = TrapCause.STORE_ACCESS_FAULT if store else TrapCause.LOAD_ACCESS_FAULT
            raise Trap(cause, tval=address)
        if address % size != 0:
            cause = (TrapCause.STORE_ADDRESS_MISALIGNED if store
                     else TrapCause.LOAD_ADDRESS_MISALIGNED)
            raise Trap(cause, tval=address)

    # ------------------------------------------------------------------ access
    def load(self, address: int, size: int, signed: bool = False) -> int:
        """Load ``size`` bytes from ``address`` (little-endian)."""
        self._check(address, size, store=False)
        value = 0
        for offset in range(size):
            value |= self._bytes.get(address + offset, 0) << (8 * offset)
        if signed and value & (1 << (8 * size - 1)):
            value -= 1 << (8 * size)
        return value

    def store(self, address: int, value: int, size: int) -> None:
        """Store the low ``size`` bytes of ``value`` at ``address``."""
        self._check(address, size, store=True)
        value &= (1 << (8 * size)) - 1
        for offset in range(size):
            self._bytes[address + offset] = (value >> (8 * offset)) & 0xFF

    def fetch_word(self, address: int) -> int:
        """Fetch a 32-bit instruction word (instruction access checks)."""
        if not self.layout.contains(address, 4):
            raise Trap(TrapCause.INSTRUCTION_ACCESS_FAULT, tval=address)
        if address % 4 != 0:
            raise Trap(TrapCause.INSTRUCTION_ADDRESS_MISALIGNED, tval=address)
        value = 0
        for offset in range(4):
            value |= self._bytes.get(address + offset, 0) << (8 * offset)
        return value

    # ------------------------------------------------------------------ loading
    def load_program_words(self, base_address: int, words) -> None:
        """Write 32-bit ``words`` starting at ``base_address``."""
        for index, word in enumerate(words):
            self.store(base_address + 4 * index, word, 4)
