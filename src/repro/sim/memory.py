"""Byte-addressable memory with a simple address map.

The modelled SoC exposes one valid DRAM window.  Accesses outside it raise
access-fault traps -- this is the path exercised by vulnerability V5
("exception not thrown when invalid addresses accessed"), which is why the
layout is explicit and checkable rather than an unbounded dictionary.

The window is backed by a single flat :class:`bytearray` (offset =
address - dram_base) so that loads, stores and instruction fetches are one
slice + ``int.from_bytes``/``int.to_bytes`` each rather than per-byte dict
lookups -- memory access is on the hottest path of the fuzzing loop.  Trap
semantics (window check first, then alignment, with the faulting address as
``tval``) are identical to the original sparse implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.exceptions import Trap, TrapCause


@dataclass(frozen=True)
class MemoryLayout:
    """Valid address window of the modelled SoC.

    Attributes:
        dram_base: first valid byte address.
        dram_size: size of the valid window in bytes.
        code_size: size of the region (starting at ``dram_base``) reserved
            for test-program code; the remainder is the data region used by
            the seed preamble.
    """

    dram_base: int = 0x4000_0000
    dram_size: int = 0x0000_8000
    code_size: int = 0x0000_4000

    @property
    def dram_end(self) -> int:
        return self.dram_base + self.dram_size

    @property
    def data_base(self) -> int:
        return self.dram_base + self.code_size

    def contains(self, address: int, size: int = 1) -> bool:
        """Whether ``[address, address+size)`` lies inside the valid window."""
        return self.dram_base <= address and address + size <= self.dram_end


#: Layout shared by the golden model and all DUT models.
DEFAULT_LAYOUT = MemoryLayout()


class Memory:
    """Flat little-endian byte memory honouring a :class:`MemoryLayout`."""

    def __init__(self, layout: MemoryLayout = DEFAULT_LAYOUT) -> None:
        self.layout = layout
        self._base = layout.dram_base
        self._size = layout.dram_size
        self._data = bytearray(layout.dram_size)

    def clone(self) -> "Memory":
        """Return an independent copy of this memory."""
        copy = Memory.__new__(Memory)
        copy.layout = self.layout
        copy._base = self._base
        copy._size = self._size
        copy._data = bytearray(self._data)
        return copy

    # ------------------------------------------------------------------ access
    def load(self, address: int, size: int, signed: bool = False) -> int:
        """Load ``size`` bytes from ``address`` (little-endian)."""
        offset = address - self._base
        if offset < 0 or offset + size > self._size:
            raise Trap(TrapCause.LOAD_ACCESS_FAULT, tval=address)
        if address % size != 0:
            raise Trap(TrapCause.LOAD_ADDRESS_MISALIGNED, tval=address)
        return int.from_bytes(self._data[offset:offset + size], "little",
                              signed=signed)

    def store(self, address: int, value: int, size: int) -> None:
        """Store the low ``size`` bytes of ``value`` at ``address``."""
        offset = address - self._base
        if offset < 0 or offset + size > self._size:
            raise Trap(TrapCause.STORE_ACCESS_FAULT, tval=address)
        if address % size != 0:
            raise Trap(TrapCause.STORE_ADDRESS_MISALIGNED, tval=address)
        value &= (1 << (8 * size)) - 1
        self._data[offset:offset + size] = value.to_bytes(size, "little")

    def fetch_word(self, address: int) -> int:
        """Fetch a 32-bit instruction word (instruction access checks)."""
        offset = address - self._base
        if offset < 0 or offset + 4 > self._size:
            raise Trap(TrapCause.INSTRUCTION_ACCESS_FAULT, tval=address)
        if address % 4 != 0:
            raise Trap(TrapCause.INSTRUCTION_ADDRESS_MISALIGNED, tval=address)
        return int.from_bytes(self._data[offset:offset + 4], "little")

    # ------------------------------------------------------------------ loading
    def load_program_words(self, base_address: int, words) -> None:
        """Write 32-bit ``words`` starting at ``base_address`` in one pass.

        The whole target range is validated once up front (window first,
        then alignment -- the same order as individual stores) and the block
        is then written directly into the backing buffer.
        """
        words = tuple(words)
        if not words:
            return
        offset = base_address - self._base
        if offset < 0 or offset + 4 * len(words) > self._size:
            raise Trap(TrapCause.STORE_ACCESS_FAULT, tval=base_address)
        if base_address % 4 != 0:
            raise Trap(TrapCause.STORE_ADDRESS_MISALIGNED, tval=base_address)
        block = b"".join((word & 0xFFFF_FFFF).to_bytes(4, "little")
                         for word in words)
        self._data[offset:offset + len(block)] = block
