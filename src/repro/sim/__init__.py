"""Golden reference model (SPIKE substitute).

``repro.sim`` provides a functional RV64IM+Zicsr+A-subset instruction-set
simulator.  The fuzzers use it as the *reference model* for differential
testing: each test program is executed on both the golden model and a DUT
model, and any divergence in the per-instruction architectural commit trace
is flagged as a potential vulnerability (Sec. II-A of the paper).
"""

from repro.sim.memory import Memory, MemoryLayout, DEFAULT_LAYOUT
from repro.sim.state import ArchState
from repro.sim.trace import CommitRecord, ExecutionResult, HaltReason
from repro.sim.executor import Executor, ExecutorConfig
from repro.sim.golden import GoldenModel

__all__ = [
    "Memory",
    "MemoryLayout",
    "DEFAULT_LAYOUT",
    "ArchState",
    "CommitRecord",
    "ExecutionResult",
    "HaltReason",
    "Executor",
    "ExecutorConfig",
    "GoldenModel",
]
