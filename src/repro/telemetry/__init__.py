"""Campaign telemetry: an NDJSON event stream over pluggable sinks.

The observability half of campaign-as-a-service (``docs/service.md``):
:mod:`~repro.telemetry.events` defines the event schema,
:mod:`~repro.telemetry.sink` the file / reconnecting-TCP sinks plus the
never-raising :class:`TelemetryRecorder` the engine threads through the
execution stack, and :mod:`~repro.telemetry.listener` a small collector
for tests and ``repro.cli telemetry serve``.
"""

from repro.telemetry.events import (
    KINDS,
    decode_line,
    encode_event,
    make_event,
)
from repro.telemetry.listener import TelemetryListener
from repro.telemetry.sink import (
    DEFAULT_BUFFER_LIMIT,
    FileSink,
    TcpSink,
    TelemetryRecorder,
    TelemetrySink,
    parse_sink_spec,
)

__all__ = [
    "DEFAULT_BUFFER_LIMIT",
    "FileSink",
    "KINDS",
    "TcpSink",
    "TelemetryListener",
    "TelemetryRecorder",
    "TelemetrySink",
    "decode_line",
    "encode_event",
    "make_event",
    "parse_sink_spec",
]
