"""A minimal threaded TCP listener for NDJSON telemetry streams.

The receiving half of :class:`~repro.telemetry.sink.TcpSink`: accepts
any number of senders (sequentially re-accepting as they disconnect),
splits the byte stream on newlines, and appends each decoded event to an
in-memory list and optionally an NDJSON file.  It exists for two
callers -- the chaos tests, which kill and restart it mid-campaign to
prove the sink's reconnect/spill behaviour, and ``repro.cli telemetry
serve``, the ops-facing collector the CI transport leg runs.

Deliberately not a production event store: one accept loop, no auth, no
rotation.  ``docs/service.md`` discusses what a real deployment would
put here instead.
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, List, Optional

from repro.telemetry.events import decode_line


class TelemetryListener:
    """Accept telemetry connections on ``host:port``; collect events.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` after
    ``start()``).  ``stop()`` unblocks the accept loop and joins the
    thread; the listener can be started again afterwards on a new socket,
    which is exactly the kill/restart cycle the loss-bound test drives.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 path: Optional[str] = None) -> None:
        self.host = host
        self.port = int(port)
        self.path = path
        self.events: List[Dict[str, object]] = []
        self._server: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._handle = None
        self._lock = threading.Lock()

    def start(self) -> "TelemetryListener":
        if self._thread is not None:
            raise RuntimeError("listener already running")
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, self.port))
        server.listen(8)
        server.settimeout(0.1)  # bounded accept waits so stop() is prompt
        self.port = server.getsockname()[1]
        self._server = server
        self._stopping.clear()
        if self.path:
            self._handle = open(self.path, "ab")
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._server is not None:
            self._server.close()
            self._server = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetryListener":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------ accept loop
    def _serve(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # server socket closed under us
            with conn:
                self._pump(conn)

    def _pump(self, conn: socket.socket) -> None:
        conn.settimeout(0.1)
        residue = b""
        while not self._stopping.is_set():
            try:
                chunk = conn.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                return
            if not chunk:
                return  # sender closed cleanly
            residue += chunk
            while b"\n" in residue:
                line, residue = residue.split(b"\n", 1)
                self._ingest(line)

    def _ingest(self, line: bytes) -> None:
        event = decode_line(line)
        if event is None:
            return
        with self._lock:
            self.events.append(event)
            if self._handle is not None:
                self._handle.write(line + b"\n")
                self._handle.flush()

    def snapshot(self) -> List[Dict[str, object]]:
        """A thread-safe copy of everything received so far."""
        with self._lock:
            return list(self.events)


__all__ = ["TelemetryListener"]
