"""Telemetry event schema and NDJSON encoding.

Every event is one JSON object on one line (NDJSON), self-describing via
its ``kind`` field.  The stream is *observational*: it rides alongside a
campaign without participating in the determinism contract -- dropping
every event changes nothing about the grid's results, which is what lets
sinks degrade (buffer, spill, drop) instead of blocking the hot path.

Kinds and the fields each one carries (beyond the common envelope of
``kind``, ``seq`` -- a per-recorder monotonic counter -- and ``ts``, a
wall-clock stamp for humans, never used programmatically):

===================  ========================================================
kind                 payload fields
===================  ========================================================
``run_start``        ``specs``, ``trials``, ``backend``
``trial``            ``spec_index``, ``trial_index``, ``coverage``, ``bugs``,
                     ``cache`` (decode/golden/dut/trace/superblock counters)
``recovery``         ``counters`` -- the robustness-stat deltas observed
                     since the previous ``recovery`` event
``worker_spawn``     ``host``, ``worker_id``, ``generation``
``worker_exit``      ``host``, ``worker_id``, ``returncode``
``worker_restart``   ``host``, ``worker_id``, ``generation``
``host_degraded``    ``host``, ``restarts``, ``window``
``run_finish``       ``trials``, ``quarantined``, ``transport``
===================  ========================================================

The worked example in ``docs/service.md`` shows a full stream.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

KIND_RUN_START = "run_start"
KIND_TRIAL = "trial"
KIND_RECOVERY = "recovery"
KIND_WORKER_SPAWN = "worker_spawn"
KIND_WORKER_EXIT = "worker_exit"
KIND_WORKER_RESTART = "worker_restart"
KIND_HOST_DEGRADED = "host_degraded"
KIND_RUN_FINISH = "run_finish"

KINDS = frozenset({
    KIND_RUN_START,
    KIND_TRIAL,
    KIND_RECOVERY,
    KIND_WORKER_SPAWN,
    KIND_WORKER_EXIT,
    KIND_WORKER_RESTART,
    KIND_HOST_DEGRADED,
    KIND_RUN_FINISH,
})


def make_event(kind: str, seq: int, ts: float, **fields: object) -> Dict[str, object]:
    """Build one event dict; unknown kinds fail fast at the source."""
    if kind not in KINDS:
        raise ValueError(f"unknown telemetry event kind {kind!r}; "
                         f"kinds: {sorted(KINDS)}")
    event: Dict[str, object] = {"kind": kind, "seq": seq, "ts": ts}
    event.update(fields)
    return event


def encode_event(event: Dict[str, object]) -> bytes:
    """One NDJSON line, newline-terminated, UTF-8."""
    return (json.dumps(event, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_line(line: bytes) -> Optional[Dict[str, object]]:
    """Parse one received line; ``None`` for blank or torn lines.

    Receivers tolerate damage (a sender killed mid-write tears its last
    line) -- the stream is advisory, so a bad line is skipped, not fatal.
    """
    text = line.strip()
    if not text:
        return None
    try:
        parsed = json.loads(text)
    except (ValueError, UnicodeDecodeError):
        return None
    return parsed if isinstance(parsed, dict) else None


__all__ = [
    "KINDS",
    "KIND_HOST_DEGRADED",
    "KIND_RECOVERY",
    "KIND_RUN_FINISH",
    "KIND_RUN_START",
    "KIND_TRIAL",
    "KIND_WORKER_EXIT",
    "KIND_WORKER_RESTART",
    "KIND_WORKER_SPAWN",
    "decode_line",
    "encode_event",
    "make_event",
]
