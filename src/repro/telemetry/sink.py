"""Pluggable telemetry sinks: file, reconnecting TCP, and the recorder.

The design rule every sink obeys: **the campaign never blocks and never
fails because a sink is down.**  :class:`TcpSink` in particular is built
for the listener dying mid-campaign -- it buffers boundedly while
disconnected, reconnects with jittered-exponential backoff (a dedicated
:class:`~repro.exec.faults.Backoff` instance, reset on every successful
connect), and overflows to a local spill file (or a drop counter) rather
than growing without bound or stalling the hot path.  Loss is accounted,
not hidden: ``stats()`` reports exactly how many events were sent,
spilled, and dropped, and ``docs/service.md`` documents the bound on
events that can be lost in flight when a listener is killed.

:class:`TelemetryRecorder` is the campaign-facing wrapper: it stamps the
event envelope (``seq``/``ts``) and swallows *any* sink exception into an
error counter, so call sites emit unconditionally.

Fault sites ``sink.connect`` and ``sink.write`` make every failure path
here deterministically reproducible (``docs/robustness.md``).
"""

from __future__ import annotations

import os
import socket
import time
from typing import Dict, List, Optional

from repro.exec import faults
from repro.telemetry.events import encode_event, make_event

#: events held in memory while a TCP sink is disconnected; the oldest
#: overflow to the spill file (or the drop counter) beyond this.
DEFAULT_BUFFER_LIMIT = 1024

#: per-attempt TCP connect timeout -- kept short because a connect runs
#: inline on the dispatcher's emit path while the sink is down.
DEFAULT_CONNECT_TIMEOUT = 0.25


class TelemetrySink:
    """Interface: ``emit`` one encoded event; ``stats`` accounts for it."""

    def emit(self, event: Dict[str, object]) -> None:
        raise NotImplementedError

    def flush(self) -> None:  # pragma: no cover - trivial default
        pass

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def stats(self) -> Dict[str, object]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class FileSink(TelemetrySink):
    """Append NDJSON events to a local file (opened lazily, line-buffered)."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = None
        self._sent = 0

    def emit(self, event: Dict[str, object]) -> None:
        for rule in faults.fire(faults.SITE_SINK_WRITE, sink="file", path=self.path):
            faults.perform(rule)
        if self._handle is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "ab")
        self._handle.write(encode_event(event))
        self._handle.flush()
        self._sent += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def stats(self) -> Dict[str, object]:
        return {"sink": self.describe(), "sent": self._sent}

    def describe(self) -> str:
        return f"file:{self.path}"


class TcpSink(TelemetrySink):
    """Stream NDJSON to a TCP listener; degrade, never block.

    Lifecycle of one event: it is appended to the in-memory buffer, the
    buffer is bounded (oldest events overflow to ``spill_path`` or the
    ``dropped`` counter), then a drain pass sends as much of the buffer
    as the current connection accepts.  While disconnected the drain pass
    attempts a reconnect at most once per backoff window -- a gate on a
    monotonic timestamp, so the emit path never sleeps -- and each
    successful connect resets the backoff schedule.

    Loss bound (documented in ``docs/service.md``): events handed to
    ``socket.sendall`` count as ``sent`` but can still die in kernel
    socket buffers if the listener is killed before reading them; at most
    one buffer window of sent-but-unread events can be lost that way.
    Everything else is accounted -- still buffered, spilled, or dropped.
    ``close()`` makes one final drain attempt and spills the remainder,
    so a finished campaign leaves no events in limbo.
    """

    def __init__(
        self,
        host: str,
        port: int,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
        spill_path: Optional[str] = None,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        backoff: Optional[faults.Backoff] = None,
    ) -> None:
        if buffer_limit < 1:
            raise ValueError("buffer_limit must be >= 1")
        self.host = host
        self.port = int(port)
        self.buffer_limit = buffer_limit
        self.spill_path = spill_path
        self.connect_timeout = connect_timeout
        self.backoff = backoff or faults.Backoff(
            base=0.05, cap=2.0, seed=faults.stable_seed(f"{host}:{port}"))
        self._sock: Optional[socket.socket] = None
        self._buffer: List[bytes] = []
        self._next_attempt = 0.0  # monotonic gate on reconnect attempts
        self._spill_handle = None
        self._counters = {
            "sent": 0,
            "spilled": 0,
            "dropped": 0,
            "reconnects": 0,
            "connect_failures": 0,
            "disconnects": 0,
        }

    # ------------------------------------------------------------ connection
    def _connect(self) -> bool:
        """One connect attempt; schedules the next one on failure."""
        try:
            for rule in faults.fire(faults.SITE_SINK_CONNECT,
                                    host=self.host, port=self.port):
                faults.perform(rule)
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout)
        except OSError:
            self._counters["connect_failures"] += 1
            self._next_attempt = time.monotonic() + self.backoff.next()
            return False
        sock.settimeout(self.connect_timeout)
        self._sock = sock
        self._counters["reconnects"] += 1
        self.backoff.reset()  # next outage escalates from base again
        return True

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._counters["disconnects"] += 1
        self._next_attempt = time.monotonic() + self.backoff.next()

    # ----------------------------------------------------------------- spill
    def _overflow(self, line: bytes) -> None:
        if self.spill_path is None:
            self._counters["dropped"] += 1
            return
        try:
            if self._spill_handle is None:
                parent = os.path.dirname(self.spill_path)
                if parent:
                    os.makedirs(parent, exist_ok=True)
                self._spill_handle = open(self.spill_path, "ab")
            self._spill_handle.write(line)
            self._spill_handle.flush()
            self._counters["spilled"] += 1
        except OSError:
            self._counters["dropped"] += 1

    def _drain(self, force_connect: bool = False) -> None:
        if self._sock is None:
            if not force_connect and time.monotonic() < self._next_attempt:
                return
            if not self._connect():
                return
        while self._buffer:
            line = self._buffer[0]
            try:
                for rule in faults.fire(faults.SITE_SINK_WRITE, sink="tcp",
                                        host=self.host, port=self.port):
                    faults.perform(rule)
                self._sock.sendall(line)
            except OSError:
                self._disconnect()
                return
            self._buffer.pop(0)
            self._counters["sent"] += 1

    # ------------------------------------------------------------------- API
    def emit(self, event: Dict[str, object]) -> None:
        self._buffer.append(encode_event(event))
        while len(self._buffer) > self.buffer_limit:
            self._overflow(self._buffer.pop(0))
        self._drain()

    def flush(self) -> None:
        self._drain()

    def close(self) -> None:
        # Final chance for buffered events: one connect attempt regardless
        # of the backoff gate, then spill whatever the wire refused.
        self._drain(force_connect=True)
        for line in self._buffer:
            self._overflow(line)
        self._buffer.clear()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        if self._spill_handle is not None:
            self._spill_handle.close()
            self._spill_handle = None

    def stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = {"sink": self.describe()}
        stats.update(self._counters)
        stats["buffered"] = len(self._buffer)
        return stats

    def describe(self) -> str:
        return f"tcp:{self.host}:{self.port}"


class TelemetryRecorder:
    """Campaign-facing wrapper: stamps the envelope, never raises.

    Call sites ``record(...)`` unconditionally; any sink exception is
    swallowed into the ``errors`` counter so observability can never
    break a run.  A recorder around ``sink=None`` is a pure no-op (the
    disabled path costs one attribute check per call site).
    """

    def __init__(self, sink: Optional[TelemetrySink]) -> None:
        self.sink = sink
        self._seq = 0
        self._events = 0
        self._errors = 0

    @property
    def enabled(self) -> bool:
        return self.sink is not None

    def record(self, kind: str, **fields: object) -> None:
        if self.sink is None:
            return
        event = make_event(kind, seq=self._seq, ts=time.time(), **fields)
        self._seq += 1
        try:
            self.sink.emit(event)
            self._events += 1
        except Exception:
            self._errors += 1

    def close(self) -> None:
        if self.sink is None:
            return
        try:
            self.sink.close()
        except Exception:
            self._errors += 1

    def stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = {"events": self._events, "errors": self._errors}
        if self.sink is not None:
            try:
                stats.update(self.sink.stats())
            except Exception:
                pass
        return stats


def parse_sink_spec(
    spec: str,
    spill_path: Optional[str] = None,
    buffer_limit: int = DEFAULT_BUFFER_LIMIT,
) -> TelemetrySink:
    """Build a sink from a CLI spec: ``tcp:HOST:PORT``, ``file:PATH``, or
    a bare path (treated as ``file:``)."""
    if spec.startswith("tcp:"):
        rest = spec[len("tcp:"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise ValueError(
                f"bad telemetry spec {spec!r}: expected tcp:HOST:PORT")
        return TcpSink(host, int(port), buffer_limit=buffer_limit,
                       spill_path=spill_path)
    if spec.startswith("file:"):
        return FileSink(spec[len("file:"):])
    return FileSink(spec)


__all__ = [
    "DEFAULT_BUFFER_LIMIT",
    "DEFAULT_CONNECT_TIMEOUT",
    "FileSink",
    "TcpSink",
    "TelemetryRecorder",
    "TelemetrySink",
    "parse_sink_spec",
]
