"""Reproduction of *MABFuzz: Multi-Armed Bandit Algorithms for Fuzzing Processors*.

The package is organised as a set of substrates (``isa``, ``sim``, ``rtl``,
``coverage``, ``fuzzing``) on top of which the paper's contribution
(``core`` -- the MAB scheduling layer) and the evaluation harness
(``harness``) are built.

Quickstart::

    from repro import quick_campaign

    result = quick_campaign(processor="cva6", fuzzer="mabfuzz:ucb", num_tests=500)
    print(result.coverage_count, result.bugs_found)
"""

from repro.version import __version__
from repro.api import (
    available_processors,
    available_fuzzers,
    make_fuzzer,
    make_processor,
    quick_campaign,
)

__all__ = [
    "__version__",
    "available_processors",
    "available_fuzzers",
    "make_fuzzer",
    "make_processor",
    "quick_campaign",
]
