"""TheHuzz: the state-of-the-art baseline fuzzer the paper builds on.

The reimplementation follows the published TheHuzz loop (Kande et al.,
USENIX Security 2022, as summarised in Sec. II-A of the MABFuzz paper):

1. generate random seed tests into a single FIFO test pool,
2. pop the oldest pending test (static first-in-first-out selection -- the
   static decision MABFuzz replaces),
3. simulate it on the DUT and the golden model, collect branch coverage and
   differential-test the traces,
4. if the test covered new points, mutate it with statically weighted
   operators and append the mutants to the pool,
5. if the pool ever runs dry, generate fresh random tests.
"""

from __future__ import annotations

from typing import Optional

from repro.fuzzing.base import Fuzzer, FuzzerConfig
from repro.fuzzing.results import TestOutcome
from repro.fuzzing.testpool import TestPool
from repro.isa.program import TestProgram
from repro.rtl.harness import DutModel


class TheHuzzFuzzer(Fuzzer):
    """Baseline coverage-guided fuzzer with static FIFO test selection."""

    name = "thehuzz"

    def __init__(self, dut: DutModel, config: Optional[FuzzerConfig] = None,
                 rng=None) -> None:
        super().__init__(dut, config, rng)
        self.pool = TestPool()
        self.pool.push_many(self.seed_generator.generate_many(self.config.num_seeds))

    # -------------------------------------------------------------- scheduling
    def _next_test(self) -> TestProgram:
        if not self.pool:
            # The input database ran dry.  With the corpus enabled, restock
            # from a mutated corpus draw (a program that already proved it
            # reaches novel coverage); otherwise fall back to fresh random
            # tests, exactly like the original tool.
            self.pool.push(self._corpus_seed() or self.seed_generator.generate())
        return self.pool.pop()

    def _after_test(self, program: TestProgram, outcome: TestOutcome) -> None:
        if outcome.is_interesting:
            self.pool.push_many(self.mutation_engine.mutate(program))
