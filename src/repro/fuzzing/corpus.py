"""Coverage-directed corpus: the feedback loop across trials and workers.

Every fuzzer in this repo was historically *stateless* at campaign
granularity: each trial generated fresh stimulus, learned which programs
reach new coverage, and threw that knowledge away when the trial ended.
This module keeps it.  A :class:`CorpusManager` holds

* a **global coverage map** -- the union of every coverage point any
  admitted program has reached, stored as an integer bitset
  (:mod:`repro.coverage.bitset`) so the admission test is two integer
  operations; and
* a bounded set of :class:`CorpusEntry` seed programs, keyed by program
  fingerprint, each remembered together with the coverage points it
  reached and its provenance (scenario, mutation operator, generation).

Admission is by **novelty**: a program is admitted exactly when its
coverage mask contributes at least one bit the global map does not already
have (``mask & ~global_cov != 0``).  On admission, previously stored
entries whose coverage is *dominated* by the newcomer (``old.mask &
~new.mask == 0``) are evicted, and a capacity bound evicts the
smallest-coverage entry when the corpus overflows.  The surviving entries
are exactly the programs worth mutating again, which is what
:meth:`CorpusManager.sample` hands back to the mutation arms of MABFuzz
and TheHuzz (see ``FuzzerConfig.corpus`` in :mod:`repro.fuzzing.base`).

Process boundaries
------------------
Bitset masks are process-local (bit order depends on registration order),
so a corpus never serialises masks.  The wire form
(:meth:`CorpusManager.to_payload` / :meth:`CorpusManager.from_payload`)
carries canonical data only: sorted point *names*, instruction *words* and
the base address.  Programs are rebuilt with the decoder on the receiving
side -- the decode->assemble fixed point (property-tested in
``tests/isa``) guarantees a rebuilt program has the same fingerprint, so
corpus identity is stable across serial, process-pool and distributed
execution.  Merging is idempotent: the novelty gate absorbs duplicates, so
the worker<->dispatcher exchange channel (``docs/corpus.md``) may deliver
a delta twice, late, or already folded into a broadcast without changing
the final map.

Determinism
-----------
A manager draws nothing from its RNG unless :meth:`CorpusManager.sample`
is called, and sampling is a pure function of the seeded RNG stream and
the admission order -- two managers fed the same sequence of offers and
samples produce identical results.  The execution engine relies on this:
corpus-off campaigns never construct a manager (bit-identical with
pre-corpus builds), and corpus-on serial campaigns are reproducible
end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.coverage.bitset import mask_of, points_of
from repro.isa.decoder import decode_word
from repro.isa.program import TestProgram
from repro.utils.rng import make_rng

#: default capacity bound of a corpus (entries, not points).
DEFAULT_MAX_ENTRIES = 256


@dataclass(frozen=True)
class CorpusEntry:
    """One admitted seed program plus the coverage that earned its place.

    Attributes:
        fingerprint: :meth:`TestProgram.fingerprint` of the program --
            the corpus key (content hash, provenance-independent).
        words: encoded 32-bit instruction words (the canonical program
            body; the wire form, since ``Instruction`` objects and bitset
            masks do not serialise).
        base_address: load address of the first instruction.
        points: coverage point *names* the program reached when admitted.
        mask: process-local bitset of ``points`` (never serialised;
            recomputed from ``points`` on deserialisation).
        scenario: seed workload family of the campaign that admitted it.
        mutation_op: operator that produced the program (``None`` for
            generator seeds).
        generation: mutation depth of the program (seeds are 0).
        order: admission sequence number within the owning manager --
            the deterministic tiebreak for eviction and sampling.
    """

    fingerprint: str
    words: Tuple[int, ...]
    base_address: int
    points: FrozenSet[str]
    mask: int = field(compare=False)
    scenario: Optional[str] = None
    mutation_op: Optional[str] = None
    generation: int = 0
    order: int = 0

    def materialize(self) -> TestProgram:
        """Rebuild the :class:`TestProgram` from its encoded words.

        The decode->assemble fixed point makes the rebuilt program
        fingerprint-identical to the original, so a sampled entry behaves
        exactly like the program that was admitted -- on any worker.
        """
        instructions = tuple(decode_word(word) for word in self.words)
        program = TestProgram(instructions=instructions,
                              base_address=self.base_address,
                              generation=self.generation,
                              mutation_op=self.mutation_op)
        return program

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe wire form (no masks -- they are process-local)."""
        return {
            "fingerprint": self.fingerprint,
            "words": list(self.words),
            "base_address": self.base_address,
            "points": sorted(self.points),
            "scenario": self.scenario,
            "mutation_op": self.mutation_op,
            "generation": self.generation,
            "order": self.order,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CorpusEntry":
        """Rebuild an entry from :meth:`to_dict`, recomputing its mask."""
        points = frozenset(str(point) for point in data.get("points", ()))
        return cls(
            fingerprint=str(data["fingerprint"]),
            words=tuple(int(word) for word in data["words"]),
            base_address=int(data.get("base_address", 0)),
            points=points,
            mask=mask_of(points),
            scenario=data.get("scenario"),
            mutation_op=data.get("mutation_op"),
            generation=int(data.get("generation", 0)),
            order=int(data.get("order", 0)),
        )


class CorpusManager:
    """Novelty-admitted seed corpus plus the global coverage map.

    The manager is the single object behind corpus mode everywhere:

    * fuzzers :meth:`offer` every executed test and :meth:`sample` seeds
      for mutation (``FuzzerConfig.corpus``);
    * the batch executor threads one manager through a batch's trials and
      ships its :meth:`delta_payload` back to the dispatcher;
    * backends fold those deltas into a dispatcher-level manager via
      :meth:`merge_payload` -- the same merge path in-process (serial,
      pool) and across machines (the SpoolQueue coverage channel); and
    * the checkpoint journal replays recorded deltas through
      :meth:`merge_payload` on ``--resume``.

    All mutation goes through the novelty gate, so merges are idempotent
    and order changes only *which* of several equivalent seed sets
    survives, never the coverage map itself.

    Args:
        rng: seed or ``numpy`` Generator for :meth:`sample`.  Defaults to
            a fixed seed (0) so managers that never sample -- dispatcher
            maps, journal replays -- are deterministic by construction.
        max_entries: capacity bound; admitting past it evicts the entry
            with the fewest coverage points (oldest first on ties).
    """

    def __init__(self, rng=0, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._rng = make_rng(rng)
        #: integer bitset: union of every admitted/merged coverage point.
        self.global_cov = 0
        #: admitted entries keyed by program fingerprint.
        self.entries: Dict[str, CorpusEntry] = {}
        #: bumped on every state change (admission, merge, eviction) --
        #: the broadcast layer uses it to skip republishing unchanged maps.
        self.version = 0
        self._order = 0
        self._base_cov = 0
        self._base_fingerprints: FrozenSet[str] = frozenset()
        self.counters: Dict[str, int] = {
            "admitted": 0, "rejected": 0, "evicted": 0, "sampled": 0,
            "merged_entries": 0, "merged_points": 0,
        }

    # ------------------------------------------------------------------ queries
    @property
    def covered_count(self) -> int:
        """Number of points in the global coverage map."""
        return self.global_cov.bit_count()

    def coverage_points(self) -> FrozenSet[str]:
        """The global coverage map as canonical point names."""
        return points_of(self.global_cov)

    def novel_points(self, points: Iterable[str]) -> FrozenSet[str]:
        """The subset of ``points`` the global map does not know yet.

        This is the corpus-aware reward signal: with inherited state, a
        test re-reaching points some earlier trial (or another worker)
        already discovered is *not* novel grid-wide, even if it is new to
        the current campaign.  Feeding this to the bandit steers arms
        away from already-charted territory.
        """
        point_set = frozenset(points)
        mask = mask_of(point_set)
        novel = mask & ~self.global_cov
        if novel == 0:
            return frozenset()
        if novel == mask:
            return point_set
        return points_of(novel) & point_set

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        # An empty corpus with merged points is still truthy state-wise,
        # but samplers only care about entries.
        return bool(self.entries)

    # ---------------------------------------------------------------- admission
    def offer(self, program: TestProgram, points: Iterable[str],
              scenario: Optional[str] = None) -> bool:
        """Offer an executed program; admit it iff its coverage is novel.

        Returns ``True`` when the program was admitted.  ``points`` is the
        full set of coverage points the program reached (not just the
        campaign-new ones): novelty is judged against *this* manager's
        global map, which may already know points a fresh campaign has not
        seen yet (state injected from other trials or workers).
        """
        point_set = frozenset(points)
        mask = mask_of(point_set)
        if mask & ~self.global_cov == 0:
            self.counters["rejected"] += 1
            return False
        entry = CorpusEntry(
            fingerprint=program.fingerprint(),
            words=program.words(),
            base_address=program.base_address,
            points=point_set,
            mask=mask,
            scenario=scenario,
            mutation_op=program.mutation_op,
            generation=program.generation,
            order=self._order,
        )
        self._admit(entry)
        self.counters["admitted"] += 1
        return True

    def _admit(self, entry: CorpusEntry) -> None:
        """Shared admission tail: fold coverage, evict dominated, cap."""
        self.global_cov |= entry.mask
        dominated = [fp for fp, old in self.entries.items()
                     if fp != entry.fingerprint
                     and old.mask & ~entry.mask == 0]
        for fp in dominated:
            del self.entries[fp]
            self.counters["evicted"] += 1
        self.entries[entry.fingerprint] = entry
        self._order += 1
        while len(self.entries) > self.max_entries:
            victim = min(self.entries.values(),
                         key=lambda e: (e.mask.bit_count(), e.order))
            del self.entries[victim.fingerprint]
            self.counters["evicted"] += 1
        self.version += 1

    # ------------------------------------------------------------------ merging
    def merge_points(self, points: Iterable[str]) -> int:
        """Fold bare coverage points into the global map; return new bits."""
        mask = mask_of(points)
        new = mask & ~self.global_cov
        if new:
            self.global_cov |= mask
            self.counters["merged_points"] += new.bit_count()
            self.version += 1
        return new.bit_count()

    def merge_entry(self, entry: CorpusEntry) -> bool:
        """Fold one external entry through the novelty gate."""
        if entry.mask & ~self.global_cov == 0:
            return False
        entry = CorpusEntry(
            fingerprint=entry.fingerprint, words=entry.words,
            base_address=entry.base_address, points=entry.points,
            mask=entry.mask, scenario=entry.scenario,
            mutation_op=entry.mutation_op, generation=entry.generation,
            order=self._order)
        self._admit(entry)
        self.counters["merged_entries"] += 1
        return True

    def merge_payload(self, payload: Optional[Dict[str, object]]) -> int:
        """Fold a :meth:`to_payload`/:meth:`delta_payload` dict; return new bits.

        Entries are merged *before* bare points (in their original
        admission order): folding the point list first would make every
        entry non-novel and silently drop all seeds.  Safe to call with
        ``None`` or an empty dict (no-op), and idempotent -- replaying a
        payload changes nothing.
        """
        if not payload:
            return 0
        before = self.global_cov
        raw_entries = payload.get("entries", ())
        for data in sorted(raw_entries, key=lambda e: int(e.get("order", 0))):
            self.merge_entry(CorpusEntry.from_dict(data))
        self.merge_points(payload.get("points", ()))
        return (self.global_cov & ~before).bit_count()

    # -------------------------------------------------------------- wire format
    def to_payload(self) -> Dict[str, object]:
        """Full JSON-safe state: every entry plus the whole coverage map."""
        ordered = sorted(self.entries.values(), key=lambda e: e.order)
        return {"points": sorted(self.coverage_points()),
                "entries": [entry.to_dict() for entry in ordered]}

    @classmethod
    def from_payload(cls, payload: Optional[Dict[str, object]],
                     rng=0, max_entries: int = DEFAULT_MAX_ENTRIES,
                     ) -> "CorpusManager":
        """Build a manager from :meth:`to_payload` (``None`` -> empty)."""
        manager = cls(rng=rng, max_entries=max_entries)
        manager.merge_payload(payload)
        return manager

    def mark_base(self) -> None:
        """Start a delta window: subsequent changes go to :meth:`delta_payload`."""
        self._base_cov = self.global_cov
        self._base_fingerprints = frozenset(self.entries)

    def delta_payload(self) -> Dict[str, object]:
        """State accumulated since :meth:`mark_base`, in wire form.

        ``points`` carries every coverage bit added since the mark
        (a superset of the new entries' contributions), ``entries`` every
        entry admitted or merged since.  This is what workers publish on
        the coverage channel and what the checkpoint journal records.
        """
        new_points = points_of(self.global_cov & ~self._base_cov)
        new_entries = sorted(
            (entry for fp, entry in self.entries.items()
             if fp not in self._base_fingerprints),
            key=lambda e: e.order)
        return {"points": sorted(new_points),
                "entries": [entry.to_dict() for entry in new_entries]}

    # ----------------------------------------------------------------- sampling
    def sample(self) -> Optional[TestProgram]:
        """Draw one corpus program for mutation (``None`` when empty).

        The draw is uniform over entries in admission order, using the
        manager's seeded RNG -- byte-identical corpora with equal RNG
        state sample the same program, which is what keeps corpus-on
        serial campaigns reproducible.
        """
        if not self.entries:
            return None
        ordered = sorted(self.entries.values(), key=lambda e: e.order)
        entry = ordered[int(self._rng.integers(0, len(ordered)))]
        self.counters["sampled"] += 1
        return entry.materialize()

    # -------------------------------------------------------------------- stats
    def stats(self) -> Dict[str, int]:
        """Counters plus current size -- surfaced in engine/campaign stats."""
        stats = dict(self.counters)
        stats["entries"] = len(self.entries)
        stats["global_points"] = self.covered_count
        stats["version"] = self.version
        return stats
