"""Campaign result records shared by all fuzzers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.coverage.database import CoverageSample
from repro.fuzzing.differential import Mismatch
from repro.isa.program import TestProgram
from repro.sim.trace import HaltReason


@dataclass(frozen=True)
class TestOutcome:
    """Everything observed while executing a single test program."""

    test_index: int
    program: TestProgram
    coverage: FrozenSet[str]
    new_points: FrozenSet[str]
    mismatch: Optional[Mismatch]
    detected_bugs: FrozenSet[str]
    halt_reason: HaltReason

    @property
    def is_interesting(self) -> bool:
        """Whether the test covered at least one globally new point."""
        return bool(self.new_points)


@dataclass(frozen=True)
class BugDetection:
    """First detection of one vulnerability during a campaign."""

    bug_id: str
    test_index: int
    program_id: str
    description: str = ""

    @property
    def tests_to_detection(self) -> int:
        """Number of tests executed up to and including the detecting test."""
        return self.test_index + 1

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "bug_id": self.bug_id,
            "test_index": self.test_index,
            "program_id": self.program_id,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BugDetection":
        """Rebuild a detection from :meth:`to_dict` output."""
        return cls(
            bug_id=str(data["bug_id"]),
            test_index=int(data["test_index"]),
            program_id=str(data["program_id"]),
            description=str(data.get("description", "")),
        )


@dataclass
class FuzzCampaignResult:
    """Summary of one fuzzing campaign (one fuzzer, one DUT, one trial)."""

    fuzzer_name: str
    dut_name: str
    num_tests: int
    coverage_curve: List[CoverageSample] = field(default_factory=list)
    coverage_count: int = 0
    total_points: int = 0
    bug_detections: Dict[str, BugDetection] = field(default_factory=dict)
    interesting_tests: int = 0
    mismatching_tests: int = 0
    elapsed_seconds: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ queries
    @property
    def coverage_percent(self) -> float:
        if self.total_points == 0:
            return 0.0
        return 100.0 * self.coverage_count / self.total_points

    def detection_tests(self, bug_id: str) -> Optional[int]:
        """Tests needed to first detect ``bug_id`` (or ``None`` if undetected)."""
        detection = self.bug_detections.get(bug_id)
        return detection.tests_to_detection if detection else None

    def coverage_at(self, test_index: int) -> int:
        """Cumulative covered points after ``test_index`` tests (0-based index)."""
        covered = 0
        for sample in self.coverage_curve:
            if sample.test_index <= test_index:
                covered = sample.covered
            else:
                break
        return covered

    def tests_to_reach_coverage(self, target_covered: int) -> Optional[int]:
        """Tests needed to reach ``target_covered`` points (or ``None``)."""
        for sample in self.coverage_curve:
            if sample.covered >= target_covered:
                return sample.test_index + 1
        return None

    def summary(self) -> str:
        """One-line human-readable summary."""
        bugs = ", ".join(
            f"{bug}@{det.tests_to_detection}" for bug, det in sorted(self.bug_detections.items())
        ) or "none"
        return (f"{self.fuzzer_name} on {self.dut_name}: "
                f"{self.coverage_count}/{self.total_points} points "
                f"({self.coverage_percent:.1f}%) after {self.num_tests} tests; "
                f"bugs detected: {bugs}")

    # ------------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (inverse of :meth:`from_dict`).

        ``metadata`` is carried through as-is, so it must stay JSON-safe
        (the fuzzers only put strings, numbers and ``None`` in it).  This is
        the wire format of the parallel execution subsystem: worker
        processes ship results back as dictionaries and the checkpoint
        journal stores one ``to_dict`` payload per completed trial.
        """
        return {
            "fuzzer_name": self.fuzzer_name,
            "dut_name": self.dut_name,
            "num_tests": self.num_tests,
            "coverage_curve": [sample.to_dict() for sample in self.coverage_curve],
            "coverage_count": self.coverage_count,
            "total_points": self.total_points,
            "bug_detections": {bug_id: det.to_dict()
                               for bug_id, det in self.bug_detections.items()},
            "interesting_tests": self.interesting_tests,
            "mismatching_tests": self.mismatching_tests,
            "elapsed_seconds": self.elapsed_seconds,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzCampaignResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            fuzzer_name=str(data["fuzzer_name"]),
            dut_name=str(data["dut_name"]),
            num_tests=int(data["num_tests"]),
            coverage_curve=[CoverageSample.from_dict(sample)
                            for sample in data.get("coverage_curve", [])],
            coverage_count=int(data.get("coverage_count", 0)),
            total_points=int(data.get("total_points", 0)),
            bug_detections={str(bug_id): BugDetection.from_dict(det)
                            for bug_id, det in data.get("bug_detections", {}).items()},
            interesting_tests=int(data.get("interesting_tests", 0)),
            mismatching_tests=int(data.get("mismatching_tests", 0)),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            metadata=dict(data.get("metadata", {})),
        )

    def canonical_dict(self) -> Dict[str, object]:
        """:meth:`to_dict` minus wall-clock fields.

        Two trials of the same spec are *deterministically equal* when their
        canonical dictionaries match; ``elapsed_seconds`` is excluded
        because it measures host scheduling, not campaign behaviour.  The
        serial-vs-parallel equivalence tests compare this form.
        """
        data = self.to_dict()
        del data["elapsed_seconds"]
        return data
