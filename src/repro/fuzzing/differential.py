"""Differential testing of the DUT against the golden reference model.

Following TheHuzz (Sec. II-A), the tester compares the per-instruction
architectural commit traces of the DUT and the golden model.  The first
divergence flags a potential vulnerability; the DUT run's bug-effect
bookkeeping is then used to attribute the mismatch to the injected
vulnerabilities (the reproduction's stand-in for the manual root-causing
the paper's authors performed on the real RTL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.rtl.harness import DutRunResult
from repro.sim.trace import CommitRecord, ExecutionResult


@dataclass(frozen=True)
class Mismatch:
    """The first architectural divergence between DUT and golden traces."""

    step: int
    field_name: str
    golden_value: object
    dut_value: object
    pc: Optional[int] = None

    def describe(self) -> str:
        return (f"step {self.step} (pc=0x{self.pc or 0:x}): {self.field_name} "
                f"golden={self.golden_value!r} dut={self.dut_value!r}")


@dataclass(frozen=True)
class DifferentialReport:
    """Result of differentially testing one program."""

    mismatch: Optional[Mismatch]
    detected_bugs: FrozenSet[str] = frozenset()

    @property
    def found_mismatch(self) -> bool:
        return self.mismatch is not None


_COMPARED_FIELDS = (
    "pc", "rd", "rd_value", "trap", "mem_addr", "mem_value",
    "csr_addr", "csr_value", "next_pc",
)


def _compare_records(step: int, golden: CommitRecord,
                     dut: CommitRecord) -> Optional[Mismatch]:
    for field_name in _COMPARED_FIELDS:
        golden_value = getattr(golden, field_name)
        dut_value = getattr(dut, field_name)
        if golden_value != dut_value:
            return Mismatch(step=step, field_name=field_name,
                            golden_value=golden_value, dut_value=dut_value,
                            pc=golden.pc)
    return None


def compare_traces(golden: ExecutionResult,
                   dut: ExecutionResult) -> Optional[Mismatch]:
    """Return the first mismatch between two commit traces (or ``None``)."""
    for step, (golden_record, dut_record) in enumerate(
            zip(golden.records, dut.records)):
        mismatch = _compare_records(step, golden_record, dut_record)
        if mismatch is not None:
            return mismatch
    if len(golden.records) != len(dut.records):
        step = min(len(golden.records), len(dut.records))
        return Mismatch(step=step, field_name="trace_length",
                        golden_value=len(golden.records),
                        dut_value=len(dut.records))
    return None


class DifferentialTester:
    """Compares DUT runs against golden runs and attributes mismatches to bugs."""

    def check(self, golden: ExecutionResult, dut_run: DutRunResult) -> DifferentialReport:
        """Differential-test one program run."""
        mismatch = compare_traces(golden, dut_run.execution)
        if mismatch is None:
            return DifferentialReport(mismatch=None)
        # Only injected defects can make the DUT diverge from the golden
        # model (they share functional semantics), so every bug that altered
        # behaviour in this run is credited with the detection.
        return DifferentialReport(mismatch=mismatch,
                                  detected_bugs=dut_run.fired_bugs)
