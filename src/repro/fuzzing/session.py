"""Shared fuzzing-session plumbing.

A :class:`FuzzSession` bundles the pieces every fuzzer needs per campaign --
the DUT model, the golden reference, the cumulative coverage database, the
differential tester and the bug-detection bookkeeping -- behind a single
``run_test`` call.  Both TheHuzz and MABFuzz drive campaigns exclusively
through this interface, which is what makes the MAB layer fuzzer-agnostic
(the paper's claim in Sec. III).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.coverage.csr_transitions import count_transition_points
from repro.coverage.database import CoverageDatabase
from repro.isa.compiled import compiled_cache_stats
from repro.fuzzing.differential import DifferentialTester
from repro.fuzzing.results import BugDetection, TestOutcome
from repro.isa.program import TestProgram
from repro.rtl.harness import DutModel
from repro.sim.golden import GoldenModel, GoldenTraceCache

if TYPE_CHECKING:  # avoid a cycle: repro.exec imports the fuzzing layer.
    from repro.exec.cache import DutRunCache


class FuzzSession:
    """Executes tests against one DUT with differential testing and coverage tracking.

    Golden-model runs are served through a :class:`GoldenTraceCache`:
    duplicate or unmutated programs (MABFuzz arms replay their seeds) never
    re-run the reference model within a campaign.  Cache hit/miss counters
    are part of :meth:`stats`.

    Both halves of a test -- the golden reference and the instrumented DUT
    -- execute the program's **compiled trace**
    (:mod:`repro.isa.compiled`): the golden run compiles it (or pulls it
    from the process-level fingerprint cache) and the DUT run replays the
    very same threaded-code object, so fetch+decode work is paid once per
    distinct program per process rather than once per model per run.
    :meth:`stats` surfaces the process-level compiled-trace counters for
    observability only; they are process-cumulative and therefore
    deliberately kept out of campaign-result metadata (the same rule the
    DUT-run cache follows, see ``docs/parallel.md``).
    """

    def __init__(self, dut: DutModel, golden: Optional[GoldenModel] = None,
                 golden_cache: Optional[GoldenTraceCache] = None,
                 dut_cache: Optional["DutRunCache"] = None) -> None:
        self.dut = dut
        self.golden = golden or GoldenModel(dut.executor_config)
        self.golden_cache = golden_cache or GoldenTraceCache()
        #: optional :class:`~repro.exec.cache.DutRunCache`; the parallel
        #: execution workers install their process-local instance here.
        #: DUT runs are deterministic, so a cache hit never changes results.
        self.dut_cache = dut_cache
        self.coverage_db = CoverageDatabase(space=dut.coverage_space())
        self.differential = DifferentialTester()
        self.bug_detections: Dict[str, BugDetection] = {}
        self.tests_executed = 0
        self.interesting_tests = 0
        self.mismatching_tests = 0

    # ------------------------------------------------------------------ running
    def run_test(self, program: TestProgram) -> TestOutcome:
        """Run one test on golden + DUT, update coverage and bug bookkeeping."""
        test_index = self.tests_executed
        golden_result = self.golden_cache.get_or_run(self.golden, program)
        if self.dut_cache is not None:
            dut_run = self.dut_cache.get_or_run(self.dut, program)
        else:
            dut_run = self.dut.run(program)
        report = self.differential.check(golden_result, dut_run)
        new_points = self.coverage_db.record(test_index, dut_run.coverage)

        if report.found_mismatch:
            self.mismatching_tests += 1
            for bug_id in report.detected_bugs:
                if bug_id not in self.bug_detections:
                    self.bug_detections[bug_id] = BugDetection(
                        bug_id=bug_id,
                        test_index=test_index,
                        program_id=program.program_id,
                        description=report.mismatch.describe() if report.mismatch else "",
                    )
        outcome = TestOutcome(
            test_index=test_index,
            program=program,
            coverage=dut_run.coverage,
            new_points=frozenset(new_points),
            mismatch=report.mismatch,
            detected_bugs=report.detected_bugs,
            halt_reason=dut_run.execution.halt_reason,
        )
        if outcome.is_interesting:
            self.interesting_tests += 1
        self.tests_executed += 1
        return outcome

    # ------------------------------------------------------------------ queries
    @property
    def coverage_count(self) -> int:
        return self.coverage_db.covered_count

    @property
    def total_points(self) -> int:
        return len(self.coverage_db.space or ())

    @property
    def csr_transition_count(self) -> int:
        """Covered CSR-transition points (0 under the base coverage model)."""
        return count_transition_points(self.coverage_db.covered)

    @property
    def trap_point_count(self) -> int:
        """Covered points of the ``trap.*`` family (trap-reaching evidence)."""
        return sum(1 for point in self.coverage_db.covered
                   if point.startswith("trap."))

    @property
    def golden_cache_hits(self) -> int:
        return self.golden_cache.hits

    @property
    def golden_cache_misses(self) -> int:
        return self.golden_cache.misses

    def stats(self) -> Dict[str, int]:
        """Campaign-level session counters (incl. golden-trace cache traffic).

        DUT-cache counters appear only when a cache is installed, and are
        *process-cumulative* (the cache outlives individual sessions in a
        worker), which is why they never go into campaign-result metadata.
        """
        stats = {
            "tests_executed": self.tests_executed,
            "interesting_tests": self.interesting_tests,
            "mismatching_tests": self.mismatching_tests,
            "coverage_count": self.coverage_count,
            "golden_cache_hits": self.golden_cache.hits,
            "golden_cache_misses": self.golden_cache.misses,
        }
        if self.dut_cache is not None:
            stats["dut_cache_hits"] = self.dut_cache.hits
            stats["dut_cache_misses"] = self.dut_cache.misses
        compiled = compiled_cache_stats()
        stats["compiled_trace_hits"] = compiled["hits"]
        stats["compiled_trace_misses"] = compiled["misses"]
        return stats

    def undetected_bugs(self) -> List[str]:
        """Bug ids injected into the DUT that have not been detected yet."""
        injected = {bug.bug_id for bug in self.dut.bugs}
        return sorted(injected - set(self.bug_detections))
