"""TheHuzz-style mutation engine.

TheHuzz mutates *interesting* tests (tests that covered new points) with a
set of bit- and instruction-level operators chosen according to **static**
weights (the paper's Sec. I/III criticises exactly this static choice; the
PSOFuzz/MAB extension over operators is provided separately in
:mod:`repro.core.mutation_bandit`).

Operators work on the encoded 32-bit words where that is the natural level
(bit flips), and on the decoded instruction where that is more meaningful
(immediate tweaks, operand swaps, instruction insertion/deletion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.isa.assembler import encode_instruction
from repro.isa.decoder import decode_word
from repro.isa.encoding import InstrFormat, spec_for
from repro.isa.generator import GeneratorConfig, InstructionGenerator
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.utils.rng import make_rng

MutationFn = Callable[["MutationEngine", TestProgram, np.random.Generator], TestProgram]


@dataclass(frozen=True)
class MutationOperator:
    """One named mutation operator with its static selection weight."""

    name: str
    weight: float
    fn: MutationFn


def _pick_index(program: TestProgram, rng: np.random.Generator) -> int:
    return int(rng.integers(0, len(program.instructions)))


def _replace(program: TestProgram, index: int, instruction: Instruction,
             op_name: str) -> TestProgram:
    body = list(program.instructions)
    body[index] = instruction
    return program.with_instructions(body, mutation_op=op_name)


# --------------------------------------------------------------- word-level ops
def _flip_bits(engine: "MutationEngine", program: TestProgram,
               rng: np.random.Generator, count: int, name: str) -> TestProgram:
    index = _pick_index(program, rng)
    word = encode_instruction(program.instructions[index])
    for _ in range(count):
        word ^= 1 << int(rng.integers(0, 32))
    return _replace(program, index, decode_word(word), name)


def _op_bitflip1(engine, program, rng):
    return _flip_bits(engine, program, rng, 1, "bitflip1")


def _op_bitflip2(engine, program, rng):
    return _flip_bits(engine, program, rng, 2, "bitflip2")


def _op_bitflip4(engine, program, rng):
    return _flip_bits(engine, program, rng, 4, "bitflip4")


def _op_byteflip(engine, program, rng):
    index = _pick_index(program, rng)
    word = encode_instruction(program.instructions[index])
    byte = int(rng.integers(0, 4))
    word ^= 0xFF << (8 * byte)
    return _replace(program, index, decode_word(word), "byteflip")


def _op_random_word(engine, program, rng):
    index = _pick_index(program, rng)
    word = int(rng.integers(0, 2**32))
    return _replace(program, index, decode_word(word), "random_word")


# --------------------------------------------------------- instruction-level ops
_IMM_FORMATS = (InstrFormat.I, InstrFormat.I_SHIFT, InstrFormat.S,
                InstrFormat.B, InstrFormat.U, InstrFormat.J)


def _imm_limits(fmt: InstrFormat) -> tuple:
    if fmt is InstrFormat.U:
        return 0, (1 << 20) - 1
    if fmt is InstrFormat.J:
        return -(1 << 20), (1 << 20) - 2
    if fmt is InstrFormat.B:
        return -(1 << 12), (1 << 12) - 2
    if fmt is InstrFormat.I_SHIFT:
        return 0, 63
    return -2048, 2047


def _adjust_imm(engine, program, rng, delta_range: int, name: str) -> TestProgram:
    candidates = [i for i, ins in enumerate(program.instructions)
                  if not ins.is_illegal and spec_for(ins.mnemonic).fmt in _IMM_FORMATS]
    if not candidates:
        return _op_bitflip1(engine, program, rng)
    index = int(rng.choice(candidates))
    instr = program.instructions[index]
    fmt = spec_for(instr.mnemonic).fmt
    low, high = _imm_limits(fmt)
    delta = int(rng.integers(-delta_range, delta_range + 1))
    if fmt in (InstrFormat.B, InstrFormat.J):
        delta *= 4
    new_imm = min(max(instr.imm + delta, low), high)
    return _replace(program, index, instr.with_fields(imm=new_imm), name)


def _op_imm_small(engine, program, rng):
    return _adjust_imm(engine, program, rng, 4, "imm_small")


def _op_imm_large(engine, program, rng):
    return _adjust_imm(engine, program, rng, 512, "imm_large")


def _op_operand_swap(engine, program, rng):
    candidates = [i for i, ins in enumerate(program.instructions)
                  if not ins.is_illegal and spec_for(ins.mnemonic).reads_rs2]
    if not candidates:
        return _op_bitflip1(engine, program, rng)
    index = int(rng.choice(candidates))
    instr = program.instructions[index]
    return _replace(program, index,
                    instr.with_fields(rs1=instr.rs2, rs2=instr.rs1), "operand_swap")


def _op_rd_change(engine, program, rng):
    candidates = [i for i, ins in enumerate(program.instructions)
                  if not ins.is_illegal and spec_for(ins.mnemonic).writes_rd]
    if not candidates:
        return _op_bitflip1(engine, program, rng)
    index = int(rng.choice(candidates))
    instr = program.instructions[index]
    return _replace(program, index,
                    instr.with_fields(rd=int(rng.integers(0, 32))), "rd_change")


def _op_opcode_swap(engine, program, rng):
    """Replace an instruction with a random one of the same functional class."""
    index = _pick_index(program, rng)
    instr = program.instructions[index]
    if instr.is_illegal:
        replacement = engine.instruction_generator.random_instruction()
    else:
        cls = spec_for(instr.mnemonic).cls
        replacement = engine.instruction_generator.random_instruction(cls=cls)
    return _replace(program, index, replacement, "opcode_swap")


def _op_instr_insert(engine, program, rng):
    index = _pick_index(program, rng)
    body = list(program.instructions)
    body.insert(index, engine.instruction_generator.random_instruction())
    if len(body) > engine.max_program_length:
        body = body[:engine.max_program_length]
    return program.with_instructions(body, mutation_op="instr_insert")


def _op_instr_delete(engine, program, rng):
    if len(program.instructions) <= engine.min_program_length:
        return _op_bitflip1(engine, program, rng)
    index = _pick_index(program, rng)
    body = list(program.instructions)
    body.pop(index)
    return program.with_instructions(body, mutation_op="instr_delete")


def _op_instr_duplicate(engine, program, rng):
    index = _pick_index(program, rng)
    body = list(program.instructions)
    body.insert(index, body[index])
    if len(body) > engine.max_program_length:
        body = body[:engine.max_program_length]
    return program.with_instructions(body, mutation_op="instr_duplicate")


def _op_instr_swap(engine, program, rng):
    if len(program.instructions) < 2:
        return _op_bitflip1(engine, program, rng)
    i = _pick_index(program, rng)
    j = _pick_index(program, rng)
    body = list(program.instructions)
    body[i], body[j] = body[j], body[i]
    return program.with_instructions(body, mutation_op="instr_swap")


#: TheHuzz's static operator weights (normalised at use time).  The ordering
#: mirrors the relative importance TheHuzz assigns to its opcode/operand/bit
#: mutators; the exact values are not published, so representative constants
#: are used (the ablation bench sweeps them).
DEFAULT_OPERATOR_WEIGHTS: Dict[str, float] = {
    "bitflip1": 0.14,
    "bitflip2": 0.08,
    "bitflip4": 0.06,
    "byteflip": 0.06,
    "random_word": 0.04,
    "imm_small": 0.10,
    "imm_large": 0.08,
    "operand_swap": 0.08,
    "rd_change": 0.08,
    "opcode_swap": 0.12,
    "instr_insert": 0.06,
    "instr_delete": 0.04,
    "instr_duplicate": 0.03,
    "instr_swap": 0.03,
}

_OPERATOR_FUNCTIONS: Dict[str, MutationFn] = {
    "bitflip1": _op_bitflip1,
    "bitflip2": _op_bitflip2,
    "bitflip4": _op_bitflip4,
    "byteflip": _op_byteflip,
    "random_word": _op_random_word,
    "imm_small": _op_imm_small,
    "imm_large": _op_imm_large,
    "operand_swap": _op_operand_swap,
    "rd_change": _op_rd_change,
    "opcode_swap": _op_opcode_swap,
    "instr_insert": _op_instr_insert,
    "instr_delete": _op_instr_delete,
    "instr_duplicate": _op_instr_duplicate,
    "instr_swap": _op_instr_swap,
}


class MutationEngine:
    """Applies weighted mutation operators to interesting tests."""

    def __init__(self,
                 weights: Optional[Dict[str, float]] = None,
                 generator_config: Optional[GeneratorConfig] = None,
                 rng=None,
                 mutants_per_test: int = 4,
                 min_program_length: int = 4,
                 max_program_length: int = 48) -> None:
        if mutants_per_test < 1:
            raise ValueError("mutants_per_test must be >= 1")
        self.rng = make_rng(rng)
        self.mutants_per_test = mutants_per_test
        self.min_program_length = min_program_length
        self.max_program_length = max_program_length
        self.instruction_generator = InstructionGenerator(generator_config, self.rng)
        weight_table = dict(DEFAULT_OPERATOR_WEIGHTS)
        if weights:
            weight_table.update(weights)
        unknown = set(weight_table) - set(_OPERATOR_FUNCTIONS)
        if unknown:
            raise KeyError(f"unknown mutation operators: {sorted(unknown)}")
        self.operators: List[MutationOperator] = [
            MutationOperator(name, weight_table[name], _OPERATOR_FUNCTIONS[name])
            for name in sorted(weight_table)
        ]
        self._probabilities = self._normalise([op.weight for op in self.operators])

    @staticmethod
    def _normalise(weights: Sequence[float]) -> np.ndarray:
        array = np.array(weights, dtype=float)
        if (array < 0).any() or array.sum() <= 0:
            raise ValueError("operator weights must be non-negative and not all zero")
        return array / array.sum()

    @property
    def operator_names(self) -> List[str]:
        return [op.name for op in self.operators]

    def set_weights(self, weights: Dict[str, float]) -> None:
        """Replace the operator selection weights (used by the MAB-over-operators extension)."""
        self.operators = [
            MutationOperator(op.name, weights.get(op.name, op.weight), op.fn)
            for op in self.operators
        ]
        self._probabilities = self._normalise([op.weight for op in self.operators])

    def pick_operator(self) -> MutationOperator:
        """Draw one operator according to the current weights."""
        index = int(self.rng.choice(len(self.operators), p=self._probabilities))
        return self.operators[index]

    def mutate_once(self, program: TestProgram,
                    operator: Optional[MutationOperator] = None) -> TestProgram:
        """Produce a single mutant of ``program``."""
        chosen = operator or self.pick_operator()
        return chosen.fn(self, program, self.rng)

    def mutate(self, program: TestProgram,
               count: Optional[int] = None) -> List[TestProgram]:
        """Produce ``count`` mutants of ``program`` (default ``mutants_per_test``)."""
        total = self.mutants_per_test if count is None else count
        return [self.mutate_once(program) for _ in range(total)]
