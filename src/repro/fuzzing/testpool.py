"""FIFO test pools.

TheHuzz stores pending tests in a plain first-in-first-out database and,
as the paper points out (Sec. I), "does not prioritize selecting the tests
with more potential first".  MABFuzz keeps one such pool *per arm*; the
pool implementation itself is shared.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Iterator, List, Optional

from repro.isa.program import TestProgram


class TestPool:
    """A FIFO queue of pending test programs with simple statistics."""

    def __init__(self, tests: Optional[Iterable[TestProgram]] = None,
                 max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size <= 0:
            raise ValueError("max_size must be positive")
        self.max_size = max_size
        self._queue: Deque[TestProgram] = deque()
        self.total_pushed = 0
        self.total_popped = 0
        self.total_dropped = 0
        if tests:
            self.push_many(tests)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self) -> Iterator[TestProgram]:
        return iter(self._queue)

    def push(self, program: TestProgram) -> bool:
        """Append one test; returns False if it was dropped due to ``max_size``."""
        if self.max_size is not None and len(self._queue) >= self.max_size:
            self.total_dropped += 1
            return False
        self._queue.append(program)
        self.total_pushed += 1
        return True

    def push_many(self, programs: Iterable[TestProgram]) -> int:
        """Append several tests; returns how many were accepted."""
        accepted = 0
        for program in programs:
            accepted += self.push(program)
        return accepted

    def pop(self) -> TestProgram:
        """Remove and return the oldest test (FIFO)."""
        if not self._queue:
            raise IndexError("pop from an empty test pool")
        self.total_popped += 1
        return self._queue.popleft()

    def peek(self) -> Optional[TestProgram]:
        """Return the oldest test without removing it (or ``None``)."""
        return self._queue[0] if self._queue else None

    def clear(self) -> None:
        """Drop all pending tests."""
        self._queue.clear()

    def snapshot(self) -> List[TestProgram]:
        """A list copy of the pending tests (oldest first)."""
        return list(self._queue)
