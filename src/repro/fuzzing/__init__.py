"""Base hardware-fuzzer substrate (the TheHuzz reimplementation).

This package contains everything a coverage-guided, differential-testing
processor fuzzer needs *except* the scheduling policy: mutation operators,
test pools, the differential tester, the shared fuzzing session plumbing and
campaign result records.  :class:`~repro.fuzzing.thehuzz.TheHuzzFuzzer`
composes these with the paper's baseline *static FIFO* policy;
:class:`~repro.core.mabfuzz.MABFuzz` composes the same pieces with the
multi-armed-bandit policy that is the paper's contribution.
"""

from repro.fuzzing.corpus import CorpusEntry, CorpusManager
from repro.fuzzing.mutation import MutationEngine, MutationOperator, DEFAULT_OPERATOR_WEIGHTS
from repro.fuzzing.testpool import TestPool
from repro.fuzzing.differential import DifferentialTester, Mismatch, DifferentialReport
from repro.fuzzing.results import BugDetection, FuzzCampaignResult, TestOutcome
from repro.fuzzing.session import FuzzSession
from repro.fuzzing.base import Fuzzer, FuzzerConfig
from repro.fuzzing.thehuzz import TheHuzzFuzzer
from repro.fuzzing.random_fuzzer import RandomFuzzer

__all__ = [
    "CorpusEntry",
    "CorpusManager",
    "MutationEngine",
    "MutationOperator",
    "DEFAULT_OPERATOR_WEIGHTS",
    "TestPool",
    "DifferentialTester",
    "Mismatch",
    "DifferentialReport",
    "BugDetection",
    "FuzzCampaignResult",
    "TestOutcome",
    "FuzzSession",
    "Fuzzer",
    "FuzzerConfig",
    "TheHuzzFuzzer",
    "RandomFuzzer",
]
