"""Abstract fuzzer base class and shared configuration.

A concrete fuzzer only decides *which test to run next* and *what to do with
the outcome*; everything else (seed generation, mutation, execution,
coverage, differential testing, campaign bookkeeping) lives in the shared
plumbing.  This is the boundary at which MABFuzz plugs its MAB scheduler
into an existing fuzzer.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional

if TYPE_CHECKING:  # circular at runtime: corpus imports nothing from here,
    # but keeping the import lazy keeps corpus-off startup untouched.
    from repro.fuzzing.corpus import CorpusManager

from repro.fuzzing.mutation import MutationEngine
from repro.fuzzing.results import FuzzCampaignResult, TestOutcome
from repro.fuzzing.session import FuzzSession
from repro.isa.generator import GeneratorConfig
from repro.isa.program import TestProgram
from repro.isa.scenarios import SCENARIOS, make_seed_provider
from repro.rtl.harness import DutModel
from repro.utils.rng import derive_rng, make_rng


@dataclass(frozen=True)
class FuzzerConfig:
    """Configuration shared by all fuzzers.

    Attributes:
        num_seeds: size of the initial seed set (TheHuzz) / number of arms'
            initial seeds (MABFuzz uses its own ``num_arms``).
        mutants_per_test: how many mutants an interesting test spawns.
        generator_config: configuration of the random seed generator.
        mutation_weights: overrides for the static mutation-operator weights.
        max_program_steps: per-test execution step limit (``None`` = model default).
        scenario: seed workload family -- ``"user"`` (the historical random
            user-level seeds), ``"trap"`` (trap/CSR scenario seeds from
            :mod:`repro.isa.scenarios`) or ``"mixed"`` (alternating, so
            MABFuzz arms split between the two families).
        corpus: enable the coverage-directed corpus
            (:mod:`repro.fuzzing.corpus`): executed tests that reach novel
            coverage are admitted as seeds, and mutation arms draw their
            seeds from the corpus instead of always generating fresh.
            Off by default -- corpus-off campaigns are bit-identical to
            pre-corpus builds.
    """

    num_seeds: int = 10
    mutants_per_test: int = 4
    generator_config: Optional[GeneratorConfig] = None
    mutation_weights: Optional[Dict[str, float]] = None
    max_program_steps: Optional[int] = None
    scenario: str = "user"
    corpus: bool = False

    def __post_init__(self) -> None:
        if self.num_seeds < 1:
            raise ValueError("num_seeds must be >= 1")
        if self.mutants_per_test < 1:
            raise ValueError("mutants_per_test must be >= 1")
        if self.scenario not in SCENARIOS:
            raise ValueError(f"scenario must be one of {SCENARIOS}")


class Fuzzer(abc.ABC):
    """Base class for coverage-guided differential fuzzers."""

    #: human-readable fuzzer name (used in results and report tables).
    name = "fuzzer"

    def __init__(self, dut: DutModel, config: Optional[FuzzerConfig] = None,
                 rng=None) -> None:
        self.dut = dut
        self.config = config or FuzzerConfig()
        self.rng = make_rng(rng)
        self.session = FuzzSession(dut)
        # For scenario="user" this builds the exact SeedGenerator the
        # fuzzers always used (same derived rng), so historical campaigns
        # stay bit-identical.
        self.seed_generator = make_seed_provider(
            self.config.scenario, self.config.generator_config,
            derive_rng(self.rng, "seeds"))
        self.mutation_engine = MutationEngine(
            weights=self.config.mutation_weights,
            generator_config=self.config.generator_config,
            rng=derive_rng(self.rng, "mutation"),
            mutants_per_test=self.config.mutants_per_test,
        )
        #: coverage-directed corpus (:class:`~repro.fuzzing.corpus.
        #: CorpusManager`) or ``None`` when ``config.corpus`` is off.  The
        #: corpus RNG is derived *last* and only when enabled, so
        #: corpus-off campaigns keep their historical RNG streams.
        self.corpus: Optional["CorpusManager"] = None
        self._corpus_seeded = 0
        self._corpus_fresh = 0
        #: grid-globally novel points of the last executed test (corpus
        #: mode only) -- the corpus-aware reward signal for schedulers.
        self._corpus_novel: FrozenSet[str] = frozenset()
        if self.config.corpus:
            from repro.fuzzing.corpus import CorpusManager
            self.corpus = CorpusManager(rng=derive_rng(self.rng, "corpus"))

    # -------------------------------------------------------------- scheduling
    @abc.abstractmethod
    def _next_test(self) -> TestProgram:
        """Select the next test program to execute."""

    @abc.abstractmethod
    def _after_test(self, program: TestProgram, outcome: TestOutcome) -> None:
        """React to the outcome of an executed test (mutate, update state ...)."""

    # -------------------------------------------------------------- corpus mode
    def on_corpus_state(self) -> None:
        """Hook fired after external corpus state is merged into :attr:`corpus`.

        The campaign runner injects accumulated corpus state (from earlier
        trials or other workers) *after* construction; fuzzers that fix
        their seeds in ``__init__`` (MABFuzz arms) override this to
        re-draw them from the corpus.  The default is a no-op.
        """

    def _corpus_seed(self) -> Optional[TestProgram]:
        """Draw a mutated corpus program to use as a fresh seed.

        Returns ``None`` (and counts a fresh seed) when corpus mode is off
        or the corpus is still empty, so call sites can fall back to the
        generator with ``self._corpus_seed() or <fresh>``.
        """
        if self.corpus is None or not self.corpus:
            if self.corpus is not None:
                self._corpus_fresh += 1
            return None
        program = self.corpus.sample()
        if program is None:
            self._corpus_fresh += 1
            return None
        self._corpus_seeded += 1
        return self.mutation_engine.mutate_once(program)

    # ------------------------------------------------------------------ running
    def fuzz_one(self) -> TestOutcome:
        """Execute a single fuzzing iteration."""
        program = self._next_test()
        outcome = self.session.run_test(program)
        if self.corpus is not None:
            # Snapshot grid-global novelty *before* the offer folds this
            # test's coverage into the map: schedulers reward it instead
            # of campaign-local novelty, so inherited state steers arms
            # away from territory earlier trials / other workers charted.
            self._corpus_novel = self.corpus.novel_points(outcome.coverage)
            # Offer every executed test; the manager's novelty gate keeps
            # only programs that extend the global coverage map.
            self.corpus.offer(program, outcome.coverage,
                              scenario=self.config.scenario)
        self._after_test(program, outcome)
        return outcome

    def run(self, num_tests: int,
            metadata: Optional[Dict[str, object]] = None) -> FuzzCampaignResult:
        """Run a campaign of ``num_tests`` tests and return its summary."""
        if num_tests < 1:
            raise ValueError("num_tests must be >= 1")
        start = time.perf_counter()
        for _ in range(num_tests):
            self.fuzz_one()
        elapsed = time.perf_counter() - start
        return self._build_result(num_tests, elapsed, metadata or {})

    # ------------------------------------------------------------------ results
    def _build_result(self, num_tests: int, elapsed: float,
                      metadata: Dict[str, object]) -> FuzzCampaignResult:
        session = self.session
        result_metadata = dict(self._result_metadata())
        result_metadata.update(metadata)
        return FuzzCampaignResult(
            fuzzer_name=self.name,
            dut_name=self.dut.name,
            num_tests=num_tests,
            coverage_curve=session.coverage_db.curve(),
            coverage_count=session.coverage_count,
            total_points=session.total_points,
            bug_detections=dict(session.bug_detections),
            interesting_tests=session.interesting_tests,
            mismatching_tests=session.mismatching_tests,
            elapsed_seconds=elapsed,
            metadata=result_metadata,
        )

    def _result_metadata(self) -> Dict[str, object]:
        """Fuzzer-specific metadata attached to campaign results."""
        metadata = {"num_seeds": self.config.num_seeds,
                "mutants_per_test": self.config.mutants_per_test,
                "scenario": self.config.scenario,
                "coverage_model": self.dut.coverage_model,
                "csr_transition_points": self.session.csr_transition_count,
                "trap_points": self.session.trap_point_count,
                "golden_cache_hits": self.session.golden_cache_hits,
                "golden_cache_misses": self.session.golden_cache_misses}
        if self.corpus is not None:
            stats = self.corpus.stats()
            metadata.update({
                "corpus_admitted": stats["admitted"],
                "corpus_rejected": stats["rejected"],
                "corpus_evicted": stats["evicted"],
                "corpus_sampled": stats["sampled"],
                "corpus_entries": stats["entries"],
                "corpus_global_points": stats["global_points"],
                "corpus_seeded": self._corpus_seeded,
                "corpus_fresh": self._corpus_fresh,
            })
        return metadata
