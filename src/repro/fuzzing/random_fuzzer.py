"""Purely random regression baseline (no coverage feedback, no mutation).

Not part of the paper's headline comparison, but useful as an ablation
anchor: it shows how much of TheHuzz's and MABFuzz's coverage comes from
feedback-driven mutation at all.
"""

from __future__ import annotations

from repro.fuzzing.base import Fuzzer
from repro.fuzzing.results import TestOutcome
from repro.isa.program import TestProgram


class RandomFuzzer(Fuzzer):
    """Generates an independent random test every iteration."""

    name = "random"

    def _next_test(self) -> TestProgram:
        return self.seed_generator.generate()

    def _after_test(self, program: TestProgram, outcome: TestOutcome) -> None:
        # Random regression ignores feedback entirely.
        return None
