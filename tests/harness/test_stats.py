"""Tests for the trial-aggregation statistics helpers."""

import pytest
from hypothesis import example, given, strategies as st

from repro.harness.stats import censored_mean, geometric_mean, median, summarize


class TestSummarize:
    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.minimum == 1.0 and summary.maximum == 3.0
        assert summary.ci_low < 2.0 < summary.ci_high

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_unsupported_confidence(self):
        with pytest.raises(ValueError):
            summarize([1, 2], confidence=0.5)

    def test_format(self):
        text = summarize([2.0, 2.0, 2.0]).format("tests")
        assert "2.00" in text and "tests" in text and "n=3" in text


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        with pytest.raises(ValueError):
            median([])


class TestCensoredMean:
    def test_mixed(self):
        assert censored_mean([10.0, None], censor_at=100.0) == pytest.approx(55.0)

    def test_all_none(self):
        assert censored_mean([None, None], censor_at=100.0) is None

    def test_empty(self):
        assert censored_mean([], censor_at=10.0) is None


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=30))
# Regression: numpy's pairwise mean of identical values can exceed max by an
# ulp; summarize() clamps the mean into [min, max].
@example(values=[174762.87263006327] * 3)
def test_summary_bounds_property(values):
    summary = summarize(values)
    assert summary.minimum <= summary.mean <= summary.maximum
    assert summary.ci_low <= summary.mean <= summary.ci_high


@given(st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=1, max_size=20))
def test_geometric_mean_between_min_and_max(values):
    gm = geometric_mean(values)
    assert min(values) - 1e-9 <= gm <= max(values) + 1e-9
    arithmetic = sum(values) / len(values)
    assert gm <= arithmetic + 1e-9
