"""Tests for the evaluation metrics (detection speedups, coverage speedups)."""

import pytest

from repro.coverage.database import CoverageSample
from repro.fuzzing.results import BugDetection, FuzzCampaignResult
from repro.harness.metrics import (
    coverage_increment_percent,
    coverage_speedup,
    detection_speedup,
    mean_coverage_curve,
    mean_detection_tests,
)


def _result(num_tests=100, curve=(), detections=None, coverage=0):
    return FuzzCampaignResult(
        fuzzer_name="f", dut_name="d", num_tests=num_tests,
        coverage_curve=[CoverageSample(i, c) for i, c in curve],
        coverage_count=coverage,
        total_points=1000,
        bug_detections={bug: BugDetection(bug, idx, "t0")
                        for bug, idx in (detections or {}).items()},
    )


class TestMeanDetectionTests:
    def test_simple_mean(self):
        results = [_result(detections={"V1": 9}), _result(detections={"V1": 19})]
        assert mean_detection_tests(results, "V1") == pytest.approx(15.0)

    def test_censoring(self):
        results = [_result(num_tests=100, detections={"V1": 9}), _result(num_tests=100)]
        assert mean_detection_tests(results, "V1") == pytest.approx((10 + 100) / 2)

    def test_none_when_never_detected(self):
        assert mean_detection_tests([_result(), _result()], "V1") is None


class TestDetectionSpeedup:
    def test_faster_candidate(self):
        baseline = [_result(detections={"V1": 99})]
        candidate = [_result(detections={"V1": 9})]
        assert detection_speedup(baseline, candidate, "V1") == pytest.approx(10.0)

    def test_slower_candidate(self):
        baseline = [_result(detections={"V1": 9})]
        candidate = [_result(detections={"V1": 99})]
        assert detection_speedup(baseline, candidate, "V1") == pytest.approx(0.1)

    def test_baseline_missed_gives_lower_bound(self):
        baseline = [_result(num_tests=100)]
        candidate = [_result(num_tests=100, detections={"V1": 4})]
        assert detection_speedup(baseline, candidate, "V1") == pytest.approx(20.0)
        assert detection_speedup(baseline, candidate, "V1",
                                 censor_baseline=False) is None

    def test_none_when_neither_detected(self):
        assert detection_speedup([_result()], [_result()], "V1") is None

    def test_candidate_missed_censored(self):
        baseline = [_result(detections={"V1": 49})]
        candidate = [_result(num_tests=100)]
        speedup = detection_speedup(baseline, candidate, "V1")
        assert speedup == pytest.approx(0.5)


class TestCoverageCurves:
    def test_mean_curve(self):
        a = _result(num_tests=10, curve=[(i, 10 * (i + 1)) for i in range(10)])
        b = _result(num_tests=10, curve=[(i, 20 * (i + 1)) for i in range(10)])
        curve = mean_coverage_curve([a, b], num_samples=5)
        assert len(curve) == 5
        assert curve[-1].test_index == 9
        assert curve[-1].covered == pytest.approx((100 + 200) / 2)

    def test_monotone(self):
        a = _result(num_tests=20, curve=[(i, 5 * (i + 1)) for i in range(20)])
        curve = mean_coverage_curve([a], num_samples=10)
        values = [s.covered for s in curve]
        assert values == sorted(values)

    def test_empty(self):
        assert mean_coverage_curve([]) == []


class TestCoverageSpeedup:
    def _linear(self, num_tests, rate):
        return _result(num_tests=num_tests,
                       curve=[(i, rate * (i + 1)) for i in range(num_tests)],
                       coverage=rate * num_tests)

    def test_faster_candidate(self):
        baseline = [self._linear(100, 1)]     # reaches 100 points at test 100
        candidate = [self._linear(100, 4)]    # reaches 100 points at test 25
        assert coverage_speedup(baseline, candidate) == pytest.approx(4.0)

    def test_equal_fuzzers(self):
        baseline = [self._linear(50, 2)]
        candidate = [self._linear(50, 2)]
        assert coverage_speedup(baseline, candidate) == pytest.approx(1.0)

    def test_slower_candidate_below_one(self):
        baseline = [self._linear(100, 4)]
        candidate = [self._linear(100, 1)]
        assert coverage_speedup(baseline, candidate) < 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            coverage_speedup([], [self._linear(10, 1)])

    def test_increment_percent(self):
        baseline = [_result(coverage=200)]
        candidate = [_result(coverage=210)]
        assert coverage_increment_percent(baseline, candidate) == pytest.approx(5.0)

    def test_increment_negative(self):
        baseline = [_result(coverage=200)]
        candidate = [_result(coverage=190)]
        assert coverage_increment_percent(baseline, candidate) == pytest.approx(-5.0)

    def test_increment_zero_baseline(self):
        assert coverage_increment_percent([_result(coverage=0)],
                                          [_result(coverage=10)]) == 0.0
