"""Tests for the table/figure renderers and the report builder."""

from repro.coverage.database import CoverageSample
from repro.fuzzing.results import FuzzCampaignResult
from repro.harness.campaign import CampaignSpec, TrialSet
from repro.harness.experiments import ExperimentConfig, Table1Result, Table1Row
from repro.harness.figures import figure3_csv, figure4_csv, render_figure3
from repro.harness.report import build_experiments_report
from repro.harness.tables import render_ablation_table, render_figure4_table, render_table1


def _table1():
    config = ExperimentConfig(algorithms=("egreedy", "ucb", "exp3"))
    rows = [
        Table1Row(bug_id="V5", cwe=1252, description="Exception not thrown",
                  processor="cva6", baseline_tests=2.5,
                  speedups={"egreedy": 0.35, "ucb": 0.13, "exp3": 0.63}),
        Table1Row(bug_id="V7", cwe=1201, description="EBREAK instret",
                  processor="rocket", baseline_tests=927.0,
                  speedups={"egreedy": 308.89, "ucb": 185.34, "exp3": None}),
    ]
    return Table1Result(config=config, rows=rows)


def _series():
    return {
        "cva6": {
            "thehuzz": [CoverageSample(9, 100), CoverageSample(19, 150)],
            "mabfuzz:ucb": [CoverageSample(9, 130), CoverageSample(19, 180)],
        }
    }


def _summary():
    return {
        "cva6": {
            "ucb": {"speedup": 5.38, "increment_percent": 0.9,
                    "final_coverage": 180.0, "baseline_coverage": 150.0},
        }
    }


class TestRenderTable1:
    def test_contains_rows_and_speedups(self):
        text = render_table1(_table1())
        assert "V5" in text and "V7" in text
        assert "308.89x" in text
        assert "0.13x" in text
        assert "n/a" in text  # the missing exp3 speedup
        assert "TheHuzz #tests" in text

    def test_header_names_algorithms(self):
        text = render_table1(_table1())
        for algo in ("egreedy", "ucb", "exp3"):
            assert f"{algo} speedup" in text


class TestRenderFigure4:
    def test_contains_metrics(self):
        text = render_figure4_table(_summary())
        assert "cva6" in text
        assert "5.38x" in text
        assert "+0.90%" in text


class TestRenderAblation:
    def test_table(self):
        spec = CampaignSpec(processor="cva6", fuzzer="mabfuzz:ucb", num_tests=10,
                            trials=1)
        result = FuzzCampaignResult(fuzzer_name="mabfuzz:ucb", dut_name="cva6",
                                    num_tests=10, coverage_count=50, total_points=200)
        trialset = TrialSet(spec=spec, results=[result])
        text = render_ablation_table({0.25: trialset}, parameter_name="alpha")
        assert "alpha" in text and "0.25" in text and "25.0%" in text


class TestFigureRenderers:
    def test_figure3_csv(self):
        csv = figure3_csv(_series())
        lines = csv.splitlines()
        assert lines[0] == "processor,fuzzer,tests,covered_points"
        assert "cva6,thehuzz,10,100" in lines
        assert "cva6,mabfuzz:ucb,20,180" in lines

    def test_figure4_csv(self):
        csv = figure4_csv(_summary())
        assert csv.splitlines()[0] == \
            "processor,algorithm,coverage_speedup,coverage_increment_percent"
        assert "cva6,ucb,5.380,0.900" in csv

    def test_render_figure3_ascii(self):
        text = render_figure3(_series())
        assert "[cva6]" in text
        assert "final=150" in text and "final=180" in text


class TestReport:
    def test_full_report(self):
        # A report built only from Table I still renders.
        report = build_experiments_report(table1=_table1(), notes="scaled runs")
        assert report.startswith("# MABFuzz reproduction")
        assert "scaled runs" in report
        assert "Table I" in report
        assert "Figure 3" not in report

    def test_empty_report(self):
        report = build_experiments_report()
        assert "MABFuzz reproduction" in report
