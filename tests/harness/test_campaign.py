"""Tests for campaign specs and trial running."""

import pytest

from repro.fuzzing.base import FuzzerConfig
from repro.harness.campaign import CampaignSpec, TrialSet, run_campaign, run_trials


SMALL = dict(num_tests=12, trials=2, seed=3,
             fuzzer_config=FuzzerConfig(num_seeds=3, mutants_per_test=2))


class TestCampaignSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(processor="cva6", fuzzer="thehuzz", num_tests=0)
        with pytest.raises(ValueError):
            CampaignSpec(processor="cva6", fuzzer="thehuzz", trials=0)

    def test_defaults(self):
        spec = CampaignSpec(processor="cva6", fuzzer="thehuzz")
        assert spec.trials == 3
        assert spec.bugs is None


class TestRunCampaign:
    def test_single_trial(self):
        spec = CampaignSpec(processor="rocket", fuzzer="thehuzz", bugs=[], **SMALL)
        result = run_campaign(spec, trial_index=0)
        assert result.num_tests == 12
        assert result.dut_name == "rocket"
        assert result.metadata["trial"] == 0

    def test_trial_index_changes_seed(self):
        spec = CampaignSpec(processor="rocket", fuzzer="thehuzz", bugs=[], **SMALL)
        first = run_campaign(spec, trial_index=0)
        second = run_campaign(spec, trial_index=1)
        assert first.metadata["seed"] != second.metadata["seed"]

    def test_same_trial_reproducible(self):
        spec = CampaignSpec(processor="cva6", fuzzer="mabfuzz:ucb", bugs=[], **SMALL)
        first = run_campaign(spec, trial_index=0)
        second = run_campaign(spec, trial_index=0)
        assert first.coverage_count == second.coverage_count


class TestRunTrials:
    def test_trialset_contents(self):
        spec = CampaignSpec(processor="rocket", fuzzer="thehuzz", bugs=[], **SMALL)
        trialset = run_trials(spec)
        assert isinstance(trialset, TrialSet)
        assert trialset.num_trials == 2
        assert trialset.processor == "rocket"
        assert trialset.fuzzer_name == "thehuzz"
        assert trialset.mean_coverage_count() > 0
        assert 0 < trialset.mean_coverage_percent() < 100

    def test_detection_tests_list(self):
        spec = CampaignSpec(processor="cva6", fuzzer="thehuzz", bugs=["V5"],
                            num_tests=40, trials=2, seed=1,
                            fuzzer_config=FuzzerConfig(num_seeds=4))
        trialset = run_trials(spec)
        detections = trialset.detection_tests("V5")
        assert len(detections) == 2
        assert any(d is not None for d in detections)
