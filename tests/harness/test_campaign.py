"""Tests for campaign specs, trial seeding and trial running."""

import pytest

from repro.fuzzing.base import FuzzerConfig
from repro.fuzzing.results import FuzzCampaignResult
from repro.harness.campaign import (
    CampaignSpec,
    TrialSet,
    run_campaign,
    run_trials,
    trial_seed,
)


SMALL = dict(num_tests=12, trials=2, seed=3,
             fuzzer_config=FuzzerConfig(num_seeds=3, mutants_per_test=2))


class TestCampaignSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(processor="cva6", fuzzer="thehuzz", num_tests=0)
        with pytest.raises(ValueError):
            CampaignSpec(processor="cva6", fuzzer="thehuzz", trials=0)

    def test_defaults(self):
        spec = CampaignSpec(processor="cva6", fuzzer="thehuzz")
        assert spec.trials == 3
        assert spec.bugs is None

    def test_fingerprint_is_content_addressed(self):
        spec = CampaignSpec(processor="cva6", fuzzer="thehuzz", **SMALL)
        same = CampaignSpec(processor="cva6", fuzzer="thehuzz", **SMALL)
        assert spec.fingerprint() == same.fingerprint()
        other = CampaignSpec(processor="cva6", fuzzer="thehuzz",
                             num_tests=13, trials=2, seed=3,
                             fuzzer_config=SMALL["fuzzer_config"])
        assert spec.fingerprint() != other.fingerprint()

    def test_fingerprint_ignores_trial_count(self):
        # Trials are independent and individually seeded, so extending a
        # grid's trial count must keep matching its journaled trials.
        two = CampaignSpec(processor="cva6", fuzzer="thehuzz", trials=2)
        three = CampaignSpec(processor="cva6", fuzzer="thehuzz", trials=3)
        assert two.fingerprint() == three.fingerprint()

    def test_fingerprint_sees_nested_config(self):
        spec = CampaignSpec(processor="cva6", fuzzer="thehuzz", **SMALL)
        deeper = CampaignSpec(processor="cva6", fuzzer="thehuzz",
                              num_tests=12, trials=2, seed=3,
                              fuzzer_config=FuzzerConfig(num_seeds=4,
                                                         mutants_per_test=2))
        assert spec.fingerprint() != deeper.fingerprint()

    def test_fingerprint_backward_compatible_with_pre_corpus_payloads(self):
        # Journals written before the corpus subsystem serialized
        # FuzzerConfig without a "corpus" key; a corpus-off spec must keep
        # fingerprinting identically so those journals still resume.
        spec = CampaignSpec(processor="cva6", fuzzer="thehuzz", **SMALL)
        legacy = spec.to_dict()
        assert legacy["fuzzer_config"].pop("corpus") is False
        assert CampaignSpec.from_dict(legacy).fingerprint() == spec.fingerprint()

    def test_fingerprint_sees_corpus_mode(self):
        off = CampaignSpec(processor="cva6", fuzzer="thehuzz", **SMALL)
        on = CampaignSpec(processor="cva6", fuzzer="thehuzz",
                          num_tests=12, trials=2, seed=3,
                          fuzzer_config=FuzzerConfig(num_seeds=3,
                                                     mutants_per_test=2,
                                                     corpus=True))
        assert off.fingerprint() != on.fingerprint()


class TestSpecWireFormat:
    def _full_spec(self):
        from repro.core.config import MABFuzzConfig
        from repro.isa.generator import GeneratorConfig

        return CampaignSpec(
            processor="rocket", fuzzer="mabfuzz:exp3", num_tests=40,
            trials=2, seed=9, bugs=["V8", "V9"],
            fuzzer_config=FuzzerConfig(
                num_seeds=4, mutants_per_test=3,
                generator_config=GeneratorConfig(min_instructions=8,
                                                 max_instructions=16,
                                                 illegal_word_prob=0.05),
                mutation_weights={"bitflip": 2.0},
                max_program_steps=500),
            mab_config=MABFuzzConfig(num_arms=5, alpha=0.5, gamma=None),
        )

    def test_round_trip_preserves_spec_and_fingerprint(self):
        spec = self._full_spec()
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.fingerprint() == spec.fingerprint()

    def test_round_trip_survives_json(self):
        import json

        spec = self._full_spec()
        rebuilt = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.fingerprint() == spec.fingerprint()

    def test_none_fields_round_trip(self):
        spec = CampaignSpec(processor="cva6", fuzzer="thehuzz")
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.bugs is None
        assert rebuilt.fuzzer_config is None
        assert rebuilt.mab_config is None

    def test_trial_seeds_survive_the_wire(self):
        spec = self._full_spec()
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert [trial_seed(spec, i) for i in range(3)] \
            == [trial_seed(rebuilt, i) for i in range(3)]


class TestTrialSeed:
    def test_deterministic(self):
        spec = CampaignSpec(processor="cva6", fuzzer="thehuzz", **SMALL)
        assert trial_seed(spec, 0) == trial_seed(spec, 0)
        assert trial_seed(spec, 0) != trial_seed(spec, 1)

    def test_no_cross_spec_collisions_on_shared_base_seed(self):
        # The old ``seed + trial`` scheme collided here: trial 1 of seed=0
        # equalled trial 0 of seed=1 for the same (processor, fuzzer).
        a = CampaignSpec(processor="cva6", fuzzer="thehuzz", seed=0)
        b = CampaignSpec(processor="cva6", fuzzer="thehuzz", seed=1)
        assert trial_seed(a, 1) != trial_seed(b, 0)

    def test_spread_across_grid_cells(self):
        seeds = {trial_seed(CampaignSpec(processor=p, fuzzer=f, seed=0), t)
                 for p in ("cva6", "rocket", "boom")
                 for f in ("thehuzz", "mabfuzz:ucb")
                 for t in range(3)}
        assert len(seeds) == 18  # every grid cell gets its own stream

    def test_negative_trial_rejected(self):
        spec = CampaignSpec(processor="cva6", fuzzer="thehuzz")
        with pytest.raises(ValueError):
            trial_seed(spec, -1)


class TestRunCampaign:
    def test_single_trial(self):
        spec = CampaignSpec(processor="rocket", fuzzer="thehuzz", bugs=[], **SMALL)
        result = run_campaign(spec, trial_index=0)
        assert result.num_tests == 12
        assert result.dut_name == "rocket"
        assert result.metadata["trial"] == 0

    def test_trial_index_changes_seed(self):
        spec = CampaignSpec(processor="rocket", fuzzer="thehuzz", bugs=[], **SMALL)
        first = run_campaign(spec, trial_index=0)
        second = run_campaign(spec, trial_index=1)
        assert first.metadata["seed"] != second.metadata["seed"]

    def test_same_trial_reproducible(self):
        spec = CampaignSpec(processor="cva6", fuzzer="mabfuzz:ucb", bugs=[], **SMALL)
        first = run_campaign(spec, trial_index=0)
        second = run_campaign(spec, trial_index=0)
        assert first.coverage_count == second.coverage_count


class TestRunTrials:
    def test_trialset_contents(self):
        spec = CampaignSpec(processor="rocket", fuzzer="thehuzz", bugs=[], **SMALL)
        trialset = run_trials(spec)
        assert isinstance(trialset, TrialSet)
        assert trialset.num_trials == 2
        assert trialset.processor == "rocket"
        assert trialset.fuzzer_name == "thehuzz"
        assert trialset.mean_coverage_count() > 0
        assert 0 < trialset.mean_coverage_percent() < 100

    def test_detection_tests_list(self):
        spec = CampaignSpec(processor="cva6", fuzzer="thehuzz", bugs=["V5"],
                            num_tests=40, trials=2, seed=1,
                            fuzzer_config=FuzzerConfig(num_seeds=4))
        trialset = run_trials(spec)
        detections = trialset.detection_tests("V5")
        assert len(detections) == 2
        assert any(d is not None for d in detections)


class TestPartialTrialSet:
    """Aggregates must tolerate resume holes and short result lists."""

    def _partial(self):
        spec = CampaignSpec(processor="cva6", fuzzer="thehuzz", trials=3)
        ran = FuzzCampaignResult(
            fuzzer_name="thehuzz", dut_name="cva6", num_tests=10,
            coverage_count=8, total_points=100,
        )
        return TrialSet(spec=spec, results=[ran, None])  # trial 1 hole, 2 missing

    def test_counts_skip_holes(self):
        trialset = self._partial()
        assert trialset.num_trials == 1
        assert not trialset.is_complete
        assert trialset.missing_trials() == [1, 2]

    def test_means_over_completed_only(self):
        trialset = self._partial()
        assert trialset.mean_coverage_count() == pytest.approx(8.0)
        assert trialset.mean_coverage_percent() == pytest.approx(8.0)

    def test_detection_tests_excludes_unrun_trials(self):
        detections = self._partial().detection_tests("V5")
        assert detections == [None]  # ran-but-undetected; holes excluded

    def test_empty_set_is_safe(self):
        trialset = TrialSet(spec=CampaignSpec(processor="cva6", fuzzer="thehuzz"))
        assert trialset.mean_coverage_count() == 0.0
        assert trialset.detection_tests("V5") == []
        assert trialset.missing_trials() == [0, 1, 2]
