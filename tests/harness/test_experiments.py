"""Small-scale tests of the paper-experiment drivers.

These run tiny campaigns (tens of tests, one or two trials) purely to check
the experiment plumbing; the benchmark harness is what produces the
paper-shaped numbers.
"""

import pytest

from repro.core.config import MABFuzzConfig
from repro.fuzzing.base import FuzzerConfig
from repro.harness.experiments import (
    ExperimentConfig,
    figure3_series,
    figure4_summary,
    run_alpha_ablation,
    run_arm_count_ablation,
    run_coverage_study,
    run_gamma_ablation,
    run_mutation_bandit_comparison,
    run_table1,
    run_trap_coverage_study,
)

TINY = ExperimentConfig(
    num_tests=15,
    trials=1,
    seed=2,
    algorithms=("ucb",),
    processors=("rocket",),
    fuzzer_config=FuzzerConfig(num_seeds=3, mutants_per_test=2),
    mab_config=MABFuzzConfig(num_arms=3, arm_pool_max=16),
)


class TestExperimentConfig:
    def test_mab_fuzzer_names(self):
        config = ExperimentConfig(algorithms=("egreedy", "ucb", "exp3"))
        assert config.mab_fuzzer_names() == (
            "mabfuzz:egreedy", "mabfuzz:ucb", "mabfuzz:exp3")

    def test_spec_overrides(self):
        spec = TINY.spec("cva6", "thehuzz", num_tests=99)
        assert spec.processor == "cva6"
        assert spec.num_tests == 99
        assert spec.trials == TINY.trials


class TestTable1:
    def test_structure(self):
        result = run_table1(TINY)
        # CVA6 rows V1..V6 plus Rocket's V7.
        assert [row.bug_id for row in result.rows] == [
            "V1", "V2", "V3", "V4", "V5", "V6", "V7"]
        processors = {row.bug_id: row.processor for row in result.rows}
        assert processors["V7"] == "rocket"
        assert processors["V1"] == "cva6"
        for row in result.rows:
            assert set(row.speedups) == {"ucb"}
        assert ("cva6", "thehuzz") in result.trialsets
        assert ("rocket", "mabfuzz:ucb") in result.trialsets

    def test_row_lookup(self):
        result = run_table1(TINY)
        assert result.row("V5").cwe == 1252
        with pytest.raises(KeyError):
            result.row("V99")
        # best_speedup is None or positive, depending on what the tiny run saw.
        best = result.best_speedup("V5")
        assert best is None or best > 0


class TestCoverageStudy:
    def test_study_and_figures(self):
        study = run_coverage_study(TINY)
        assert set(study.trialsets) == {("rocket", "thehuzz"), ("rocket", "mabfuzz:ucb")}

        series = figure3_series(study, num_samples=5)
        assert set(series) == {"rocket"}
        assert set(series["rocket"]) == {"thehuzz", "mabfuzz:ucb"}
        for samples in series["rocket"].values():
            assert len(samples) == 5
            covered = [s.covered for s in samples]
            assert covered == sorted(covered)

        summary = figure4_summary(study)
        metrics = summary["rocket"]["ucb"]
        assert metrics["speedup"] > 0
        assert "increment_percent" in metrics
        assert metrics["baseline_coverage"] > 0


class TestAblations:
    def test_alpha_ablation(self):
        results = run_alpha_ablation(TINY, alphas=(0.0, 1.0), processor="rocket")
        assert set(results) == {0.0, 1.0}
        for trialset in results.values():
            assert trialset.mean_coverage_count() > 0

    def test_gamma_ablation_includes_disabled(self):
        results = run_gamma_ablation(TINY, gammas=(1, None), processor="rocket")
        assert set(results) == {1, None}

    def test_arm_count_ablation(self):
        results = run_arm_count_ablation(TINY, arm_counts=(2, 4), processor="rocket")
        assert set(results) == {2, 4}
        assert results[2].results[0].metadata["num_arms"] == 2

    def test_mutation_bandit_comparison(self):
        comparison = run_mutation_bandit_comparison(TINY, processor="rocket")
        assert set(comparison) == {"thehuzz", "mutation-bandit:exp3"}


class TestTrapCoverageStudy:
    def test_structure_and_transition_signal(self):
        study = run_trap_coverage_study(TINY, scenarios=("user", "mixed"))
        assert set(study.trialsets) == {("rocket", "user"), ("rocket", "mixed")}
        assert study.fuzzer == "mabfuzz:ucb"
        for (_, scenario), trialset in study.trialsets.items():
            for result in trialset.completed_results():
                assert result.metadata["coverage_model"] == "csr"
                assert result.metadata["scenario"] == scenario
        # The mixed arms reach CSR transitions within even a tiny campaign.
        assert study.mean_metadata("rocket", "mixed",
                                   "csr_transition_points") > 0

    def test_render_table(self):
        from repro.harness.tables import render_trap_coverage_table

        study = run_trap_coverage_study(TINY, scenarios=("mixed",))
        table = render_trap_coverage_table(study)
        assert "CSR transitions" in table
        assert "mixed" in table
        assert "rocket" in table
