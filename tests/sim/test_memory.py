"""Tests for the sparse memory model and its address map."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.exceptions import Trap, TrapCause
from repro.sim.memory import DEFAULT_LAYOUT, Memory, MemoryLayout


class TestLayout:
    def test_defaults(self):
        assert DEFAULT_LAYOUT.dram_base == 0x4000_0000
        assert DEFAULT_LAYOUT.dram_end == DEFAULT_LAYOUT.dram_base + DEFAULT_LAYOUT.dram_size
        assert DEFAULT_LAYOUT.data_base == DEFAULT_LAYOUT.dram_base + DEFAULT_LAYOUT.code_size

    def test_contains(self):
        layout = MemoryLayout(dram_base=0x1000, dram_size=0x100)
        assert layout.contains(0x1000)
        assert layout.contains(0x10F8, 8)
        assert not layout.contains(0xFFF)
        assert not layout.contains(0x10FC, 8)


class TestLoadStore:
    def test_store_load_roundtrip(self):
        memory = Memory()
        base = DEFAULT_LAYOUT.data_base
        memory.store(base, 0x1122334455667788, 8)
        assert memory.load(base, 8) == 0x1122334455667788

    def test_little_endian(self):
        memory = Memory()
        base = DEFAULT_LAYOUT.data_base
        memory.store(base, 0x0A0B0C0D, 4)
        assert memory.load(base, 1) == 0x0D
        assert memory.load(base + 3, 1) == 0x0A

    def test_unwritten_memory_reads_zero(self):
        assert Memory().load(DEFAULT_LAYOUT.data_base, 8) == 0

    def test_signed_load(self):
        memory = Memory()
        base = DEFAULT_LAYOUT.data_base
        memory.store(base, 0xFF, 1)
        assert memory.load(base, 1, signed=True) == -1
        assert memory.load(base, 1, signed=False) == 0xFF

    def test_store_truncates_to_size(self):
        memory = Memory()
        base = DEFAULT_LAYOUT.data_base
        memory.store(base, 0x1_FF, 1)
        assert memory.load(base, 1) == 0xFF


class TestFaults:
    def test_load_access_fault(self):
        with pytest.raises(Trap) as excinfo:
            Memory().load(0x1000, 4)
        assert excinfo.value.cause is TrapCause.LOAD_ACCESS_FAULT
        assert excinfo.value.tval == 0x1000

    def test_store_access_fault(self):
        with pytest.raises(Trap) as excinfo:
            Memory().store(0xFFFF_FFFF_0000_0000, 1, 1)
        assert excinfo.value.cause is TrapCause.STORE_ACCESS_FAULT

    def test_load_misaligned(self):
        with pytest.raises(Trap) as excinfo:
            Memory().load(DEFAULT_LAYOUT.data_base + 1, 4)
        assert excinfo.value.cause is TrapCause.LOAD_ADDRESS_MISALIGNED

    def test_store_misaligned(self):
        with pytest.raises(Trap) as excinfo:
            Memory().store(DEFAULT_LAYOUT.data_base + 2, 0, 8)
        assert excinfo.value.cause is TrapCause.STORE_ADDRESS_MISALIGNED

    def test_fetch_out_of_range(self):
        with pytest.raises(Trap) as excinfo:
            Memory().fetch_word(0)
        assert excinfo.value.cause is TrapCause.INSTRUCTION_ACCESS_FAULT

    def test_fetch_misaligned(self):
        with pytest.raises(Trap) as excinfo:
            Memory().fetch_word(DEFAULT_LAYOUT.dram_base + 2)
        assert excinfo.value.cause is TrapCause.INSTRUCTION_ADDRESS_MISALIGNED


class TestProgramLoading:
    def test_load_and_fetch(self):
        memory = Memory()
        memory.load_program_words(DEFAULT_LAYOUT.dram_base, [0x00100093, 0x00000073])
        assert memory.fetch_word(DEFAULT_LAYOUT.dram_base) == 0x00100093
        assert memory.fetch_word(DEFAULT_LAYOUT.dram_base + 4) == 0x00000073

    def test_clone_is_independent(self):
        memory = Memory()
        memory.store(DEFAULT_LAYOUT.data_base, 7, 8)
        copy = memory.clone()
        copy.store(DEFAULT_LAYOUT.data_base, 9, 8)
        assert memory.load(DEFAULT_LAYOUT.data_base, 8) == 7
        assert copy.load(DEFAULT_LAYOUT.data_base, 8) == 9

    def test_load_words_empty_is_noop(self):
        Memory().load_program_words(DEFAULT_LAYOUT.dram_base, [])

    def test_load_words_out_of_window(self):
        memory = Memory()
        with pytest.raises(Trap) as excinfo:
            memory.load_program_words(DEFAULT_LAYOUT.dram_end - 4,
                                      [0x00100093, 0x00000073])
        assert excinfo.value.cause is TrapCause.STORE_ACCESS_FAULT
        # The range is validated before anything is written.
        assert memory.fetch_word(DEFAULT_LAYOUT.dram_end - 4) == 0

    def test_load_words_misaligned_base(self):
        with pytest.raises(Trap) as excinfo:
            Memory().load_program_words(DEFAULT_LAYOUT.dram_base + 2, [0x00100093])
        assert excinfo.value.cause is TrapCause.STORE_ADDRESS_MISALIGNED

    def test_load_words_masks_to_32_bits(self):
        memory = Memory()
        memory.load_program_words(DEFAULT_LAYOUT.dram_base, [0x1_2345_6789])
        assert memory.fetch_word(DEFAULT_LAYOUT.dram_base) == 0x2345_6789


# ----------------------------------------------------------------- properties
_sizes = st.sampled_from([1, 2, 4, 8])


@given(offset=st.integers(0, 0x3F0), size=_sizes,
       value=st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=200, deadline=None)
def test_store_load_roundtrip_property(offset, size, value):
    memory = Memory()
    address = DEFAULT_LAYOUT.data_base + (offset // size) * size
    memory.store(address, value, size)
    assert memory.load(address, size) == value & ((1 << (8 * size)) - 1)


@given(offset=st.integers(0, 0x100), size=_sizes,
       value=st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=100, deadline=None)
def test_adjacent_stores_do_not_interfere(offset, size, value):
    memory = Memory()
    address = DEFAULT_LAYOUT.data_base + 0x800 + (offset // size) * size
    sentinel_low = address - size
    sentinel_high = address + size
    memory.store(sentinel_low, 0xAA, 1)
    memory.store(sentinel_high, 0x55, 1)
    memory.store(address, value, size)
    assert memory.load(sentinel_low, 1) == 0xAA
    assert memory.load(sentinel_high, 1) == 0x55
