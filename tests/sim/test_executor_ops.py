"""Executor tests for memory, control-flow, CSR, system and atomic instructions."""


from repro.isa import csr as csrdefs
from repro.isa.exceptions import TrapCause
from repro.isa.instruction import Instruction
from repro.utils.bits import MASK64, to_unsigned
from tests.sim.helpers import BASE, DATA, execute_one


class TestLoads:
    def test_ld(self):
        record, _, _ = execute_one(
            Instruction("ld", rd=3, rs1=1, imm=8),
            regs={1: DATA}, memory_values={DATA + 8: (0x1122334455667788, 8)})
        assert record.rd_value == 0x1122334455667788

    def test_lw_sign_extends(self):
        record, _, _ = execute_one(
            Instruction("lw", rd=3, rs1=1, imm=0),
            regs={1: DATA}, memory_values={DATA: (0x8000_0000, 4)})
        assert record.rd_value == 0xFFFF_FFFF_8000_0000

    def test_lwu_zero_extends(self):
        record, _, _ = execute_one(
            Instruction("lwu", rd=3, rs1=1, imm=0),
            regs={1: DATA}, memory_values={DATA: (0x8000_0000, 4)})
        assert record.rd_value == 0x8000_0000

    def test_lb_lbu(self):
        memory_values = {DATA: (0xFF, 1)}
        record, _, _ = execute_one(Instruction("lb", rd=3, rs1=1, imm=0),
                                   regs={1: DATA}, memory_values=memory_values)
        assert record.rd_value == MASK64
        record, _, _ = execute_one(Instruction("lbu", rd=3, rs1=1, imm=0),
                                   regs={1: DATA}, memory_values=memory_values)
        assert record.rd_value == 0xFF

    def test_load_negative_offset(self):
        record, _, _ = execute_one(
            Instruction("lh", rd=3, rs1=1, imm=-2),
            regs={1: DATA + 2}, memory_values={DATA: (0x1234, 2)})
        assert record.rd_value == 0x1234

    def test_load_access_fault(self):
        record, state, _ = execute_one(Instruction("ld", rd=3, rs1=1, imm=0),
                                       regs={1: 0x10})
        assert record.trap is TrapCause.LOAD_ACCESS_FAULT
        assert state.csrs[csrdefs.MCAUSE] == int(TrapCause.LOAD_ACCESS_FAULT)
        assert state.csrs[csrdefs.MTVAL] == 0x10
        assert state.csrs[csrdefs.MEPC] == BASE

    def test_load_misaligned(self):
        record, _, _ = execute_one(Instruction("lw", rd=3, rs1=1, imm=1),
                                   regs={1: DATA})
        assert record.trap is TrapCause.LOAD_ADDRESS_MISALIGNED


class TestStores:
    def test_sd(self):
        record, _, memory = execute_one(
            Instruction("sd", rs1=1, rs2=2, imm=16),
            regs={1: DATA, 2: 0xCAFEBABE})
        assert memory.load(DATA + 16, 8) == 0xCAFEBABE
        assert record.mem_addr == DATA + 16
        assert record.mem_value == 0xCAFEBABE
        assert record.mem_size == 8

    def test_sb_truncates(self):
        _, _, memory = execute_one(Instruction("sb", rs1=1, rs2=2, imm=0),
                                   regs={1: DATA, 2: 0x1FF})
        assert memory.load(DATA, 1) == 0xFF

    def test_store_access_fault(self):
        record, _, _ = execute_one(Instruction("sw", rs1=1, rs2=2, imm=0),
                                   regs={1: 0xFFFF_FFFF_0000_0000, 2: 1})
        assert record.trap is TrapCause.STORE_ACCESS_FAULT


class TestBranches:
    def test_taken_branch(self):
        record, _, _ = execute_one(Instruction("beq", rs1=1, rs2=2, imm=16),
                                   regs={1: 5, 2: 5})
        assert record.next_pc == BASE + 16

    def test_not_taken_branch(self):
        record, _, _ = execute_one(Instruction("beq", rs1=1, rs2=2, imm=16),
                                   regs={1: 5, 2: 6})
        assert record.next_pc == BASE + 4

    def test_blt_signed(self):
        record, _, _ = execute_one(Instruction("blt", rs1=1, rs2=2, imm=8),
                                   regs={1: to_unsigned(-1), 2: 0})
        assert record.next_pc == BASE + 8

    def test_bltu_unsigned(self):
        record, _, _ = execute_one(Instruction("bltu", rs1=1, rs2=2, imm=8),
                                   regs={1: to_unsigned(-1), 2: 0})
        assert record.next_pc == BASE + 4

    def test_bge_backward(self):
        record, _, _ = execute_one(Instruction("bge", rs1=1, rs2=2, imm=-8),
                                   regs={1: 3, 2: 3})
        assert record.next_pc == BASE - 8

    def test_misaligned_target_traps(self):
        record, _, _ = execute_one(Instruction("beq", rs1=1, rs2=2, imm=6),
                                   regs={1: 0, 2: 0})
        assert record.trap is TrapCause.INSTRUCTION_ADDRESS_MISALIGNED


class TestJumps:
    def test_jal_link_and_target(self):
        record, state, _ = execute_one(Instruction("jal", rd=1, imm=32))
        assert record.next_pc == BASE + 32
        assert state.read_reg(1) == BASE + 4

    def test_jalr_clears_lsb(self):
        record, _, _ = execute_one(Instruction("jalr", rd=1, rs1=2, imm=1),
                                   regs={2: BASE + 8})
        assert record.next_pc == BASE + 8

    def test_jalr_misaligned_traps(self):
        record, _, _ = execute_one(Instruction("jalr", rd=1, rs1=2, imm=2),
                                   regs={2: BASE})
        assert record.trap is TrapCause.INSTRUCTION_ADDRESS_MISALIGNED


class TestCsrInstructions:
    def test_csrrw_swaps(self):
        record, state, _ = execute_one(
            Instruction("csrrw", rd=3, rs1=1, csr=csrdefs.MSCRATCH),
            regs={1: 0x55})
        assert record.rd_value == 0  # old value
        assert state.read_csr(csrdefs.MSCRATCH) == 0x55
        assert record.csr_addr == csrdefs.MSCRATCH
        assert record.csr_value == 0x55

    def test_csrrs_sets_bits(self):
        record, state, _ = execute_one(
            Instruction("csrrs", rd=3, rs1=1, csr=csrdefs.MSCRATCH),
            regs={1: 0b1010})
        assert state.read_csr(csrdefs.MSCRATCH) == 0b1010

    def test_csrrc_clears_bits(self):
        _, state, _ = execute_one(
            Instruction("csrrci", rd=3, imm=0b11, csr=csrdefs.MSTATUS))
        assert state.read_csr(csrdefs.MSTATUS) & 0b11 == 0

    def test_csrrs_x0_does_not_write_readonly(self):
        record, _, _ = execute_one(
            Instruction("csrrs", rd=3, rs1=0, csr=csrdefs.MHARTID))
        assert record.trap is None
        assert record.rd_value == 0
        assert record.csr_addr is None

    def test_csrrw_readonly_traps(self):
        record, _, _ = execute_one(
            Instruction("csrrw", rd=3, rs1=1, csr=csrdefs.MHARTID), regs={1: 5})
        assert record.trap is TrapCause.ILLEGAL_INSTRUCTION

    def test_unimplemented_csr_traps(self):
        record, _, _ = execute_one(Instruction("csrrs", rd=3, rs1=0, csr=0x7B0))
        assert record.trap is TrapCause.ILLEGAL_INSTRUCTION

    def test_csrrwi_uses_immediate(self):
        _, state, _ = execute_one(
            Instruction("csrrwi", rd=3, imm=0x1F, csr=csrdefs.MSCRATCH))
        assert state.read_csr(csrdefs.MSCRATCH) == 0x1F


class TestSystemInstructions:
    def test_ecall_traps_and_halts(self):
        from repro.sim.executor import Executor, ExecutorConfig
        from repro.sim.memory import Memory
        from repro.sim.state import ArchState
        from repro.isa.assembler import encode_instruction

        memory = Memory()
        memory.load_program_words(BASE, [encode_instruction(Instruction("ecall"))])
        executor = Executor(ArchState(pc=BASE), memory, ExecutorConfig())
        record = executor.step()
        assert record.trap is TrapCause.ECALL_FROM_M
        assert executor.halted

    def test_ebreak_traps_but_continues(self):
        record, _, _ = execute_one(Instruction("ebreak"))
        assert record.trap is TrapCause.BREAKPOINT
        assert record.next_pc == BASE + 4

    def test_mret_jumps_to_mepc(self):
        record, state, _ = execute_one(Instruction("mret"))
        assert record.next_pc == state.csrs[csrdefs.MEPC]

    def test_wfi_and_fences_are_nops(self):
        for mnemonic in ("wfi", "fence", "fence.i"):
            record, _, _ = execute_one(Instruction(mnemonic))
            assert record.trap is None
            assert record.next_pc == BASE + 4

    def test_illegal_word_traps(self):
        record, state, _ = execute_one(Instruction.illegal(0xFFFF_FFFF))
        assert record.trap is TrapCause.ILLEGAL_INSTRUCTION
        assert state.csrs[csrdefs.MTVAL] == 0xFFFF_FFFF


class TestAtomics:
    def test_lr_sc_success(self):
        from repro.isa.assembler import encode_instruction
        from repro.sim.executor import Executor, ExecutorConfig
        from repro.sim.memory import Memory
        from repro.sim.state import ArchState

        memory = Memory()
        memory.store(DATA, 77, 8)
        words = [
            encode_instruction(Instruction("lr.d", rd=3, rs1=1)),
            encode_instruction(Instruction("sc.d", rd=4, rs1=1, rs2=2)),
        ]
        memory.load_program_words(BASE, words)
        state = ArchState(pc=BASE)
        state.write_reg(1, DATA)
        state.write_reg(2, 99)
        executor = Executor(state, memory, ExecutorConfig())
        lr_record = executor.step()
        sc_record = executor.step()
        assert lr_record.rd_value == 77
        assert sc_record.rd_value == 0  # success
        assert memory.load(DATA, 8) == 99

    def test_sc_without_reservation_fails(self):
        record, _, memory = execute_one(
            Instruction("sc.w", rd=4, rs1=1, rs2=2),
            regs={1: DATA, 2: 55}, memory_values={DATA: (7, 4)})
        assert record.rd_value == 1  # failure
        assert memory.load(DATA, 4) == 7  # memory unchanged

    def test_amoadd(self):
        record, _, memory = execute_one(
            Instruction("amoadd.w", rd=3, rs1=1, rs2=2),
            regs={1: DATA, 2: 5}, memory_values={DATA: (10, 4)})
        assert record.rd_value == 10  # old value
        assert memory.load(DATA, 4) == 15

    def test_amoswap(self):
        record, _, memory = execute_one(
            Instruction("amoswap.d", rd=3, rs1=1, rs2=2),
            regs={1: DATA, 2: 0xABCD}, memory_values={DATA: (0x1111, 8)})
        assert record.rd_value == 0x1111
        assert memory.load(DATA, 8) == 0xABCD

    def test_amo_and_or_xor(self):
        cases = {"amoand.w": 0b1000, "amoor.w": 0b1110, "amoxor.w": 0b0110}
        for mnemonic, expected in cases.items():
            _, _, memory = execute_one(
                Instruction(mnemonic, rd=3, rs1=1, rs2=2),
                regs={1: DATA, 2: 0b1010}, memory_values={DATA: (0b1100, 4)})
            assert memory.load(DATA, 4) == expected, mnemonic

    def test_amo_misaligned_traps(self):
        record, _, _ = execute_one(Instruction("amoadd.w", rd=3, rs1=1, rs2=2),
                                   regs={1: DATA + 2, 2: 1})
        assert record.trap is TrapCause.LOAD_ADDRESS_MISALIGNED
