"""Shared helpers for driving the executor in unit tests."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.isa.assembler import encode_instruction
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.sim.executor import Executor, ExecutorConfig
from repro.sim.golden import GoldenModel
from repro.sim.memory import DEFAULT_LAYOUT, Memory
from repro.sim.state import ArchState
from repro.sim.trace import CommitRecord, ExecutionResult

BASE = DEFAULT_LAYOUT.dram_base
DATA = DEFAULT_LAYOUT.data_base


def execute_one(instr: Instruction,
                regs: Optional[Dict[int, int]] = None,
                memory_values: Optional[Dict[int, Tuple[int, int]]] = None,
                ) -> Tuple[CommitRecord, ArchState, Memory]:
    """Execute a single instruction with prepared register/memory state.

    Args:
        instr: the instruction to execute (placed at the DRAM base).
        regs: initial register values, keyed by register index.
        memory_values: initial memory contents, ``{address: (value, size)}``.

    Returns:
        The commit record, the architectural state after the step and the
        memory (for store inspection).
    """
    memory = Memory()
    memory.load_program_words(BASE, [encode_instruction(instr)])
    if memory_values:
        for address, (value, size) in memory_values.items():
            memory.store(address, value, size)
    state = ArchState(pc=BASE)
    for index, value in (regs or {}).items():
        state.write_reg(index, value)
    executor = Executor(state, memory, ExecutorConfig())
    record = executor.step()
    assert record is not None
    return record, state, memory


def run_program(instructions: Iterable[Instruction],
                max_steps: Optional[int] = None) -> ExecutionResult:
    """Run a small program on the golden model."""
    program = TestProgram(instructions=tuple(instructions), base_address=BASE)
    return GoldenModel().run(program, max_steps=max_steps)
