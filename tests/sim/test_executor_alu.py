"""ALU semantics tests: fixed cases plus property tests against a Python oracle."""

from hypothesis import given, settings, strategies as st

from repro.isa.instruction import Instruction
from repro.utils.bits import MASK64, sign_extend, to_signed, to_unsigned
from tests.sim.helpers import execute_one

u64 = st.integers(min_value=0, max_value=MASK64)


def _alu(instr, rs1=0, rs2=0):
    record, state, _ = execute_one(instr, regs={1: rs1, 2: rs2})
    return record.rd_value


class TestBasicArithmetic:
    def test_addi(self):
        assert _alu(Instruction("addi", rd=3, rs1=1, imm=5), rs1=10) == 15

    def test_addi_negative_result_wraps(self):
        assert _alu(Instruction("addi", rd=3, rs1=1, imm=-11), rs1=10) == MASK64

    def test_add_overflow_wraps(self):
        assert _alu(Instruction("add", rd=3, rs1=1, rs2=2),
                    rs1=MASK64, rs2=1) == 0

    def test_sub(self):
        assert _alu(Instruction("sub", rd=3, rs1=1, rs2=2), rs1=7, rs2=10) == \
            to_unsigned(-3)

    def test_lui(self):
        record, _, _ = execute_one(Instruction("lui", rd=3, imm=0x12345))
        assert record.rd_value == 0x12345000

    def test_lui_sign_extends(self):
        record, _, _ = execute_one(Instruction("lui", rd=3, imm=0x80000))
        assert record.rd_value == 0xFFFF_FFFF_8000_0000

    def test_auipc(self):
        record, _, _ = execute_one(Instruction("auipc", rd=3, imm=1))
        assert record.rd_value == 0x4000_0000 + 0x1000

    def test_writes_to_x0_discarded(self):
        record, state, _ = execute_one(Instruction("addi", rd=0, rs1=1, imm=5),
                                       regs={1: 10})
        assert state.read_reg(0) == 0
        assert record.rd is None and record.rd_value is None


class TestLogicShift:
    def test_and_or_xor(self):
        assert _alu(Instruction("and", rd=3, rs1=1, rs2=2), 0b1100, 0b1010) == 0b1000
        assert _alu(Instruction("or", rd=3, rs1=1, rs2=2), 0b1100, 0b1010) == 0b1110
        assert _alu(Instruction("xor", rd=3, rs1=1, rs2=2), 0b1100, 0b1010) == 0b0110

    def test_sll_srl(self):
        assert _alu(Instruction("sll", rd=3, rs1=1, rs2=2), 1, 63) == 1 << 63
        assert _alu(Instruction("srl", rd=3, rs1=1, rs2=2), 1 << 63, 63) == 1

    def test_sra_negative(self):
        assert _alu(Instruction("sra", rd=3, rs1=1, rs2=2),
                    to_unsigned(-8), 2) == to_unsigned(-2)

    def test_srai(self):
        assert _alu(Instruction("srai", rd=3, rs1=1, imm=4),
                    rs1=to_unsigned(-256)) == to_unsigned(-16)

    def test_shift_uses_low_6_bits_of_rs2(self):
        assert _alu(Instruction("sll", rd=3, rs1=1, rs2=2), 1, 64 + 3) == 8

    def test_slt_sltu(self):
        assert _alu(Instruction("slt", rd=3, rs1=1, rs2=2), to_unsigned(-1), 1) == 1
        assert _alu(Instruction("sltu", rd=3, rs1=1, rs2=2), to_unsigned(-1), 1) == 0
        assert _alu(Instruction("sltiu", rd=3, rs1=1, imm=-1), rs1=5) == 1


class TestWordOps:
    def test_addw_truncates_and_sign_extends(self):
        assert _alu(Instruction("addw", rd=3, rs1=1, rs2=2),
                    0x7FFF_FFFF, 1) == 0xFFFF_FFFF_8000_0000

    def test_addiw(self):
        assert _alu(Instruction("addiw", rd=3, rs1=1, imm=-1), rs1=0) == MASK64

    def test_subw(self):
        assert _alu(Instruction("subw", rd=3, rs1=1, rs2=2), 0, 1) == MASK64

    def test_sllw_ignores_upper_bits(self):
        assert _alu(Instruction("sllw", rd=3, rs1=1, rs2=2),
                    0x1_0000_0001, 4) == 0x10

    def test_sraw(self):
        assert _alu(Instruction("sraw", rd=3, rs1=1, rs2=2),
                    0x8000_0000, 31) == MASK64

    def test_srliw(self):
        assert _alu(Instruction("srliw", rd=3, rs1=1, imm=4),
                    rs1=0xF000_0000) == 0x0F00_0000


class TestMulDiv:
    def test_mul(self):
        assert _alu(Instruction("mul", rd=3, rs1=1, rs2=2), 7, 6) == 42

    def test_mulh_signed(self):
        assert _alu(Instruction("mulh", rd=3, rs1=1, rs2=2),
                    to_unsigned(-1), to_unsigned(-1)) == 0

    def test_mulhu(self):
        assert _alu(Instruction("mulhu", rd=3, rs1=1, rs2=2),
                    MASK64, MASK64) == MASK64 - 1

    def test_div(self):
        assert _alu(Instruction("div", rd=3, rs1=1, rs2=2),
                    to_unsigned(-7), 2) == to_unsigned(-3)

    def test_div_by_zero(self):
        assert _alu(Instruction("div", rd=3, rs1=1, rs2=2), 5, 0) == MASK64
        assert _alu(Instruction("divu", rd=3, rs1=1, rs2=2), 5, 0) == MASK64

    def test_div_overflow(self):
        most_negative = 1 << 63
        assert _alu(Instruction("div", rd=3, rs1=1, rs2=2),
                    most_negative, to_unsigned(-1)) == most_negative

    def test_rem(self):
        assert _alu(Instruction("rem", rd=3, rs1=1, rs2=2),
                    to_unsigned(-7), 2) == to_unsigned(-1)

    def test_rem_by_zero_returns_dividend(self):
        assert _alu(Instruction("rem", rd=3, rs1=1, rs2=2), 5, 0) == 5

    def test_remw(self):
        assert _alu(Instruction("remw", rd=3, rs1=1, rs2=2), 10, 3) == 1

    def test_divuw(self):
        assert _alu(Instruction("divuw", rd=3, rs1=1, rs2=2),
                    0xFFFF_FFFF, 2) == 0x7FFF_FFFF


# ------------------------------------------------------------------ properties
@given(a=u64, b=u64)
@settings(max_examples=120, deadline=None)
def test_add_matches_oracle(a, b):
    assert _alu(Instruction("add", rd=3, rs1=1, rs2=2), a, b) == (a + b) & MASK64


@given(a=u64, b=u64)
@settings(max_examples=120, deadline=None)
def test_sub_xor_and_or_match_oracle(a, b):
    assert _alu(Instruction("sub", rd=3, rs1=1, rs2=2), a, b) == (a - b) & MASK64
    assert _alu(Instruction("xor", rd=3, rs1=1, rs2=2), a, b) == a ^ b
    assert _alu(Instruction("and", rd=3, rs1=1, rs2=2), a, b) == a & b
    assert _alu(Instruction("or", rd=3, rs1=1, rs2=2), a, b) == a | b


@given(a=u64, b=u64)
@settings(max_examples=100, deadline=None)
def test_mul_matches_oracle(a, b):
    expected = (to_signed(a) * to_signed(b)) & MASK64
    assert _alu(Instruction("mul", rd=3, rs1=1, rs2=2), a, b) == expected


@given(a=u64, b=u64)
@settings(max_examples=100, deadline=None)
def test_mulhu_matches_oracle(a, b):
    assert _alu(Instruction("mulhu", rd=3, rs1=1, rs2=2), a, b) == (a * b) >> 64


@given(a=u64, b=u64)
@settings(max_examples=100, deadline=None)
def test_divu_remu_invariant(a, b):
    """For non-zero divisors: dividend == divisor * quotient + remainder."""
    quotient = _alu(Instruction("divu", rd=3, rs1=1, rs2=2), a, b)
    remainder = _alu(Instruction("remu", rd=3, rs1=1, rs2=2), a, b)
    if b == 0:
        assert quotient == MASK64 and remainder == a
    else:
        assert quotient == a // b
        assert remainder == a % b
        assert (quotient * b + remainder) & MASK64 == a


@given(a=u64, shamt=st.integers(0, 63))
@settings(max_examples=100, deadline=None)
def test_shift_immediates_match_oracle(a, shamt):
    assert _alu(Instruction("slli", rd=3, rs1=1, imm=shamt), rs1=a) == (a << shamt) & MASK64
    assert _alu(Instruction("srli", rd=3, rs1=1, imm=shamt), rs1=a) == a >> shamt
    assert _alu(Instruction("srai", rd=3, rs1=1, imm=shamt), rs1=a) == \
        (to_signed(a) >> shamt) & MASK64


@given(a=u64, b=u64)
@settings(max_examples=100, deadline=None)
def test_addw_matches_oracle(a, b):
    expected = to_unsigned(sign_extend((a + b) & 0xFFFF_FFFF, 32))
    assert _alu(Instruction("addw", rd=3, rs1=1, rs2=2), a, b) == expected


@given(a=u64, b=u64)
@settings(max_examples=100, deadline=None)
def test_slt_matches_oracle(a, b):
    assert _alu(Instruction("slt", rd=3, rs1=1, rs2=2), a, b) == \
        int(to_signed(a) < to_signed(b))
    assert _alu(Instruction("sltu", rd=3, rs1=1, rs2=2), a, b) == int(a < b)
