"""Trace equivalence of the optimised hot path against pre-rewrite fixtures.

The simulation substrate (decoder tables + decode cache, table-dispatched
executor, bytearray memory) must be *bit-identical* to the original
straight-line implementation: same commit records, same final registers and
CSRs, same halt reasons.  This module pins that property to golden fixtures
recorded from the pre-rewrite implementation (see ``record_hotpath_fixtures``
in this file): a deterministic ~200-program corpus -- random seeds, mutated
programs (including illegal words produced by bit-level mutation) and
hand-built corner cases -- is digested per program and compared digest by
digest.

To re-record the fixtures (only after intentionally changing architectural
semantics, never to paper over a regression)::

    PYTHONPATH=src:. python tests/sim/test_hotpath_equivalence.py --record
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.fuzzing.mutation import MutationEngine
from repro.isa import csr as csrdefs
from repro.isa.generator import SeedGenerator
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.isa.scenarios import TrapScenarioGenerator
from repro.rtl.registry import make_dut
from repro.sim.golden import GoldenModel

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "hotpath_golden.json"

CORPUS_SEED = 20260728
NUM_SEEDS = 120
NUM_MUTATED_PARENTS = 40
MUTANTS_PER_PARENT = 2
DUT_NAMES = ("cva6", "rocket", "boom")
DUT_PROGRAMS = 25        # corpus prefix run through each clean DUT
BUGGY_PROGRAMS = 15      # corpus prefix run through a fully-bugged rocket

# Trap-heavy extension (recorded when the trap/CSR scenario subsystem
# landed): dedicated corpus whose every program drives the
# mcause/mepc/mtval update paths, pinned under separate fixture keys so
# the original corpus digests stay untouched.
TRAP_SEED = 20260729
NUM_TRAP_SEEDS = 40
TRAP_DUT_PROGRAMS = 20   # trap-corpus prefix run through each clean DUT
TRAP_BUGGY_PROGRAMS = 12 # trap-corpus prefix through a fully-bugged rocket


def _corner_programs() -> list:
    """Hand-built programs hitting illegal words, traps and CSR/AMO paths."""
    I = Instruction
    programs = [
        # All-zero and all-one words are the canonical illegal encodings.
        [I.illegal(0x0000_0000), I.illegal(0xFFFF_FFFF), I("ecall")],
        # Misaligned branch target, then fall through to a misaligned jalr.
        [I("addi", rd=1, rs1=0, imm=3),
         I("beq", rs1=0, rs2=0, imm=2),
         I("jalr", rd=1, rs1=1, imm=0),
         I("ecall")],
        # Out-of-window load/store (access faults, V5's trigger).
        [I("lui", rd=2, imm=0x10000),
         I("lw", rd=3, rs1=2, imm=0),
         I("sd", rs1=2, rs2=3, imm=8),
         I("ecall")],
        # Misaligned load within the window.
        [I("lui", rd=2, imm=0x40004),
         I("lh", rd=3, rs1=2, imm=1),
         I("ld", rd=4, rs1=2, imm=4),
         I("ecall")],
        # CSR reads/writes incl. an unimplemented address and a read-only write.
        [I("csrrwi", rd=1, imm=7, csr=0x340),
         I("csrrs", rd=2, rs1=0, csr=0x340),
         I("csrrw", rd=3, rs1=1, csr=0x7B0),
         I("csrrw", rd=4, rs1=1, csr=0xF11),
         I("csrrci", rd=5, imm=0, csr=0xC00),
         I("ecall")],
        # LR/SC success + failure and an AMO round trip.
        [I("lui", rd=2, imm=0x40004),
         I("addi", rd=3, rs1=0, imm=42),
         I("lr.d", rd=4, rs1=2),
         I("sc.d", rd=5, rs1=2, rs2=3),
         I("sc.d", rd=6, rs1=2, rs2=3),
         I("amoadd.w", rd=7, rs1=2, rs2=3, aq=1),
         I("ecall")],
        # ebreak (breakpoint trap) then mret, fence paths and wfi.
        [I("ebreak"), I("fence", imm=0xFF), I("fence.i"), I("wfi"),
         I("mret"), I("ecall")],
        # Divide-by-zero / overflow corners for the M extension.
        [I("addi", rd=1, rs1=0, imm=-1),
         I("lui", rd=2, imm=0x80000),
         I("div", rd=3, rs1=2, rs2=0),
         I("divw", rd=4, rs1=2, rs2=1),
         I("rem", rd=5, rs1=2, rs2=1),
         I("remuw", rd=6, rs1=1, rs2=0),
         I("ecall")],
    ]
    return [TestProgram(instructions=tuple(body)) for body in programs]


def build_corpus() -> list:
    """Deterministic ~200-program corpus: seeds + mutants + corner cases."""
    generator = SeedGenerator(rng=CORPUS_SEED)
    programs = list(generator.generate_many(NUM_SEEDS))
    engine = MutationEngine(rng=CORPUS_SEED + 1)
    for parent in programs[:NUM_MUTATED_PARENTS]:
        programs.extend(engine.mutate(parent, count=MUTANTS_PER_PARENT))
    programs.extend(_corner_programs())
    return programs


def _trap_corner_programs() -> list:
    """Hand-built programs pinning the mcause/mepc/mtval update semantics."""
    I = Instruction
    programs = [
        # Back-to-back traps of different causes: every one must rewrite
        # mcause/mepc/mtval (checked via the final-CSR digest) and resume
        # at the next instruction.
        [I.illegal(0x0000_0000),
         I("lw", rd=3, rs1=0, imm=1),
         I("ebreak"),
         I("csrrs", rd=4, rs1=0, csr=csrdefs.MCAUSE),
         I("csrrs", rd=5, rs1=0, csr=csrdefs.MEPC),
         I("csrrs", rd=6, rs1=0, csr=csrdefs.MTVAL),
         I("ecall")],
        # Software writes mcause/mepc/mtval directly, then a real trap
        # overwrites them -- the interleaving both orders.
        [I("csrrwi", rd=0, imm=13, csr=csrdefs.MCAUSE),
         I("csrrwi", rd=0, imm=8, csr=csrdefs.MEPC),
         I("csrrwi", rd=0, imm=21, csr=csrdefs.MTVAL),
         I.illegal(0xFFFF_FFFE),
         I("csrrwi", rd=0, imm=5, csr=csrdefs.MTVAL),
         I("ecall")],
        # mret bounces through a software-seeded mepc (a misaligned one
        # first: the jump target check must fire before the redirect).
        [I("csrrwi", rd=0, imm=8, csr=csrdefs.MEPC),
         I("ebreak"),
         I("mret"),
         I("ecall")],
        # Misaligned branch target and jalr: mtval carries the bad target.
        [I("beq", rs1=0, rs2=0, imm=6),
         I("addi", rd=7, rs1=0, imm=6),
         I("jalr", rd=1, rs1=7, imm=0),
         I("ecall")],
    ]
    return [TestProgram(instructions=tuple(body)) for body in programs]


def build_trap_corpus() -> list:
    """Deterministic trap-heavy corpus: scenario seeds + trap corner cases."""
    generator = TrapScenarioGenerator(rng=TRAP_SEED)
    programs = list(generator.generate_many(NUM_TRAP_SEEDS))
    programs.extend(_trap_corner_programs())
    return programs


def trace_digest(execution) -> str:
    """Digest every architecturally visible aspect of one program run."""
    h = hashlib.sha256()
    for r in execution.records:
        h.update(repr((
            r.step, r.pc, r.word, r.mnemonic, r.rd, r.rd_value,
            None if r.trap is None else r.trap.name,
            r.mem_addr, r.mem_value, r.mem_size,
            r.csr_addr, r.csr_value, r.next_pc,
        )).encode())
    h.update(repr(execution.halt_reason.value).encode())
    h.update(repr(tuple(execution.final_registers)).encode())
    h.update(repr(sorted(execution.final_csrs.items())).encode())
    return h.hexdigest()


def compute_digests() -> dict:
    """Run the full corpus and return all per-program trace digests."""
    corpus = build_corpus()
    golden = GoldenModel()
    digests = {
        "corpus_size": len(corpus),
        "golden": [trace_digest(golden.run(p)) for p in corpus],
        "duts": {},
    }
    for name in DUT_NAMES:
        dut = make_dut(name, bugs=[])
        digests["duts"][name] = [
            trace_digest(dut.run(p).execution) for p in corpus[:DUT_PROGRAMS]
        ]
    buggy = make_dut("rocket")  # default (full) bug set
    digests["rocket_buggy"] = [
        trace_digest(buggy.run(p).execution) for p in corpus[:BUGGY_PROGRAMS]
    ]

    trap_corpus = build_trap_corpus()
    digests["trap_corpus_size"] = len(trap_corpus)
    digests["trap_golden"] = [trace_digest(golden.run(p)) for p in trap_corpus]
    digests["trap_duts"] = {}
    for name in DUT_NAMES:
        dut = make_dut(name, bugs=[])
        digests["trap_duts"][name] = [
            trace_digest(dut.run(p).execution)
            for p in trap_corpus[:TRAP_DUT_PROGRAMS]
        ]
    digests["trap_rocket_buggy"] = [
        trace_digest(buggy.run(p).execution)
        for p in trap_corpus[:TRAP_BUGGY_PROGRAMS]
    ]
    return digests


@pytest.fixture(scope="module")
def fixture_digests():
    if not FIXTURE_PATH.exists():  # pragma: no cover - recording guard
        pytest.skip("hotpath fixtures not recorded; run this module with --record")
    return json.loads(FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def current_digests():
    return compute_digests()


def test_corpus_is_representative():
    """The corpus must include illegal words (mutation fallout) and traps."""
    corpus = build_corpus()
    assert len(corpus) >= 200
    assert any(i.is_illegal for p in corpus for i in p.instructions)
    mnemonics = {i.mnemonic for p in corpus for i in p.instructions}
    assert {"ecall", "ebreak", "csrrw"} <= mnemonics


def test_golden_traces_match_fixtures(fixture_digests, current_digests):
    assert current_digests["corpus_size"] == fixture_digests["corpus_size"]
    mismatches = [
        index
        for index, (new, old) in enumerate(
            zip(current_digests["golden"], fixture_digests["golden"]))
        if new != old
    ]
    assert not mismatches, (
        f"golden traces diverged from pre-rewrite fixtures at programs {mismatches[:10]}")


@pytest.mark.parametrize("dut_name", DUT_NAMES)
def test_dut_traces_match_fixtures(fixture_digests, current_digests, dut_name):
    assert current_digests["duts"][dut_name] == fixture_digests["duts"][dut_name], (
        f"{dut_name} DUT traces diverged from pre-rewrite fixtures")


def test_buggy_dut_traces_match_fixtures(fixture_digests, current_digests):
    assert current_digests["rocket_buggy"] == fixture_digests["rocket_buggy"], (
        "bug-injected rocket traces diverged from pre-rewrite fixtures")


# ------------------------------------------------------- trap-heavy extension
def test_trap_corpus_is_representative():
    """Trap corpus must hit several distinct causes and the trap CSRs."""
    corpus = build_trap_corpus()
    golden = GoldenModel()
    causes = set()
    software_csr_writes = set()
    for program in corpus:
        execution = golden.run(program)
        causes.update(r.trap.name for r in execution.trapped_steps())
        software_csr_writes.update(
            r.csr_addr for r in execution.records if r.csr_addr is not None)
    assert len(causes) >= 5, f"only reached causes {sorted(causes)}"
    # Direct software writes to the trap CSRs themselves are exercised too.
    assert {csrdefs.MCAUSE, csrdefs.MEPC, csrdefs.MTVAL} <= software_csr_writes


def test_trap_golden_traces_match_fixtures(fixture_digests, current_digests):
    assert (current_digests["trap_corpus_size"]
            == fixture_digests["trap_corpus_size"])
    mismatches = [
        index
        for index, (new, old) in enumerate(
            zip(current_digests["trap_golden"], fixture_digests["trap_golden"]))
        if new != old
    ]
    assert not mismatches, (
        f"golden trap traces (mcause/mepc/mtval update paths) diverged at "
        f"programs {mismatches[:10]}")


@pytest.mark.parametrize("dut_name", DUT_NAMES)
def test_trap_dut_traces_match_fixtures(fixture_digests, current_digests, dut_name):
    assert (current_digests["trap_duts"][dut_name]
            == fixture_digests["trap_duts"][dut_name]), (
        f"{dut_name} DUT trap traces diverged from recorded fixtures")


def test_trap_buggy_dut_traces_match_fixtures(fixture_digests, current_digests):
    assert (current_digests["trap_rocket_buggy"]
            == fixture_digests["trap_rocket_buggy"]), (
        "bug-injected rocket trap traces diverged from recorded fixtures")


def test_superblocks_off_matches_fixtures(fixture_digests):
    """The unfused per-step loop must reproduce the recorded digests too.

    The other tests in this module run with superblocks on (the default),
    so together they prove superblock-on == superblock-off == pre-rewrite
    semantics over the whole corpus.
    """
    from repro.isa.compiled import set_superblocks_enabled, superblocks_enabled

    corpus = build_corpus()
    golden = GoldenModel()
    was = superblocks_enabled()
    set_superblocks_enabled(False)
    try:
        off_golden = [trace_digest(golden.run(p)) for p in corpus]
        dut = make_dut("rocket", bugs=[])
        off_rocket = [trace_digest(dut.run(p).execution)
                      for p in corpus[:DUT_PROGRAMS]]
    finally:
        set_superblocks_enabled(was)
    assert off_golden == fixture_digests["golden"]
    assert off_rocket == fixture_digests["duts"]["rocket"]


def record_hotpath_fixtures() -> None:  # pragma: no cover - manual tool
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(compute_digests(), indent=1) + "\n")
    print(f"recorded fixtures for {json.loads(FIXTURE_PATH.read_text())['corpus_size']} "
          f"programs -> {FIXTURE_PATH}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--record" in sys.argv:
        record_hotpath_fixtures()
    else:
        print(__doc__)
