"""Tests for the golden model's program run loop."""


from repro.isa import csr as csrdefs
from repro.isa.exceptions import TrapCause
from repro.isa.generator import SeedGenerator
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.sim.golden import GoldenModel
from repro.sim.trace import HaltReason
from tests.sim.helpers import BASE, run_program


class TestRunLoop:
    def test_program_end(self):
        result = run_program([Instruction("addi", rd=1, rs1=0, imm=1),
                              Instruction("addi", rd=2, rs1=1, imm=1)])
        assert result.halt_reason is HaltReason.PROGRAM_END
        assert result.instret == 2
        assert result.final_registers[1] == 1
        assert result.final_registers[2] == 2

    def test_ecall_halts(self):
        result = run_program([Instruction("ecall"),
                              Instruction("addi", rd=1, rs1=0, imm=1)])
        assert result.halt_reason is HaltReason.ECALL
        assert result.instret == 1
        assert result.final_registers[1] == 0

    def test_jump_out_of_range(self):
        result = run_program([Instruction("jal", rd=0, imm=-4096)])
        assert result.halt_reason is HaltReason.PC_OUT_OF_RANGE
        assert result.instret == 1

    def test_step_limit(self):
        # An infinite loop: jal back to itself.
        result = run_program([Instruction("jal", rd=0, imm=0)], max_steps=25)
        assert result.halt_reason is HaltReason.STEP_LIMIT
        assert result.instret == 25

    def test_branch_skips_instruction(self):
        result = run_program([
            Instruction("beq", rs1=0, rs2=0, imm=8),       # always taken, skip next
            Instruction("addi", rd=1, rs1=0, imm=99),      # skipped
            Instruction("addi", rd=2, rs1=0, imm=7),
        ])
        assert result.final_registers[1] == 0
        assert result.final_registers[2] == 7
        assert result.instret == 2

    def test_trap_resumes_at_next_instruction(self):
        result = run_program([
            Instruction("ld", rd=1, rs1=0, imm=0),          # access fault (addr 0)
            Instruction("addi", rd=2, rs1=0, imm=5),
        ])
        assert result.records[0].trap is TrapCause.LOAD_ACCESS_FAULT
        assert result.final_registers[2] == 5
        assert result.final_csrs[csrdefs.MCAUSE] == int(TrapCause.LOAD_ACCESS_FAULT)

    def test_minstret_counts_every_instruction(self):
        result = run_program([
            Instruction("addi", rd=1, rs1=0, imm=1),
            Instruction("ebreak"),
            Instruction("addi", rd=2, rs1=0, imm=2),
        ])
        assert result.final_csrs[csrdefs.MINSTRET] == 3

    def test_commit_records_have_sequential_pcs_when_straightline(self):
        result = run_program([Instruction("addi", rd=1, rs1=0, imm=i)
                              for i in range(5)])
        pcs = [record.pc for record in result.records]
        assert pcs == [BASE + 4 * i for i in range(5)]


class TestDeterminism:
    def test_same_program_same_trace(self):
        seed = SeedGenerator(rng=77).generate()
        golden = GoldenModel()
        first = golden.run(seed)
        second = golden.run(seed)
        assert [r.arch_key() for r in first.records] == \
            [r.arch_key() for r in second.records]
        assert first.final_registers == second.final_registers

    def test_runs_are_isolated(self):
        """State must not leak from one run into the next."""
        golden = GoldenModel()
        writer = TestProgram(instructions=(
            Instruction("addi", rd=5, rs1=0, imm=42),
            Instruction("csrrw", rd=0, rs1=5, csr=csrdefs.MSCRATCH),
        ))
        reader = TestProgram(instructions=(
            Instruction("csrrs", rd=6, rs1=0, csr=csrdefs.MSCRATCH),
        ))
        golden.run(writer)
        result = golden.run(reader)
        assert result.final_registers[6] == 0

    def test_random_seeds_execute_without_python_errors(self):
        generator = SeedGenerator(rng=5)
        golden = GoldenModel()
        for _ in range(30):
            result = golden.run(generator.generate())
            assert result.instret >= 1


class TestExecutionResult:
    def test_trapped_steps(self):
        result = run_program([
            Instruction("ld", rd=1, rs1=0, imm=0),
            Instruction("addi", rd=2, rs1=0, imm=5),
        ])
        trapped = result.trapped_steps()
        assert len(trapped) == 1
        assert trapped[0].trap is TrapCause.LOAD_ACCESS_FAULT
