"""Tests for the architectural state (registers + CSR file)."""

import pytest

from repro.isa import csr as csrdefs
from repro.isa.exceptions import Trap, TrapCause
from repro.sim.state import ArchState
from repro.utils.bits import MASK64


class TestRegisters:
    def test_reset_state(self):
        state = ArchState(pc=0x4000_0000)
        assert state.pc == 0x4000_0000
        assert all(value == 0 for value in state.regs)

    def test_write_read(self):
        state = ArchState()
        state.write_reg(5, 123)
        assert state.read_reg(5) == 123

    def test_x0_hardwired_to_zero(self):
        state = ArchState()
        state.write_reg(0, 999)
        assert state.read_reg(0) == 0

    def test_write_wraps_to_64_bits(self):
        state = ArchState()
        state.write_reg(1, -1)
        assert state.read_reg(1) == MASK64


class TestCsrs:
    def test_read_reset_values(self):
        state = ArchState()
        assert state.read_csr(csrdefs.MHARTID) == 0
        assert state.read_csr(csrdefs.MCAUSE) == 0

    def test_write_and_read(self):
        state = ArchState()
        state.write_csr(csrdefs.MSCRATCH, 0xABCD)
        assert state.read_csr(csrdefs.MSCRATCH) == 0xABCD

    def test_counter_aliases(self):
        state = ArchState()
        state.increment_counters(instret=3, cycles=5)
        assert state.read_csr(csrdefs.INSTRET) == 3
        assert state.read_csr(csrdefs.CYCLE) == 5
        assert state.read_csr(csrdefs.MINSTRET) == 3

    def test_unimplemented_read_traps(self):
        with pytest.raises(Trap) as excinfo:
            ArchState().read_csr(0x7B0)
        assert excinfo.value.cause is TrapCause.ILLEGAL_INSTRUCTION

    def test_unimplemented_write_traps(self):
        with pytest.raises(Trap):
            ArchState().write_csr(0x7B0, 1)

    def test_read_only_write_traps(self):
        with pytest.raises(Trap):
            ArchState().write_csr(csrdefs.MHARTID, 1)
        with pytest.raises(Trap):
            ArchState().write_csr(csrdefs.CYCLE, 1)

    def test_counter_wraparound(self):
        state = ArchState()
        state.csrs[csrdefs.MINSTRET] = MASK64
        state.increment_counters()
        assert state.read_csr(csrdefs.MINSTRET) == 0


class TestSnapshot:
    def test_contains_registers_pc_and_csrs(self):
        state = ArchState(pc=0x4000_0000)
        state.write_reg(3, 42)
        snapshot = state.snapshot()
        assert snapshot["x3"] == 42
        assert snapshot["pc"] == 0x4000_0000
        assert "mstatus" in snapshot
        assert "minstret" in snapshot
