"""Tests for commit-record semantics."""

from repro.isa.exceptions import TrapCause
from repro.sim.trace import CommitRecord, ExecutionResult, HaltReason


class TestCommitRecord:
    def test_arch_key_ignores_step_and_word(self):
        a = CommitRecord(step=0, pc=0x100, word=0x13, mnemonic="addi",
                         rd=1, rd_value=5, next_pc=0x104)
        b = CommitRecord(step=7, pc=0x100, word=0x9999, mnemonic="addi",
                         rd=1, rd_value=5, next_pc=0x104)
        assert a.arch_key() == b.arch_key()

    def test_arch_key_differs_on_rd_value(self):
        a = CommitRecord(step=0, pc=0x100, word=0x13, mnemonic="addi",
                         rd=1, rd_value=5, next_pc=0x104)
        b = CommitRecord(step=0, pc=0x100, word=0x13, mnemonic="addi",
                         rd=1, rd_value=6, next_pc=0x104)
        assert a.arch_key() != b.arch_key()

    def test_arch_key_differs_on_trap(self):
        a = CommitRecord(step=0, pc=0x100, word=0, mnemonic="illegal",
                         trap=TrapCause.ILLEGAL_INSTRUCTION, next_pc=0x104)
        b = CommitRecord(step=0, pc=0x100, word=0, mnemonic="illegal",
                         next_pc=0x104)
        assert a.arch_key() != b.arch_key()


class TestExecutionResult:
    def test_instret(self):
        records = [CommitRecord(step=i, pc=i * 4, word=0, mnemonic="addi",
                                next_pc=(i + 1) * 4) for i in range(3)]
        result = ExecutionResult(records=records, halt_reason=HaltReason.PROGRAM_END)
        assert result.instret == 3

    def test_default_empty(self):
        result = ExecutionResult()
        assert result.instret == 0
        assert result.trapped_steps() == []
