"""Tests for the compiled-trace execution substrate.

The trace compiler (:mod:`repro.isa.compiled`) pre-decodes programs into
threaded code; the shared run loop indexes it instead of fetching and
decoding.  Bit-identity of whole corpora is pinned by
``test_hotpath_equivalence.py``; this module covers the substrate's own
mechanics, and the two cases where the loop must *leave* the compiled
trace: self-modifying code and misaligned in-range program counters.
"""

import pytest

from repro.isa import csr as csrdefs
from repro.isa.assembler import encode_instruction
from repro.isa.compiled import (
    CompiledTraceCache,
    compile_program,
    process_compiled_cache,
)
from repro.isa.decoder import decode_word
from repro.isa.generator import SeedGenerator
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.rtl.registry import make_dut
from repro.sim.golden import GoldenModel
from repro.sim.trace import HaltReason

I = Instruction


def _program(*instructions):
    return TestProgram(instructions=tuple(instructions))


class TestCompileProgram:
    def test_entries_mirror_decode(self):
        program = _program(I("addi", rd=1, rs1=0, imm=5),
                           I.illegal(0xFFFF_FFFF),
                           I("ecall"))
        compiled = compile_program(program)
        assert len(compiled) == 3
        assert compiled.base_address == program.base_address
        assert compiled.end_address == program.end_address()
        for word, (entry_word, instr, handler) in zip(program.words(),
                                                      compiled.entries):
            assert entry_word == word & 0xFFFF_FFFF
            assert instr is decode_word(word)  # shares the decode cache
            assert (handler is None) == instr.is_illegal

    def test_fingerprint_keyed_sharing(self):
        body = (I("addi", rd=3, rs1=0, imm=9), I("ecall"))
        first = _program(*body)
        twin = _program(*body)  # distinct object, same content
        compiled = compile_program(first)
        cache = process_compiled_cache()
        hits = cache.hits
        assert compile_program(first) is compiled  # served from the LRU
        assert compile_program(twin) is compiled  # fingerprint-keyed reuse
        assert cache.hits == hits + 2
        # Nothing is pinned on the program object: the LRU bound governs
        # all compiled-trace memory (the --cache-entries contract).
        assert "_compiled" not in first.__dict__

    def test_lru_bound_and_stats(self):
        cache = CompiledTraceCache(max_entries=2)
        programs = [_program(I("addi", rd=1, rs1=0, imm=n), I("ecall"))
                    for n in range(3)]
        for program in programs:
            cache.get_or_compile(program)
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["misses"] == 3 and stats["evictions"] == 1
        cache.get_or_compile(programs[0])  # spilled -> recompiled
        assert cache.stats()["misses"] == 4
        cache.configure(1)
        assert len(cache) == 1
        with pytest.raises(ValueError):
            cache.configure(0)
        with pytest.raises(ValueError):
            CompiledTraceCache(max_entries=0)


class TestFallbackPaths:
    def test_self_modifying_store_executes_new_word(self):
        """A store into the code window invalidates the compiled entry.

        The program overwrites its own slot 4 (an ``addi x5, x0, 1``) with
        the encoding of ``addi x5, x0, 42`` before reaching it; the commit
        trace must show the *new* instruction, exactly as the fetch-based
        loop always behaved.
        """
        # Materialise the new word into x3 via lui+addi (the exact 32-bit
        # encoding does not fit an addi immediate on its own).
        new_word = encode_instruction(I("addi", rd=5, rs1=0, imm=42))
        upper = (new_word + 0x800) >> 12
        lower = new_word - (upper << 12)
        program = _program(
            I("lui", rd=1, imm=0x40000),         # x1 = 0x4000_0000 (code base)
            I("lui", rd=3, imm=upper),
            I("addi", rd=3, rs1=3, imm=lower),   # x3 = new_word
            I("sw", rs1=1, rs2=3, imm=20),       # overwrite slot 5
            I("addi", rd=6, rs1=0, imm=7),
            I("addi", rd=5, rs1=0, imm=1),       # slot 5: the victim
            I("ecall"),
        )
        result = GoldenModel().run(program)
        victim = [r for r in result.records if r.pc == program.base_address + 20]
        assert victim, "the overwritten slot must still execute"
        assert victim[0].word == new_word
        assert victim[0].rd == 5 and victim[0].rd_value == 42
        assert result.final_registers[5] == 42
        assert result.halt_reason is HaltReason.ECALL

    def test_self_modifying_store_matches_on_dut(self):
        """Golden and DUT take the same fallback on overwritten words."""
        new_word = encode_instruction(I("addi", rd=5, rs1=0, imm=42))
        upper = (new_word + 0x800) >> 12
        lower = new_word - (upper << 12)
        program = _program(
            I("lui", rd=1, imm=0x40000),
            I("lui", rd=3, imm=upper),
            I("addi", rd=3, rs1=3, imm=lower),
            I("sw", rs1=1, rs2=3, imm=20),
            I("addi", rd=6, rs1=0, imm=7),
            I("addi", rd=5, rs1=0, imm=1),
            I("ecall"),
        )
        golden = GoldenModel().run(program)
        dut = make_dut("rocket", bugs=[]).run(program)
        assert ([r.arch_key() for r in golden.records]
                == [r.arch_key() for r in dut.execution.records])

    def test_misaligned_mret_target_takes_generic_path(self):
        """mret into a misaligned in-range pc: generic step reports the fault."""
        program = _program(
            I("lui", rd=1, imm=0x40000),            # x1 = base
            I("addi", rd=1, rs1=1, imm=6),          # x1 = base + 6 (misaligned)
            I("csrrw", rd=0, rs1=1, csr=csrdefs.MEPC),
            I("mret"),                              # jump to base + 6
            I("addi", rd=2, rs1=0, imm=1),
            I("ecall"),
        )
        result = GoldenModel().run(program)
        assert result.halt_reason is HaltReason.PC_OUT_OF_RANGE
        final = result.records[-1]
        assert final.trap is not None
        assert final.trap.name == "INSTRUCTION_ADDRESS_MISALIGNED"
        assert final.trap_tval == program.base_address + 6

    def test_compiled_and_step_limit_agree(self):
        """An infinite loop still honours the step limit through the fast path."""
        program = _program(I("jal", rd=0, imm=0))  # tight self-loop
        result = GoldenModel().run(program, max_steps=17)
        assert result.halt_reason is HaltReason.STEP_LIMIT
        assert result.steps == 17


class TestCorpusSanity:
    def test_random_programs_unaffected_by_repeat_compilation(self):
        golden = GoldenModel()
        for program in SeedGenerator(rng=5).generate_many(5):
            first = golden.run(program)
            second = golden.run(program)
            assert ([r.arch_key() for r in first.records]
                    == [r.arch_key() for r in second.records])
            assert first.final_csrs == second.final_csrs
