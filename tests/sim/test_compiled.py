"""Tests for the compiled-trace execution substrate.

The trace compiler (:mod:`repro.isa.compiled`) pre-decodes programs into
threaded code; the shared run loop indexes it instead of fetching and
decoding.  Bit-identity of whole corpora is pinned by
``test_hotpath_equivalence.py``; this module covers the substrate's own
mechanics, and the two cases where the loop must *leave* the compiled
trace: self-modifying code and misaligned in-range program counters.
"""

import pytest

from repro.isa import csr as csrdefs
from repro.isa.assembler import encode_instruction
from repro.isa.compiled import (
    CompiledTraceCache,
    SuperblockCache,
    compile_program,
    dirty_word_span,
    process_compiled_cache,
    set_superblocks_enabled,
    superblocks_enabled,
    superblocks_for,
)
from repro.isa.decoder import decode_word
from repro.isa.generator import SeedGenerator
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.rtl.registry import make_dut
from repro.sim.golden import GoldenModel
from repro.sim.trace import HaltReason

I = Instruction


def _program(*instructions):
    return TestProgram(instructions=tuple(instructions))


def _digest(result):
    return ([(r.step, r.pc, r.word, r.mnemonic, r.rd, r.rd_value, r.trap,
              r.mem_addr, r.mem_value, r.mem_size, r.csr_addr, r.csr_value,
              r.next_pc, r.trap_tval) for r in result.records],
            result.halt_reason, result.final_registers,
            sorted(result.final_csrs.items()))


@pytest.fixture
def superblocks_off():
    was = superblocks_enabled()
    set_superblocks_enabled(False)
    yield
    set_superblocks_enabled(was)


def _run_both_ways(program, max_steps=None):
    """Golden digests with superblocks on and off (flag restored)."""
    golden = GoldenModel()
    was = superblocks_enabled()
    digests = {}
    try:
        for flag in (False, True):
            set_superblocks_enabled(flag)
            digests[flag] = _digest(golden.run(program, max_steps=max_steps))
    finally:
        set_superblocks_enabled(was)
    return digests[True], digests[False]


class TestCompileProgram:
    def test_entries_mirror_decode(self):
        program = _program(I("addi", rd=1, rs1=0, imm=5),
                           I.illegal(0xFFFF_FFFF),
                           I("ecall"))
        compiled = compile_program(program)
        assert len(compiled) == 3
        assert compiled.base_address == program.base_address
        assert compiled.end_address == program.end_address()
        for word, (entry_word, instr, handler) in zip(program.words(),
                                                      compiled.entries):
            assert entry_word == word & 0xFFFF_FFFF
            assert instr is decode_word(word)  # shares the decode cache
            assert (handler is None) == instr.is_illegal

    def test_fingerprint_keyed_sharing(self):
        body = (I("addi", rd=3, rs1=0, imm=9), I("ecall"))
        first = _program(*body)
        twin = _program(*body)  # distinct object, same content
        compiled = compile_program(first)
        cache = process_compiled_cache()
        hits = cache.hits
        assert compile_program(first) is compiled  # served from the LRU
        assert compile_program(twin) is compiled  # fingerprint-keyed reuse
        assert cache.hits == hits + 2
        # Nothing is pinned on the program object: the LRU bound governs
        # all compiled-trace memory (the --cache-entries contract).
        assert "_compiled" not in first.__dict__

    def test_lru_bound_and_stats(self):
        cache = CompiledTraceCache(max_entries=2)
        programs = [_program(I("addi", rd=1, rs1=0, imm=n), I("ecall"))
                    for n in range(3)]
        for program in programs:
            cache.get_or_compile(program)
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["misses"] == 3 and stats["evictions"] == 1
        cache.get_or_compile(programs[0])  # spilled -> recompiled
        assert cache.stats()["misses"] == 4
        cache.configure(1)
        assert len(cache) == 1
        with pytest.raises(ValueError):
            cache.configure(0)
        with pytest.raises(ValueError):
            CompiledTraceCache(max_entries=0)


class TestFallbackPaths:
    def test_self_modifying_store_executes_new_word(self):
        """A store into the code window invalidates the compiled entry.

        The program overwrites its own slot 4 (an ``addi x5, x0, 1``) with
        the encoding of ``addi x5, x0, 42`` before reaching it; the commit
        trace must show the *new* instruction, exactly as the fetch-based
        loop always behaved.
        """
        # Materialise the new word into x3 via lui+addi (the exact 32-bit
        # encoding does not fit an addi immediate on its own).
        new_word = encode_instruction(I("addi", rd=5, rs1=0, imm=42))
        upper = (new_word + 0x800) >> 12
        lower = new_word - (upper << 12)
        program = _program(
            I("lui", rd=1, imm=0x40000),         # x1 = 0x4000_0000 (code base)
            I("lui", rd=3, imm=upper),
            I("addi", rd=3, rs1=3, imm=lower),   # x3 = new_word
            I("sw", rs1=1, rs2=3, imm=20),       # overwrite slot 5
            I("addi", rd=6, rs1=0, imm=7),
            I("addi", rd=5, rs1=0, imm=1),       # slot 5: the victim
            I("ecall"),
        )
        result = GoldenModel().run(program)
        victim = [r for r in result.records if r.pc == program.base_address + 20]
        assert victim, "the overwritten slot must still execute"
        assert victim[0].word == new_word
        assert victim[0].rd == 5 and victim[0].rd_value == 42
        assert result.final_registers[5] == 42
        assert result.halt_reason is HaltReason.ECALL

    def test_self_modifying_store_matches_on_dut(self):
        """Golden and DUT take the same fallback on overwritten words."""
        new_word = encode_instruction(I("addi", rd=5, rs1=0, imm=42))
        upper = (new_word + 0x800) >> 12
        lower = new_word - (upper << 12)
        program = _program(
            I("lui", rd=1, imm=0x40000),
            I("lui", rd=3, imm=upper),
            I("addi", rd=3, rs1=3, imm=lower),
            I("sw", rs1=1, rs2=3, imm=20),
            I("addi", rd=6, rs1=0, imm=7),
            I("addi", rd=5, rs1=0, imm=1),
            I("ecall"),
        )
        golden = GoldenModel().run(program)
        dut = make_dut("rocket", bugs=[]).run(program)
        assert ([r.arch_key() for r in golden.records]
                == [r.arch_key() for r in dut.execution.records])

    def test_misaligned_mret_target_takes_generic_path(self):
        """mret into a misaligned in-range pc: generic step reports the fault."""
        program = _program(
            I("lui", rd=1, imm=0x40000),            # x1 = base
            I("addi", rd=1, rs1=1, imm=6),          # x1 = base + 6 (misaligned)
            I("csrrw", rd=0, rs1=1, csr=csrdefs.MEPC),
            I("mret"),                              # jump to base + 6
            I("addi", rd=2, rs1=0, imm=1),
            I("ecall"),
        )
        result = GoldenModel().run(program)
        assert result.halt_reason is HaltReason.PC_OUT_OF_RANGE
        final = result.records[-1]
        assert final.trap is not None
        assert final.trap.name == "INSTRUCTION_ADDRESS_MISALIGNED"
        assert final.trap_tval == program.base_address + 6

    def test_compiled_and_step_limit_agree(self):
        """An infinite loop still honours the step limit through the fast path."""
        program = _program(I("jal", rd=0, imm=0))  # tight self-loop
        result = GoldenModel().run(program, max_steps=17)
        assert result.halt_reason is HaltReason.STEP_LIMIT
        assert result.steps == 17


class TestDirtyWordSpan:
    """Boundary regressions for the shared code-window range math.

    Every consumer (the run loop's dirty-word set, both fused loops'
    abort checks) goes through :func:`dirty_word_span`, so these pins
    cover them all at once.
    """

    BASE = 0x4000_0000
    END = BASE + 16  # a four-word code window

    def test_aligned_word_store_inside_window(self):
        assert dirty_word_span(self.BASE + 8, 4, self.BASE, self.END) == (2, 2)

    def test_sd_across_an_interior_word_boundary(self):
        # An 8-byte store at +2 touches bytes 2..9: words 0, 1 and 2.
        assert dirty_word_span(self.BASE + 2, 8, self.BASE, self.END) == (0, 2)

    def test_sd_spanning_the_end_boundary_clamps(self):
        # Bytes 12..19: only word 3 is inside the window.
        assert dirty_word_span(self.BASE + 12, 8, self.BASE, self.END) == (3, 3)

    def test_store_at_end_address_misses(self):
        assert dirty_word_span(self.END, 8, self.BASE, self.END) is None

    def test_byte_store_just_below_base_misses(self):
        assert dirty_word_span(self.BASE - 1, 1, self.BASE, self.END) is None

    def test_store_spanning_in_from_below_clamps_to_word_zero(self):
        assert dirty_word_span(self.BASE - 4, 8, self.BASE, self.END) == (0, 0)
        assert dirty_word_span(self.BASE - 1, 4, self.BASE, self.END) == (0, 0)


class TestSuperblockFormation:
    def test_terminators_tails_and_illegal_fusion(self):
        program = _program(
            I("addi", rd=1, rs1=0, imm=1),            # 0 ┐
            I("addi", rd=2, rs1=0, imm=2),            # 1 │ block: branch tail
            I("beq", rs1=0, rs2=0, imm=8),            # 2 ┘
            I("addi", rd=3, rs1=0, imm=3),            # 3 ┐ block: CSR tail
            I("csrrs", rd=4, rs1=0, csr=csrdefs.MINSTRET),  # 4 ┘
            I("addi", rd=5, rs1=0, imm=5),            # 5 ┐
            I.illegal(0xFFFF_FFFF),                   # 6 │ block: illegal fused
            I("addi", rd=6, rs1=0, imm=6),            # 7 ┘
            I("ecall"),                               # 8 never fused (SYSTEM)
        )
        blocks = superblocks_for(program)
        head = blocks.at(0)
        assert (head.start, head.length) == (0, 3)
        assert head.tail_redirect and not head.csr_tail
        assert head.word_set == frozenset({0, 1, 2})
        csr_block = blocks.at(3)
        assert (csr_block.start, csr_block.length) == (3, 2)
        assert csr_block.csr_tail and not csr_block.tail_redirect
        tail = blocks.at(5)
        assert (tail.start, tail.length) == (5, 3)
        assert not tail.tail_redirect and not tail.csr_tail
        # The illegal word fused with a working stand-in handler.
        assert all(handler is not None for _, _, handler in tail.entries)
        assert blocks.at(8) is None  # a lone SYSTEM entry leads no block

    def test_lru_bound_and_stats(self):
        cache = SuperblockCache(max_entries=2)
        programs = [_program(I("addi", rd=1, rs1=0, imm=n), I("ecall"))
                    for n in range(3)]
        for program in programs:
            cache.get_or_build(program)
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["misses"] == 3 and stats["evictions"] == 1
        cache.get_or_build(programs[-1])
        assert cache.stats()["hits"] == 1
        cache.configure(1)
        assert len(cache) == 1
        with pytest.raises(ValueError):
            cache.configure(0)
        with pytest.raises(ValueError):
            SuperblockCache(max_entries=0)


class TestSuperblockSemantics:
    """Bit-identity of the fused loops against the per-step path."""

    def test_partial_block_step_limit_truncation(self):
        # A 10-entry straight-line block truncated mid-block: the run loop
        # must fall back to per-entry dispatch and stop on the exact step.
        program = _program(*[I("addi", rd=1, rs1=1, imm=1) for _ in range(10)],
                           I("ecall"))
        for limit in (5, 10):
            on, off = _run_both_ways(program, max_steps=limit)
            assert on == off
            assert on[1] is HaltReason.STEP_LIMIT
            assert len(on[0]) == limit

    def test_csr_tail_reads_exact_retirement_counters(self):
        # MINSTRET/MCYCLE updates are batched to the block exit; a CSR
        # closing the block must still read architecturally exact values.
        program = _program(
            I("addi", rd=1, rs1=0, imm=1),
            I("addi", rd=2, rs1=0, imm=2),
            I("csrrs", rd=5, rs1=0, csr=csrdefs.MINSTRET),
            I("addi", rd=3, rs1=0, imm=3),
            I("csrrs", rd=6, rs1=0, csr=csrdefs.MINSTRET),
            I("ecall"),
        )
        on, off = _run_both_ways(program)
        assert on == off
        result = GoldenModel().run(program)
        assert result.final_registers[5] == 2  # two retirements before it
        assert result.final_registers[6] == 4

    def test_fused_illegal_word_traps_identically(self):
        program = _program(
            I("addi", rd=1, rs1=0, imm=5),
            I.illegal(0xFFFF_FFFF),
            I("addi", rd=2, rs1=0, imm=7),
            I("ecall"),
        )
        on, off = _run_both_ways(program)
        assert on == off
        result = GoldenModel().run(program)
        trap_record = result.records[1]
        assert trap_record.trap is not None
        assert trap_record.trap.name == "ILLEGAL_INSTRUCTION"
        assert trap_record.trap_tval == 0xFFFF_FFFF
        assert result.final_registers[2] == 7  # execution fell through

    def test_store_into_a_later_block_invalidates_it(self):
        # The store commits in the block before the branch; the victim
        # word lives in the *next* block.  Crossing the boundary, the
        # dirty-word set must force a re-fetch of the new encoding.
        new_word = encode_instruction(I("addi", rd=5, rs1=0, imm=42))
        upper = (new_word + 0x800) >> 12
        lower = new_word - (upper << 12)
        program = _program(
            I("lui", rd=1, imm=0x40000),       # 0: x1 = code base
            I("lui", rd=3, imm=upper),         # 1
            I("addi", rd=3, rs1=3, imm=lower), # 2: x3 = new_word
            I("sw", rs1=1, rs2=3, imm=24),     # 3: overwrite slot 6
            I("beq", rs1=0, rs2=0, imm=4),     # 4: block boundary
            I("addi", rd=6, rs1=0, imm=7),     # 5
            I("addi", rd=5, rs1=0, imm=1),     # 6: the victim
            I("ecall"),                        # 7
        )
        on, off = _run_both_ways(program)
        assert on == off
        result = GoldenModel().run(program)
        assert result.final_registers[5] == 42

    def test_self_modifying_and_misaligned_mret_agree_with_unfused(self):
        # The fallback-path programs from TestFallbackPaths, re-run both
        # ways: aborting a block mid-flight and leaving the compiled
        # trace entirely must not depend on the superblock flag.
        new_word = encode_instruction(I("addi", rd=5, rs1=0, imm=42))
        upper = (new_word + 0x800) >> 12
        lower = new_word - (upper << 12)
        self_modifying = _program(
            I("lui", rd=1, imm=0x40000),
            I("lui", rd=3, imm=upper),
            I("addi", rd=3, rs1=3, imm=lower),
            I("sw", rs1=1, rs2=3, imm=20),
            I("addi", rd=6, rs1=0, imm=7),
            I("addi", rd=5, rs1=0, imm=1),
            I("ecall"),
        )
        misaligned_mret = _program(
            I("lui", rd=1, imm=0x40000),
            I("addi", rd=1, rs1=1, imm=6),
            I("csrrw", rd=0, rs1=1, csr=csrdefs.MEPC),
            I("mret"),
            I("addi", rd=2, rs1=0, imm=1),
            I("ecall"),
        )
        for program in (self_modifying, misaligned_mret):
            on, off = _run_both_ways(program)
            assert on == off

    def test_superblocks_off_disables_block_dispatch(self, superblocks_off):
        assert not superblocks_enabled()
        program = _program(I("addi", rd=1, rs1=0, imm=3), I("ecall"))
        result = GoldenModel().run(program)
        assert result.final_registers[1] == 3
        assert result.halt_reason is HaltReason.ECALL


class TestCorpusSanity:
    def test_random_programs_unaffected_by_repeat_compilation(self):
        golden = GoldenModel()
        for program in SeedGenerator(rng=5).generate_many(5):
            first = golden.run(program)
            second = golden.run(program)
            assert ([r.arch_key() for r in first.records]
                    == [r.arch_key() for r in second.records])
            assert first.final_csrs == second.final_csrs
