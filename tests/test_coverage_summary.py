"""Tests of the CI coverage-table renderer (benchmarks/coverage_summary.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "coverage_summary",
    Path(__file__).resolve().parents[1] / "benchmarks" / "coverage_summary.py")
coverage_summary = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(coverage_summary)


def _report(percent=84.6):
    return {
        "files": {
            "src/repro/isa/decoder.py":
                {"summary": {"covered_lines": 90, "num_statements": 100}},
            "src/repro/isa/assembler.py":
                {"summary": {"covered_lines": 50, "num_statements": 50}},
            "src/repro/exec/engine.py":
                {"summary": {"covered_lines": 70, "num_statements": 100}},
            "src/repro/api.py":
                {"summary": {"covered_lines": 10, "num_statements": 10}},
        },
        "totals": {"covered_lines": 220, "num_statements": 260,
                   "percent_covered": percent},
    }


class TestPackageGrouping:
    def test_subpackage(self):
        assert coverage_summary.package_of("src/repro/exec/engine.py") == "repro.exec"

    def test_package_root_file(self):
        assert coverage_summary.package_of("src/repro/api.py") == "repro"

    def test_foreign_path_degrades_gracefully(self):
        assert coverage_summary.package_of("weird.py") == "weird.py"


class TestRendering:
    def test_markdown_table_groups_by_package(self):
        text = coverage_summary.render_markdown(_report(), fail_under=80.0)
        assert "| `repro.isa` | 140/150 | 93.3% |" in text
        assert "| `repro.exec` | 70/100 | 70.0% |" in text
        assert "| **total** | 220/260 | 84.6% |" in text
        assert "✅" in text

    def test_failure_marker_below_threshold(self):
        text = coverage_summary.render_markdown(_report(), fail_under=90.0)
        assert "❌" in text


class TestGate:
    def test_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "coverage.json"
        path.write_text(json.dumps(_report()))
        assert coverage_summary.main(["--json", str(path),
                                      "--fail-under", "80"]) == 0
        capsys.readouterr()
        assert coverage_summary.main(["--json", str(path),
                                      "--fail-under", "90"]) == 1
        assert "below" in capsys.readouterr().err

    def test_empty_statement_package_counts_as_full(self):
        report = {"files": {"src/repro/isa/__init__.py":
                            {"summary": {"covered_lines": 0, "num_statements": 0}}},
                  "totals": {"covered_lines": 0, "num_statements": 0,
                             "percent_covered": 100.0}}
        rows = coverage_summary.summarize(report)
        assert rows == [("repro.isa", 0, 0, pytest.approx(100.0))]
