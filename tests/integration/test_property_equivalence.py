"""Property-based cross-model checks.

The key soundness property of the whole substrate: for *any* generated
program, a DUT model with no injected defects commits exactly the same
architectural trace as the golden reference model, and its emitted coverage
stays inside its declared coverage space.  Hypothesis drives the seed
generator (and the mutation engine) with arbitrary RNG seeds to search for
counterexamples.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fuzzing.differential import compare_traces
from repro.fuzzing.mutation import MutationEngine
from repro.isa.generator import GeneratorConfig, SeedGenerator
from repro.rtl.boom import BoomModel
from repro.rtl.cva6 import CVA6Model
from repro.rtl.rocket import RocketModel
from repro.sim.golden import GoldenModel

_MODELS = {
    "cva6": CVA6Model(bugs=[]),
    "rocket": RocketModel(bugs=[]),
    "boom": BoomModel(bugs=[]),
}
_GOLDEN = GoldenModel()
_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@given(seed=st.integers(0, 2**32 - 1),
       model_name=st.sampled_from(sorted(_MODELS)))
@_SETTINGS
def test_clean_dut_equals_golden_on_generated_seeds(seed, model_name):
    program = SeedGenerator(rng=seed).generate()
    golden_result = _GOLDEN.run(program)
    dut_result = _MODELS[model_name].run(program)
    assert compare_traces(golden_result, dut_result.execution) is None


@given(seed=st.integers(0, 2**32 - 1),
       model_name=st.sampled_from(sorted(_MODELS)))
@_SETTINGS
def test_clean_dut_equals_golden_on_mutated_tests(seed, model_name):
    """Equivalence also holds for mutation products (often illegal-heavy)."""
    engine = MutationEngine(rng=seed)
    program = SeedGenerator(rng=seed).generate()
    for _ in range(3):
        program = engine.mutate_once(program)
    golden_result = _GOLDEN.run(program)
    dut_result = _MODELS[model_name].run(program)
    assert compare_traces(golden_result, dut_result.execution) is None


@given(seed=st.integers(0, 2**32 - 1),
       model_name=st.sampled_from(sorted(_MODELS)))
@_SETTINGS
def test_coverage_always_within_declared_space(seed, model_name):
    model = _MODELS[model_name]
    generator = SeedGenerator(
        GeneratorConfig(illegal_word_prob=0.05), rng=seed)
    result = model.run(generator.generate())
    assert result.coverage
    assert result.coverage <= model.coverage_space()


@given(seed=st.integers(0, 2**32 - 1))
@_SETTINGS
def test_golden_minstret_equals_commit_count(seed):
    """The golden model retires exactly one instruction per commit record.

    Programs that architecturally *write* the counter CSRs (csrrw to
    mcycle/minstret is legal machine-mode behaviour) are excluded: for them
    the final counter value is whatever the program wrote.
    """
    from hypothesis import assume

    from repro.isa import csr as csrdefs
    from repro.isa.encoding import InstrClass, spec_for

    program = SeedGenerator(rng=seed).generate()
    touches_counters = any(
        (not instr.is_illegal
         and spec_for(instr.mnemonic).cls is InstrClass.CSR
         and instr.csr in (csrdefs.MCYCLE, csrdefs.MINSTRET))
        for instr in program
    )
    assume(not touches_counters)
    result = _GOLDEN.run(program)
    assert result.final_csrs[csrdefs.MINSTRET] == result.instret
