"""End-to-end integration tests across the whole stack.

These exercise the realistic paths the benchmarks use, at a reduced scale:
full campaigns with injected bugs, MABFuzz-vs-TheHuzz comparisons with the
shared plumbing, and the experiment drivers.
"""

import pytest

from repro.api import make_fuzzer, make_processor
from repro.core.config import MABFuzzConfig
from repro.fuzzing.base import FuzzerConfig
from repro.harness.metrics import coverage_speedup

SMALL_FUZZ = FuzzerConfig(num_seeds=5, mutants_per_test=3)
SMALL_MAB = MABFuzzConfig(num_arms=5, arm_pool_max=32)


class TestBugDetectionEndToEnd:
    def test_cva6_campaign_detects_easy_bugs(self):
        """A modest campaign on the buggy CVA6 finds the easy vulnerabilities."""
        dut = make_processor("cva6")
        fuzzer = make_fuzzer("mabfuzz:exp3", dut, fuzzer_config=SMALL_FUZZ,
                             mab_config=SMALL_MAB, rng=3)
        result = fuzzer.run(400)
        assert "V5" in result.bug_detections
        assert result.bug_detections["V5"].tests_to_detection <= 50
        # At this scale at least one of the moderate-difficulty bugs shows up too.
        assert len(result.bug_detections) >= 2

    def test_detections_are_subset_of_injected(self):
        dut = make_processor("cva6", bugs=["V5", "V6"])
        fuzzer = make_fuzzer("thehuzz", dut, fuzzer_config=SMALL_FUZZ, rng=1)
        result = fuzzer.run(120)
        assert set(result.bug_detections) <= {"V5", "V6"}

    def test_clean_dut_never_reports_bugs(self):
        dut = make_processor("boom")  # boom has no injected bugs by default
        fuzzer = make_fuzzer("mabfuzz:ucb", dut, fuzzer_config=SMALL_FUZZ,
                             mab_config=SMALL_MAB, rng=2)
        result = fuzzer.run(60)
        assert result.bug_detections == {}
        assert result.mismatching_tests == 0


class TestSchedulingBehaviour:
    def test_mabfuzz_resets_arms_over_a_campaign(self):
        dut = make_processor("rocket", bugs=[])
        fuzzer = make_fuzzer("mabfuzz:ucb", dut, fuzzer_config=SMALL_FUZZ,
                             mab_config=MABFuzzConfig(num_arms=5, gamma=2,
                                                      arm_pool_max=32), rng=4)
        result = fuzzer.run(150)
        assert result.metadata["total_resets"] > 0
        # Resets replace seeds, so some arms are beyond generation 0.
        assert any(arm.generation > 0 for arm in fuzzer.arms)

    def test_coverage_counts_are_consistent(self):
        dut = make_processor("rocket", bugs=[])
        fuzzer = make_fuzzer("mabfuzz:egreedy", dut, fuzzer_config=SMALL_FUZZ,
                             mab_config=SMALL_MAB, rng=5)
        result = fuzzer.run(80)
        assert result.coverage_curve[-1].covered == result.coverage_count
        assert result.coverage_count <= result.total_points
        # The union of per-arm coverage cannot exceed the global database.
        arm_union = set()
        for arm in fuzzer.arms:
            arm_union |= arm.local_coverage
        assert len(arm_union) <= result.coverage_count

    def test_mabfuzz_and_thehuzz_share_coverage_space(self):
        """Fuzzer-agnosticism: both fuzzers report against the same DUT space."""
        results = {}
        for name in ("thehuzz", "mabfuzz:ucb"):
            dut = make_processor("cva6", bugs=[])
            fuzzer = make_fuzzer(name, dut, fuzzer_config=SMALL_FUZZ,
                                 mab_config=SMALL_MAB, rng=6)
            results[name] = fuzzer.run(60)
        assert results["thehuzz"].total_points == results["mabfuzz:ucb"].total_points

    def test_coverage_speedup_computable_between_fuzzers(self):
        results = {}
        for name in ("thehuzz", "mabfuzz:exp3"):
            dut = make_processor("rocket", bugs=[])
            fuzzer = make_fuzzer(name, dut, fuzzer_config=SMALL_FUZZ,
                                 mab_config=SMALL_MAB, rng=7)
            results[name] = fuzzer.run(100)
        speedup = coverage_speedup([results["thehuzz"]], [results["mabfuzz:exp3"]])
        assert speedup > 0


class TestDeterminism:
    @pytest.mark.parametrize("fuzzer_name", ["thehuzz", "mabfuzz:ucb", "mabfuzz:exp3"])
    def test_full_campaign_reproducible(self, fuzzer_name):
        outcomes = []
        for _ in range(2):
            dut = make_processor("cva6")
            fuzzer = make_fuzzer(fuzzer_name, dut, fuzzer_config=SMALL_FUZZ,
                                 mab_config=SMALL_MAB, rng=123)
            result = fuzzer.run(40)
            outcomes.append((
                result.coverage_count,
                tuple(sorted((b, d.test_index) for b, d in result.bug_detections.items())),
                tuple(s.covered for s in result.coverage_curve),
            ))
        assert outcomes[0] == outcomes[1]
