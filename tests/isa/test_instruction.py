"""Tests for the Instruction value type."""

import dataclasses

import pytest

from repro.isa.instruction import ILLEGAL_MNEMONIC, Instruction


class TestConstruction:
    def test_defaults(self):
        instr = Instruction("add")
        assert (instr.rd, instr.rs1, instr.rs2, instr.imm, instr.csr) == (0, 0, 0, 0, 0)

    def test_frozen(self):
        instr = Instruction("add", rd=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            instr.rd = 2  # type: ignore[misc]

    def test_equality_and_hash(self):
        a = Instruction("addi", rd=1, rs1=2, imm=3)
        b = Instruction("addi", rd=1, rs1=2, imm=3)
        assert a == b
        assert hash(a) == hash(b)


class TestIllegal:
    def test_factory(self):
        instr = Instruction.illegal(0xDEADBEEF)
        assert instr.is_illegal
        assert instr.mnemonic == ILLEGAL_MNEMONIC
        assert instr.raw == 0xDEADBEEF

    def test_factory_masks_to_32_bits(self):
        instr = Instruction.illegal(0x1_0000_0001)
        assert instr.raw == 1

    def test_regular_not_illegal(self):
        assert not Instruction("add").is_illegal


class TestWithFields:
    def test_changes_one_field(self):
        base = Instruction("addi", rd=1, rs1=2, imm=3)
        changed = base.with_fields(imm=-7)
        assert changed.imm == -7
        assert changed.rd == base.rd
        assert base.imm == 3  # original untouched

    def test_returns_new_object(self):
        base = Instruction("add", rd=1)
        assert base.with_fields(rd=2) is not base
