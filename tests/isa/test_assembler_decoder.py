"""Encode/decode round-trip tests, including property-based coverage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble_program, encode_instruction
from repro.isa.decoder import decode_word, is_legal_word
from repro.isa.encoding import (
    OPCODE_OP_IMM_32,
    InstrFormat,
    SPECS,
    spec_for,
)
from repro.isa.instruction import Instruction


# ----------------------------------------------------------- reference encodings
class TestKnownEncodings:
    """Spot-check against encodings produced by standard RISC-V toolchains."""

    def test_addi(self):
        # addi x1, x2, 3
        assert encode_instruction(Instruction("addi", rd=1, rs1=2, imm=3)) == 0x00310093

    def test_add(self):
        # add x3, x4, x5
        assert encode_instruction(Instruction("add", rd=3, rs1=4, rs2=5)) == 0x005201B3

    def test_sub(self):
        # sub x3, x4, x5
        assert encode_instruction(Instruction("sub", rd=3, rs1=4, rs2=5)) == 0x405201B3

    def test_lw(self):
        # lw x6, 8(x7)
        assert encode_instruction(Instruction("lw", rd=6, rs1=7, imm=8)) == 0x0083A303

    def test_sw(self):
        # sw x6, 12(x7)
        assert encode_instruction(Instruction("sw", rs1=7, rs2=6, imm=12)) == 0x0063A623

    def test_beq(self):
        # beq x1, x2, +16
        assert encode_instruction(Instruction("beq", rs1=1, rs2=2, imm=16)) == 0x00208863

    def test_jal(self):
        # jal x1, +2048
        assert encode_instruction(Instruction("jal", rd=1, imm=2048)) == 0x001000EF

    def test_lui(self):
        # lui x5, 0x12345
        assert encode_instruction(Instruction("lui", rd=5, imm=0x12345)) == 0x123452B7

    def test_ecall_ebreak(self):
        assert encode_instruction(Instruction("ecall")) == 0x00000073
        assert encode_instruction(Instruction("ebreak")) == 0x00100073

    def test_csrrw(self):
        # csrrw x5, mstatus(0x300), x6
        assert encode_instruction(
            Instruction("csrrw", rd=5, rs1=6, csr=0x300)) == 0x300312F3

    def test_fence_i(self):
        assert encode_instruction(Instruction("fence.i")) == 0x0000100F

    def test_srai_shamt(self):
        # srai x1, x1, 40 (RV64 6-bit shamt)
        assert encode_instruction(Instruction("srai", rd=1, rs1=1, imm=40)) == 0x4280D093


# ---------------------------------------------------------------- decode basics
class TestDecode:
    def test_decode_add(self):
        instr = decode_word(0x005201B3)
        assert instr.mnemonic == "add"
        assert (instr.rd, instr.rs1, instr.rs2) == (3, 4, 5)

    def test_decode_negative_immediate(self):
        word = encode_instruction(Instruction("addi", rd=1, rs1=1, imm=-5))
        assert decode_word(word).imm == -5

    def test_decode_branch_negative_offset(self):
        word = encode_instruction(Instruction("bne", rs1=3, rs2=4, imm=-8))
        assert decode_word(word).imm == -8

    def test_unknown_word_is_illegal(self):
        instr = decode_word(0xFFFFFFFF)
        assert instr.is_illegal
        assert instr.raw == 0xFFFFFFFF

    def test_zero_word_is_illegal(self):
        assert decode_word(0).is_illegal

    def test_reserved_system_encoding_is_illegal(self):
        # ecall with rd != 0 is a reserved encoding.
        word = 0x00000073 | (1 << 7)
        assert decode_word(word).is_illegal

    def test_is_legal_word(self):
        assert is_legal_word(0x005201B3)
        assert not is_legal_word(0x0)

    def test_illegal_reencodes_to_same_word(self):
        word = 0x0000007F  # opcode 0x7F is not allocated
        instr = decode_word(word)
        assert instr.is_illegal
        assert encode_instruction(instr) == word


class TestDecodeCache:
    def test_repeated_decodes_share_one_instruction(self):
        from repro.isa.decoder import clear_decode_cache

        clear_decode_cache()
        assert decode_word(0x005201B3) is decode_word(0x005201B3)

    def test_illegal_words_cache_too(self):
        from repro.isa.decoder import clear_decode_cache

        clear_decode_cache()
        assert decode_word(0x0) is decode_word(0x0)
        assert decode_word(0x0).is_illegal

    def test_cache_info_and_clear(self):
        from repro.isa.decoder import clear_decode_cache, decode_cache_info

        clear_decode_cache()
        assert decode_cache_info()["size"] == 0
        decode_word(0x005201B3)
        info = decode_cache_info()
        assert info["size"] == 1
        assert info["max_size"] >= 1
        clear_decode_cache()
        assert decode_cache_info()["size"] == 0

    def test_cached_instructions_are_immutable(self):
        import dataclasses

        instr = decode_word(0x005201B3)
        with pytest.raises(dataclasses.FrozenInstanceError):
            instr.rd = 5


# ------------------------------------------------------------------- round trips
def _operand_strategy(mnemonic):
    """Build a hypothesis strategy producing valid operand values for a mnemonic."""
    spec = spec_for(mnemonic)
    reg = st.integers(0, 31)
    fmt = spec.fmt
    if fmt is InstrFormat.I_SHIFT:
        limit = 31 if spec.opcode == OPCODE_OP_IMM_32 else 63
        imm = st.integers(0, limit)
    elif fmt is InstrFormat.B:
        imm = st.integers(-2048, 2047).map(lambda v: v * 2)
    elif fmt is InstrFormat.J:
        imm = st.integers(-(2**19) + 1, 2**19 - 1).map(lambda v: v * 2)
    elif fmt is InstrFormat.U:
        imm = st.integers(0, (1 << 20) - 1)
    elif fmt is InstrFormat.CSR_IMM:
        imm = st.integers(0, 31)
    elif fmt is InstrFormat.FENCE:
        imm = st.integers(0, 255) if mnemonic == "fence" else st.just(0)
    else:
        imm = st.integers(-2048, 2047)
    return st.builds(
        Instruction,
        mnemonic=st.just(mnemonic),
        rd=reg if spec.writes_rd else st.just(0),
        rs1=reg if (spec.reads_rs1 and fmt is not InstrFormat.SYSTEM) else st.just(0),
        rs2=reg if spec.reads_rs2 else st.just(0),
        imm=imm,
        csr=st.integers(0, 0xFFF) if fmt in (InstrFormat.CSR, InstrFormat.CSR_IMM)
        else st.just(0),
        aq=st.integers(0, 1) if fmt is InstrFormat.AMO else st.just(0),
        rl=st.integers(0, 1) if fmt is InstrFormat.AMO else st.just(0),
    )


_ROUNDTRIP_EXCLUDED = {"fence.i", "ecall", "ebreak", "mret", "wfi"}
_all_instructions = st.sampled_from(
    sorted(set(SPECS) - _ROUNDTRIP_EXCLUDED)).flatmap(_operand_strategy)


@given(_all_instructions)
@settings(max_examples=300, deadline=None)
def test_encode_decode_roundtrip(instr):
    """Every legally constructed instruction must round-trip exactly."""
    word = encode_instruction(instr)
    decoded = decode_word(word)
    assert decoded.mnemonic == instr.mnemonic
    spec = spec_for(instr.mnemonic)
    if spec.writes_rd:
        assert decoded.rd == instr.rd
    if spec.reads_rs1 and spec.fmt not in (InstrFormat.CSR_IMM, InstrFormat.SYSTEM,
                                           InstrFormat.FENCE):
        assert decoded.rs1 == instr.rs1
    if spec.reads_rs2:
        assert decoded.rs2 == instr.rs2
    if spec.fmt in (InstrFormat.I, InstrFormat.I_SHIFT, InstrFormat.S, InstrFormat.B,
                    InstrFormat.U, InstrFormat.J, InstrFormat.CSR_IMM):
        assert decoded.imm == instr.imm
    if spec.fmt in (InstrFormat.CSR, InstrFormat.CSR_IMM):
        assert decoded.csr == instr.csr
    if spec.fmt is InstrFormat.AMO:
        assert (decoded.aq, decoded.rl) == (instr.aq, instr.rl)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=300, deadline=None)
def test_decode_encode_is_stable(word):
    """decode(word) either re-encodes to the same word, or is illegal carrying it."""
    instr = decode_word(word)
    if instr.is_illegal:
        assert encode_instruction(instr) == word
    else:
        # A legal decode re-encodes to a word that decodes identically
        # (canonical re-encoding may normalise ignored bits, e.g. fence).
        reencoded = encode_instruction(instr)
        assert decode_word(reencoded) == instr


class TestAssembleProgram:
    def test_length(self):
        words = assemble_program([Instruction("addi", rd=1, rs1=0, imm=1),
                                  Instruction("ecall")])
        assert words == [0x00100093, 0x00000073]
