"""Tests of the trap/CSR scenario seed generators."""

import numpy as np
import pytest

from repro.isa.generator import GeneratorConfig, SeedGenerator
from repro.isa.scenarios import (
    SCENARIOS,
    MixedSeedGenerator,
    TrapScenarioGenerator,
    make_seed_provider,
)
from repro.sim.golden import GoldenModel


def _trap_causes(program):
    execution = GoldenModel().run(program)
    return {record.trap.name for record in execution.trapped_steps()}


class TestTrapScenarioGenerator:
    def test_seeds_actually_trap(self):
        generator = TrapScenarioGenerator(rng=11)
        programs = generator.generate_many(30)
        trapping = sum(1 for p in programs if _trap_causes(p))
        # Filler instructions can occasionally branch past a stimulus, so
        # demand a strong majority rather than all 30.
        assert trapping >= 24

    @pytest.mark.parametrize("kind,expected_causes", [
        ("illegal", {"ILLEGAL_INSTRUCTION"}),
        ("misaligned", {"INSTRUCTION_ADDRESS_MISALIGNED",
                        "LOAD_ADDRESS_MISALIGNED", "STORE_ADDRESS_MISALIGNED"}),
        ("access", {"LOAD_ACCESS_FAULT", "STORE_ACCESS_FAULT"}),
        ("csr", {"ILLEGAL_INSTRUCTION"}),
        ("system", {"BREAKPOINT"}),
    ])
    def test_each_kind_reaches_its_trap_family(self, kind, expected_causes):
        generator = TrapScenarioGenerator(rng=23)
        reached = set()
        for _ in range(10):
            reached |= _trap_causes(generator.generate(kind=kind))
        assert reached & expected_causes, (
            f"{kind} scenarios never reached any of {expected_causes}")

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            TrapScenarioGenerator(rng=0).generate(kind="nope")

    def test_deterministic_per_seed(self):
        words_a = [p.words() for p in TrapScenarioGenerator(rng=5).generate_many(10)]
        words_b = [p.words() for p in TrapScenarioGenerator(rng=5).generate_many(10)]
        assert words_a == words_b

    def test_program_ids_use_trap_prefix(self):
        program = TrapScenarioGenerator(rng=1).generate()
        assert program.program_id.startswith("trap")

    def test_respects_generator_config_lengths(self):
        config = GeneratorConfig(min_instructions=30, max_instructions=40)
        program = TrapScenarioGenerator(config, rng=2).generate()
        # preamble (4) + stimuli/filler body around the configured range.
        assert len(program) >= 20


class TestMixedSeedGenerator:
    def test_alternates_user_and_trap(self):
        mixed = MixedSeedGenerator(rng=3)
        seeds = mixed.generate_many(6)
        prefixes = [seed.program_id[:4] for seed in seeds]
        assert prefixes == ["seed", "trap", "seed", "trap", "seed", "trap"]

    def test_alternation_continues_across_calls(self):
        mixed = MixedSeedGenerator(rng=3)
        mixed.generate_many(3)                     # user, trap, user
        assert mixed.generate().program_id.startswith("trap")

    def test_deterministic_per_seed(self):
        a = [p.words() for p in MixedSeedGenerator(rng=9).generate_many(8)]
        b = [p.words() for p in MixedSeedGenerator(rng=9).generate_many(8)]
        assert a == b


class TestMakeSeedProvider:
    def test_known_scenarios(self):
        assert isinstance(make_seed_provider("user", rng=0), SeedGenerator)
        assert isinstance(make_seed_provider("trap", rng=0), TrapScenarioGenerator)
        assert isinstance(make_seed_provider("mixed", rng=0), MixedSeedGenerator)
        assert set(SCENARIOS) == {"user", "trap", "mixed"}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            make_seed_provider("kernel", rng=0)

    def test_user_provider_is_bit_identical_to_plain_seed_generator(self):
        """The user path must reproduce the historical generator exactly."""
        direct = SeedGenerator(None, np.random.default_rng(42)).generate_many(5)
        provided = make_seed_provider(
            "user", None, np.random.default_rng(42)).generate_many(5)
        assert [p.words() for p in direct] == [p.words() for p in provided]
