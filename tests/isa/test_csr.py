"""Tests for the CSR address-space model."""

from repro.isa import csr as csrdefs


class TestCsrSets:
    def test_implemented_and_unimplemented_disjoint(self):
        assert not (csrdefs.IMPLEMENTED_CSRS & csrdefs.UNIMPLEMENTED_CSRS)

    def test_read_only_subset_of_implemented(self):
        assert csrdefs.READ_ONLY_CSRS <= csrdefs.IMPLEMENTED_CSRS

    def test_generatable_covers_both(self):
        generatable = set(csrdefs.GENERATABLE_CSRS)
        assert csrdefs.IMPLEMENTED_CSRS <= generatable
        assert csrdefs.UNIMPLEMENTED_CSRS <= generatable

    def test_counters_are_read_only(self):
        assert csrdefs.CYCLE in csrdefs.READ_ONLY_CSRS
        assert csrdefs.INSTRET in csrdefs.READ_ONLY_CSRS

    def test_machine_csrs_writable(self):
        assert not csrdefs.is_read_only_csr(csrdefs.MSCRATCH)
        assert not csrdefs.is_read_only_csr(csrdefs.MTVEC)


class TestCsrQueries:
    def test_names(self):
        assert csrdefs.csr_name(csrdefs.MSTATUS) == "mstatus"
        assert csrdefs.csr_name(csrdefs.MINSTRET) == "minstret"

    def test_unknown_name_format(self):
        assert csrdefs.csr_name(0x123) == "csr_0x123"

    def test_is_implemented(self):
        assert csrdefs.is_implemented_csr(csrdefs.MEPC)
        assert not csrdefs.is_implemented_csr(0x7B0)

    def test_debug_csrs_unimplemented(self):
        for address in (0x7A0, 0x7B0, 0x7B1):
            assert address in csrdefs.UNIMPLEMENTED_CSRS
