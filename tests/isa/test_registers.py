"""Tests for register naming."""

import pytest

from repro.isa.registers import NUM_REGISTERS, REG_ABI_NAMES, abi_name, register_index


class TestAbiName:
    def test_zero(self):
        assert abi_name(0) == "zero"

    def test_return_address(self):
        assert abi_name(1) == "ra"

    def test_temporaries(self):
        assert abi_name(5) == "t0"
        assert abi_name(31) == "t6"

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            abi_name(32)
        with pytest.raises(ValueError):
            abi_name(-1)


class TestRegisterIndex:
    def test_x_names(self):
        assert register_index("x0") == 0
        assert register_index("x31") == 31

    def test_abi_names_roundtrip(self):
        for index in range(NUM_REGISTERS):
            assert register_index(REG_ABI_NAMES[index]) == index

    def test_fp_alias(self):
        assert register_index("fp") == 8
        assert register_index("s0") == 8

    def test_case_insensitive(self):
        assert register_index("A0") == 10

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            register_index("y3")
        with pytest.raises(ValueError):
            register_index("x99")
